"""The service daemon end to end: ``repro serve`` + ``--connect``.

This example runs the *real* production topology in miniature:

1. spawn ``repro-spanner serve`` as a separate OS process — a
   long-lived daemon owning a persistent worker fleet behind a unix
   socket;
2. attach a :class:`~repro.session.Session` with ``repro.connect(path)``
   and run batches through it — the second batch hits the fleet's warm
   in-memory caches, which is the daemon's whole reason to exist;
3. drive the same socket through the CLI (``batch --connect``), the way
   shell scripts and cron jobs would;
4. share the fleet between tenants: a tagged background batch and a
   high-priority query interleave on the same workers (the scheduler is
   weighted-fair, so the small query does not wait for the batch), then
   the batch is cancelled over the wire;
5. put a latency budget on a request (``deadline_ms``) and watch it
   fail *typed* (:class:`~repro.service.protocol.DeadlineExceeded`)
   instead of slow, then open a session with
   ``on_unavailable="fallback"`` against a dead socket and get
   bit-identical answers from the in-process engine — graceful
   degradation when the daemon is down;
6. shut the daemon down cleanly over the wire and check it exits 0.

Run with::

    PYTHONPATH=src python examples/service_daemon.py
"""

import os
import subprocess
import sys
import tempfile
import time

import repro
from repro import connect
from repro.engine.spec import SpannerSpec
from repro.service.client import ServiceClient, wait_ready
from repro.slp import io as slp_io
from repro.slp.construct import balanced_slp

PATTERN = r".*(?P<x>a+)b.*"


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="repro-service-demo-")
    socket_path = os.path.join(workdir, "repro.sock")
    store_dir = os.path.join(workdir, "prep-store")

    # A tiny corpus of binary grammars for the daemon to serve.
    documents = ["aabab" * 40, "bbbb" * 30, "abab" * 60]
    paths = []
    for k, text in enumerate(documents):
        path = os.path.join(workdir, f"doc{k}.slpb")
        slp_io.save_binary(balanced_slp(text), path)
        paths.append(path)

    # 1. The daemon, exactly as an operator would start it.  PYTHONPATH
    # points at this checkout so the child finds the same repro package.
    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    daemon = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--socket", socket_path, "--store", store_dir, "--jobs", "2",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        info = wait_ready(socket_path, timeout=60)
        print(
            f"daemon up: pid {info['pid']}, fleet of "
            f"{info['fleet']['jobs']} workers, store {store_dir!r}"
        )

        # 2. A Session over the socket: same API, same results as the
        # in-process backend — but the work happens in the daemon.
        spec = SpannerSpec(pattern=PATTERN, alphabet="ab")
        with connect(socket_path, timeout=60) as session:
            start = time.perf_counter()
            cold = session.corpus(spec, paths, task="count")
            cold_ms = (time.perf_counter() - start) * 1e3
            start = time.perf_counter()
            warm = session.corpus(spec, paths, task="count")
            warm_ms = (time.perf_counter() - start) * 1e3
            assert warm == cold
            print(f"counts over the daemon: {cold}")
            print(
                f"cold batch {cold_ms:.1f} ms, warm batch {warm_ms:.1f} ms "
                f"(same fleet, caches kept hot between calls)"
            )

            with connect() as local:
                assert local.corpus(spec, paths, task="count") == cold
            print("in-process backend agrees: results are backend-independent")

        # 3. The CLI route shell scripts would take.
        out = subprocess.run(
            [
                sys.executable, "-m", "repro", "batch", *paths,
                "-p", PATTERN, "--task", "count", "--connect", socket_path,
            ],
            env=env, capture_output=True, text=True, timeout=60, check=True,
        ).stdout
        print("CLI --connect output:")
        for line in out.strip().splitlines():
            print(f"  {line}")

        # 4. Multiple tenants on one fleet.  A corpus-sized tagged batch
        # runs in the background while a priority-4 query lands mid-way:
        # the scheduler interleaves shards instead of queueing FIFO, so
        # the small query returns while the batch is still running.
        # Tags make jobs addressable: any client can abort them later
        # (`repro-spanner cancel TAG --connect SOCK` does the same).
        # Were too many jobs in flight, submission would fail fast with
        # ServiceBusyError instead of queueing unboundedly.
        import random
        import threading

        rng = random.Random(7)
        big_paths = []
        for k in range(16):  # distinct contents: the batch shards apart
            text = "".join(rng.choice("ab") for _ in range(1200))
            path = os.path.join(workdir, f"big{k}.slpb")
            slp_io.save_binary(balanced_slp(text), path)
            big_paths.append(path)

        # a rare-match literal extraction: its large automaton makes
        # every document pay a real preprocessing build, so the batch
        # actually occupies the fleet for a while
        heavy = SpannerSpec(
            pattern=r"(a|b)*(?P<x>" + "ab" * 15 + r")(a|b)*", alphabet="ab"
        )

        def background_batch() -> None:
            try:
                with connect(socket_path, timeout=60, tag="nightly") as s:
                    s.corpus(heavy, big_paths, task="count")
            except repro.ReproError:
                pass  # cancelled below — expected

        batch_thread = threading.Thread(target=background_batch)
        batch_thread.start()
        time.sleep(0.3)  # the batch now occupies the fleet
        with connect(socket_path, timeout=60, priority=4) as urgent:
            start = time.perf_counter()
            count = urgent.count(spec, paths[0])
            urgent_ms = (time.perf_counter() - start) * 1e3
        print(
            f"urgent query answered {count} in {urgent_ms:.1f} ms "
            f"while the tagged batch was running"
        )
        with ServiceClient(socket_path, timeout=60) as client:
            cancelled = client.cancel("nightly")
            print(f"cancelled {cancelled} tagged job(s) over the wire")
            sched = client.ping()["scheduler"]
            print(
                f"scheduler: {sched['jobs_completed']} completed, "
                f"{sched['jobs_cancelled']} cancelled, "
                f"{sched['jobs_rejected_busy']} busy-rejected"
            )
        batch_thread.join(timeout=60)

        # 5. Failure semantics.  A request can carry its own latency
        # budget: past `deadline_ms` the daemon fails the job with a
        # *typed* DeadlineExceeded (and cancels its in-flight shards)
        # instead of letting the caller wait — an SLO expressed per
        # request, not per deployment.
        from repro.service.protocol import DeadlineExceeded

        with connect(socket_path, timeout=60, deadline_ms=1) as impatient:
            try:
                impatient.corpus(heavy, big_paths, task="count")
            except DeadlineExceeded:
                print("deadline_ms=1 budget: failed typed, not slow")

        # And when the daemon is unreachable entirely, a session opened
        # with on_unavailable="fallback" degrades to the in-process
        # engine — same results, no daemon — instead of raising.
        dead_socket = os.path.join(workdir, "nobody-home.sock")
        with connect(
            dead_socket, timeout=60, on_unavailable="fallback"
        ) as resilient:
            resilient._backend.client.retries = 0  # demo: skip the backoff
            assert resilient.corpus(spec, paths, task="count") == cold
        print("fallback session agreed with the daemon, daemon-free")

        # 6. Clean shutdown over the wire.
        with ServiceClient(socket_path, timeout=60) as client:
            client.shutdown()
        code = daemon.wait(timeout=60)
        print(f"daemon exited with code {code}; socket removed: "
              f"{not os.path.exists(socket_path)}")
        assert code == 0 and not os.path.exists(socket_path)
    finally:
        if daemon.poll() is None:
            daemon.terminate()
            daemon.wait(timeout=30)


if __name__ == "__main__":
    main()
