"""Motif search over LZ-compressed genomic text.

Genomes are famously repeat-rich; the LZ77 → SLP pipeline (Sec. 1.1 of the
paper) turns that redundancy into a grammar, and motif queries (spanners)
run on the grammar directly.

Run with::

    python examples/dna_motifs.py
"""

import itertools
import time

from repro import CompressedSpannerEvaluator
from repro.slp.lz import lz77_factorize, lz_to_slp
from repro.spanner.spans import Span, SpanTuple
from repro.workloads import dna, motif_pair_spanner, motif_spanner


def main() -> None:
    # --- data: pseudo-genome with long repeats, compressed via LZ77 ------
    genome = dna(30_000, seed=7, repeat_bias=0.92)
    t0 = time.perf_counter()
    factors = lz77_factorize(genome)
    slp = lz_to_slp(factors)
    t1 = time.perf_counter()
    print(f"genome    : {len(genome):,} bases")
    print(
        f"LZ77      : {len(factors):,} factors -> SLP of size {slp.size:,} "
        f"(depth {slp.depth()}, built in {t1 - t0:.2f}s)"
    )

    # --- single-motif search ---------------------------------------------
    motif = "tataa"
    evaluator = CompressedSpannerEvaluator(motif_spanner(motif), slp)
    t0 = time.perf_counter()
    hits = list(evaluator.enumerate())
    t1 = time.perf_counter()
    print(f"\nmotif {motif!r}: {len(hits)} occurrences ({(t1 - t0) * 1e3:.1f} ms)")
    for tup in hits[:5]:
        span = tup["m"]
        context = genome[max(0, span.start - 6) : span.end + 4]
        print(f"  at {span}   ...{context}...")

    # --- model checking: verify a specific putative site -----------------
    if hits:
        site = hits[0]["m"]
        print(f"\nmodel check {site}: {evaluator.model_check(SpanTuple({'m': site}))}")
        shifted = Span(site.start + 1, site.end + 1)
        print(f"model check {shifted}: {evaluator.model_check(SpanTuple({'m': shifted}))}")

    # --- co-occurring motif pairs (streamed, stop after a few) -----------
    pair = CompressedSpannerEvaluator(motif_pair_spanner("tata", "gcgc"), slp)
    print("\nfirst co-occurrences of 'tata' ... 'gcgc':")
    for tup in itertools.islice(pair.enumerate(), 5):
        print(f"  m1 = {tup['m1']}, m2 = {tup['m2']}")
    print(f"(pairs exist: {pair.is_nonempty()})")


if __name__ == "__main__":
    main()
