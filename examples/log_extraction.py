"""Information extraction from a compressed server log.

The scenario the paper's introduction motivates: a large, highly
repetitive text (a templated log) is stored compressed; extraction queries
run directly on the grammar, never materialising the log.

Run with::

    python examples/log_extraction.py
"""

import time

from repro import CompressedSpannerEvaluator, repair_slp
from repro.baselines import UncompressedEvaluator
from repro.workloads import key_value_spanner, pair_spanner, server_log


def main() -> None:
    # --- the data: a templated log, compressed once with Re-Pair ---------
    log = server_log(num_lines=3000, seed=42)
    t0 = time.perf_counter()
    slp = repair_slp(log)
    compress_time = time.perf_counter() - t0
    print(f"log       : {len(log):,} chars, {log.count(chr(10)):,} lines")
    print(
        f"compressed: grammar size {slp.size:,} "
        f"(ratio {len(log) / slp.size:.1f}x, built in {compress_time:.2f}s)"
    )

    # --- query 1: all user names ----------------------------------------
    spanner = key_value_spanner("user")
    evaluator = CompressedSpannerEvaluator(spanner, slp)

    t0 = time.perf_counter()
    users = {}
    for tup in evaluator.enumerate():
        name = tup["value"].value(log)  # decode against the original text
        users[name] = users.get(name, 0) + 1
    compressed_time = time.perf_counter() - t0
    print(f"\nuser extraction (compressed, {compressed_time * 1e3:.1f} ms):")
    for name, count in sorted(users.items()):
        print(f"  {name:8s} {count:5d} lines")

    # --- the same query via decompress-and-solve ------------------------
    t0 = time.perf_counter()
    baseline = UncompressedEvaluator(spanner, log)
    baseline_result = baseline.evaluate()
    baseline_time = time.perf_counter() - t0
    print(
        f"\nbaseline (uncompressed) finds {len(baseline_result)} tuples "
        f"in {baseline_time * 1e3:.1f} ms"
    )
    assert len(baseline_result) == sum(users.values())

    # --- query 2: joint (user, action) extraction ------------------------
    joint = CompressedSpannerEvaluator(pair_spanner(), slp)
    pairs = {}
    for tup in joint.enumerate():
        key = (tup["user"].value(log), tup["action"].value(log))
        pairs[key] = pairs.get(key, 0) + 1
    top = sorted(pairs.items(), key=lambda kv: -kv[1])[:5]
    print("\ntop (user, action) pairs:")
    for (user, action), count in top:
        print(f"  {user:8s} {action:8s} {count:5d}")


if __name__ == "__main__":
    main()
