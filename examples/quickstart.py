"""Quickstart: the four evaluation tasks on a compressed document.

Run with::

    python examples/quickstart.py
"""

from repro import CompressedSpannerEvaluator, bisection_slp, compile_spanner
from repro.spanner.spans import Span, SpanTuple


def main() -> None:
    # 1. A document and its SLP-compressed representation.  Real systems
    #    would receive the grammar directly (e.g. converted from LZ data);
    #    here we compress a small string for demonstration.
    document = "abccabccabccaab"
    slp = bisection_slp(document)
    print(f"document  : {document!r}  (d = {len(document)})")
    print(f"grammar   : size {slp.size}, depth {slp.depth()}")

    # 2. A regular spanner: mark an 'a' that is directly followed by 'bcc',
    #    capturing the 'bcc' block in y.
    spanner = compile_spanner(r".*(?P<x>a)(?P<y>bcc).*", alphabet="abc")
    print(f"spanner   : {spanner}")

    evaluator = CompressedSpannerEvaluator(spanner, slp)

    # 3. Non-emptiness (Theorem 5.1.1): any results at all?
    print(f"\nnon-empty : {evaluator.is_nonempty()}")

    # 4. Model checking (Theorem 5.1.2): is this specific tuple a result?
    candidate = SpanTuple({"x": Span(1, 2), "y": Span(2, 5)})
    print(f"t ∈ ⟦M⟧(D): {evaluator.model_check(candidate)}  for t = {candidate}")

    # 5. Computation (Theorem 7.1): the whole relation.
    relation = evaluator.evaluate()
    print(f"\nall {len(relation)} results:")
    for tup in sorted(relation, key=lambda t: t["x"]):
        extracted = tup.extract(document)
        print(f"  {tup}   extracts {extracted}")

    # 6. Enumeration (Theorem 8.10): stream results with bounded delay —
    #    the consumer can stop at any time without paying for the rest.
    print("\nstreamed:")
    for k, tup in enumerate(evaluator.enumerate()):
        print(f"  #{k + 1}: {tup}")
        if k == 1:
            print("  ... (stopped early; no cost for the remaining results)")
            break


if __name__ == "__main__":
    main()
