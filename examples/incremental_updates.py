"""Updates, ranked access and spanner algebra on compressed documents.

Three capabilities layered on top of the paper's machinery:

1. **document updates** (`repro.slp.edits`) — edit a compressed document in
   O(log² d) new rules and re-evaluate (the paper's concluding open problem,
   solved on the document side);
2. **counting + ranked access** (`repro.core.counting`) — |⟦M⟧(D)| without
   enumeration and O(log d) random access by rank;
3. **spanner algebra** (`repro.spanner.algebra`) — union / projection /
   natural join composed *before* evaluation, so the combined query still
   runs on the grammar.

Run with::

    python examples/incremental_updates.py
"""

import time

from repro import CompressedSpannerEvaluator, compile_spanner
from repro.slp.edits import SlpEditor
from repro.slp.families import power_slp
from repro.spanner.algebra import join_spanners, project_spanner, union_spanners


def main() -> None:
    # ------------------------------------------------------------------
    # 1. updates: patch a 2-billion-symbol document, re-run the query
    # ------------------------------------------------------------------
    slp = power_slp("ab", 30)  # (ab)^(2^30): d = 2^31
    spanner = compile_spanner(r"(a|b)*(?P<x>aa)(a|b)*", alphabet="ab")
    print(f"document: (ab)^(2^30), d = {slp.length():,}")

    before = CompressedSpannerEvaluator(spanner, slp)
    print(f"matches of 'aa' before edit: {before.count()}")

    editor = SlpEditor(slp)
    flip = slp.length() // 2 + 1  # an odd 0-based index: holds a 'b'
    t0 = time.perf_counter()
    editor.replace(flip, flip + 1, "a")
    edited = editor.to_slp()
    print(
        f"flipped D[{flip}] from 'b' to 'a' in {(time.perf_counter() - t0) * 1e3:.2f} ms "
        f"(grammar size {slp.size} -> {edited.size})"
    )

    after = CompressedSpannerEvaluator(spanner, edited)
    print(f"matches of 'aa' after edit : {after.count()}")

    # ... or keep an IncrementalSpannerIndex, which re-counts in O(q³ log d)
    # per edit instead of re-preprocessing the whole grammar:
    from repro.core.incremental import IncrementalSpannerIndex

    index = IncrementalSpannerIndex(spanner, slp)
    index.count()  # warm
    t0 = time.perf_counter()
    for k in range(50):
        index.replace(flip + 2 * k, flip + 2 * k + 1, "a")
    live_count = index.count()
    print(
        f"50 further edits tracked incrementally in "
        f"{(time.perf_counter() - t0) * 1e3:.1f} ms; live count = {live_count}"
    )

    # ------------------------------------------------------------------
    # 2. counting + ranked access into an astronomically large relation
    # ------------------------------------------------------------------
    ab_query = compile_spanner(r"(a|b)*(?P<x>ab)(a|b)*", alphabet="ab")
    big = CompressedSpannerEvaluator(ab_query, power_slp("ab", 40))
    t0 = time.perf_counter()
    total = big.count()
    print(f"\n|⟦M⟧(D)| on d = 2^41: {total:,} (counted in "
          f"{(time.perf_counter() - t0) * 1e3:.2f} ms, no enumeration)")
    ranked = big.ranked()
    for rank in (0, total // 2, total - 1):
        print(f"  result #{rank:>15,}: {ranked.select_tuple(rank)}")

    # ------------------------------------------------------------------
    # 3. algebra: compose queries, evaluate the composition compressed
    # ------------------------------------------------------------------
    first = compile_spanner(r".*(?P<x>a)(?P<y>b).*", alphabet="ab")
    second = compile_spanner(r".*(?P<y>b)(?P<z>a).*", alphabet="ab")
    joined = join_spanners(first, second)               # x, y, z chained
    final = project_spanner(joined, ["x", "z"])          # keep the endpoints
    either = union_spanners(first, second)
    print(f"\njoin:      {joined}")
    print(f"projected: {final}")

    doc_slp = power_slp("ab", 4)  # (ab)^16
    ev = CompressedSpannerEvaluator(final, doc_slp)
    results = sorted(ev.evaluate(), key=lambda t: t["x"])
    print(f"π_x,z(A ⋈ B) on (ab)^16: {len(results)} tuples; first three:")
    for tup in results[:3]:
        print(f"  {tup}")
    print(f"A ∪ B has {CompressedSpannerEvaluator(either, doc_slp).count()} tuples")


if __name__ == "__main__":
    main()
