"""Spanner evaluation on documents that could never be decompressed.

The headline capability of the paper: with an SLP of a few dozen rules
representing a document of ~10^12 symbols, all four evaluation tasks run
in milliseconds.  A decompress-and-solve baseline would need terabytes of
memory before it could even start.

The second act scales *out*: a corpus of such documents is embarrassingly
parallel once the automaton is prepared, so ``parallel_corpus`` shards
the corpus across worker processes — each hydrating its own engine —
and counts the full relation of every member, in input order.

Run with::

    python examples/terabyte_scale.py
"""

import itertools
import tempfile
import time

from repro import CompressedSpannerEvaluator, compile_spanner, parallel_corpus
from repro.parallel import spill_corpus
from repro.slp.families import power_slp
from repro.spanner.spans import Span, SpanTuple


def timed(label, fn):
    t0 = time.perf_counter()
    result = fn()
    print(f"  {label:<34s} {(time.perf_counter() - t0) * 1e3:8.2f} ms   -> {result}")
    return result


def main() -> None:
    slp = power_slp("ab", 40)  # (ab)^(2^40): d = 2^41 ≈ 2.2 * 10^12 symbols
    print(f"document  : (ab)^(2^40), d = {slp.length():,} symbols (~2.2 TB as text)")
    print(f"grammar   : {slp.size} rules, depth {slp.depth()}")

    spanner = compile_spanner(r"(a|b)*(?P<x>ba)(a|b)*", alphabet="ab")
    evaluator = CompressedSpannerEvaluator(spanner, slp)
    middle = slp.length() // 2  # an even position: 'ba' starts at even offsets

    print("\nall four tasks, directly on the grammar:")
    timed("non-emptiness (Thm 5.1.1)", evaluator.is_nonempty)
    timed(
        "model check mid-document (Thm 5.1.2)",
        lambda: evaluator.model_check(SpanTuple({"x": Span(middle, middle + 2)})),
    )
    timed(
        "model check (false instance)",
        lambda: evaluator.model_check(SpanTuple({"x": Span(middle + 1, middle + 3)})),
    )
    first = timed(
        "enumerate first 3 of ~10^12 results",
        lambda: list(itertools.islice(evaluator.enumerate(), 3)),
    )
    assert len(first) == 3

    print(
        "\n(The relation has about 10^12 tuples; streaming lets a consumer"
        "\n take exactly as many as it wants, each within the delay bound.)"
    )

    # -- a corpus of terabyte-scale documents, sharded across processes --
    corpus = [power_slp("ab", n) for n in range(34, 40)]  # ~10^10..10^12 symbols
    total = sum(slp.length() for slp in corpus)
    print(
        f"\ncorpus    : {len(corpus)} documents, {total:,} symbols combined"
        f" (~{total / 5e11:.0f} TB as text)"
    )
    with tempfile.TemporaryDirectory() as spool:
        # workers receive grammar *paths* (repro-slpb), never pickled SLPs
        paths = spill_corpus(corpus, spool)
        counts = timed(
            "count all relations (2 workers)",
            lambda: parallel_corpus(
                spanner, paths, task="count", jobs=2, timeout=300
            ),
        )
    assert counts == [slp.length() // 2 - 1 for slp in corpus]
    print(
        "(Each count is ~half the document length - computed per shard in a"
        "\n worker process from the grammar alone, results in corpus order.)"
    )


if __name__ == "__main__":
    main()
