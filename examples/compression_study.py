"""Compare grammar compressors and demonstrate balancing.

Reproduces the compressibility premise of the paper's Sec. 1.1/4.2 on four
document families, and shows the effect of the (substituted) Balancing
Theorem 4.3 on a maximally unbalanced grammar.

Run with::

    python examples/compression_study.py
"""

from repro.bench.harness import Table
from repro.slp.balance import balance, depth_bound
from repro.slp.derive import text
from repro.slp.families import caterpillar_slp, fibonacci_slp, thue_morse_slp
from repro.slp.stats import compression_report
from repro.workloads import block_text, dna, random_text, server_log


def main() -> None:
    documents = {
        "server_log(800)": server_log(800, seed=1),
        "dna(16k, repeats)": dna(16_384, seed=1, repeat_bias=0.92),
        "block_text(16k, 4 blocks)": block_text(16_384, 4, seed=1),
        "random(16k)": random_text(16_384, "ab", seed=1),
    }

    table = Table(
        "grammar compressors: size(S) per document (d = |D|)",
        ["document", "d", "balanced", "bisection", "repair", "lz"],
    )
    for name, doc in documents.items():
        report = compression_report(doc)
        table.add(
            name,
            len(doc),
            report["balanced"]["size"],
            report["bisection"]["size"],
            report["repair"]["size"],
            report["lz"]["size"],
        )
    print(table)

    # --- directly-constructed families: no compressor needed -------------
    fib = fibonacci_slp(40)
    tm = thue_morse_slp(30)
    table2 = Table(
        "self-similar families (grammar given, never materialised)",
        ["family", "d", "size", "depth"],
    )
    table2.add("Fibonacci word F_40", fib.length(), fib.size, fib.depth())
    table2.add("Thue-Morse 2^30", tm.length(), tm.size, tm.depth())
    print(table2)

    # --- balancing (Theorem 4.3, substituted per DESIGN.md §3) -----------
    deep = caterpillar_slp(5000)
    flat = balance(deep)
    table3 = Table(
        "balancing a caterpillar grammar (d = 5002)",
        ["grammar", "size", "depth", "depth bound"],
    )
    table3.add("caterpillar", deep.size, deep.depth(), "-")
    table3.add("balanced", flat.size, flat.depth(), depth_bound(flat.length()))
    print(table3)
    assert text(flat) == text(deep)
    print("balanced grammar derives the identical document: OK")


if __name__ == "__main__":
    main()
