"""Regenerate every experiment table (E1–E9) in one run.

This is the harness whose output is recorded in ``EXPERIMENTS.md``.  Each
``e*()`` function sweeps the workload of one experiment from ``DESIGN.md``
§4 and prints a paper-style table; absolute numbers are machine-dependent,
the *shape* (who wins, growth rates, crossovers) is what reproduces the
paper's claims.

Run with::

    python benchmarks/run_all.py            # full sweep (~2-4 minutes)
    python benchmarks/run_all.py --quick    # reduced sweep
    python benchmarks/run_all.py --quick --json BENCH_PR4.json  # + artifact

``--json`` additionally writes every table (plus per-experiment wall
times and environment metadata) as one machine-readable trajectory
artifact — CI uploads a ``BENCH_<pr>.json`` per run, seeding the bench
history that future PRs diff against.
"""

from __future__ import annotations

import argparse
import json
import math
import platform
import sys
import time

from repro.baselines.uncompressed import UncompressedEvaluator
from repro.bench.harness import Table, measure_enumeration, time_call
from repro.core.evaluator import CompressedSpannerEvaluator
from repro.core.membership import slp_in_language
from repro.core.model_checking import model_check
from repro.core.nonemptiness import project_to_sigma
from repro.slp.balance import balance
from repro.slp.construct import bisection_slp
from repro.slp.derive import text
from repro.slp.families import caterpillar_slp, fibonacci_slp, power_slp, thue_morse_slp
from repro.slp.lz import lz_slp
from repro.slp.repair import repair_slp
from repro.slp.stats import slp_stats
from repro.spanner.automaton import NFABuilder
from repro.spanner.regex import compile_spanner
from repro.spanner.spans import Span, SpanTuple
from repro.workloads.documents import block_text, dna, server_log
from repro.workloads.queries import marker_spanner

AB_QUERY = r"(a|b)*(?P<x>ab)(a|b)*"


def ab_spanner():
    return compile_spanner(AB_QUERY, alphabet="ab")


# ----------------------------------------------------------------------


def e1_nonemptiness(quick: bool) -> Table:
    """Thm 5.1.1: compressed O(s) vs baseline O(d)."""
    table = Table(
        "E1  non-emptiness (Thm 5.1.1): compressed O(s) vs decompress-and-solve O(d)",
        ["n", "d = 2^(n+1)", "size(S)", "compressed", "baseline", "speedup"],
    )
    spanner = ab_spanner()
    projected = project_to_sigma(spanner)
    ns = [8, 10, 12, 14, 16] if quick else [8, 10, 12, 14, 16, 18]
    for n in ns:
        slp = power_slp("ab", n)
        _, t_comp = time_call(slp_in_language, slp, projected, repeat=5)
        doc = text(slp)
        baseline = UncompressedEvaluator(spanner, doc)
        _, t_base = time_call(baseline.is_nonempty)
        table.add(n, slp.length(), slp.size, f"{t_comp * 1e3:.3f} ms",
                  f"{t_base * 1e3:.2f} ms", f"{t_base / t_comp:.0f}x")
    # beyond the baseline's reach
    for n in ([24] if quick else [24, 32, 40]):
        slp = power_slp("ab", n)
        _, t_comp = time_call(slp_in_language, slp, projected, repeat=5)
        table.add(n, slp.length(), slp.size, f"{t_comp * 1e3:.3f} ms",
                  "(out of memory)", "-")
    return table


def e2_model_checking(quick: bool) -> Table:
    """Thm 5.1.2: O((s + |X| depth) q^3), flat in d."""
    table = Table(
        "E2  model checking (Thm 5.1.2): time vs document size (should stay flat)",
        ["n", "d", "size(S)", "depth(S)", "true instance", "false instance"],
    )
    spanner = ab_spanner()
    ns = [10, 16, 22] if quick else [10, 14, 18, 22, 26, 30]
    for n in ns:
        slp = power_slp("ab", n)
        good = SpanTuple({"x": Span(2**n - 1, 2**n + 1)})
        bad = SpanTuple({"x": Span(2**n, 2**n + 2)})
        _, t_good = time_call(model_check, slp, spanner, good, repeat=3)
        _, t_bad = time_call(model_check, slp, spanner, bad, repeat=3)
        table.add(n, slp.length(), slp.size, slp.depth(),
                  f"{t_good * 1e3:.3f} ms", f"{t_bad * 1e3:.3f} ms")
    return table


def _cycle_automaton(q: int):
    builder = NFABuilder()
    states = [builder.state() for _ in range(q)]
    builder.set_start(states[0])
    for idx, state in enumerate(states):
        builder.arc(state, "a", states[(idx + 1) % q])
    builder.accept(states[0])
    return builder.build()


def e3_membership(quick: bool) -> Table:
    """Lemma 4.5: scaling in q at fixed s, and in s at fixed q."""
    table = Table(
        "E3  compressed membership (Lemma 4.5): time vs automaton states q",
        ["q", "size(S)", "d", "time", "time/prev"],
    )
    slp = power_slp("a", 20)
    prev = None
    qs = [4, 8, 16, 32] if quick else [4, 8, 16, 32, 64, 128]
    for q in qs:
        nfa = _cycle_automaton(q)
        _, t = time_call(slp_in_language, slp, nfa, repeat=3)
        table.add(q, slp.size, slp.length(), f"{t * 1e3:.3f} ms",
                  f"{t / prev:.2f}x" if prev else "-")
        prev = t
    return table


def e4_computation(quick: bool) -> Table:
    """Thm 7.1: time linear in the result count r."""
    table = Table(
        "E4  computation (Thm 7.1): time vs result count r (fixed query)",
        ["r", "d", "size(S)", "time", "time/r"],
    )
    spanner = marker_spanner("c", alphabet="abc")
    rs = [4, 16, 64] if quick else [4, 16, 64, 256, 512]
    for r in rs:
        doc = ("ab" * 64 + "c") * r
        slp = repair_slp(doc)
        evaluator = CompressedSpannerEvaluator(spanner, slp)
        result, t = time_call(evaluator.evaluate)
        assert len(result) == r
        table.add(r, len(doc), slp.size, f"{t * 1e3:.2f} ms",
                  f"{t / r * 1e6:.1f} µs")
    return table


def e5_enumeration_preprocessing(quick: bool) -> Table:
    """Thm 8.10 preprocessing: O(s q^3) vs baseline O(d)."""
    table = Table(
        "E5  enumeration preprocessing (Thm 8.10): time to first result",
        ["n", "d", "compressed prep+first", "baseline prep+first"],
    )
    spanner = ab_spanner()
    ns = [8, 12, 16] if quick else [8, 12, 16, 20, 24]
    for n in ns:
        slp = power_slp("ab", n)

        def compressed():
            ev = CompressedSpannerEvaluator(spanner, slp)
            return ev.enumerate()

        profile = measure_enumeration(compressed, max_results=1, probe=False)
        t_comp = profile.preprocessing + profile.first_result
        if n <= 16:
            doc = text(slp)

            def baseline():
                ev = UncompressedEvaluator(spanner, doc)
                return ev.enumerate()

            base_profile = measure_enumeration(baseline, max_results=1, probe=False)
            t_base = f"{(base_profile.preprocessing + base_profile.first_result) * 1e3:.2f} ms"
        else:
            t_base = "(skipped: O(d))"
        table.add(n, slp.length(), f"{t_comp * 1e3:.2f} ms", t_base)
    return table


def e6_delay(quick: bool) -> Table:
    """Thm 8.10 delay: O(|X| depth(S)); log d when balanced."""
    table = Table(
        "E6  enumeration delay (Thm 8.10): per-result delay profiles (200 results)",
        ["grammar", "d", "depth(S)", "first", "mean delay", "max delay"],
    )
    spanner = ab_spanner()
    ns = [10, 16, 22] if quick else [10, 16, 22, 28]
    for n in ns:
        slp = power_slp("ab", n)
        ev = CompressedSpannerEvaluator(spanner, slp)
        ev.preprocessing(deterministic=True)
        profile = measure_enumeration(ev.enumerate, max_results=200)
        table.add(f"balanced 2^{n + 1}", slp.length(), slp.depth(),
                  f"{profile.first_result * 1e6:.0f} µs",
                  f"{profile.mean_delay * 1e6:.1f} µs",
                  f"{profile.max_delay * 1e6:.0f} µs")
    depths = [200, 1600] if quick else [200, 1600, 12800]
    for depth in depths:
        slp = caterpillar_slp(depth)
        ev = CompressedSpannerEvaluator(spanner, slp, balance=False)
        ev.preprocessing(deterministic=True)
        profile = measure_enumeration(ev.enumerate, max_results=200)
        table.add(f"caterpillar {depth}", slp.length(), slp.depth(),
                  f"{profile.first_result * 1e6:.0f} µs",
                  f"{profile.mean_delay * 1e6:.1f} µs",
                  f"{profile.max_delay * 1e6:.0f} µs")
        flat = balance(slp)
        ev = CompressedSpannerEvaluator(spanner, flat, balance=False)
        ev.preprocessing(deterministic=True)
        profile = measure_enumeration(ev.enumerate, max_results=200)
        table.add(f"  ...balanced", flat.length(), flat.depth(),
                  f"{profile.first_result * 1e6:.0f} µs",
                  f"{profile.mean_delay * 1e6:.1f} µs",
                  f"{profile.max_delay * 1e6:.0f} µs")
    return table


def e7_balancing(quick: bool) -> Table:
    """Thm 4.3 substitute: depth -> O(log d), size cost, rebuild time."""
    table = Table(
        "E7  balancing (Thm 4.3, AVL substitute): caterpillar grammars",
        ["n", "size before", "depth before", "size after", "depth after",
         "1.44·log2(d)", "time"],
    )
    ns = [256, 1024, 4096] if quick else [256, 1024, 4096, 16384]
    for n in ns:
        slp = caterpillar_slp(n)
        flat, t = time_call(balance, slp)
        table.add(n, slp.size, slp.depth(), flat.size, flat.depth(),
                  f"{1.44 * math.log2(slp.length()):.1f}",
                  f"{t * 1e3:.1f} ms")
    return table


def e8_compression(quick: bool) -> Table:
    """Sec 1.1/4.2: size(S) across families and compressors."""
    table = Table(
        "E8  compression: grammar sizes across document families",
        ["document", "d", "bisection", "repair", "lz", "best ratio"],
    )
    size = 4096 if quick else 16384
    documents = {
        "server_log": server_log(size // 40, seed=1),
        "dna (repeats)": dna(size, seed=1, repeat_bias=0.92),
        "block_text(4)": block_text(size, 4, seed=1),
        "block_text(256)": block_text(size, 256, seed=1),
        "random": block_text(size, size, block_length=1, seed=1),
    }
    for name, doc in documents.items():
        sizes = {
            "bisection": bisection_slp(doc).size,
            "repair": repair_slp(doc).size,
            "lz": lz_slp(doc).size,
        }
        best = min(sizes.values())
        table.add(name, len(doc), sizes["bisection"], sizes["repair"],
                  sizes["lz"], f"{len(doc) / best:.1f}x")
    # directly-constructed families: the exponential regime
    for name, slp in (
        ("(ab)^2^20", power_slp("ab", 20)),
        ("Fibonacci F_40", fibonacci_slp(40)),
        ("Thue-Morse 2^30", thue_morse_slp(30)),
    ):
        stats = slp_stats(slp)
        table.add(name, stats["length"], "-", "-", stats["size"],
                  f"{stats['ratio']:.3g}x")
    return table


def e9_crossover(quick: bool) -> Table:
    """Sec 1.3: compressed vs baseline end-to-end as compressibility varies."""
    table = Table(
        "E9  crossover: end-to-end query time at fixed d, varying compressibility",
        ["distinct blocks", "size(S)", "r", "compressed", "baseline", "winner"],
    )
    length = 8192 if quick else 16384
    spanner = compile_spanner(r"(a|b)*(?P<x>abba)(a|b)*", alphabet="ab")
    blocks_sweep = [2, 32, 512] if quick else [2, 8, 32, 128, 512, 2048]
    for blocks in blocks_sweep:
        doc = block_text(length, blocks, block_length=32, seed=13)
        slp = repair_slp(doc)

        def compressed():
            ev = CompressedSpannerEvaluator(spanner, slp)
            return sum(1 for _ in ev.enumerate())

        def baseline():
            ev = UncompressedEvaluator(spanner, doc)
            return sum(1 for _ in ev.enumerate())

        r, t_comp = time_call(compressed)
        _, t_base = time_call(baseline)
        winner = "compressed" if t_comp < t_base else "baseline"
        table.add(blocks, slp.size, r, f"{t_comp * 1e3:.1f} ms",
                  f"{t_base * 1e3:.1f} ms", winner)
    return table


def e10_counting(quick: bool) -> Table:
    """Extension: counting/ranked access vs enumeration (ablation)."""
    from repro.core.counting import CountingTables, RankedAccess

    table = Table(
        "E10 counting & ranked access (extension): vs full enumeration",
        ["r = |result|", "count (tables)", "count (enumerate)", "select rank r/2"],
    )
    spanner = ab_spanner()
    ns = [10, 14, 30] if quick else [10, 14, 18, 30, 40]
    for n in ns:
        slp = power_slp("ab", n)
        ev = CompressedSpannerEvaluator(spanner, slp)
        prep = ev.preprocessing(deterministic=True)
        _, t_tables = time_call(lambda: CountingTables(prep).total(), repeat=3)
        if n <= 18:
            _, t_enum = time_call(lambda: sum(1 for _ in ev.enumerate_raw()))
            enum_txt = f"{t_enum * 1e3:.1f} ms"
        else:
            enum_txt = "(infeasible: O(r))"
        ra = RankedAccess(prep)
        _, t_select = time_call(ra.select, ra.total // 2, repeat=3)
        table.add(2**n, f"{t_tables * 1e3:.3f} ms", enum_txt,
                  f"{t_select * 1e6:.1f} µs")
    return table


def e11_incremental(quick: bool) -> Table:
    """Extension: point edit + exact recount vs full re-evaluation."""
    from repro.core.incremental import IncrementalSpannerIndex

    table = Table(
        "E11 incremental updates (extension): edit + recount latency",
        ["n", "d", "incremental edit+count", "full re-evaluation", "speedup"],
    )
    spanner = ab_spanner()
    ns = [12, 20] if quick else [12, 20, 28]
    for n in ns:
        index = IncrementalSpannerIndex(spanner, power_slp("ab", n))
        index.count()

        position = [0]

        def incremental():
            position[0] += 7
            index.replace(position[0] % (2**n), position[0] % (2**n) + 1, "a")
            return index.count()

        def from_scratch():
            position[0] += 7
            index.replace(position[0] % (2**n), position[0] % (2**n) + 1, "a")
            ev = CompressedSpannerEvaluator(spanner, index.snapshot(), balance=False)
            return ev.count()

        _, t_inc = time_call(incremental, repeat=5)
        _, t_full = time_call(from_scratch, repeat=3)
        table.add(n, 2 ** (n + 1), f"{t_inc * 1e3:.3f} ms",
                  f"{t_full * 1e3:.2f} ms", f"{t_full / t_inc:.1f}x")
    return table


EXPERIMENTS = {
    "E1": e1_nonemptiness,
    "E2": e2_model_checking,
    "E3": e3_membership,
    "E4": e4_computation,
    "E5": e5_enumeration_preprocessing,
    "E6": e6_delay,
    "E7": e7_balancing,
    "E8": e8_compression,
    "E9": e9_crossover,
    "E10": e10_counting,
    "E11": e11_incremental,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="reduced sweeps")
    parser.add_argument("--only", nargs="*", choices=sorted(EXPERIMENTS),
                        help="run a subset of experiments")
    parser.add_argument("--json", metavar="PATH",
                        help="also write the tables + timings as a JSON "
                        "trajectory artifact (e.g. BENCH_PR4.json)")
    args = parser.parse_args(argv)
    chosen = args.only if args.only else sorted(EXPERIMENTS)
    total_start = time.perf_counter()
    print("# Spanner evaluation over SLP-compressed documents — experiment sweep\n")
    records = {}
    for key in chosen:
        start = time.perf_counter()
        table = EXPERIMENTS[key](args.quick)
        seconds = time.perf_counter() - start
        print(table.render())
        print(f"[{key} took {seconds:.1f}s]\n")
        records[key] = dict(table.as_dict(), seconds=round(seconds, 3))
    total = time.perf_counter() - total_start
    print(f"Total: {total:.1f}s")
    if args.json:
        from repro.core.kernels import default_kernel_name

        payload = {
            "schema": "repro-bench-trajectory/1",
            "quick": bool(args.quick),
            "python": platform.python_version(),
            "platform": platform.platform(),
            "kernel": default_kernel_name(),
            "experiments": records,
            "total_seconds": round(total, 3),
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
