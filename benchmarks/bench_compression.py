"""E8 — Sec. 1.1 / 4.2: the compressibility premise.

The paper's pitch rests on textual data compressing well into SLPs
(`s ≪ d`), with `log d ≤ size(S)` as the theoretical floor.  These targets
time the three compressors on realistic documents; run_all reports the
achieved sizes/ratios per document family.
"""

import pytest

from repro.slp.construct import bisection_slp
from repro.slp.lz import lz_slp
from repro.slp.repair import repair_slp
from repro.workloads.documents import dna, server_log


@pytest.fixture(scope="module")
def log_doc():
    return server_log(500, seed=0)


@pytest.fixture(scope="module")
def dna_doc():
    return dna(20_000, seed=0, repeat_bias=0.9)


def test_repair_on_log(benchmark, log_doc):
    slp = benchmark(repair_slp, log_doc)
    assert slp.size < len(log_doc)


def test_lz_on_log(benchmark, log_doc):
    slp = benchmark(lz_slp, log_doc)
    assert slp.size < len(log_doc)


def test_bisection_on_log(benchmark, log_doc):
    slp = benchmark(bisection_slp, log_doc)
    assert slp.length() == len(log_doc)


def test_repair_on_dna(benchmark, dna_doc):
    slp = benchmark(repair_slp, dna_doc)
    assert slp.size < len(dna_doc)


def test_lz_on_dna(benchmark, dna_doc):
    slp = benchmark(lz_slp, dna_doc)
    assert slp.size < len(dna_doc)
