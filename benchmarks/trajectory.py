"""Diff committed bench snapshots: ``BENCH_<n>.json`` across PRs.

``benchmarks/run_all.py --json BENCH_<n>.json`` writes one
machine-readable snapshot (schema ``repro-bench-trajectory/1``) per PR;
this tool compares the latest snapshot against its predecessor,
per-experiment, and warns when wall-clock regressed by more than the
threshold (default 20%).

Usage::

    PYTHONPATH=src python benchmarks/trajectory.py
    python benchmarks/trajectory.py --dir . --threshold 30
    python benchmarks/trajectory.py --fail-on-regress   # exit 1 on regression

Timings are only comparable on one machine: snapshots record python,
platform and kernel, and the diff flags any mismatch so a "regression"
against a snapshot cut on different hardware is read as advisory.
Exit status: 0 clean (or fewer than two snapshots), 1 regression above
threshold with ``--fail-on-regress``, 2 usage error.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import re
import sys
from typing import Any, Dict, List, Optional, Tuple

SCHEMA = "repro-bench-trajectory/1"

_NUMBERED = re.compile(r"BENCH_(\d+)\.json$")


def discover_snapshots(directory: str) -> List[str]:
    """``BENCH_*.json`` paths in ``directory``, oldest first.

    Numbered snapshots (``BENCH_6.json``) sort by their PR number;
    anything else (e.g. sha-named CI artifacts) sorts after them by
    name — the committed per-PR sequence is the trajectory.
    """
    paths = glob.glob(os.path.join(directory, "BENCH_*.json"))

    def key(path: str) -> Tuple[int, int, str]:
        match = _NUMBERED.search(os.path.basename(path))
        if match:
            return (0, int(match.group(1)), path)
        return (1, 0, path)

    return sorted(paths, key=key)


def load_snapshot(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict) or data.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: not a bench snapshot (expected schema {SCHEMA!r}, "
            f"got {data.get('schema')!r})"
        )
    return data


def _seconds(snapshot: Dict[str, Any]) -> Dict[str, float]:
    experiments = snapshot.get("experiments", {})
    out: Dict[str, float] = {}
    if isinstance(experiments, dict):
        for name, payload in experiments.items():
            if isinstance(payload, dict) and isinstance(
                payload.get("seconds"), (int, float)
            ):
                out[str(name)] = float(payload["seconds"])
    return out


def compare(
    previous: Dict[str, Any],
    latest: Dict[str, Any],
    threshold_pct: float,
) -> Tuple[List[str], List[str]]:
    """``(report_lines, regressions)`` for two loaded snapshots."""
    lines: List[str] = []
    regressions: List[str] = []

    for field in ("python", "platform", "kernel", "quick"):
        if previous.get(field) != latest.get(field):
            lines.append(
                f"note: {field} changed ({previous.get(field)!r} -> "
                f"{latest.get(field)!r}) — timing deltas are advisory"
            )

    before = _seconds(previous)
    after = _seconds(latest)
    names = sorted(set(before) | set(after))
    width = max([len("experiment")] + [len(n) for n in names])
    lines.append(f"{'experiment'.ljust(width)}  {'prev':>9}  {'now':>9}  delta")
    for name in names:
        if name not in before:
            lines.append(f"{name.ljust(width)}  {'—':>9}  {after[name]:>8.3f}s  new")
            continue
        if name not in after:
            lines.append(f"{name.ljust(width)}  {before[name]:>8.3f}s  {'—':>9}  removed")
            continue
        old, new = before[name], after[name]
        delta_pct = ((new - old) / old * 100.0) if old > 0 else 0.0
        marker = ""
        if delta_pct > threshold_pct:
            marker = f"  <-- REGRESSION (> {threshold_pct:g}%)"
            regressions.append(f"{name}: {old:.3f}s -> {new:.3f}s ({delta_pct:+.1f}%)")
        lines.append(
            f"{name.ljust(width)}  {old:>8.3f}s  {new:>8.3f}s  {delta_pct:+6.1f}%{marker}"
        )

    old_total = previous.get("total_seconds")
    new_total = latest.get("total_seconds")
    if isinstance(old_total, (int, float)) and isinstance(new_total, (int, float)):
        total_pct = ((new_total - old_total) / old_total * 100.0) if old_total else 0.0
        lines.append(
            f"{'TOTAL'.ljust(width)}  {old_total:>8.3f}s  {new_total:>8.3f}s  "
            f"{total_pct:+6.1f}%"
        )
    return lines, regressions


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="diff the two most recent BENCH_*.json snapshots"
    )
    parser.add_argument(
        "--dir",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        help="directory holding BENCH_*.json (default: the repo root)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=20.0,
        help="regression warning threshold in percent (default: 20)",
    )
    parser.add_argument(
        "--fail-on-regress",
        action="store_true",
        help="exit 1 when any experiment regressed above the threshold",
    )
    args = parser.parse_args(argv)

    snapshots = discover_snapshots(args.dir)
    if not snapshots:
        print(f"no BENCH_*.json snapshots under {args.dir} — nothing to diff")
        return 0
    if len(snapshots) == 1:
        print(f"single snapshot {os.path.basename(snapshots[0])} — baseline only")
        return 0

    latest_path = snapshots[-1]
    try:
        latest = load_snapshot(latest_path)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"trajectory: {exc}", file=sys.stderr)
        return 2

    # The committed history may have gaps (a PR that cut no snapshot) or
    # stale/corrupt files; walk backwards to the nearest *loadable*
    # predecessor instead of failing the whole diff on one bad file.
    previous: Optional[Dict[str, Any]] = None
    prev_path = ""
    for candidate in reversed(snapshots[:-1]):
        try:
            previous = load_snapshot(candidate)
            prev_path = candidate
            break
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(
                f"trajectory: skipping unreadable snapshot "
                f"{os.path.basename(candidate)}: {exc}",
                file=sys.stderr,
            )
    if previous is None:
        print(
            f"single loadable snapshot {os.path.basename(latest_path)} — "
            f"baseline only"
        )
        return 0

    print(
        f"bench trajectory: {os.path.basename(prev_path)} -> "
        f"{os.path.basename(latest_path)}"
    )
    lines, regressions = compare(previous, latest, args.threshold)
    for line in lines:
        print(line)
    if regressions:
        print(f"\nWARNING: {len(regressions)} experiment(s) regressed > "
              f"{args.threshold:g}%:")
        for item in regressions:
            print(f"  {item}")
        if args.fail_on_regress:
            return 1
    else:
        print(f"\nno regressions above {args.threshold:g}%")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
