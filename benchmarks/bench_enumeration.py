"""E5 — Theorem 8.10 (preprocessing): enumeration setup in O(|M| + size(S)·q³).

Paper claim: the preprocessing before the first result is linear in the
*grammar*, not the document — versus O(d) for the uncompressed
constant-delay pipeline.  Expected shape: compressed preprocessing flat-ish
as d explodes; baseline linear in d.
"""

import itertools

import pytest

from repro.baselines.uncompressed import UncompressedEvaluator
from repro.core.evaluator import CompressedSpannerEvaluator


def first_k(evaluator, k: int = 4):
    return list(itertools.islice(evaluator.enumerate(), k))


@pytest.mark.parametrize("n", [8, 14, 20, 26])
def test_compressed_preprocessing_and_first_results(benchmark, n, ab_spanner, power_docs):
    """Build tables + stream the first 4 of up to 2^26 results."""
    slp = power_docs[n]

    def run():
        ev = CompressedSpannerEvaluator(ab_spanner, slp)
        return first_k(ev)

    results = benchmark(run)
    assert len(results) == 4


@pytest.mark.parametrize("n", [8, 12, 16])
def test_baseline_preprocessing_and_first_results(benchmark, n, ab_spanner, power_texts):
    """The O(d) product-DAG build dominates for the baseline."""
    doc = power_texts[n]

    def run():
        ev = UncompressedEvaluator(ab_spanner, doc)
        return list(itertools.islice(ev.enumerate(), 4))

    results = benchmark(run)
    assert len(results) == 4


def test_compressed_full_enumeration_medium(benchmark, ab_spanner, power_docs):
    """Exhaustive enumeration of 2^10 results (throughput measure)."""
    slp = power_docs[10]

    def run():
        ev = CompressedSpannerEvaluator(ab_spanner, slp)
        return sum(1 for _ in ev.enumerate())

    count = benchmark(run)
    assert count == 2**10
