"""E6 — Theorem 8.10 (delay): O(depth(S)·|X|) between consecutive results.

Paper claims:

* after balancing, depth(S) = O(log d), so the delay is O(|X| · log d);
* on an *unbalanced* grammar the delay degrades to O(|X| · depth).

The pytest-benchmark targets time a fixed-size streamed prefix (the delay
aggregate); ``run_all.py`` reports full per-result delay profiles.
Expected shape: balanced delay grows like log d; caterpillar delay grows
linearly with depth; the uncompressed baseline stays constant.
"""

import itertools

import pytest

from repro.slp.balance import balance
from repro.slp.families import caterpillar_slp
from repro.core.evaluator import CompressedSpannerEvaluator
from repro.baselines.uncompressed import UncompressedEvaluator


def stream_k(evaluator, k: int):
    stream = evaluator.enumerate()
    return sum(1 for _ in itertools.islice(stream, k))


@pytest.mark.parametrize("n", [10, 16, 22])
def test_delay_balanced(benchmark, n, ab_spanner, power_docs):
    """200 results from a balanced grammar; delay ~ |X| · log d."""
    ev = CompressedSpannerEvaluator(ab_spanner, power_docs[n])
    ev.preprocessing(deterministic=True)  # exclude setup from the timing
    result = benchmark(stream_k, ev, 200)
    assert result == 200


@pytest.mark.parametrize("depth", [200, 800, 3200])
def test_delay_unbalanced_caterpillar(benchmark, depth, ab_spanner):
    """Same stream on a caterpillar of growing depth (balance=False)."""
    slp = caterpillar_slp(depth)
    ev = CompressedSpannerEvaluator(ab_spanner, slp, balance=False)
    ev.preprocessing(deterministic=True)
    result = benchmark(stream_k, ev, 50)
    assert result == 50


@pytest.mark.parametrize("depth", [3200])
def test_delay_caterpillar_after_balancing(benchmark, depth, ab_spanner):
    """Balancing restores the logarithmic delay on the same document."""
    slp = balance(caterpillar_slp(depth))
    ev = CompressedSpannerEvaluator(ab_spanner, slp, balance=False)
    ev.preprocessing(deterministic=True)
    result = benchmark(stream_k, ev, 50)
    assert result == 50


def test_delay_baseline_constant(benchmark, ab_spanner, power_texts):
    """The uncompressed product-DAG baseline: (near-)constant delay."""
    ev = UncompressedEvaluator(ab_spanner, power_texts[12])
    ev.build()
    result = benchmark(stream_k, ev, 200)
    assert result == 200
