"""Scheduler fairness benchmark: small queries must not wait for batches.

Acceptance gate for the multi-tenant scheduler PR (run explicitly, not
part of tier-1):

* the p50 latency of small queries issued *while a corpus-sized batch
  is running* must be <= 5x their idle p50.  Under the old FIFO fleet a
  small query queued behind the whole batch, so its loaded latency was
  the batch's remaining runtime (tens of shard-times); weighted-fair
  interleaving bounds it by roughly one shard-time instead;
* interleaving must not corrupt anything: the batch and every small
  query return bit-identical results to the serial engine.

Every query uses a *fresh* document (new random content, fixed length)
so each one pays the same cold ``O(size(S) * q^2)`` preprocessing —
idle and loaded latencies then differ only by scheduling delay, which
is exactly what the gate measures.  The batch documents are pairwise
distinct too, so digest affinity cannot collapse the batch into a
single shard.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_scheduler.py -q
"""

import os
import random
import statistics
import tempfile
import threading
import time

from repro.engine import Engine
from repro.engine.spec import SpannerSpec
from repro.service.client import ServiceClient
from repro.service.server import ServiceThread
from repro.session import SessionConfig
from repro.slp import io as slp_io
from repro.slp.construct import balanced_slp

JOBS = 2
DOC_LENGTH = 1_500
BATCH_DOCS = 48
SMALL_QUERIES = 5
RATIO_BOUND = 5.0

#: Rare-match literal extraction (as in bench_service): preprocessing
#: dominates, so every query's cost is its cold table build.
NEEDLE_PATTERN = r"(a|b)*(?P<x>" + "ab" * 15 + r")(a|b)*"

SPEC = SpannerSpec(pattern=NEEDLE_PATTERN, alphabet="ab")


def _short_socket_path() -> str:
    # Not under pytest's tmp_path: AF_UNIX caps sun_path at ~107 bytes.
    return os.path.join(tempfile.mkdtemp(prefix="rsch-bench-"), "s.sock")


def _write_doc(rng: random.Random, path: str) -> str:
    text = "".join(rng.choice("ab") for _ in range(DOC_LENGTH))
    slp_io.save_binary(balanced_slp(text), path)
    return path


def _small_query(client, rng, tmp_path, k):
    """One small query over a brand-new document; returns (latency, ok)."""
    path = _write_doc(rng, str(tmp_path / f"small{k}.slpb"))
    expected = Engine().count(SPEC.resolve(), slp_io.load_binary(path))
    started = time.monotonic()
    got = client.run_grid([path], [SPEC], task="count")
    latency = time.monotonic() - started
    assert got == [expected], f"small query {k} corrupted under load"
    return latency


def test_small_query_p50_under_load_within_5x_idle(tmp_path):
    rng = random.Random(0x5EED)
    batch_paths = [
        _write_doc(rng, str(tmp_path / f"batch{k}.slpb"))
        for k in range(BATCH_DOCS)
    ]
    serial_engine = Engine()
    serial = [
        serial_engine.count(SPEC.resolve(), slp_io.load_binary(p))
        for p in batch_paths
    ]

    socket_path = _short_socket_path()
    config = SessionConfig(
        jobs=JOBS, store_dir=str(tmp_path / "store"), timeout=600
    )
    with ServiceThread(config, socket_path) as svc:
        with ServiceClient(svc.socket_path, timeout=600) as client:
            # warm the daemon-side spanner resolution once, then measure
            # the idle baseline: fresh (cold) docs, empty fleet
            _small_query(client, rng, tmp_path, "warmup")
            idle = [
                _small_query(client, rng, tmp_path, f"idle{k}")
                for k in range(SMALL_QUERIES)
            ]

            batch_result = []
            batch_finished = []

            def run_batch():
                with ServiceClient(svc.socket_path, timeout=600) as tenant:
                    batch_result.extend(
                        tenant.run_grid(batch_paths, [SPEC], task="count")
                    )
                batch_finished.append(time.monotonic())

            batch = threading.Thread(target=run_batch, daemon=True)
            batch.start()
            # wait until the batch is actually occupying the fleet
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if client.ping()["scheduler"]["inflight_shards"] >= JOBS:
                    break
                time.sleep(0.01)
            loaded = []
            last_issued = time.monotonic()
            for k in range(SMALL_QUERIES):
                last_issued = time.monotonic()
                loaded.append(
                    _small_query(client, rng, tmp_path, f"loaded{k}")
                )
            batch.join(600)

    assert batch_result == serial, "batch corrupted by interleaving"
    assert batch_finished and batch_finished[0] > last_issued, (
        "the batch finished before the measured queries were issued; "
        "grow BATCH_DOCS so the load phase overlaps the batch"
    )
    p50_idle = statistics.median(idle)
    p50_loaded = statistics.median(loaded)
    print(
        f"\nscheduler fairness: idle p50 {p50_idle * 1e3:.0f} ms, "
        f"loaded p50 {p50_loaded * 1e3:.0f} ms "
        f"(ratio {p50_loaded / p50_idle:.2f}x, bound {RATIO_BOUND:.0f}x)"
    )
    assert p50_loaded <= RATIO_BOUND * p50_idle, (
        f"small queries degraded {p50_loaded / p50_idle:.1f}x under a "
        f"running batch (p50 idle {p50_idle:.3f}s, loaded {p50_loaded:.3f}s); "
        f"the fairness bound is {RATIO_BOUND:.0f}x"
    )
