"""Shared fixtures for the benchmark suite.

Workloads are built once per session (outside the timed regions) and shared
across benchmark rounds.
"""

from __future__ import annotations

import pytest

from repro.slp.derive import text
from repro.slp.families import power_slp
from repro.spanner.regex import compile_spanner


@pytest.fixture(scope="session")
def ab_spanner():
    """The standard probe query: mark every 'ab' occurrence."""
    return compile_spanner(r"(a|b)*(?P<x>ab)(a|b)*", alphabet="ab")


@pytest.fixture(scope="session")
def power_docs():
    """(ab)^(2^n) documents as SLPs, keyed by n."""
    return {n: power_slp("ab", n) for n in (8, 10, 12, 14, 16, 20, 22, 24, 26, 28, 30)}


@pytest.fixture(scope="session")
def power_texts(power_docs):
    """Decompressed power documents for the baselines (small n only)."""
    return {n: text(power_docs[n]) for n in (8, 10, 12, 14, 16)}
