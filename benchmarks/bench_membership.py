"""E3 — Lemma 4.5: compressed membership scales with q (matrix composition).

Paper claim: membership of an SLP-compressed document in a regular language
costs O(size(S) · q³) — on word-RAM bitsets, O(size(S) · q³ / w).  Expected
shape: for a fixed grammar, time grows polynomially with the number of
automaton states q and not with d.
"""

import pytest

from repro.slp.families import power_slp
from repro.spanner.automaton import NFABuilder
from repro.core.membership import slp_in_language


def cycle_automaton(q: int):
    """A q-state cycle accepting (a^q)*: forces dense q×q matrices."""
    builder = NFABuilder()
    states = [builder.state() for _ in range(q)]
    builder.set_start(states[0])
    for idx, state in enumerate(states):
        builder.arc(state, "a", states[(idx + 1) % q])
    builder.accept(states[0])
    return builder.build()


@pytest.mark.parametrize("q", [4, 8, 16, 32, 64])
def test_membership_vs_states(benchmark, q):
    """Fixed document a^(2^20); automaton states swept 4 → 64."""
    slp = power_slp("a", 20)
    nfa = cycle_automaton(q)
    result = benchmark(slp_in_language, slp, nfa)
    assert result == (2**20 % q == 0)


@pytest.mark.parametrize("n", [10, 20, 30, 40])
def test_membership_vs_document_size(benchmark, n):
    """Fixed automaton; document a^(2^n): time follows size(S) = O(n), not d."""
    slp = power_slp("a", n)
    nfa = cycle_automaton(8)
    result = benchmark(slp_in_language, slp, nfa)
    assert result == (2**n % 8 == 0)
