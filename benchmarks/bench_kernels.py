"""Kernel-backend benchmarks: the acceptance gates of the kernel subsystem.

Gates (run explicitly, not part of tier-1; the numpy gates skip cleanly
when numpy is absent — the import-path gate runs everywhere):

* cold Lemma 6.5 preprocessing with the ``numpy`` kernel must be >= 3x
  faster than the ``python`` kernel at ``q >= 48`` on a large grammar
  (and produce bit-identical planes);
* a store-backed restore (load + hydrating every I-vector, i.e. what a
  full enumeration descent needs) must be >= 1.5x faster under the numpy
  kernel's zero-copy ``np.frombuffer`` decode than under the reference
  word codec;
* importing :mod:`repro` must never require numpy: with numpy imports
  blocked, ``resolve_kernel(None)`` falls back to the python kernel and
  the engine still evaluates correctly;
* the :func:`repro.core.boolmat.bits_list` byte-table fast path must beat
  the ``iter_bits`` generator on one-word masks (``q <= 64``) and must
  not regress wider masks (``q > 64``), where it falls back.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_kernels.py -q
"""

from __future__ import annotations

import random
import subprocess
import sys
import textwrap

import pytest

from repro.bench.harness import time_call
from repro.core.boolmat import bits_list, iter_bits
from repro.core.kernels import numpy_available, resolve_kernel
from repro.core.matrices import Preprocessing
from repro.slp.families import power_slp
from repro.spanner.automaton import NFABuilder
from repro.spanner.transform import pad_slp
from repro.store import PreprocessingStore

#: The gate's automaton size: the ISSUE demands the 3x win at q >= 48.
GATE_Q = 56

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy backend unavailable on this host"
)


def dense_automaton(q: int = GATE_Q):
    """An ε-free q-state automaton over {a, b, #} with real bit-plane work.

    Two targets per character per state, so matrix products densify as
    they compose — the planes are neither empty nor trivially full.
    """
    builder = NFABuilder()
    states = [builder.state() for _ in range(q)]
    builder.set_start(states[0])
    for idx, state in enumerate(states):
        builder.arc(state, "a", states[(2 * idx + 1) % q])
        builder.arc(state, "a", states[(idx + 3) % q])
        builder.arc(state, "b", states[(3 * idx + 2) % q])
        builder.arc(state, "b", states[(5 * idx + 1) % q])
        builder.arc(state, "#", state)
    builder.accept(states[0])
    builder.accept(states[1])
    return builder.build()


@pytest.fixture(scope="module")
def gate_pair():
    """(padded large grammar, q=56 automaton) for the kernel gates."""
    return pad_slp(power_slp("ab", 150)), dense_automaton()


@needs_numpy
def test_numpy_cold_preprocessing_at_least_3x_at_q48(gate_pair):
    """The headline gate: vectorised Lemma 6.5 >= 3x at q >= 48."""
    padded, automaton = gate_pair
    assert automaton.num_states >= 48

    numpy_prep, t_numpy = time_call(
        lambda: Preprocessing(padded, automaton, kernel="numpy"), repeat=3
    )
    python_prep, t_python = time_call(
        lambda: Preprocessing(padded, automaton, kernel="python"), repeat=2
    )
    # bit-identical first: a fast wrong kernel is worthless
    assert numpy_prep.export_planes() == python_prep.export_planes()
    assert t_python >= 3.0 * t_numpy, (
        f"numpy kernel only {t_python / t_numpy:.2f}x faster "
        f"(python {t_python * 1e3:.1f} ms, numpy {t_numpy * 1e3:.1f} ms)"
    )


@needs_numpy
def test_store_restore_at_least_1p5x_via_zero_copy(gate_pair, tmp_path):
    """Restore gate: zero-copy word decode >= 1.5x over the int round-trip."""
    padded, automaton = gate_pair
    store = PreprocessingStore(str(tmp_path))
    prep = Preprocessing(padded, automaton, kernel="python")
    slp_digest = padded.structural_digest()
    auto_digest = automaton.structural_digest()
    store.save(slp_digest, auto_digest, prep)

    def restore(kernel_name):
        restored = store.load(
            slp_digest, auto_digest, padded, automaton, kernel=kernel_name
        )
        assert restored is not None
        restored_prep, _ = restored
        # Hydrate every I-vector — the part a full enumeration descent
        # touches and where the decode strategies actually differ.
        for name in restored_prep.order:
            if not padded.is_leaf(name):
                restored_prep.I[name]
        return restored_prep

    numpy_prep, t_numpy = time_call(lambda: restore("numpy"), repeat=3)
    python_prep, t_python = time_call(lambda: restore("python"), repeat=3)
    # same bits either way (spot-check a few cells of the biggest table)
    name = max(
        (n for n in prep.order if not padded.is_leaf(n)),
        key=lambda n: sum(prep.notbot_row(n, i).bit_count() for i in range(prep.q)),
    )
    for i in range(prep.q):
        assert numpy_prep.notbot_row(name, i) == python_prep.notbot_row(name, i)
        for j in range(prep.q):
            assert numpy_prep.intermediate_mask(
                name, i, j
            ) == python_prep.intermediate_mask(name, i, j)
    assert t_python >= 1.5 * t_numpy, (
        f"zero-copy restore only {t_python / t_numpy:.2f}x faster "
        f"(python {t_python * 1e3:.1f} ms, numpy {t_numpy * 1e3:.1f} ms)"
    )


def test_import_repro_never_requires_numpy():
    """Blocking numpy must leave repro importable with a working fallback."""
    script = textwrap.dedent(
        """
        import builtins
        real_import = builtins.__import__

        def no_numpy(name, *args, **kwargs):
            if name == "numpy" or name.startswith("numpy."):
                raise ImportError("numpy blocked for the import-path gate")
            return real_import(name, *args, **kwargs)

        builtins.__import__ = no_numpy

        import repro
        from repro.core.kernels import available_kernels, resolve_kernel

        kernel = resolve_kernel(None)
        assert kernel.name == "python", kernel.name
        assert available_kernels() == ("python",), available_kernels()

        from repro import Engine, balanced_slp, compile_spanner

        spanner = compile_spanner(r".*(?P<x>ab).*", alphabet="ab")
        assert Engine().count(spanner, balanced_slp("abab")) == 2
        print("fallback ok")
        """
    )
    result = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert "fallback ok" in result.stdout


def test_bits_list_fast_path_and_wide_mask_fallback():
    """Satellite microbench: faster for q <= 64, no regression for q > 64."""
    rng = random.Random(0xB175)
    one_word = [rng.getrandbits(64) | 1 for _ in range(2000)]
    wide = [rng.getrandbits(192) | (1 << 191) for _ in range(2000)]

    for mask in one_word[:200] + wide[:200] + [0, 1, 1 << 63, 1 << 64, (1 << 64) - 1]:
        assert bits_list(mask) == list(iter_bits(mask))

    def run(masks):
        return [bits_list(m) for m in masks]

    def run_generator(masks):
        return [list(iter_bits(m)) for m in masks]

    _, t_fast = time_call(run, one_word, repeat=5)
    _, t_gen = time_call(run_generator, one_word, repeat=5)
    assert t_fast < t_gen, (
        f"bits_list fast path not faster: {t_fast * 1e3:.2f} ms vs "
        f"generator {t_gen * 1e3:.2f} ms"
    )

    _, t_fast_wide = time_call(run, wide, repeat=5)
    _, t_gen_wide = time_call(run_generator, wide, repeat=5)
    # the wide path *is* iter_bits plus one range check: allow only noise
    assert t_fast_wide <= 1.5 * t_gen_wide, (
        f"bits_list regressed wide masks: {t_fast_wide * 1e3:.2f} ms vs "
        f"generator {t_gen_wide * 1e3:.2f} ms"
    )


@needs_numpy
def test_counting_and_membership_agree_on_gate_workload(gate_pair):
    """Ride-along correctness: the vectorised boolmat product is identical."""
    from repro.core.membership import transition_matrices

    padded, automaton = gate_pair
    python_mats = transition_matrices(padded, automaton, kernel="python")
    numpy_mats = transition_matrices(padded, automaton, kernel="numpy")
    assert python_mats == numpy_mats
