"""Parallel-subsystem benchmarks: sharded corpus evaluation must pay off.

Acceptance gates for the parallel execution PR (run explicitly, not part
of tier-1):

* ``parallel_corpus(jobs=4)`` over the synthetic ``.slpb`` corpus must
  be >= 2x faster than serial ``evaluate_corpus`` on the same files;
* with a shared store, the whole fleet must build the Lemma 6.5 tables
  at most once per grammar digest (priming + content addressing: no
  duplicate builds across workers);
* the LPT shard planner must keep shard costs balanced on a skewed
  corpus.

The corpus is duplication-heavy (like replicated log shards or
re-ingested crawl segments): 24 files, 4 distinct contents.  The
speedup therefore combines the subsystem's two levers — true
multiprocess parallelism *and* once-per-digest work deduplication
(digest-affinity sharding keeps copies on one worker's in-memory cache).
On a single-core runner the dedup lever alone must carry the gate, so
it passes regardless of machine shape; extra cores only widen the
margin.  The spanner is a needle-in-a-haystack literal extraction
(rare matches), the regime where the ``O(size(S) · q²)`` preprocessing
dominates and sharing it matters most.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_parallel.py -q
"""

import os

from repro.bench.harness import time_call
from repro.engine import Engine
from repro.slp import io as slp_io
from repro.spanner.regex import compile_spanner
from repro.parallel import corpus_items, parallel_corpus, plan_shards
from repro.workloads import write_corpus

NUM_DOCS = 24
DUPLICATION = 6  # 4 distinct contents, each appearing 6 times
DOC_LENGTH = 8_000
DISTINCT_BLOCKS = 48
JOBS = 4

#: Rare-match literal extraction: preprocessing-dominated (the relation
#: stays tiny, so per-document evaluation cost does not mask sharing).
NEEDLE_PATTERN = r"(a|b)*(?P<x>" + "ab" * 15 + r")(a|b)*"


def synthetic_corpus(directory):
    return write_corpus(
        directory,
        NUM_DOCS,
        duplication=DUPLICATION,
        doc_length=DOC_LENGTH,
        distinct_blocks=DISTINCT_BLOCKS,
        seed=11,
    )


def test_parallel_corpus_at_least_2x_faster_than_serial(tmp_path):
    """The headline acceptance criterion of the parallel PR."""
    paths = synthetic_corpus(str(tmp_path / "corpus"))
    spanner = compile_spanner(NEEDLE_PATTERN, alphabet="ab")

    def serial():
        return Engine().evaluate_corpus(
            spanner, [slp_io.load_file(p) for p in paths]
        )

    def parallel():
        return parallel_corpus(
            spanner, paths, jobs=JOBS, prime=False, timeout=600
        )

    serial_results, serial_time = time_call(serial)
    parallel_results, parallel_time = time_call(parallel)
    assert parallel_results == serial_results  # bit-identical, same order
    assert serial_time >= 2 * parallel_time, (
        f"parallel_corpus jobs={JOBS} ({parallel_time:.2f}s) not 2x faster "
        f"than serial evaluate_corpus ({serial_time:.2f}s)"
    )


def test_fleet_builds_tables_once_per_digest(tmp_path):
    """Across the whole fleet, one Lemma 6.5 build per grammar digest.

    Duplicates are served by digest-affinity (the copy's worker already
    holds the tables in memory) or by the shared store (priming built
    and persisted them before fan-out) — never by a second build.  A
    moderate automaton keeps the ``.prep`` payloads small (q <= 64:
    single-word bit rows), the regime the store is designed for.
    """
    paths = write_corpus(
        str(tmp_path / "corpus"),
        12,
        duplication=4,  # 3 distinct digests
        doc_length=1_000,
        seed=23,
    )
    unique = len({slp_io.peek_digest(p) for p in paths})
    assert unique == 3
    spanner = compile_spanner(r"(a|b)*(?P<x>ab{2}ab)(a|b)*", alphabet="ab")
    store_dir = str(tmp_path / "store")
    report = parallel_corpus(
        spanner,
        paths,
        task="count",
        jobs=JOBS,
        store=store_dir,
        timeout=600,
        report=True,
    )
    assert report.results == Engine().count_corpus(
        spanner, [slp_io.load_file(p) for p in paths]
    )
    # priming built every duplicated digest in the parent; the workers
    # only restored: zero worker-side builds, zero worker-side writes.
    store_stats = report.store_stats
    assert store_stats is not None
    assert store_stats.writes == 0, "a worker rebuilt primed tables"
    assert len(os.listdir(store_dir)) == unique
    prep_stats = report.cache_stats["preprocessings"]
    assert prep_stats.misses <= unique, (
        f"{prep_stats.misses} preprocessing builds/restores across the fleet "
        f"for {unique} distinct digests"
    )


def test_shard_plan_balances_skewed_corpus(tmp_path):
    """LPT keeps the makespan near the mean on a heavily skewed corpus."""
    small = write_corpus(
        str(tmp_path / "small"), 12, doc_length=400, seed=3, prefix="small"
    )
    large = write_corpus(
        str(tmp_path / "large"), 4, doc_length=6_000, seed=4, prefix="large"
    )
    plan = plan_shards(corpus_items(small + large), JOBS)
    assert plan.num_items == 16
    # LPT guarantee is 4/3 OPT; on this distribution the greedy should
    # stay well within 1.5x of the mean load.
    assert plan.imbalance <= 1.5, f"imbalance {plan.imbalance:.2f}"
