"""E4 — Theorem 7.1: computing ⟦M⟧(D) in O(sort(|M|)q² + size(S)·q⁴·size(⟦M⟧(D))).

Paper claim: total time is linear in the output size r (at fixed grammar
and automaton).  The workload plants exactly r marker characters into an
otherwise repetitive document, so r is swept while size(S) barely moves.
Expected shape: time ≈ c · r.
"""

import pytest

from repro.slp.repair import repair_slp
from repro.workloads.queries import marker_spanner
from repro.core.computation import compute


def planted_document(r: int, block: int = 64) -> str:
    """('ab'*block + 'c') * r — exactly r query results, repetitive filler."""
    return ("ab" * block + "c") * r


@pytest.mark.parametrize("r", [4, 16, 64, 256])
def test_computation_vs_result_count(benchmark, r):
    doc = planted_document(r)
    slp = repair_slp(doc)
    spanner = marker_spanner("c", alphabet="abc")
    result = benchmark(compute, slp, spanner)
    assert len(result) == r


@pytest.mark.parametrize("block", [16, 64, 256])
def test_computation_vs_document_size_fixed_r(benchmark, block):
    """Same r = 32, growing d: time follows size(S)·r, not d."""
    doc = planted_document(32, block=block)
    slp = repair_slp(doc)
    spanner = marker_spanner("c", alphabet="abc")
    result = benchmark(compute, slp, spanner)
    assert len(result) == 32


def test_computation_multi_variable(benchmark):
    """Two-variable join-style output on a repetitive document."""
    from repro.spanner.regex import compile_spanner

    doc = planted_document(12)
    slp = repair_slp(doc)
    spanner = compile_spanner(r".*(?P<x>c).*(?P<y>c).*", alphabet="abc")
    result = benchmark(compute, slp, spanner)
    assert len(result) == 12 * 11 // 2
