"""Service-daemon benchmarks: a warm daemon must beat per-call pools.

Acceptance gates for the Session/service PR (run explicitly, not part
of tier-1):

* repeated batch invocations against a *warm* daemon (persistent
  fleet, worker engine caches populated) must be >= 2x faster than the
  same invocations through per-call ``parallel_batch`` pools — even
  when the per-call pools get a fully warm on-disk store.  The daemon's
  edge is structural: no worker spawn, no engine hydration, no spanner
  re-resolution, and in-*memory* preprocessing hits instead of store
  restores, per invocation;
* daemon results are bit-identical (values and order) to the serial
  engine;
* a clean daemon shutdown leaves nothing behind: no orphan fleet
  workers, no socket file, no spill temp directories.

The corpus mirrors ``bench_parallel``'s duplication-heavy shape and the
needle pattern keeps the workload preprocessing-dominated — the regime
the daemon exists for.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_service.py -q
"""

import glob
import multiprocessing
import os
import tempfile

import pytest

from repro.bench.harness import time_call
from repro.engine import run_batch
from repro.engine.spec import SpannerSpec
from repro.parallel import parallel_batch
from repro.service.server import ServiceThread
from repro.session import SessionConfig, connect
from repro.slp import io as slp_io
from repro.spanner.regex import compile_spanner
from repro.workloads import write_corpus

NUM_DOCS = 16
DUPLICATION = 4  # 4 distinct contents, each appearing 4 times
DOC_LENGTH = 6_000
JOBS = 2
REPEATS = 3

#: Rare-match literal extraction (as in bench_parallel): the
#: ``O(size(S) · q²)`` preprocessing dominates, which is exactly the
#: cost a warm daemon amortises away.
NEEDLE_PATTERN = r"(a|b)*(?P<x>" + "ab" * 15 + r")(a|b)*"


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    directory = tmp_path_factory.mktemp("service-corpus")
    return write_corpus(
        str(directory),
        NUM_DOCS,
        duplication=DUPLICATION,
        doc_length=DOC_LENGTH,
        distinct_blocks=48,
        seed=29,
    )


def _short_socket_path() -> str:
    # Not under pytest's tmp_path: AF_UNIX caps sun_path at ~107 bytes.
    return os.path.join(tempfile.mkdtemp(prefix="rsvc-bench-"), "s.sock")


def _spill_dirs() -> set:
    return set(glob.glob(os.path.join(tempfile.gettempdir(), "repro-spill-*")))


def test_warm_daemon_at_least_2x_faster_than_per_call_pools(corpus, tmp_path):
    """The headline acceptance criterion of the service PR."""
    spec = SpannerSpec(pattern=NEEDLE_PATTERN, alphabet="ab")
    pool_store = str(tmp_path / "pool-store")
    daemon_store = str(tmp_path / "daemon-store")
    serial = [
        item.result
        for item in run_batch(
            [spec.resolve()],
            [slp_io.load_file(p) for p in corpus],
            task="count",
        )
    ]

    def per_call_batch():
        return [
            item.result
            for item in parallel_batch(
                [spec], list(corpus), task="count", jobs=JOBS,
                store=pool_store, timeout=600,
            )
        ]

    # Warm the per-call store so the comparison is against the old
    # path's *best* case: every later pool restores instead of building.
    assert per_call_batch() == serial
    _, pool_time = time_call(
        lambda: [per_call_batch() for _ in range(REPEATS)]
    )

    socket_path = _short_socket_path()
    config = SessionConfig(jobs=JOBS, store_dir=daemon_store, timeout=600)
    with ServiceThread(config, socket_path) as svc:
        with connect(svc.socket_path, timeout=600) as session:
            def daemon_batch():
                return [
                    item.result
                    for item in session.batch([spec], list(corpus), task="count")
                ]

            # One cold call warms the fleet's in-memory caches; the gate
            # is about *repeated* invocations against a warm daemon.
            assert daemon_batch() == serial  # bit-identical to serial
            _, daemon_time = time_call(
                lambda: [daemon_batch() for _ in range(REPEATS)]
            )
            assert daemon_batch() == serial

    assert pool_time >= 2 * daemon_time, (
        f"warm daemon ({daemon_time:.3f}s for {REPEATS} batches) not 2x "
        f"faster than per-call pools ({pool_time:.3f}s)"
    )


def test_disabled_tracing_overhead_within_3pct(corpus, tmp_path):
    """The zero-overhead promise of ``repro.obs``, as a gate.

    With no trace sink configured, every instrumented call site costs a
    no-op span (a few attribute checks, no allocation) or a bare counter
    /histogram update.  Rather than diffing two nearly equal wall-clock
    measurements (noise-bound), this measures the disabled-path
    primitives directly and bounds a generous overestimate of the
    instrumented operations per warm-daemon batch by 3% of the measured
    batch time.
    """
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.trace import Tracer

    spec = SpannerSpec(pattern=NEEDLE_PATTERN, alphabet="ab")
    socket_path = _short_socket_path()
    config = SessionConfig(
        jobs=JOBS, store_dir=str(tmp_path / "store"), timeout=600
    )
    with ServiceThread(config, socket_path) as svc:
        with connect(svc.socket_path, timeout=600) as session:
            def daemon_batch():
                return [
                    item.result
                    for item in session.batch([spec], list(corpus), task="count")
                ]

            daemon_batch()  # warm the fleet caches
            _, warm_time = time_call(
                lambda: [daemon_batch() for _ in range(REPEATS)]
            )

    # The disabled-path primitives, measured in isolation.
    tracer = Tracer(None)  # no sink: span() returns the shared no-op
    registry = MetricsRegistry()
    counter = registry.counter("bench.noop")
    histogram = registry.histogram("bench.noop_seconds")
    samples = 20_000

    def noop_round():
        # Each iteration exercises THREE call sites: one no-op span,
        # one counter add, one histogram observe.
        for _ in range(samples):
            with tracer.span("bench.noop"):
                pass
            counter.inc()
            histogram.observe(0.001)

    _, primitive_time = time_call(noop_round)
    per_site = primitive_time / (samples * 3)

    # Overestimate of instrumented call sites in one warm batch run —
    # each site is a single primitive (a span OR a counter OR a
    # histogram update): per document a worker span + engine/kernel
    # spans + a handful of counter/histogram updates, plus
    # wire/scheduler bookkeeping — call it 50 per document plus 500
    # fixed, per repeat.  The real count is far lower.
    ops = REPEATS * (NUM_DOCS * 50 + 500)
    overhead = per_site * ops
    budget = 0.03 * warm_time
    assert overhead <= budget, (
        f"disabled-tracing primitives cost {overhead * 1e3:.2f} ms over "
        f"{ops} (overestimated) call sites, over 3% of the warm-daemon "
        f"batch time ({warm_time:.3f}s -> budget {budget * 1e3:.2f} ms)"
    )


def test_disarmed_fault_layer_overhead_within_3pct(corpus, tmp_path):
    """The no-faults path of ``repro.faults`` must be free (PR 9 gate).

    Every fault site on the hot path — ``worker.shard`` per shard,
    ``wire.*`` per frame, ``store.*`` per save/load — costs one
    :func:`fault_point` or :func:`mangle` call that, disarmed, is a
    single module-global check.  Same methodology as the tracing gate:
    measure the disarmed primitives in isolation and bound a generous
    overestimate of the sites crossed per warm-daemon batch by 3% of
    the measured batch time.
    """
    from repro import faults

    spec = SpannerSpec(pattern=NEEDLE_PATTERN, alphabet="ab")
    socket_path = _short_socket_path()
    config = SessionConfig(
        jobs=JOBS, store_dir=str(tmp_path / "store"), timeout=600
    )
    with ServiceThread(config, socket_path) as svc:
        with connect(svc.socket_path, timeout=600) as session:
            def daemon_batch():
                return [
                    item.result
                    for item in session.batch([spec], list(corpus), task="count")
                ]

            daemon_batch()  # warm the fleet caches
            _, warm_time = time_call(
                lambda: [daemon_batch() for _ in range(REPEATS)]
            )

    faults.set_plan(None)  # the production state: disarmed
    payload = b"x" * 4096
    samples = 20_000

    def disarmed_round():
        # Each iteration exercises BOTH primitives a site can be.
        for _ in range(samples):
            faults.fault_point("bench.noop")
            faults.mangle("bench.noop.bytes", payload)

    _, primitive_time = time_call(disarmed_round)
    per_site = primitive_time / (samples * 2)

    # Overestimate of fault sites crossed in one warm batch run: per
    # document a worker.shard check plus store save/load sites, plus a
    # handful of wire.* frames per request — call it 20 per document
    # plus 200 fixed, per repeat.  The real count is far lower.
    ops = REPEATS * (NUM_DOCS * 20 + 200)
    overhead = per_site * ops
    budget = 0.03 * warm_time
    assert overhead <= budget, (
        f"disarmed fault-layer primitives cost {overhead * 1e3:.2f} ms over "
        f"{ops} (overestimated) sites, over 3% of the warm-daemon batch "
        f"time ({warm_time:.3f}s -> budget {budget * 1e3:.2f} ms)"
    )


def test_daemon_shutdown_leaves_nothing_behind(corpus):
    """Clean shutdown: no orphan workers, no socket, no spill dirs."""
    spills_before = _spill_dirs()
    socket_path = _short_socket_path()
    spec = SpannerSpec(pattern=NEEDLE_PATTERN, alphabet="ab")
    with ServiceThread(SessionConfig(jobs=JOBS), socket_path) as svc:
        with connect(svc.socket_path, timeout=600) as session:
            # exercise the client-side spill path too: in-memory SLPs
            # must travel via temp files that are gone afterwards
            slps = [slp_io.load_file(p) for p in corpus[:3]]
            counts = session.corpus(spec, slps, task="count")
            assert len(counts) == 3
            fleet_pids = session.stats()["fleet"]["pids"]
            assert len(fleet_pids) == JOBS
    assert not os.path.exists(socket_path), "socket file survived shutdown"
    orphans = [
        p
        for p in multiprocessing.active_children()
        if p.name.startswith("repro-parallel") and p.is_alive()
    ]
    assert not orphans, f"fleet workers survived shutdown: {orphans}"
    leaked = _spill_dirs() - spills_before
    assert not leaked, f"spill directories leaked: {leaked}"
