"""E7 — Theorem 4.3 (substituted): SLP balancing via AVL grammars.

Paper: any SLP can be rebalanced to depth O(log d) with size O(s) in O(s)
time (Ganardi–Jeż–Lohrey).  Our substitute (DESIGN.md §3) guarantees the
same depth with size O(s·log d).  The benchmark measures the rebuild time
and the run_all report records the depth/size trade-off on caterpillars
(the worst case: depth ≈ s).
"""

import math

import pytest

from repro.slp.balance import balance, depth_bound
from repro.slp.families import caterpillar_slp, power_slp, random_slp


@pytest.mark.parametrize("n", [256, 1024, 4096])
def test_balance_caterpillar(benchmark, n):
    slp = caterpillar_slp(n)
    flat = benchmark(balance, slp)
    assert flat.depth() <= depth_bound(flat.length())
    assert flat.depth() <= 2 * math.log2(slp.length()) + 4


@pytest.mark.parametrize("inner", [64, 256, 1024])
def test_balance_random_dag(benchmark, inner):
    slp = random_slp(inner, alphabet="abc", seed=17)
    flat = benchmark(balance, slp)
    assert flat.depth() <= depth_bound(flat.length())


def test_balance_already_balanced(benchmark):
    slp = power_slp("ab", 20)
    flat = benchmark(balance, slp)
    assert flat.length() == slp.length()
