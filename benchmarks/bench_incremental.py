"""E11 (extension) — incremental aggregates under document edits.

The paper's concluding open problem asks about updates.  This bench
measures :class:`repro.core.incremental.IncrementalSpannerIndex`: a point
edit plus an exact re-count should cost O(q³ · log d) — versus a full
Lemma 6.5 re-preprocessing (O(size(S) · q³)) for the from-scratch path.
Expected shape: incremental flat-ish in d; from-scratch grows with size(S).
"""

import pytest

from repro.core.evaluator import CompressedSpannerEvaluator
from repro.core.incremental import IncrementalSpannerIndex


@pytest.mark.parametrize("n", [12, 20, 28])
def test_edit_and_count_incremental(benchmark, n, ab_spanner, power_docs):
    index = IncrementalSpannerIndex(ab_spanner, power_docs[n])
    index.count()  # warm the initial matrices
    position = [2**n]

    def edit_and_count():
        position[0] += 1
        index.replace(position[0] % (2**n), position[0] % (2**n) + 1, "a")
        return index.count()

    benchmark(edit_and_count)


@pytest.mark.parametrize("n", [12, 20])
def test_edit_and_count_from_scratch(benchmark, n, ab_spanner, power_docs):
    """Baseline: rebuild the evaluator after every edit."""
    index = IncrementalSpannerIndex(ab_spanner, power_docs[n])
    position = [2**n]

    def edit_and_recount():
        position[0] += 1
        index.replace(position[0] % (2**n), position[0] % (2**n) + 1, "a")
        ev = CompressedSpannerEvaluator(ab_spanner, index.snapshot(), balance=False)
        return ev.count()

    benchmark(edit_and_recount)
