"""Engine benchmarks: cache-hit vs cold-build throughput, persistence wins.

Acceptance gates for the batch engine and the persistence layer (run
explicitly, not part of tier-1):

* warm-cache batch evaluation of N spanners over one document must be
  >= 2x faster than N independent ``CompressedSpannerEvaluator`` builds;
* a store-backed cold start (fresh process, tables restored from a
  ``PreprocessingStore``) must beat rebuilding from scratch by >= 2x on
  the paper workloads;
* loading the largest family grammar from the ``repro-slpb`` binary
  format must be faster than loading the equivalent JSON;
* cold single-query preprocessing must not regress (tracked by the
  ``test_cold_preprocessing`` pytest-benchmark timings).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_engine.py -q
"""

import random

import pytest

from repro.bench.harness import time_call
from repro.slp import io as slp_io
from repro.slp.construct import balanced_slp
from repro.slp.families import caterpillar_slp, power_slp
from repro.spanner.regex import compile_spanner
from repro.spanner.transform import pad_slp, pad_spanner
from repro.core.evaluator import CompressedSpannerEvaluator
from repro.core.matrices import Preprocessing
from repro.engine import Engine
from repro.store import PreprocessingStore

N_SPANNERS = 8


def distinct_spanners(n=N_SPANNERS):
    """n structurally different queries over the 'ab' alphabet."""
    patterns = [
        rf"(a|b)*(?P<x>a{{1,{k + 1}}}b)(a|b)*" for k in range(n)
    ]
    return [compile_spanner(p, alphabet="ab") for p in patterns]


def test_warm_batch_at_least_2x_faster_than_cold_builds():
    """The headline acceptance criterion of the engine PR."""
    doc = power_slp("ab", 12)
    spanners = distinct_spanners()
    engine = Engine()
    warm_results = engine.count_many(spanners, doc)  # fill every cache layer

    _, warm = time_call(lambda: engine.count_many(spanners, doc), repeat=3)

    def cold():
        return [CompressedSpannerEvaluator(sp, doc).count() for sp in spanners]

    cold_results, cold_time = time_call(cold, repeat=3)
    assert warm_results == cold_results
    assert cold_time >= 2 * warm, (
        f"warm batch ({warm:.4f}s) not 2x faster than cold builds ({cold_time:.4f}s)"
    )


def test_corpus_shares_automaton_preparation():
    """One spanner over many documents: automaton prepared once."""
    spanner = compile_spanner(r"(a|b)*(?P<x>ab)(a|b)*", alphabet="ab")
    docs = [power_slp("ab", n) for n in (8, 9, 10, 11)]
    engine = Engine()
    engine.count_corpus(spanner, docs)
    _, warm = time_call(lambda: engine.count_corpus(spanner, docs), repeat=3)

    def cold():
        return [CompressedSpannerEvaluator(spanner, d).count() for d in docs]

    cold_results, cold_time = time_call(cold, repeat=3)
    assert engine.count_corpus(spanner, docs) == cold_results
    assert cold_time >= 2 * warm
    assert engine.cache_stats()["spanners"].misses == 1


def test_store_backed_restart_at_least_2x_faster_than_rebuild(tmp_path):
    """The headline acceptance criterion of the persistence PR.

    Simulates a process restart on the paper's batch workload (one
    document, the N distinct ``a{1,k}b`` spanners): a first engine builds
    and persists the Lemma 6.5 + counting tables, then a *fresh* engine —
    empty in-memory caches, nothing shared — must serve the same batch
    >= 2x faster by restoring from the store than a storeless engine can
    by re-running the O(size(S) · q²) builds.  A 1000-symbol document
    keeps size(S) large enough that the table builds dominate the shared
    balance/pad/determinize preparation both paths pay.
    """
    rng = random.Random(41)
    doc = balanced_slp("".join(rng.choice("ab") for _ in range(1000)))
    spanners = distinct_spanners()
    store = PreprocessingStore(str(tmp_path / "store"))
    warm_results = Engine(store=store).count_many(spanners, doc)

    def restart_with_store():
        engine = Engine(store=PreprocessingStore(str(tmp_path / "store")))
        return engine.count_many(spanners, doc)

    def rebuild():
        return Engine().count_many(spanners, doc)

    restored_results, restored = time_call(restart_with_store, repeat=3)
    rebuilt_results, rebuilt = time_call(rebuild, repeat=3)
    assert restored_results == rebuilt_results == warm_results
    assert rebuilt >= 2 * restored, (
        f"store-backed restart ({restored:.4f}s) not 2x faster than "
        f"rebuild ({rebuilt:.4f}s)"
    )


def test_binary_load_faster_than_json(tmp_path):
    """Binary loading must beat JSON on the largest family grammar."""
    slp = caterpillar_slp(60_000)  # the largest slp/families.py grammar here
    json_path = str(tmp_path / "big.slp.json")
    binary_path = str(tmp_path / "big.slpb")
    slp_io.save_file(slp, json_path)
    slp_io.save_binary(slp, binary_path)

    json_slp, json_time = time_call(lambda: slp_io.load_file(json_path), repeat=3)
    binary_slp, binary_time = time_call(
        lambda: slp_io.load_binary(binary_path), repeat=3
    )
    assert json_slp.length() == binary_slp.length() == slp.length()
    assert binary_time < json_time, (
        f"binary load ({binary_time:.4f}s) not faster than JSON "
        f"({json_time:.4f}s)"
    )


@pytest.mark.parametrize("n", [10, 12, 14])
def test_cold_preprocessing(benchmark, n, ab_spanner):
    """Cold Lemma 6.5 table build (the bit-packed matrix core hot path)."""
    padded_slp = pad_slp(power_slp("ab", n))
    padded_nfa = pad_spanner(ab_spanner.eliminate_epsilon())
    benchmark(Preprocessing, padded_slp, padded_nfa)


@pytest.mark.parametrize("n", [2, 8, 32])
def test_warm_batch_scaling(benchmark, n):
    """Warm-cache batch counts: cost should stay ~constant per query."""
    doc = power_slp("ab", 10)
    spanners = distinct_spanners(min(n, N_SPANNERS)) * (n // min(n, N_SPANNERS))
    engine = Engine(max_preprocessings=256)
    engine.count_many(spanners, doc)
    benchmark(engine.count_many, spanners, doc)
