"""Engine benchmarks: cache-hit vs cold-build throughput.

Acceptance gates for the batch engine (run explicitly, not part of tier-1):

* warm-cache batch evaluation of N spanners over one document must be
  >= 2x faster than N independent ``CompressedSpannerEvaluator`` builds;
* cold single-query preprocessing must not regress (tracked by the
  ``test_cold_preprocessing`` pytest-benchmark timings).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_engine.py -q
"""

import pytest

from repro.bench.harness import time_call
from repro.slp.families import power_slp
from repro.spanner.regex import compile_spanner
from repro.spanner.transform import pad_slp, pad_spanner
from repro.core.evaluator import CompressedSpannerEvaluator
from repro.core.matrices import Preprocessing
from repro.engine import Engine

N_SPANNERS = 8


def distinct_spanners(n=N_SPANNERS):
    """n structurally different queries over the 'ab' alphabet."""
    patterns = [
        rf"(a|b)*(?P<x>a{{1,{k + 1}}}b)(a|b)*" for k in range(n)
    ]
    return [compile_spanner(p, alphabet="ab") for p in patterns]


def test_warm_batch_at_least_2x_faster_than_cold_builds():
    """The headline acceptance criterion of the engine PR."""
    doc = power_slp("ab", 12)
    spanners = distinct_spanners()
    engine = Engine()
    warm_results = engine.count_many(spanners, doc)  # fill every cache layer

    _, warm = time_call(lambda: engine.count_many(spanners, doc), repeat=3)

    def cold():
        return [CompressedSpannerEvaluator(sp, doc).count() for sp in spanners]

    cold_results, cold_time = time_call(cold, repeat=3)
    assert warm_results == cold_results
    assert cold_time >= 2 * warm, (
        f"warm batch ({warm:.4f}s) not 2x faster than cold builds ({cold_time:.4f}s)"
    )


def test_corpus_shares_automaton_preparation():
    """One spanner over many documents: automaton prepared once."""
    spanner = compile_spanner(r"(a|b)*(?P<x>ab)(a|b)*", alphabet="ab")
    docs = [power_slp("ab", n) for n in (8, 9, 10, 11)]
    engine = Engine()
    engine.count_corpus(spanner, docs)
    _, warm = time_call(lambda: engine.count_corpus(spanner, docs), repeat=3)

    def cold():
        return [CompressedSpannerEvaluator(spanner, d).count() for d in docs]

    cold_results, cold_time = time_call(cold, repeat=3)
    assert engine.count_corpus(spanner, docs) == cold_results
    assert cold_time >= 2 * warm
    assert engine.cache_stats()["spanners"].misses == 1


@pytest.mark.parametrize("n", [10, 12, 14])
def test_cold_preprocessing(benchmark, n, ab_spanner):
    """Cold Lemma 6.5 table build (the bit-packed matrix core hot path)."""
    padded_slp = pad_slp(power_slp("ab", n))
    padded_nfa = pad_spanner(ab_spanner.eliminate_epsilon())
    benchmark(Preprocessing, padded_slp, padded_nfa)


@pytest.mark.parametrize("n", [2, 8, 32])
def test_warm_batch_scaling(benchmark, n):
    """Warm-cache batch counts: cost should stay ~constant per query."""
    doc = power_slp("ab", 10)
    spanners = distinct_spanners(min(n, N_SPANNERS)) * (n // min(n, N_SPANNERS))
    engine = Engine(max_preprocessings=256)
    engine.count_many(spanners, doc)
    benchmark(engine.count_many, spanners, doc)
