"""E1 — Theorem 5.1.1: non-emptiness in O(|M| + size(S)·q³).

Paper claim: on an SLP-compressed document the check costs O(size(S))
(data complexity) — logarithmic in d for power documents — while the
decompress-and-solve baseline pays O(d).  Expected shape: compressed times
barely move as d doubles repeatedly; baseline times double with d.
"""

import pytest

from repro.baselines.uncompressed import UncompressedEvaluator
from repro.core.nonemptiness import is_nonempty, project_to_sigma
from repro.core.membership import slp_in_language


@pytest.mark.parametrize("n", [8, 12, 16, 20, 24, 30])
def test_compressed_nonemptiness(benchmark, n, ab_spanner, power_docs):
    """Compressed: d = 2^(n+1) grows 4M-fold across the sweep; time should not."""
    slp = power_docs[n]
    projected = project_to_sigma(ab_spanner)  # |M| part, done once
    result = benchmark(slp_in_language, slp, projected)
    assert result is True


@pytest.mark.parametrize("n", [8, 12, 16])
def test_baseline_nonemptiness(benchmark, n, ab_spanner, power_texts):
    """Decompress-and-solve: O(d) NFA simulation over the explicit text."""
    doc = power_texts[n]
    evaluator = UncompressedEvaluator(ab_spanner, doc)
    result = benchmark(evaluator.is_nonempty)
    assert result is True


def test_compressed_negative_instance(benchmark, power_docs):
    """Non-emptiness that fails ('aa' never occurs in (ab)^k)."""
    from repro.spanner.regex import compile_spanner

    spanner = compile_spanner(r"(a|b)*(?P<x>aa)(a|b)*", alphabet="ab")
    projected = project_to_sigma(spanner)
    slp = power_docs[24]
    result = benchmark(slp_in_language, slp, projected)
    assert result is False
