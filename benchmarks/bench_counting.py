"""E10 (extension) — counting and ranked access without enumeration.

Ablation of the counting extension (``repro.core.counting``): exact
``|⟦M⟧(D)|`` via weighted matrix composition versus exhausting the
Theorem 8.10 enumeration, plus the cost of rank-``k`` selection.
Expected shape: counting is O(size(S)) and flat in r; enumeration-count is
O(r); select is O(depth) per query regardless of r.
"""

import pytest

from repro.core.counting import CountingTables, RankedAccess
from repro.core.evaluator import CompressedSpannerEvaluator


@pytest.mark.parametrize("n", [10, 20, 30])
def test_count_via_tables(benchmark, n, ab_spanner, power_docs):
    """Exact count on relations of size 2^n (up to a billion tuples)."""
    ev = CompressedSpannerEvaluator(ab_spanner, power_docs[n])
    prep = ev.preprocessing(deterministic=True)
    total = benchmark(lambda: CountingTables(prep).total())
    assert total == 2**n


@pytest.mark.parametrize("n", [10, 12, 14])
def test_count_via_enumeration(benchmark, n, ab_spanner, power_docs):
    """The slow way: exhaust the duplicate-free stream (O(r))."""
    ev = CompressedSpannerEvaluator(ab_spanner, power_docs[n])
    ev.preprocessing(deterministic=True)
    total = benchmark(lambda: sum(1 for _ in ev.enumerate_raw()))
    assert total == 2**n


@pytest.mark.parametrize("n", [20, 30])
def test_ranked_select(benchmark, n, ab_spanner, power_docs):
    """Rank-k access into a relation of 2^n tuples: O(depth) per query."""
    ev = CompressedSpannerEvaluator(ab_spanner, power_docs[n])
    ra = RankedAccess(ev.preprocessing(deterministic=True))
    target = ra.total // 3

    result = benchmark(ra.select, target)
    assert result


def test_ranked_page_fetch(benchmark, ab_spanner, power_docs):
    """Fetch a 100-tuple page from the middle of a 2^30-tuple relation."""
    ev = CompressedSpannerEvaluator(ab_spanner, power_docs[30])
    ra = RankedAccess(ev.preprocessing(deterministic=True))
    start = ra.total // 2

    page = benchmark(ra.slice, start, start + 100)
    assert len(page) == 100
