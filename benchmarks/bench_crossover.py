"""E9 — Sec. 1.3: where compressed evaluation beats decompress-and-solve.

The paper: "for highly compressible documents ... our algorithms will
outperform the approach of first decompressing the entire document".  Here
the document length is fixed (d = 16384) and the *compressibility* is swept
via the block-pool size of :func:`repro.workloads.documents.block_text`.
Expected shape: compressed end-to-end time tracks size(S) (grows with the
pool), baseline time tracks d (flat) — they cross as the data becomes less
compressible.
"""

import pytest

from repro.slp.repair import repair_slp
from repro.spanner.regex import compile_spanner
from repro.baselines.uncompressed import UncompressedEvaluator
from repro.core.evaluator import CompressedSpannerEvaluator
from repro.workloads.documents import block_text

DOC_LENGTH = 16_384


@pytest.fixture(scope="module")
def probe_spanner():
    return compile_spanner(r"(a|b)*(?P<x>abba)(a|b)*", alphabet="ab")


def doc_for(distinct_blocks: int) -> str:
    return block_text(DOC_LENGTH, distinct_blocks, block_length=32, seed=13)


@pytest.mark.parametrize("blocks", [2, 16, 128, 512])
def test_compressed_end_to_end(benchmark, probe_spanner, blocks):
    """Query an already-compressed doc: preprocessing + full enumeration."""
    slp = repair_slp(doc_for(blocks))

    def run():
        ev = CompressedSpannerEvaluator(probe_spanner, slp)
        return sum(1 for _ in ev.enumerate())

    benchmark(run)


@pytest.mark.parametrize("blocks", [2, 512])
def test_baseline_end_to_end(benchmark, probe_spanner, blocks):
    """Decompress-and-solve: O(d) regardless of compressibility."""
    doc = doc_for(blocks)

    def run():
        ev = UncompressedEvaluator(probe_spanner, doc)
        return sum(1 for _ in ev.enumerate())

    benchmark(run)
