"""E2 — Theorem 5.1.2: model checking in O((size(S) + |X|·depth(S))·q³).

Paper claim: checking t ∈ ⟦M⟧(D) needs only O(|X| · depth(S)) fresh
nonterminals on top of one compressed membership test.  Expected shape:
time grows additively with log d (the spliced paths), never with d.
"""

import pytest

from repro.slp.families import power_slp
from repro.spanner.regex import compile_spanner
from repro.spanner.spans import Span, SpanTuple
from repro.core.model_checking import model_check


@pytest.mark.parametrize("n", [10, 16, 22, 28])
def test_model_check_vs_document_size(benchmark, n):
    """d doubles 2^18-fold across the sweep; time should stay near-flat."""
    slp = power_slp("ab", n)
    spanner = compile_spanner(r"(a|b)*(?P<x>ab)(a|b)*", alphabet="ab")
    tup = SpanTuple({"x": Span(2**n - 1, 2**n + 1)})  # an 'ab' in the middle
    result = benchmark(model_check, slp, spanner, tup)
    assert result is True


@pytest.mark.parametrize(
    "pattern,variables",
    [
        (r"(a|b)*(?P<x>ab)(a|b)*", 1),
        (r"(a|b)*(?P<x>a)(?P<y>b)(a|b)*", 2),
        (r"(a|b)*(?P<x>a)(?P<y>b)(a|b)*(?P<z>ab)(a|b)*", 3),
    ],
    ids=["1var", "2var", "3var"],
)
def test_model_check_vs_variables(benchmark, pattern, variables):
    """|X| controls the number of spliced root-to-leaf paths."""
    n = 20
    slp = power_slp("ab", n)
    spanner = compile_spanner(pattern, alphabet="ab")
    spans = {
        "x": Span(1, 3) if variables == 1 else Span(1, 2),
        "y": Span(2, 3),
        "z": Span(2**n + 1, 2**n + 3),
    }
    tup = SpanTuple({v: spans[v] for v in list("xyz")[:variables]})
    result = benchmark(model_check, slp, spanner, tup)
    assert result is True


def test_model_check_negative(benchmark):
    slp = power_slp("ab", 20)
    spanner = compile_spanner(r"(a|b)*(?P<x>ab)(a|b)*", alphabet="ab")
    tup = SpanTuple({"x": Span(2, 4)})  # 'ba', not in the relation
    result = benchmark(model_check, slp, spanner, tup)
    assert result is False
