"""Exception hierarchy for the repro library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch everything raised by this package with a single handler while
still being able to distinguish grammar problems from evaluation problems.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GrammarError(ReproError, ValueError):
    """An SLP or CFG definition is malformed (cyclic, non-total, ...)."""


class NotInNormalForm(GrammarError):
    """An operation required a normal-form SLP but the grammar is not one."""


class RegexSyntaxError(ReproError, ValueError):
    """A spanner regex could not be parsed."""


class AutomatonError(ReproError, ValueError):
    """A spanner automaton is malformed or used incorrectly."""


class EvaluationError(ReproError, RuntimeError):
    """A spanner-evaluation task was invoked with incompatible inputs."""


class DecompressionLimitExceeded(ReproError, MemoryError):
    """Decompressing an SLP would exceed the caller-provided size limit.

    SLP-compressed documents can be exponentially larger than their grammar,
    so every API that materialises the document takes an explicit limit and
    raises this error instead of silently exhausting memory.
    """
