"""Enumerating ``⟦M⟧(D)`` with logarithmic delay (Theorem 8.10).

Pipeline (Sec. 8.2): after the Lemma 6.5 preprocessing
(``O(|M| + size(S) · q^3)``), for every ``j ∈ F'`` and ``k ∈ Ī_S0[start,j]``
run ``EnumAll`` to stream (M,S₀)-trees, and for each tree stream its yield
(Lemma 8.5).  Every step touches at most one root-to-leaf path of the
grammar, giving delay ``O(depth(S) · |X|)`` — ``O(|X| · log d)`` once the
SLP is balanced.

Duplicate-freeness requires a *deterministic* automaton (Lemma 8.8).  For
NFAs the same procedure is still a correct enumeration but may repeat
results; pass ``deduplicate=True`` to suppress repeats with a hash set
(trading the constant-memory guarantee), or determinise up front.
"""

from __future__ import annotations

import sys
from typing import Iterator, Optional

from repro.errors import EvaluationError
from repro.slp.grammar import SLP
from repro.spanner.automaton import SpannerNFA
from repro.spanner.markers import Pairs, to_span_tuple
from repro.spanner.spans import SpanTuple
from repro.spanner.transform import END_SYMBOL, pad_slp, pad_spanner

from repro.core.enumerate_trees import enum_root_trees
from repro.core.matrices import Preprocessing
from repro.core.mtrees import tree_yield


def enumerate_marker_sets(
    prep: Preprocessing,
    deduplicate: bool = False,
) -> Iterator[Pairs]:
    """Stream the marker sets of ``⟦M⟧(D)`` from a padded preprocessing.

    With a deterministic automaton the stream is duplicate-free by
    Lemmas 8.7/8.8; otherwise set ``deduplicate=True`` (or accept repeats).
    """
    if not prep.automaton.is_deterministic and not deduplicate:
        raise EvaluationError(
            "enumeration without duplicates needs a DFA (Lemma 8.8); "
            "determinize the automaton or pass deduplicate=True"
        )
    # Nested generators recurse once per grammar level.
    needed_limit = 5 * prep.slp.depth() + 200
    if sys.getrecursionlimit() < needed_limit:
        sys.setrecursionlimit(needed_limit)
    seen = set() if deduplicate else None
    for j in prep.final_states:
        for tree in enum_root_trees(prep, j):
            for pairs in tree_yield(tree, prep):
                if seen is not None:
                    if pairs in seen:
                        continue
                    seen.add(pairs)
                yield pairs


def enumerate_spanner(
    slp: SLP,
    automaton: SpannerNFA,
    end_symbol: str = END_SYMBOL,
    determinize: bool = True,
    deduplicate: Optional[bool] = None,
) -> Iterator[SpanTuple]:
    """Enumerate ``⟦M⟧(D)`` as span-tuples (Theorem 8.10).

    ``determinize=True`` (default) converts an NFA input to a DFA first —
    this only affects the preprocessing cost, never the delay, and makes
    the stream duplicate-free.  With ``determinize=False`` an NFA is run
    directly and ``deduplicate`` controls repeat suppression (defaults to
    True in that case).

    >>> from repro.slp.construct import balanced_slp
    >>> from repro.spanner.regex import compile_spanner
    >>> slp = balanced_slp("abcca")
    >>> spanner = compile_spanner(r"[bc]*(?P<x>a).*(?P<y>c+).*", alphabet="abc")
    >>> sorted(str(t) for t in enumerate_spanner(slp, spanner))
    ['SpanTuple(x=[1,2⟩, y=[3,4⟩)', 'SpanTuple(x=[1,2⟩, y=[3,5⟩)', 'SpanTuple(x=[1,2⟩, y=[4,5⟩)']
    """
    base = automaton.eliminate_epsilon()
    if determinize and not base.is_deterministic:
        base = base.determinize().trim()
        dedup = False if deduplicate is None else deduplicate
    else:
        dedup = (not base.is_deterministic) if deduplicate is None else deduplicate
    padded_slp = pad_slp(slp, end_symbol)
    padded_nfa = pad_spanner(base, end_symbol)
    prep = Preprocessing(padded_slp, padded_nfa)
    for pairs in enumerate_marker_sets(prep, deduplicate=dedup):
        yield to_span_tuple(pairs)
