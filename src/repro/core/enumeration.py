"""Enumerating ``⟦M⟧(D)`` with logarithmic delay (Theorem 8.10).

Pipeline (Sec. 8.2): after the Lemma 6.5 preprocessing
(``O(|M| + size(S) · q^3)``), for every ``j ∈ F'`` and ``k ∈ Ī_S0[start,j]``
run ``EnumAll`` to stream (M,S₀)-trees, and for each tree stream its yield
(Lemma 8.5).  Every step touches at most one root-to-leaf path of the
grammar, giving delay ``O(depth(S) · |X|)`` — ``O(|X| · log d)`` once the
SLP is balanced.

Duplicate-freeness requires a *deterministic* automaton (Lemma 8.8).  For
NFAs the same procedure is still a correct enumeration but may repeat
results; pass ``deduplicate=True`` to suppress repeats with a hash set
(trading the constant-memory guarantee), or determinise up front.
"""

from __future__ import annotations

import sys
import threading
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.errors import EvaluationError
from repro.slp.grammar import SLP
from repro.spanner.automaton import SpannerNFA
from repro.spanner.markers import Pairs, to_span_tuple
from repro.spanner.spans import SpanTuple
from repro.spanner.transform import END_SYMBOL, pad_slp, pad_spanner

from repro.core.enumerate_trees import enum_root_trees
from repro.core.matrices import Preprocessing
from repro.core.mtrees import tree_yield


#: Minimums of the currently-open enumeration streams, the limit that was
#: in force before the first of them raised it, a deferred restore from a
#: lowering CPython refused mid-recursion (``(leaked_limit, baseline)``),
#: and a lock serialising the compound read-modify-write on the
#: process-global recursion limit.  Needed so that closing one stream
#: never lowers the limit under another still-open (or concurrently
#: opening) stream, and so a refused restore is retried instead of the
#: leaked limit being adopted as the new baseline.
_active_minimums: list = []
_baseline_limit = 0
_deferred_restore = None
_limit_lock = threading.Lock()


@contextmanager
def _recursion_limit(minimum: int):
    """Temporarily raise the interpreter recursion limit to ``minimum``.

    Reference-counted across concurrently open streams (thread-safe): the
    limit drops back to the pre-raise baseline only when the *last* stream
    exits (exhaustion, ``close()`` or an exception).  If someone else
    changed the limit in the meantime, their value wins and we leave it
    alone.  If CPython refuses the restore because the consumer is still
    recursing deeper than the baseline, the lowering is deferred and
    retried when the next stream opens.

    The limit is process-global while stack depth is per-thread, so any
    lowering (restore or deferred retry) can only be depth-checked against
    the calling thread — a *different* thread that silently relied on the
    temporarily raised limit without opening its own stream may observe
    the drop.  Threads that need the raised limit must hold their own
    stream open (the reference counting then keeps the limit up), which is
    the same contract ``sys.setrecursionlimit`` itself imposes.
    """
    global _baseline_limit, _deferred_restore
    with _limit_lock:
        if not _active_minimums:
            current = sys.getrecursionlimit()
            if _deferred_restore is not None and current == _deferred_restore[0]:
                # An earlier restore was refused mid-recursion; retry the
                # lowering now (we are entering, so the stack is shallow)
                # and keep aiming at the original baseline either way.
                baseline = _deferred_restore[1]
                try:
                    sys.setrecursionlimit(baseline)
                    current = baseline
                except RecursionError:
                    pass  # still too deep; keep deferring
                _baseline_limit = baseline
                _deferred_restore = (
                    None if current == baseline else (current, baseline)
                )
            else:
                _baseline_limit = current
                _deferred_restore = None
        _active_minimums.append(minimum)
        in_force = max(_baseline_limit, max(_active_minimums))
        if in_force > sys.getrecursionlimit():
            sys.setrecursionlimit(in_force)
    try:
        yield
    finally:
        with _limit_lock:
            expected = max(_baseline_limit, max(_active_minimums))
            _active_minimums.remove(minimum)
            if sys.getrecursionlimit() == expected:  # nobody changed it behind us
                still_needed = max(_active_minimums, default=0)
                target = max(_baseline_limit, still_needed)
                if target != expected:
                    try:
                        sys.setrecursionlimit(target)
                    except RecursionError:
                        # The consumer exhausted/closed the stream while
                        # itself recursing deeper than the target allows
                        # (CPython refuses a limit below the current
                        # depth).  Keep the raised limit rather than
                        # crash a successful enumeration; remember the
                        # ultimate baseline so the next stream to open
                        # retries the lowering (a successful lowering by
                        # a still-open stream's exit invalidates the
                        # record via the leaked-value check on entry).
                        _deferred_restore = (expected, _baseline_limit)


def enumerate_marker_sets(
    prep: Preprocessing,
    deduplicate: bool = False,
) -> Iterator[Pairs]:
    """Stream the marker sets of ``⟦M⟧(D)`` from a padded preprocessing.

    With a deterministic automaton the stream is duplicate-free by
    Lemmas 8.7/8.8; otherwise set ``deduplicate=True`` (or accept repeats).
    """
    if not prep.automaton.is_deterministic and not deduplicate:
        raise EvaluationError(
            "enumeration without duplicates needs a DFA (Lemma 8.8); "
            "determinize the automaton or pass deduplicate=True"
        )
    # Nested generators recurse once per grammar level.
    needed_limit = 5 * prep.slp.depth() + 200
    seen = set() if deduplicate else None
    with _recursion_limit(needed_limit):
        for j in prep.final_states:
            for tree in enum_root_trees(prep, j):
                for pairs in tree_yield(tree, prep):
                    if seen is not None:
                        if pairs in seen:
                            continue
                        seen.add(pairs)
                    yield pairs


def enumerate_spanner(
    slp: SLP,
    automaton: SpannerNFA,
    end_symbol: str = END_SYMBOL,
    determinize: bool = True,
    deduplicate: Optional[bool] = None,
) -> Iterator[SpanTuple]:
    """Enumerate ``⟦M⟧(D)`` as span-tuples (Theorem 8.10).

    ``determinize=True`` (default) converts an NFA input to a DFA first —
    this only affects the preprocessing cost, never the delay, and makes
    the stream duplicate-free.  With ``determinize=False`` an NFA is run
    directly and ``deduplicate`` controls repeat suppression (defaults to
    True in that case).

    >>> from repro.slp.construct import balanced_slp
    >>> from repro.spanner.regex import compile_spanner
    >>> slp = balanced_slp("abcca")
    >>> spanner = compile_spanner(r"[bc]*(?P<x>a).*(?P<y>c+).*", alphabet="abc")
    >>> sorted(str(t) for t in enumerate_spanner(slp, spanner))
    ['SpanTuple(x=[1,2⟩, y=[3,4⟩)', 'SpanTuple(x=[1,2⟩, y=[3,5⟩)', 'SpanTuple(x=[1,2⟩, y=[4,5⟩)']
    """
    base = automaton.eliminate_epsilon()
    if determinize and not base.is_deterministic:
        base = base.determinize().trim()
        dedup = False if deduplicate is None else deduplicate
    else:
        dedup = (not base.is_deterministic) if deduplicate is None else deduplicate
    padded_slp = pad_slp(slp, end_symbol)
    padded_nfa = pad_spanner(base, end_symbol)
    prep = Preprocessing(padded_slp, padded_nfa)
    for pairs in enumerate_marker_sets(prep, deduplicate=dedup):
        yield to_span_tuple(pairs)
