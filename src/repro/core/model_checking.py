"""Model checking: is ``t ∈ ⟦M⟧(D)``?  (Theorem 5.1.2)

Following Sec. 5 / Appendix B: transform the SLP ``S`` for ``D`` into an
SLP ``S'`` for the subword-marked word ``m(D, t)`` by splicing the at most
``2·|X|`` marker-set symbols of ``ˆt`` into the grammar along root-to-leaf
paths (``O(|X| · depth(S))`` fresh nonterminals), then check membership of
``D(S')`` in ``L(M)`` with Lemma 4.5.

Positions follow the paper's convention: a marker at position ``i`` sits
immediately **before** the ``i``-th document symbol.  Markers at position
``d + 1`` (ends of spans touching the document end) therefore require the
``#``-padded document; :func:`model_check` handles the padding internally.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import EvaluationError
from repro.slp.grammar import SLP
from repro.spanner.automaton import SpannerNFA
from repro.spanner.markers import Pairs, from_span_tuple, group_by_position
from repro.spanner.spans import SpanTuple
from repro.spanner.transform import END_SYMBOL, pad_slp, pad_spanner

from repro.core.membership import slp_in_language


def splice_markers(slp: SLP, pairs: Pairs) -> SLP:
    """The SLP ``S'`` with ``D(S') = m(D(S), Λ)`` (Appendix B construction).

    Each marker-set symbol becomes a fresh terminal (a ``frozenset``); every
    nonterminal on a root-to-leaf path towards an insertion position is
    copied once, so ``size(S') = size(S) + O(|Λ| · depth(S))``.

    Markers may sit at positions ``1 .. d`` only — i.e. strictly before some
    document symbol.  (Evaluation code pads the document first so that
    position ``d + 1`` becomes an ordinary position.)
    """
    grouped = group_by_position(pairs)
    if not grouped:
        return slp
    length = slp.length()
    if max(grouped) > length:
        raise EvaluationError(
            f"marker position {max(grouped)} exceeds the document length {length}; "
            "pad the document first (see pad_slp)"
        )
    inner = dict(slp.inner_rules)
    leaves = dict(slp.leaf_rules)
    counter = [0]

    def marker_leaf(symbol: frozenset) -> object:
        name = ("T", symbol)
        leaves[name] = symbol
        return name

    def fresh() -> str:
        counter[0] += 1
        return f"_mc{counter[0]}"

    # positions are 1-based; offsets inside the start nonterminal are 0-based
    offsets = {pos - 1: symbol for pos, symbol in grouped.items()}
    start = _rewrite_iterative(slp, inner, offsets, marker_leaf, fresh)
    return SLP(inner, leaves, start)


def _rewrite_iterative(slp, inner, offsets, marker_leaf, fresh):
    """The splice descent, iteratively (deep SLPs would overflow recursion).

    Work items carry ``(name, offsets-inside-name, slot)``; ``slot`` is where
    the rewritten name gets written so parents can pick it up children-first.
    """
    results: Dict[int, object] = {}
    stack = [(slp.start, offsets, 0)]
    slot_counter = [0]

    def new_slot() -> int:
        slot_counter[0] += 1
        return slot_counter[0]

    pending = []  # (name, left, right, left_slot, right_slot, out_slot)
    while stack:
        name, offs, slot = stack.pop()
        if not offs:
            results[slot] = name
            continue
        if slp.is_leaf(name):
            (symbol,) = offs.values()
            new_name = fresh()
            inner[new_name] = (marker_leaf(symbol), name)
            results[slot] = new_name
            continue
        left, right = slp.children(name)
        left_len = slp.length(left)
        left_offs = {o: s for o, s in offs.items() if o < left_len}
        right_offs = {o - left_len: s for o, s in offs.items() if o >= left_len}
        left_slot, right_slot = new_slot(), new_slot()
        pending.append((name, left, right, left_slot, right_slot, slot))
        stack.append((left, left_offs, left_slot))
        stack.append((right, right_offs, right_slot))

    # resolve pending nodes children-first (they were appended root-first)
    for name, left, right, left_slot, right_slot, slot in reversed(pending):
        new_left = results[left_slot]
        new_right = results[right_slot]
        if new_left is left and new_right is right:
            results[slot] = name
        else:
            new_name = fresh()
            inner[new_name] = (new_left, new_right)
            results[slot] = new_name
    return results[0]


def model_check(
    slp: SLP,
    automaton: SpannerNFA,
    span_tuple: SpanTuple,
    end_symbol: str = END_SYMBOL,
) -> bool:
    """Whether ``span_tuple ∈ ⟦M⟧(D)`` (Theorem 5.1.2).

    >>> from repro.slp.families import power_slp
    >>> from repro.spanner.regex import compile_spanner
    >>> from repro.spanner.spans import Span, SpanTuple
    >>> slp = power_slp("ab", 10)                       # (ab)^1024
    >>> spanner = compile_spanner(r".*(?P<x>ab).*", alphabet="ab")
    >>> model_check(slp, spanner, SpanTuple({"x": Span(3, 5)}))
    True
    >>> model_check(slp, spanner, SpanTuple({"x": Span(2, 4)}))
    False
    """
    if not span_tuple.is_valid_for(slp.length()):
        return False
    padded_slp = pad_slp(slp, end_symbol)
    padded_nfa = pad_spanner(automaton.eliminate_epsilon(), end_symbol)
    pairs = from_span_tuple(span_tuple)
    spliced = splice_markers(padded_slp, pairs)
    return slp_in_language(spliced, padded_nfa)
