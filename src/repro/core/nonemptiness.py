"""Non-emptiness: is ``⟦M⟧(D) ≠ ∅``?  (Theorem 5.1.1)

Reduction of Sec. 5: replace every marker-set transition of ``M`` by an
ε-transition, eliminate ε, and check membership of the compressed document
in the resulting regular language over Σ.  Total time
``O(|M| + size(S) · q^3)`` in data complexity ``O(size(S))``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet

from repro.slp.grammar import SLP
from repro.spanner.automaton import EPSILON, SpannerNFA
from repro.spanner.marked_words import is_marker_item

from repro.core.membership import slp_in_language


def project_to_sigma(automaton: SpannerNFA) -> SpannerNFA:
    """The NFA ``M'`` over Σ: marker-set arcs become ε-arcs, then ε-free.

    ``D ∈ L(M')`` iff some subword-marked word ``w`` with ``e(w) = D`` is
    accepted by ``M`` — i.e. iff ``⟦M⟧(D) ≠ ∅``.
    """
    transitions: Dict[int, Dict[object, FrozenSet[int]]] = {}
    for source, symbol, target in automaton.arcs():
        if is_marker_item(symbol):
            symbol = EPSILON
        row = transitions.setdefault(source, {})
        row[symbol] = row.get(symbol, frozenset()) | {target}
    projected = SpannerNFA(automaton.num_states, transitions, automaton.accepting)
    return projected.eliminate_epsilon()


def is_nonempty(slp: SLP, automaton: SpannerNFA) -> bool:
    """Whether ``⟦M⟧(D) ≠ ∅`` for the SLP-compressed document ``D`` (Thm 5.1.1).

    >>> from repro.slp.families import power_slp
    >>> from repro.spanner.regex import compile_spanner
    >>> slp = power_slp("ab", 20)              # document of length 2 * 2^20
    >>> spanner = compile_spanner(r".*(?P<x>ab).*", alphabet="ab")
    >>> is_nonempty(slp, spanner)
    True
    >>> no_c = compile_spanner(r".*(?P<x>aa).*", alphabet="ab")
    >>> is_nonempty(slp, no_c)
    False
    """
    return slp_in_language(slp, project_to_sigma(automaton))
