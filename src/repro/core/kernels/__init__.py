"""Pluggable bit-plane kernel backends for the evaluation hot loops.

The kernel subsystem owns the three ``O(size(S) · q²)``-ish inner loops —
the Lemma 6.5 matrix build, the Lemma 4.5 boolean product and the
counting-table recurrence — plus the ``.prep`` word-section codec, behind
the narrow :class:`~repro.core.kernels.base.Kernel` interface.  Two
backends ship:

* ``"python"`` — :class:`~repro.core.kernels.base.PythonKernel`, the
  dependency-free reference (Python bigint rows);
* ``"numpy"`` — :class:`~repro.core.kernels.numpy_kernel.NumpyKernel`,
  planes as uint64 ndarrays with whole-row broadcast AND/any reductions,
  and zero-copy ``np.frombuffer`` decoding of stored ``.prep`` planes.

**Selection.**  ``resolve_kernel(None)`` / ``resolve_kernel("auto")``
auto-detects: the numpy backend when numpy is importable on a
little-endian host, the reference kernel otherwise — importing
:mod:`repro` never requires numpy, and a missing numpy silently falls
back.  An *explicit* ``"numpy"`` request on a host without numpy raises,
never silently degrades.  The choice is threaded through every layer
that builds a :class:`~repro.core.matrices.Preprocessing`:
``Engine(kernel=...)``, :class:`~repro.engine.spec.EngineConfig` (so
parallel workers hydrate the same backend), the CLI ``--kernel`` flag and
:meth:`~repro.store.prepstore.PreprocessingStore.load`.

Both backends are bit-identical by contract — the differential harness
and the cross-kernel property tests enforce it — so the selection is
purely a performance choice.
"""

from __future__ import annotations

import sys
from typing import Optional, Tuple, Union

from repro.errors import EvaluationError

from repro.core.kernels.base import Kernel, PYTHON_KERNEL, PythonKernel

#: What the CLI ``--kernel`` flag accepts.
KERNEL_CHOICES = ("auto", "python", "numpy")

#: tri-state cache: None = not probed yet, else the availability verdict.
_numpy_usable: Optional[bool] = None
_numpy_kernel: Optional[Kernel] = None


def numpy_available() -> bool:
    """Whether the numpy backend can be used on this host.

    Requires an importable numpy *and* a little-endian host — the uint64
    word layout is shared bit-for-bit with the on-disk ``.prep`` format,
    which is little-endian.  The probe actually imports (a numpy that is
    installed but broken counts as unavailable) and the verdict is
    cached; the probe only ever runs when something asks about numpy, so
    importing :mod:`repro` alone stays numpy-free.
    """
    global _numpy_usable
    if _numpy_usable is None:
        if sys.byteorder != "little":
            _numpy_usable = False
        else:
            try:
                import numpy  # noqa: F401

                _numpy_usable = True
            except ImportError:
                _numpy_usable = False
    return _numpy_usable


def _get_numpy_kernel() -> Optional[Kernel]:
    global _numpy_kernel, _numpy_usable
    if _numpy_kernel is None and numpy_available():
        try:
            from repro.core.kernels.numpy_kernel import NumpyKernel
        except ImportError:  # pragma: no cover - probed importable above
            _numpy_usable = False
            return None
        _numpy_kernel = NumpyKernel()
    return _numpy_kernel


def available_kernels() -> Tuple[str, ...]:
    """Names of the backends usable on this host, reference first."""
    return ("python", "numpy") if numpy_available() else ("python",)


def default_kernel_name() -> str:
    """What ``"auto"`` resolves to here."""
    return "numpy" if numpy_available() else "python"


def resolve_kernel(spec: Union[None, str, Kernel] = None) -> Kernel:
    """The :class:`Kernel` for ``spec`` (``None``/``"auto"`` auto-detects).

    >>> resolve_kernel("python").name
    'python'
    >>> resolve_kernel(resolve_kernel("python")).name   # instances pass through
    'python'
    """
    if isinstance(spec, Kernel):
        return spec
    if spec is None or spec == "auto":
        kernel = _get_numpy_kernel()
        return kernel if kernel is not None else PYTHON_KERNEL
    if spec == "python":
        return PYTHON_KERNEL
    if spec == "numpy":
        kernel = _get_numpy_kernel()
        if kernel is None:
            raise EvaluationError(
                "kernel 'numpy' requested but numpy is not usable here "
                "(not installed, broken, or a big-endian host); install "
                "numpy or use kernel='python'"
            )
        return kernel
    raise EvaluationError(
        f"unknown kernel {spec!r}; expected one of {KERNEL_CHOICES} "
        "or a Kernel instance"
    )


__all__ = [
    "EvaluationError",
    "KERNEL_CHOICES",
    "Kernel",
    "PythonKernel",
    "PYTHON_KERNEL",
    "available_kernels",
    "default_kernel_name",
    "numpy_available",
    "resolve_kernel",
]
