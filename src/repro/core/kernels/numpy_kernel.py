"""Vectorised kernel backend: bit-planes as uint64 ndarrays.

Only imported on demand by :func:`repro.core.kernels.resolve_kernel` —
importing :mod:`repro` (or this package's ``__init__``) must never require
numpy.

**Layout.**  A plane of ``n`` rows over ``q`` states is an
``(n, row_words)`` array of ``uint64`` words, ``row_words = ceil(q/64)``,
word ``w`` of row ``i`` holding bits ``64·w .. 64·w+63`` little-endian —
bit-for-bit the layout of the ``.prep`` store's word sections
(:mod:`repro.store.prepstore` ``_pack_words``), which is what makes the
restore path a zero-copy ``np.frombuffer`` view.  For ``q <= 64``
(``row_words == 1``) the planes stay numpy-native inside
:class:`~repro.core.matrices.Preprocessing` (1-D ``uint64`` arrays whose
scalars the accessors normalise with ``int()``); wider automata are
materialised back to Python bigint rows after the vectorised build, so
every consumer sees the same logical values either way.

**The Lemma 6.5 parent rule**, vectorised: for ``A -> B C`` the whole
``I_A`` block is one broadcast AND —
``I3[i, j, w] = notbot_B[i, w] & columns(notbot_C)[j, w]`` over the
``(q, q, row_words)`` cube — followed by ``any``-reductions for the
``notbot``/``one`` row planes, instead of the per-``(i, j)`` Python loop.
Transposed column planes are built with ``np.unpackbits`` /
``np.packbits`` (``bitorder="little"``) and cached per right child,
mirroring the reference kernel.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Sequence, SupportsInt, Tuple, Union

import numpy as np

from repro.core.kernels.base import (
    Kernel,
    LeafTables,
    Planes,
    PYTHON_KERNEL,
    leaf_plane_rows,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.matrices import Preprocessing
    from repro.slp.grammar import SLP

#: The on-disk (and in-memory) word type: little-endian uint64.
WORD = np.dtype("<u8")

#: Below this many states the per-call ndarray set-up costs more than the
#: bigint loop it replaces; delegate tiny products to the reference kernel.
MIN_VECTOR_Q = 32

Rows = Union[List[int], np.ndarray]


def _as_words(rows: Rows, row_words: int) -> np.ndarray:
    """Any plane container as an ``(n, row_words)`` uint64 word array."""
    if isinstance(rows, np.ndarray):
        return rows.reshape(len(rows), row_words)
    if row_words == 1:
        return np.array(rows, dtype=np.uint64).reshape(len(rows), 1)
    width = row_words * 8
    blob = b"".join(int(value).to_bytes(width, "little") for value in rows)
    return np.frombuffer(blob, dtype=WORD).reshape(len(rows), row_words)


def _unpack_bits(words: np.ndarray, q: int) -> np.ndarray:
    """``(n, row_words)`` words -> ``(n, q)`` 0/1 bytes (bit ``j`` -> column ``j``)."""
    u8 = np.ascontiguousarray(words).view(np.uint8)
    return np.unpackbits(u8, axis=1, bitorder="little")[:, :q]


def _pack_rows(bits: np.ndarray, row_words: int) -> np.ndarray:
    """``(n, q)`` 0/1 values -> ``(n, row_words)`` uint64 row words."""
    packed = np.packbits(bits, axis=1, bitorder="little")
    width = row_words * 8
    if packed.shape[1] != width:
        padded = np.zeros((packed.shape[0], width), dtype=np.uint8)
        padded[:, : packed.shape[1]] = packed
        packed = padded
    return np.ascontiguousarray(packed).view(np.uint64)


def _to_int_rows(words: np.ndarray, row_words: int) -> List[int]:
    """``(n, row_words)`` word array back to Python bigint rows."""
    if row_words == 1:
        return words.reshape(-1).tolist()
    data = np.ascontiguousarray(words).tobytes()
    width = row_words * 8
    from_bytes = int.from_bytes
    return [
        from_bytes(data[k : k + width], "little")
        for k in range(0, len(data), width)
    ]


class NumpyKernel(Kernel):
    """Vectorised backend over the shared uint64 word layout."""

    name = "numpy"

    def build_planes(
        self, slp: "SLP", order: List[object], q: int, leaf_tables: LeafTables
    ) -> Planes:
        row_words = (q + 63) // 64
        notbot: Dict[object, np.ndarray] = {}
        one: Dict[object, np.ndarray] = {}
        inner_i: Dict[object, np.ndarray] = {}

        cols_cache: Dict[object, Tuple[np.ndarray, np.ndarray]] = {}

        def columns(child: object) -> Tuple[np.ndarray, np.ndarray]:
            cached = cols_cache.get(child)
            if cached is None:
                nb_t = _unpack_bits(notbot[child], q).T
                one_t = _unpack_bits(one[child], q).T
                cached = (_pack_rows(nb_t, row_words), _pack_rows(one_t, row_words))
                cols_cache[child] = cached
            return cached

        for name in order:
            if slp.is_leaf(name):
                nb_rows, one_rows = leaf_plane_rows(leaf_tables, name, q)
                notbot[name] = _as_words(nb_rows, row_words)
                one[name] = _as_words(one_rows, row_words)
                continue
            left, right = slp.children(name)
            right_nbc, right_onec = columns(right)
            left_nb = notbot[left]
            left_one = one[left]
            # The whole parent rule in four broadcast expressions over the
            # (q, q, row_words) cube — no per-(i, j) Python iteration.
            cube = left_nb[:, None, :] & right_nbc[None, :, :]
            nb_bits = cube.any(axis=2)
            one_bits = (left_one[:, None, :] & right_nbc[None, :, :]).any(axis=2)
            one_bits |= (left_nb[:, None, :] & right_onec[None, :, :]).any(axis=2)
            notbot[name] = _pack_rows(nb_bits, row_words)
            one[name] = _pack_rows(one_bits, row_words)
            inner_i[name] = cube.reshape(q * q, row_words)

        if row_words == 1:
            # Native storage: 1-D uint64 arrays; accessors int()-normalise.
            return (
                {n: a.reshape(q) for n, a in notbot.items()},
                {n: a.reshape(q) for n, a in one.items()},
                {n: a.reshape(q * q) for n, a in inner_i.items()},
            )
        # Multi-word rows have no scalar form — materialise bigint rows.
        return (
            {n: _to_int_rows(a, row_words) for n, a in notbot.items()},
            {n: _to_int_rows(a, row_words) for n, a in one.items()},
            {n: _to_int_rows(a, row_words) for n, a in inner_i.items()},
        )

    def bool_multiply(self, a: List[int], b: List[int]) -> List[int]:
        q = len(a)
        if q < MIN_VECTOR_Q:
            return PYTHON_KERNEL.bool_multiply(a, b)
        row_words = (q + 63) // 64
        a_bits = _unpack_bits(_as_words(a, row_words), q)
        b_words = _as_words(b, row_words)
        # out[i] = OR of the rows of b selected by the set bits of a[i].
        selected = np.where(a_bits[:, :, None] != 0, b_words[None, :, :], 0)
        return _to_int_rows(np.bitwise_or.reduce(selected, axis=1), row_words)

    def build_counts(self, prep: "Preprocessing") -> Dict[object, List[int]]:
        q = prep.q
        slp = prep.slp
        row_words = (q + 63) // 64
        flat: Dict[object, List[int]] = {}
        for name in prep.order:
            if slp.is_leaf(name):
                row = [0] * (q * q)
                for (i, j), entries in prep.leaf_tables[name].items():
                    row[i * q + j] = len(entries)
                flat[name] = row
                continue
            left, right = slp.children(name)
            left_flat, right_flat = flat[left], flat[right]
            # All (cell, k) index pairs of the I plane in one nonzero scan
            # (a cell is nonzero iff its notbot bit is set); the exact
            # bigint multiply-accumulate stays in Python — counts may be
            # astronomically large — but runs over precomputed flat
            # indices with no per-row mask decoding.
            i_bits = _unpack_bits(_as_words(prep.I[name], row_words), q)
            cells, ks = np.nonzero(i_bits)
            left_idx = (cells // q * q + ks).tolist()
            right_idx = (ks * q + cells % q).tolist()
            row = [0] * (q * q)
            for cell, li, ri in zip(cells.tolist(), left_idx, right_idx):
                row[cell] += left_flat[li] * right_flat[ri]
            flat[name] = row
        return flat

    def decode_words(
        self, buf: bytes, offset: int, count: int, row_words: int
    ) -> Sequence[SupportsInt]:
        if row_words == 1:
            # Zero-copy: a read-only view straight into the payload bytes.
            return np.frombuffer(buf, dtype=WORD, count=count, offset=offset)
        # Multi-word rows are Python bigints either way; share the codec.
        return PYTHON_KERNEL.decode_words(buf, offset, count, row_words)
