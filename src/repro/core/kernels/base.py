"""The kernel interface and the dependency-free :class:`PythonKernel`.

A *kernel* owns the word-level hot loops of the evaluation pipeline — the
pieces whose cost is ``O(size(S) · q²)`` words or worse — behind a narrow
interface, so the surrounding machinery (engine, store, parallel fleet)
never cares how a bit-plane is laid out:

* :meth:`Kernel.build_planes` — the Lemma 6.5 recursive matrix build
  (the dominant cold-start cost);
* :meth:`Kernel.bool_multiply` — the Lemma 4.5 boolean matrix product
  behind compressed membership;
* :meth:`Kernel.build_counts` — the counting-table recurrence
  (Lemmas 6.9/8.7), producing per-name flat ``i*q+j`` count vectors;
* :meth:`Kernel.decode_words` — the ``.prep`` word-section codec of the
  preprocessing store's restore path.

**Layout contract.**  All kernels speak the same logical layout: per
nonterminal ``A`` the matrix ``R_A`` is ``q`` *row bitmasks* (bit ``j`` of
row ``i`` set iff the property holds at ``(i, j)``) and ``I_A`` is a flat
row-major vector of ``q·q`` intermediate-state bitmasks.  A row/mask value
may be a Python ``int`` or any int-convertible scalar (``int(value)``
must yield the identical nonnegative integer); containers must support
``len``, indexing and slicing.  :meth:`~repro.core.matrices.Preprocessing`
accessors normalise every value with ``int()`` on the way out, so two
kernels that agree on the integers are observationally identical —
the differential harness and the cross-kernel property tests hold them
bit-identical.

:class:`PythonKernel` is the reference implementation: plain Python
bigint rows, no third-party dependency, importable everywhere.  The
vectorised backend lives in :mod:`repro.core.kernels.numpy_kernel` and is
only imported on demand (importing :mod:`repro` must never require
numpy).
"""

from __future__ import annotations

import sys
from array import array
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Mapping,
    Sequence,
    SupportsInt,
    Tuple,
)

from repro.core.boolmat import bits_list, multiply
from repro.spanner.markers import Pairs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.matrices import Preprocessing
    from repro.slp.grammar import SLP

#: The on-disk word sections are little-endian; the fast array('Q') codec
#: is only valid on little-endian hosts (mirrors the store's own guard).
_LITTLE_ENDIAN = sys.byteorder == "little"

#: One plane container: rows of int-convertible scalars (Python bigints
#: for the reference kernel, uint64 ndarrays for numpy).  Mapping (not
#: Dict) so each backend can return its native dict/array-dict type.
PlaneRows = Sequence[SupportsInt]

Planes = Tuple[
    Mapping[object, PlaneRows],
    Mapping[object, PlaneRows],
    Mapping[object, PlaneRows],
]

#: leaf nonterminal -> {(i, j) -> sorted tuple of partial marker sets}.
LeafTables = Dict[object, Dict[Tuple[int, int], Tuple[Pairs, ...]]]


def leaf_plane_rows(
    leaf_tables: LeafTables, name: object, q: int
) -> Tuple[List[int], List[int]]:
    """The (notbot, one) row bitmasks of one leaf nonterminal, as ints.

    Shared by every kernel: leaf planes are ``O(q)`` work off the (small)
    leaf tables, so there is nothing to vectorise.
    """
    nb_rows = [0] * q
    one_rows = [0] * q
    for (i, j), entries in leaf_tables[name].items():
        if entries:
            nb_rows[i] |= 1 << j
            if entries != ((),):
                one_rows[i] |= 1 << j
    return nb_rows, one_rows


class Kernel:
    """Abstract bit-plane kernel backend (see the module docstring)."""

    #: Registry name; also what ``repro stats --profile`` reports.
    name: str = "abstract"

    def build_planes(
        self, slp: "SLP", order: List[object], q: int, leaf_tables: LeafTables
    ) -> Planes:
        """The Lemma 6.5 tables ``(notbot, one, I)`` for every name in ``order``."""
        raise NotImplementedError

    def bool_multiply(self, a: List[int], b: List[int]) -> List[int]:
        """Boolean matrix product of two row-bitmask matrices (Lemma 4.5)."""
        raise NotImplementedError

    def build_counts(self, prep: "Preprocessing") -> Dict[object, List[int]]:
        """Per-name flat ``i*q+j`` vectors of ``|M_A[i,j]|`` (exact bigints)."""
        raise NotImplementedError

    def decode_words(
        self, buf: bytes, offset: int, count: int, row_words: int
    ) -> Sequence[SupportsInt]:
        """``count`` little-endian ``row_words``-word fields of ``buf``.

        The ``.prep`` restore codec: the result is a length-``count``
        sequence of int-convertible row values whose slices the store
        attaches as plane containers.  Callers bounds-check the section
        before calling.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class PythonKernel(Kernel):
    """Reference backend: Python bigint rows, zero dependencies."""

    name = "python"

    def build_planes(
        self, slp: "SLP", order: List[object], q: int, leaf_tables: LeafTables
    ) -> Planes:
        notbot: Dict[object, List[int]] = {}
        one: Dict[object, List[int]] = {}
        I: Dict[object, List[int]] = {}

        # Transposed (notbot, one) planes per right child, built once per
        # nonterminal that actually occurs as one — transient build state,
        # freed with this frame.
        cols_cache: Dict[object, Tuple[List[int], List[int]]] = {}

        def columns(child: object) -> Tuple[List[int], List[int]]:
            cached = cols_cache.get(child)
            if cached is None:
                nb_rows, one_rows = notbot[child], one[child]
                nb_cols = [0] * q
                one_cols = [0] * q
                for i in range(q):
                    bit = 1 << i
                    for j in bits_list(nb_rows[i]):
                        nb_cols[j] |= bit
                    for j in bits_list(one_rows[i]):
                        one_cols[j] |= bit
                cached = (nb_cols, one_cols)
                cols_cache[child] = cached
            return cached

        for name in order:
            if slp.is_leaf(name):
                notbot[name], one[name] = leaf_plane_rows(leaf_tables, name, q)
                continue
            left, right = slp.children(name)
            left_nb, left_one = notbot[left], one[left]
            right_nbc, right_onec = columns(right)
            nb_rows = [0] * q
            one_rows = [0] * q
            masks = [0] * (q * q)
            for i in range(q):
                nb_i = left_nb[i]
                if not nb_i:
                    continue
                one_i = left_one[i]
                base = i * q
                row_nb = row_one = 0
                for j in range(q):
                    mask = nb_i & right_nbc[j]
                    if not mask:
                        continue
                    masks[base + j] = mask
                    bit = 1 << j
                    row_nb |= bit
                    if (one_i & mask) or (right_onec[j] & mask):
                        row_one |= bit
                nb_rows[i] = row_nb
                one_rows[i] = row_one
            I[name] = masks
            notbot[name] = nb_rows
            one[name] = one_rows
        return notbot, one, I

    def bool_multiply(self, a: List[int], b: List[int]) -> List[int]:
        return multiply(a, b)

    def build_counts(self, prep: "Preprocessing") -> Dict[object, List[int]]:
        q = prep.q
        slp = prep.slp
        flat: Dict[object, List[int]] = {}
        for name in prep.order:
            row = [0] * (q * q)
            if slp.is_leaf(name):
                for (i, j), entries in prep.leaf_tables[name].items():
                    row[i * q + j] = len(entries)
                flat[name] = row
                continue
            left, right = slp.children(name)
            left_flat, right_flat = flat[left], flat[right]
            for i in range(q):
                nb = prep.notbot_row(name, i)
                if not nb:
                    continue
                base = i * q
                for j in bits_list(nb):
                    total = 0
                    for k in bits_list(prep.intermediate_mask(name, i, j)):
                        total += left_flat[base + k] * right_flat[k * q + j]
                    row[base + j] = total
            flat[name] = row
        return flat

    def decode_words(
        self, buf: bytes, offset: int, count: int, row_words: int
    ) -> List[int]:
        end = offset + count * row_words * 8
        if row_words == 1 and _LITTLE_ENDIAN:
            values = array("Q")
            values.frombytes(memoryview(buf)[offset:end])
            return values.tolist()  # one C call
        width = row_words * 8
        from_bytes = int.from_bytes
        return [
            from_bytes(buf[k : k + width], "little")
            for k in range(offset, end, width)
        ]


#: The shared reference instance (kernels are stateless).
PYTHON_KERNEL = PythonKernel()
