"""The paper's core contribution: spanner evaluation on SLP-compressed docs.

* :mod:`~repro.core.membership` — compressed membership (Lemma 4.5);
* :mod:`~repro.core.nonemptiness` — Theorem 5.1.1;
* :mod:`~repro.core.model_checking` — Theorem 5.1.2;
* :mod:`~repro.core.matrices` — Lemma 6.5 preprocessing;
* :mod:`~repro.core.computation` — Theorem 7.1;
* :mod:`~repro.core.mtrees` / :mod:`~repro.core.enumerate_trees` /
  :mod:`~repro.core.enumeration` — Theorem 8.10;
* :mod:`~repro.core.evaluator` — the one-stop facade.
"""

from repro.core.computation import compute, compute_marker_sets
from repro.core.counting import (
    CountingTables,
    RankedAccess,
    count_results,
    ranked_access,
)
from repro.core.enumeration import enumerate_marker_sets, enumerate_spanner
from repro.core.evaluator import CompressedSpannerEvaluator
from repro.core.incremental import IncrementalSpannerIndex
from repro.core.matrices import BASE, BOT, EMP, ONE, Preprocessing, preprocess
from repro.core.membership import slp_in_language, transition_matrices
from repro.core.model_checking import model_check, splice_markers
from repro.core.nonemptiness import is_nonempty, project_to_sigma

__all__ = [
    "BASE",
    "BOT",
    "CompressedSpannerEvaluator",
    "CountingTables",
    "EMP",
    "IncrementalSpannerIndex",
    "ONE",
    "Preprocessing",
    "RankedAccess",
    "compute",
    "compute_marker_sets",
    "count_results",
    "ranked_access",
    "enumerate_marker_sets",
    "enumerate_spanner",
    "is_nonempty",
    "model_check",
    "preprocess",
    "project_to_sigma",
    "slp_in_language",
    "splice_markers",
    "transition_matrices",
]
