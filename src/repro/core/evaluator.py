"""High-level facade: all four evaluation tasks behind one object.

:class:`CompressedSpannerEvaluator` bundles the paper's four tasks
(Sec. 1.3) for one (spanner, compressed document) pair, caching the padded
automata and the Lemma 6.5 preprocessing between calls:

=================  ==========================================  ============
task               method                                      paper
=================  ==========================================  ============
non-emptiness      :meth:`is_nonempty`                         Thm 5.1.1
model checking     :meth:`model_check`                         Thm 5.1.2
computation        :meth:`evaluate`                            Thm 7.1
enumeration        :meth:`enumerate` / :meth:`enumerate_raw`   Thm 8.10
=================  ==========================================  ============
"""

from __future__ import annotations

from typing import FrozenSet, Iterator, Optional

from repro.errors import EvaluationError
from repro.slp.balance import ensure_balanced
from repro.slp.grammar import SLP
from repro.spanner.automaton import SpannerNFA
from repro.spanner.markers import Pairs, to_span_tuple
from repro.spanner.spans import SpanTuple
from repro.spanner.transform import END_SYMBOL, pad_slp, pad_spanner

from repro.core.computation import compute_marker_sets
from repro.core.enumeration import enumerate_marker_sets
from repro.core.matrices import Preprocessing
from repro.core.membership import slp_in_language
from repro.core.model_checking import splice_markers
from repro.core.nonemptiness import project_to_sigma
from repro.spanner.markers import from_span_tuple


class CompressedSpannerEvaluator:
    """Evaluate one regular spanner over one SLP-compressed document.

    Parameters
    ----------
    spanner:
        A :class:`~repro.spanner.automaton.SpannerNFA` (or DFA) over
        ``Σ ∪ P(Γ_X)``, e.g. from
        :func:`~repro.spanner.regex.compile_spanner`.
    slp:
        The compressed document.
    balance:
        Rebalance the SLP to depth ``O(log d)`` first (Theorem 4.3 /
        DESIGN.md §3); this is what makes the enumeration delay
        logarithmic in the document length.  Default True.
    end_symbol:
        The padding sentinel (must not occur in the document or automaton).

    >>> from repro.slp.construct import balanced_slp
    >>> from repro.spanner.regex import compile_spanner
    >>> ev = CompressedSpannerEvaluator(
    ...     compile_spanner(r".*(?P<x>a+)b.*", alphabet="ab"),
    ...     balanced_slp("aabab"),
    ... )
    >>> ev.is_nonempty()
    True
    >>> sorted(str(t) for t in ev.evaluate())
    ['SpanTuple(x=[1,3⟩)', 'SpanTuple(x=[2,3⟩)', 'SpanTuple(x=[4,5⟩)']
    >>> ev.count()
    3
    """

    def __init__(
        self,
        spanner: SpannerNFA,
        slp: SLP,
        balance: bool = True,
        end_symbol: str = END_SYMBOL,
    ) -> None:
        self.spanner = spanner
        self.slp = ensure_balanced(slp) if balance else slp
        self.end_symbol = end_symbol
        self._base = spanner.eliminate_epsilon()
        self._padded_slp: Optional[SLP] = None
        self._sigma_nfa: Optional[SpannerNFA] = None
        self._padded_nfa: Optional[SpannerNFA] = None
        self._padded_dfa: Optional[SpannerNFA] = None
        self._prep_nfa: Optional[Preprocessing] = None
        self._prep_dfa: Optional[Preprocessing] = None

    # -- lazily-built shared structures ---------------------------------

    @property
    def padded_slp(self) -> SLP:
        if self._padded_slp is None:
            self._padded_slp = pad_slp(self.slp, self.end_symbol)
        return self._padded_slp

    @property
    def padded_nfa(self) -> SpannerNFA:
        if self._padded_nfa is None:
            self._padded_nfa = pad_spanner(self._base, self.end_symbol)
        return self._padded_nfa

    @property
    def padded_dfa(self) -> SpannerNFA:
        if self._padded_dfa is None:
            if self.padded_nfa.is_deterministic:
                self._padded_dfa = self.padded_nfa
            else:
                self._padded_dfa = self.padded_nfa.determinize().trim()
        return self._padded_dfa

    def preprocessing(self, deterministic: bool = False) -> Preprocessing:
        """The Lemma 6.5 tables (cached; one NFA and one DFA variant)."""
        if deterministic:
            if self._prep_dfa is None:
                self._prep_dfa = Preprocessing(self.padded_slp, self.padded_dfa)
            return self._prep_dfa
        if self._prep_nfa is None:
            self._prep_nfa = Preprocessing(self.padded_slp, self.padded_nfa)
        return self._prep_nfa

    # -- the four tasks -------------------------------------------------

    def is_nonempty(self) -> bool:
        """``⟦M⟧(D) ≠ ∅`` in time ``O(|M| + size(S) · q^3)`` (Thm 5.1.1)."""
        if self._sigma_nfa is None:
            self._sigma_nfa = project_to_sigma(self._base)
        return slp_in_language(self.slp, self._sigma_nfa)

    def model_check(self, span_tuple: SpanTuple) -> bool:
        """``t ∈ ⟦M⟧(D)`` in time ``O((size(S)+|X| depth(S)) q^3)`` (Thm 5.1.2)."""
        if not span_tuple.is_valid_for(self.slp.length()):
            return False
        spliced = splice_markers(self.padded_slp, from_span_tuple(span_tuple))
        return slp_in_language(spliced, self.padded_nfa)

    def evaluate(self) -> FrozenSet[SpanTuple]:
        """The full relation ``⟦M⟧(D)`` (Thm 7.1); works for NFAs directly."""
        marker_sets = compute_marker_sets(self.preprocessing(deterministic=False))
        return frozenset(to_span_tuple(pairs) for pairs in marker_sets)

    def enumerate(self) -> Iterator[SpanTuple]:
        """Stream ``⟦M⟧(D)`` with ``O(depth(S) · |X|)`` delay (Thm 8.10).

        Uses the determinised automaton so the stream is duplicate-free;
        determinisation affects only preprocessing, not the delay.
        """
        for pairs in self.enumerate_raw():
            yield to_span_tuple(pairs)

    def enumerate_raw(self) -> Iterator[Pairs]:
        """Like :meth:`enumerate` but yielding raw marker sets (no decoding)."""
        return enumerate_marker_sets(self.preprocessing(deterministic=True))

    def count(self) -> int:
        """``|⟦M⟧(D)|`` exactly, *without* enumerating (counting extension).

        Uses the weighted-composition tables of :mod:`repro.core.counting`
        — ``O(size(S) · q^2)`` arithmetic operations even when the relation
        has ``10^12`` tuples.  (``sum(1 for _ in enumerate_raw())`` gives
        the same number the slow way.)
        """
        from repro.core.counting import CountingTables

        return CountingTables(self.preprocessing(deterministic=True)).total()

    def ranked(self):
        """Ranked access (k-th result / slices) into ``⟦M⟧(D)``.

        Returns a :class:`repro.core.counting.RankedAccess`; see there for
        the canonical order guarantees.
        """
        from repro.core.counting import RankedAccess

        return RankedAccess(self.preprocessing(deterministic=True))

    def __repr__(self) -> str:
        return (
            f"CompressedSpannerEvaluator(doc_length={self.slp.length()}, "
            f"slp_size={self.slp.size}, spanner_states={self.spanner.num_states})"
        )
