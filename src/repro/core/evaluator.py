"""High-level facade: all four evaluation tasks behind one object.

:class:`CompressedSpannerEvaluator` bundles the paper's four tasks
(Sec. 1.3) for one (spanner, compressed document) pair, caching the padded
automata and the Lemma 6.5 preprocessing between calls:

=================  ==========================================  ============
task               method                                      paper
=================  ==========================================  ============
non-emptiness      :meth:`is_nonempty`                         Thm 5.1.1
model checking     :meth:`model_check`                         Thm 5.1.2
computation        :meth:`evaluate`                            Thm 7.1
enumeration        :meth:`enumerate` / :meth:`enumerate_raw`   Thm 8.10
=================  ==========================================  ============

Caching here is *per pair*: a new evaluator rebuilds everything.  When the
same document is queried by many spanners, the same spanner runs over a
corpus, or hot (spanner, document) pairs repeat, use
:class:`repro.engine.Engine` — it shares the padded SLPs, prepared
automata and preprocessing tables across queries through LRU caches.
"""

from __future__ import annotations

from typing import FrozenSet, Iterator, Optional

from repro.slp.grammar import SLP
from repro.spanner.automaton import SpannerNFA
from repro.spanner.markers import Pairs, to_span_tuple
from repro.spanner.spans import SpanTuple
from repro.spanner.transform import END_SYMBOL

from repro.core.computation import compute_marker_sets
from repro.core.enumeration import enumerate_marker_sets
from repro.core.matrices import Preprocessing
from repro.core.membership import slp_in_language
from repro.core.model_checking import splice_markers
from repro.core.prepared import PreparedDocument, PreparedSpanner
from repro.spanner.markers import from_span_tuple


class CompressedSpannerEvaluator:
    """Evaluate one regular spanner over one SLP-compressed document.

    Parameters
    ----------
    spanner:
        A :class:`~repro.spanner.automaton.SpannerNFA` (or DFA) over
        ``Σ ∪ P(Γ_X)``, e.g. from
        :func:`~repro.spanner.regex.compile_spanner`.
    slp:
        The compressed document.
    balance:
        Rebalance the SLP to depth ``O(log d)`` first (Theorem 4.3 /
        DESIGN.md §3); this is what makes the enumeration delay
        logarithmic in the document length.  Default True.
    end_symbol:
        The padding sentinel (must not occur in the document or automaton).
    kernel:
        The bit-plane backend (:mod:`repro.core.kernels`):
        ``None``/``"auto"`` auto-detects, ``"python"``/``"numpy"`` select
        explicitly.  Backends are bit-identical; this is purely a
        performance choice.

    >>> from repro.slp.construct import balanced_slp
    >>> from repro.spanner.regex import compile_spanner
    >>> ev = CompressedSpannerEvaluator(
    ...     compile_spanner(r".*(?P<x>a+)b.*", alphabet="ab"),
    ...     balanced_slp("aabab"),
    ... )
    >>> ev.is_nonempty()
    True
    >>> sorted(str(t) for t in ev.evaluate())
    ['SpanTuple(x=[1,3⟩)', 'SpanTuple(x=[2,3⟩)', 'SpanTuple(x=[4,5⟩)']
    >>> ev.count()
    3
    """

    def __init__(
        self,
        spanner: SpannerNFA,
        slp: SLP,
        balance: bool = True,
        end_symbol: str = END_SYMBOL,
        kernel=None,
    ) -> None:
        from repro.core.kernels import resolve_kernel

        self.spanner = spanner
        self._doc = PreparedDocument(slp, balance, end_symbol)
        self._span = PreparedSpanner(spanner, end_symbol)
        self.slp = self._doc.balanced
        self.end_symbol = end_symbol
        self.kernel = resolve_kernel(kernel)
        self._prep_nfa: Optional[Preprocessing] = None
        self._prep_dfa: Optional[Preprocessing] = None
        self._counting = None  # Optional[CountingTables], built on demand

    # -- lazily-built shared structures (see repro.core.prepared) --------

    @property
    def padded_slp(self) -> SLP:
        return self._doc.padded

    @property
    def padded_nfa(self) -> SpannerNFA:
        return self._span.padded_nfa

    @property
    def padded_dfa(self) -> SpannerNFA:
        return self._span.padded_dfa

    def preprocessing(self, deterministic: bool = False) -> Preprocessing:
        """The Lemma 6.5 tables (cached; one NFA and one DFA variant)."""
        if deterministic:
            if self._prep_dfa is None:
                self._prep_dfa = Preprocessing(
                    self.padded_slp, self.padded_dfa, kernel=self.kernel
                )
            return self._prep_dfa
        if self._prep_nfa is None:
            self._prep_nfa = Preprocessing(
                self.padded_slp, self.padded_nfa, kernel=self.kernel
            )
        return self._prep_nfa

    # -- the four tasks -------------------------------------------------

    def is_nonempty(self) -> bool:
        """``⟦M⟧(D) ≠ ∅`` in time ``O(|M| + size(S) · q^3)`` (Thm 5.1.1)."""
        return slp_in_language(self.slp, self._span.sigma, kernel=self.kernel)

    def model_check(self, span_tuple: SpanTuple) -> bool:
        """``t ∈ ⟦M⟧(D)`` in time ``O((size(S)+|X| depth(S)) q^3)`` (Thm 5.1.2)."""
        if not span_tuple.is_valid_for(self.slp.length()):
            return False
        spliced = splice_markers(self.padded_slp, from_span_tuple(span_tuple))
        return slp_in_language(spliced, self.padded_nfa, kernel=self.kernel)

    def evaluate(self) -> FrozenSet[SpanTuple]:
        """The full relation ``⟦M⟧(D)`` (Thm 7.1); works for NFAs directly."""
        marker_sets = compute_marker_sets(self.preprocessing(deterministic=False))
        return frozenset(to_span_tuple(pairs) for pairs in marker_sets)

    def enumerate(self) -> Iterator[SpanTuple]:
        """Stream ``⟦M⟧(D)`` with ``O(depth(S) · |X|)`` delay (Thm 8.10).

        Uses the determinised automaton so the stream is duplicate-free;
        determinisation affects only preprocessing, not the delay.
        """
        for pairs in self.enumerate_raw():
            yield to_span_tuple(pairs)

    def enumerate_raw(self) -> Iterator[Pairs]:
        """Like :meth:`enumerate` but yielding raw marker sets (no decoding)."""
        return enumerate_marker_sets(self.preprocessing(deterministic=True))

    def _counting_tables(self):
        """The counting tables over the DFA preprocessing (built once)."""
        from repro.core.counting import CountingTables

        if self._counting is None:
            self._counting = CountingTables(self.preprocessing(deterministic=True))
        return self._counting

    def count(self) -> int:
        """``|⟦M⟧(D)|`` exactly, *without* enumerating (counting extension).

        Uses the weighted-composition tables of :mod:`repro.core.counting`
        — ``O(size(S) · q^2)`` arithmetic operations even when the relation
        has ``10^12`` tuples.  (``sum(1 for _ in enumerate_raw())`` gives
        the same number the slow way.)
        """
        return self._counting_tables().total()

    def ranked(self):
        """Ranked access (k-th result / slices) into ``⟦M⟧(D)``.

        Returns a :class:`repro.core.counting.RankedAccess` sharing the
        cached counting tables; see there for the canonical order
        guarantees.
        """
        from repro.core.counting import RankedAccess

        tables = self._counting_tables()
        return RankedAccess(tables.prep, tables)

    def __repr__(self) -> str:
        return (
            f"CompressedSpannerEvaluator(doc_length={self.slp.length()}, "
            f"slp_size={self.slp.size}, spanner_states={self.spanner.num_states})"
        )
