"""Lazily-prepared per-document and per-spanner artifacts.

Both :class:`~repro.core.evaluator.CompressedSpannerEvaluator` (one pair)
and :class:`~repro.engine.Engine` (many pairs, cached) need the same
preparation chain before any Lemma 6.5 preprocessing can run:

* document side — balance the SLP (Theorem 4.3), then ``#``-pad it;
* spanner side — ε-eliminate, project to ``Σ`` (for non-emptiness),
  ``#``-pad, and determinize (for enumeration/counting).

This module is the single home of that chain, so the two facades cannot
drift apart; each step is computed at most once per object.
"""

from __future__ import annotations

from typing import Optional

from repro.slp.balance import ensure_balanced
from repro.slp.grammar import SLP
from repro.spanner.automaton import SpannerNFA
from repro.spanner.transform import END_SYMBOL, pad_slp, pad_spanner

from repro.core.nonemptiness import project_to_sigma


class PreparedDocument:
    """A document SLP with its balanced and padded forms built on demand."""

    __slots__ = ("source", "balanced", "end_symbol", "_padded")

    def __init__(
        self, source: SLP, balance: bool = True, end_symbol: str = END_SYMBOL
    ) -> None:
        self.source = source
        self.balanced = ensure_balanced(source) if balance else source
        self.end_symbol = end_symbol
        self._padded: Optional[SLP] = None

    @property
    def padded(self) -> SLP:
        if self._padded is None:
            self._padded = pad_slp(self.balanced, self.end_symbol)
        return self._padded


class PreparedSpanner:
    """A spanner automaton with its derived forms built on demand."""

    __slots__ = ("source", "base", "end_symbol", "_sigma", "_padded_nfa", "_padded_dfa")

    def __init__(self, source: SpannerNFA, end_symbol: str = END_SYMBOL) -> None:
        self.source = source
        self.base = source.eliminate_epsilon()
        self.end_symbol = end_symbol
        self._sigma: Optional[SpannerNFA] = None
        self._padded_nfa: Optional[SpannerNFA] = None
        self._padded_dfa: Optional[SpannerNFA] = None

    @property
    def sigma(self) -> SpannerNFA:
        """The ``Σ``-projection of the ε-free base (for non-emptiness)."""
        if self._sigma is None:
            self._sigma = project_to_sigma(self.base)
        return self._sigma

    @property
    def padded_nfa(self) -> SpannerNFA:
        if self._padded_nfa is None:
            self._padded_nfa = pad_spanner(self.base, self.end_symbol)
        return self._padded_nfa

    @property
    def padded_dfa(self) -> SpannerNFA:
        if self._padded_dfa is None:
            nfa = self.padded_nfa
            self._padded_dfa = nfa if nfa.is_deterministic else nfa.determinize().trim()
        return self._padded_dfa
