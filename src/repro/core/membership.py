"""Membership of an SLP-compressed word in a regular language (Lemma 4.5).

For every nonterminal ``A`` of the SLP we compute the boolean ``q × q``
matrix ``M_A`` with ``M_A[i, j]`` true iff the automaton can go from state
``i`` to state ``j`` while reading ``D(A)``.  Leaf matrices come straight
from the transition function; for ``A -> B C`` we multiply:
``M_A = M_B · M_C``.  Total time ``O(size(S) · q^3 / w)`` on word-RAM.

The automaton must be ε-free (``eliminate_epsilon()`` first); its symbols
must be comparable with the SLP's terminals (plain characters for document
membership, marker-set symbols as well for spliced model-checking SLPs).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import EvaluationError
from repro.slp.grammar import SLP
from repro.spanner.automaton import SpannerNFA

from repro.core.boolmat import BoolMatrix, mask_of, row_reaches, zero
from repro.core.kernels import resolve_kernel


def transition_matrices(
    slp: SLP, automaton: SpannerNFA, kernel=None
) -> Dict[object, BoolMatrix]:
    """The matrix ``M_A`` for every nonterminal ``A`` of ``slp``.

    Only the nonterminals reachable from the start symbol are computed.
    ``kernel`` selects the bit-plane backend for the per-rule products
    (:mod:`repro.core.kernels`); every backend returns the same Python-int
    rows.
    """
    if automaton.has_epsilon:
        raise EvaluationError("membership requires an ε-free automaton")
    q = automaton.num_states
    bool_multiply = resolve_kernel(kernel).bool_multiply

    symbol_matrix: Dict[object, BoolMatrix] = {}
    for source, symbol, target in automaton.arcs():
        matrix = symbol_matrix.get(symbol)
        if matrix is None:
            matrix = zero(q)
            symbol_matrix[symbol] = matrix
        matrix[source] |= 1 << target

    matrices: Dict[object, BoolMatrix] = {}
    reachable = slp.reachable()
    for name in slp.topological_order():
        if name not in reachable:
            continue
        if slp.is_leaf(name):
            matrices[name] = symbol_matrix.get(slp.terminal(name), zero(q))
        else:
            left, right = slp.children(name)
            matrices[name] = bool_multiply(matrices[left], matrices[right])
    return matrices


def slp_in_language(slp: SLP, automaton: SpannerNFA, kernel=None) -> bool:
    """Whether the compressed word ``D(S)`` is in ``L(M)`` (Lemma 4.5).

    >>> from repro.slp.families import power_slp
    >>> from repro.spanner.regex import compile_spanner
    >>> slp = power_slp("ab", 12)              # (ab)^4096, size O(12)
    >>> even_length = compile_spanner("((a|b)(a|b))*", alphabet="ab")
    >>> slp_in_language(slp, even_length.eliminate_epsilon())
    True
    """
    matrices = transition_matrices(slp, automaton, kernel)
    accept = mask_of(automaton.accepting)
    return row_reaches(matrices[slp.start], automaton.start, accept)
