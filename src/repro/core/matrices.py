"""Evaluation preprocessing: leaf tables ``M_Tx`` and matrices ``R_A``, ``I_A``.

This implements Lemma 6.5 of the paper.  For the (padded) SLP ``S`` and the
(padded, ε-free) spanner automaton ``M`` with ``q`` states it computes:

* ``M_Tx[i, j]`` for every leaf nonterminal — the partial marker sets over a
  single document symbol (Definition 6.2 restricted to leaves);
* ``R_A[i, j] ∈ {⊥, ℮, 1}`` for every nonterminal — whether ``M_A[i, j]``
  is empty, exactly ``{∅}``, or contains a nonempty marker set
  (Definition 6.4);
* ``I_A[i, j]`` for every inner nonterminal — the set of intermediate
  states ``k`` with ``R_B[i, k] ≠ ⊥`` and ``R_C[k, j] ≠ ⊥``, stored as a
  bitmask (Definition 6.4);
* ``F' = {j ∈ F : R_S0[start, j] ≠ ⊥}``, sorted ascending (the canonical
  accepting-state order shared by enumeration and ranked access).

Storage is *bit-plane*, not list-of-lists: per nonterminal ``A`` the matrix
``R_A`` is two vectors of ``q`` row bitmasks (``notbot[A][i]`` has bit ``j``
set iff ``R_A[i,j] ≠ ⊥``; ``one[A][i]`` has bit ``j`` set iff
``R_A[i,j] = 1``); ``I_A`` is a flat row-major vector of ``q·q``
intermediate-state bitmasks.  During construction the transposed column
planes of each right child are built once (not rebuilt per parent as in the
old representation), so a parent rule ``A -> B C`` costs ``O(q²)`` word
operations (one AND + two tests per entry) with no re-scan of the child
matrices.

Everything is bundled in a :class:`Preprocessing` object consumed by
:mod:`repro.core.computation`, :mod:`repro.core.enumeration` and
:mod:`repro.core.counting` through the accessor API (:meth:`r_value`,
:meth:`notbot_row`, :meth:`intermediate_mask`, :meth:`intermediate_states`,
:meth:`i_bar`, :meth:`leaf_entry`).

Total time ``O(|M| + size(S) · q^2)`` word operations (the paper states
``O(|M| + size(S) · q^3)``; bit-parallel AND saves a factor).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import EvaluationError
from repro.slp.grammar import SLP
from repro.spanner.automaton import SpannerNFA
from repro.spanner.marked_words import is_marker_item
from repro.spanner.markers import Pairs

from repro.core.boolmat import iter_bits

#: R-matrix entries (Definition 6.4).
BOT = 0  # ⊥ : M_A[i,j] = ∅
EMP = 1  # ℮ : M_A[i,j] = {∅}
ONE = 2  # 1 : M_A[i,j] contains a nonempty partial marker set

#: Sentinel intermediate state for base cases (the paper's ␣b␣).
BASE = -1


class Preprocessing:
    """Precomputed evaluation tables for one (automaton, SLP) pair.

    Both inputs must already be ``#``-padded (see
    :mod:`repro.spanner.transform`); the automaton must be ε-free.

    Consumers should go through the accessors (:meth:`r_value`,
    :meth:`notbot_row`, :meth:`one_row`, :meth:`intermediate_mask`,
    :meth:`intermediate_states`, :meth:`i_bar`, :meth:`leaf_entry`) rather
    than the raw bit-planes.
    """

    __slots__ = (
        "slp",
        "automaton",
        "q",
        "leaf_tables",
        "notbot",
        "one",
        "I",
        "final_states",
        "order",
    )

    def __init__(self, slp: SLP, automaton: SpannerNFA) -> None:
        if automaton.has_epsilon:
            raise EvaluationError("preprocessing requires an ε-free automaton")
        self.slp = slp
        self.automaton = automaton
        self.q = automaton.num_states
        #: leaf nonterminal -> {(i, j) -> sorted tuple of partial marker sets}
        self.leaf_tables: Dict[object, Dict[Tuple[int, int], Tuple[Pairs, ...]]] = {}
        #: nonterminal -> q row bitmasks; bit j of row i set iff R_A[i,j] ≠ ⊥
        self.notbot: Dict[object, List[int]] = {}
        #: nonterminal -> q row bitmasks; bit j of row i set iff R_A[i,j] = 1
        self.one: Dict[object, List[int]] = {}
        #: inner nonterminal -> flat row-major q·q intermediate-state bitmasks
        self.I: Dict[object, List[int]] = {}
        self._compute_leaf_tables()
        self._compute_matrices()
        start_mask = self.notbot[slp.start][automaton.start]
        # Sorted ascending: enumeration streams and RankedAccess.select both
        # walk this list, so construction order must be deterministic.
        self.final_states = sorted(
            j for j in automaton.accepting if (start_mask >> j) & 1
        )

    # -- Lemma 6.5, leaf part ------------------------------------------------

    def _compute_leaf_tables(self) -> None:
        # P_i = {(ℓ, Y) : ℓ --Y--> i with Y a marker-set symbol}
        incoming_marker: Dict[int, List[Tuple[int, frozenset]]] = {}
        char_arcs: List[Tuple[int, str, int]] = []
        for source, symbol, target in self.automaton.arcs():
            if is_marker_item(symbol):
                incoming_marker.setdefault(target, []).append((source, symbol))
            else:
                char_arcs.append((source, symbol, target))

        tables: Dict[object, Dict[Tuple[int, int], set]] = {}
        reachable = self.slp.reachable()
        wanted = {
            self.slp.terminal(name): name
            for name in reachable
            if self.slp.is_leaf(name)
        }
        for source, symbol, target in char_arcs:
            leaf_name = wanted.get(symbol)
            if leaf_name is None:
                continue
            bucket = tables.setdefault(leaf_name, {})
            bucket.setdefault((source, target), set()).add(())
            for origin, marker_set in incoming_marker.get(source, ()):
                pairs = tuple(sorted((1, marker) for marker in marker_set))
                bucket.setdefault((origin, target), set()).add(pairs)
        for leaf_name in wanted.values():
            entries = tables.get(leaf_name, {})
            self.leaf_tables[leaf_name] = {
                key: tuple(sorted(values)) for key, values in entries.items()
            }

    # -- Lemma 6.5, recursive part -------------------------------------------

    def _compute_matrices(self) -> None:
        q = self.q
        reachable = self.slp.reachable()
        self.order = [n for n in self.slp.topological_order() if n in reachable]

        # Transposed (notbot, one) planes per right child, built once per
        # nonterminal that actually occurs as one — transient build state,
        # freed with this frame.
        cols_cache: Dict[object, Tuple[List[int], List[int]]] = {}

        def columns(child: object) -> Tuple[List[int], List[int]]:
            cached = cols_cache.get(child)
            if cached is None:
                nb_rows, one_rows = self.notbot[child], self.one[child]
                nb_cols = [0] * q
                one_cols = [0] * q
                for i in range(q):
                    bit = 1 << i
                    for j in iter_bits(nb_rows[i]):
                        nb_cols[j] |= bit
                    for j in iter_bits(one_rows[i]):
                        one_cols[j] |= bit
                cached = (nb_cols, one_cols)
                cols_cache[child] = cached
            return cached

        for name in self.order:
            if self.slp.is_leaf(name):
                nb_rows = [0] * q
                one_rows = [0] * q
                for (i, j), entries in self.leaf_tables[name].items():
                    if entries:
                        nb_rows[i] |= 1 << j
                        if entries != ((),):
                            one_rows[i] |= 1 << j
                self.notbot[name] = nb_rows
                self.one[name] = one_rows
                continue
            left, right = self.slp.children(name)
            left_nb, left_one = self.notbot[left], self.one[left]
            right_nbc, right_onec = columns(right)
            nb_rows = [0] * q
            one_rows = [0] * q
            masks = [0] * (q * q)
            for i in range(q):
                nb_i = left_nb[i]
                if not nb_i:
                    continue
                one_i = left_one[i]
                base = i * q
                row_nb = row_one = 0
                for j in range(q):
                    mask = nb_i & right_nbc[j]
                    if not mask:
                        continue
                    masks[base + j] = mask
                    bit = 1 << j
                    row_nb |= bit
                    if (one_i & mask) or (right_onec[j] & mask):
                        row_one |= bit
                nb_rows[i] = row_nb
                one_rows[i] = row_one
            self.I[name] = masks
            self.notbot[name] = nb_rows
            self.one[name] = one_rows

    # -- accessor API used by computation / counting / enumeration -----------

    def r_value(self, name: object, i: int, j: int) -> int:
        """``R_A[i, j]`` as one of :data:`BOT` / :data:`EMP` / :data:`ONE`."""
        if not (self.notbot[name][i] >> j) & 1:
            return BOT
        return ONE if (self.one[name][i] >> j) & 1 else EMP

    def notbot_row(self, name: object, i: int) -> int:
        """Bitmask of the ``j`` with ``R_A[i, j] ≠ ⊥``."""
        return self.notbot[name][i]

    def one_row(self, name: object, i: int) -> int:
        """Bitmask of the ``j`` with ``R_A[i, j] = 1``."""
        return self.one[name][i]

    def intermediate_mask(self, name: object, i: int, j: int) -> int:
        """``I_A[i, j]`` as a bitmask over intermediate states ``k``."""
        return self.I[name][i * self.q + j]

    def intermediate_states(self, name: object, i: int, j: int) -> List[int]:
        """``I_A[i, j]`` as a list of states."""
        return list(iter_bits(self.I[name][i * self.q + j]))

    def i_bar(self, name: object, i: int, j: int) -> List[int]:
        """The paper's ``Ī_A[i,j]``: ``[BASE]`` for base cases, else ``I_A[i,j]``."""
        if self.slp.is_leaf(name) or self.r_value(name, i, j) == EMP:
            return [BASE]
        return self.intermediate_states(name, i, j)

    def leaf_entry(self, name: object, i: int, j: int) -> Tuple[Pairs, ...]:
        """``M_Tx[i, j]`` as a sorted tuple of partial marker sets."""
        return self.leaf_tables[name].get((i, j), ())

    # -- plane export / import (the persistence hooks) ------------------------

    def export_planes(self) -> dict:
        """The raw tables as one dict — the serialisation hook.

        Returns references (not copies) to ``leaf_tables``, ``notbot``,
        ``one``, ``I`` and ``final_states``; callers must treat the result
        as read-only.  Together with the (slp, automaton) pair these fully
        determine the object, so :meth:`from_planes` can restore it without
        re-running the Lemma 6.5 computation.
        """
        return {
            "leaf_tables": self.leaf_tables,
            "notbot": self.notbot,
            "one": self.one,
            "I": self.I,
            "final_states": list(self.final_states),
        }

    @classmethod
    def from_planes(
        cls, slp: SLP, automaton: SpannerNFA, planes: dict
    ) -> "Preprocessing":
        """Rebuild a :class:`Preprocessing` from :meth:`export_planes` output.

        Skips the ``O(size(S) · q²)`` table computation entirely — this is
        what makes disk-persisted warm starts cheap.  The tables must have
        been built for a structurally identical (slp, automaton) pair with
        matching nonterminal names; coverage of every reachable nonterminal
        is validated, the table *contents* are trusted.
        """
        if automaton.has_epsilon:
            raise EvaluationError("preprocessing requires an ε-free automaton")
        obj = cls.__new__(cls)
        obj.slp = slp
        obj.automaton = automaton
        obj.q = automaton.num_states
        obj.leaf_tables = planes["leaf_tables"]
        obj.notbot = planes["notbot"]
        obj.one = planes["one"]
        obj.I = planes["I"]
        obj.final_states = list(planes["final_states"])
        reachable = slp.reachable()
        obj.order = [n for n in slp.topological_order() if n in reachable]
        for name in obj.order:
            if name not in obj.notbot or name not in obj.one:
                raise EvaluationError(f"imported planes miss nonterminal {name!r}")
            if slp.is_leaf(name):
                if name not in obj.leaf_tables:
                    raise EvaluationError(f"imported planes miss leaf table {name!r}")
            elif name not in obj.I:
                raise EvaluationError(f"imported planes miss I-vector of {name!r}")
        return obj


def preprocess(slp: SLP, automaton: SpannerNFA) -> Preprocessing:
    """Run the Lemma 6.5 preprocessing (inputs must be padded, ε-free)."""
    return Preprocessing(slp, automaton)
