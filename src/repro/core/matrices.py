"""Evaluation preprocessing: leaf tables ``M_Tx`` and matrices ``R_A``, ``I_A``.

This implements Lemma 6.5 of the paper.  For the (padded) SLP ``S`` and the
(padded, ε-free) spanner automaton ``M`` with ``q`` states it computes:

* ``M_Tx[i, j]`` for every leaf nonterminal — the partial marker sets over a
  single document symbol (Definition 6.2 restricted to leaves);
* ``R_A[i, j] ∈ {⊥, ℮, 1}`` for every nonterminal — whether ``M_A[i, j]``
  is empty, exactly ``{∅}``, or contains a nonempty marker set
  (Definition 6.4);
* ``I_A[i, j]`` for every inner nonterminal — the set of intermediate
  states ``k`` with ``R_B[i, k] ≠ ⊥`` and ``R_C[k, j] ≠ ⊥``, stored as a
  bitmask (Definition 6.4);
* ``F' = {j ∈ F : R_S0[start, j] ≠ ⊥}``, sorted ascending (the canonical
  accepting-state order shared by enumeration and ranked access).

Storage is *bit-plane*, not list-of-lists: per nonterminal ``A`` the matrix
``R_A`` is two vectors of ``q`` row bitmasks (``notbot[A][i]`` has bit ``j``
set iff ``R_A[i,j] ≠ ⊥``; ``one[A][i]`` has bit ``j`` set iff
``R_A[i,j] = 1``); ``I_A`` is a flat row-major vector of ``q·q``
intermediate-state bitmasks.  During construction the transposed column
planes of each right child are built once (not rebuilt per parent as in the
old representation), so a parent rule ``A -> B C`` costs ``O(q²)`` word
operations (one AND + two tests per entry) with no re-scan of the child
matrices.

The build itself is delegated to a pluggable *kernel backend*
(:mod:`repro.core.kernels`): the dependency-free ``python`` kernel runs
the loop above over bigint rows, the ``numpy`` kernel computes whole
parent rules with broadcast AND/any reductions over uint64 word arrays.
Kernels may store plane containers in their native layout (e.g. 1-D
``uint64`` ndarrays for ``q <= 64``); the accessors below normalise every
value with ``int()``, so consumers — and the differential harness — see
bit-identical integers regardless of backend.

Everything is bundled in a :class:`Preprocessing` object consumed by
:mod:`repro.core.computation`, :mod:`repro.core.enumeration` and
:mod:`repro.core.counting` through the accessor API (:meth:`r_value`,
:meth:`notbot_row`, :meth:`intermediate_mask`, :meth:`intermediate_states`,
:meth:`i_bar`, :meth:`leaf_entry`).

Total time ``O(|M| + size(S) · q^2)`` word operations (the paper states
``O(|M| + size(S) · q^3)``; bit-parallel AND saves a factor).
"""

from __future__ import annotations

import time
from typing import Any, Dict, FrozenSet, List, Mapping, Set, Tuple, Union

from repro.errors import EvaluationError
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer
from repro.slp.grammar import SLP
from repro.spanner.automaton import SpannerNFA
from repro.spanner.marked_words import is_marker_item
from repro.spanner.markers import Marker, Pairs

from repro.core.boolmat import bits_list
from repro.core.kernels import Kernel, resolve_kernel
from repro.core.kernels.base import LeafTables, PlaneRows

#: R-matrix entries (Definition 6.4).
BOT = 0  # ⊥ : M_A[i,j] = ∅
EMP = 1  # ℮ : M_A[i,j] = {∅}
ONE = 2  # 1 : M_A[i,j] contains a nonempty partial marker set

#: Sentinel intermediate state for base cases (the paper's ␣b␣).
BASE = -1


class Preprocessing:
    """Precomputed evaluation tables for one (automaton, SLP) pair.

    Both inputs must already be ``#``-padded (see
    :mod:`repro.spanner.transform`); the automaton must be ε-free.

    Consumers should go through the accessors (:meth:`r_value`,
    :meth:`notbot_row`, :meth:`one_row`, :meth:`intermediate_mask`,
    :meth:`intermediate_states`, :meth:`i_bar`, :meth:`leaf_entry`) rather
    than the raw bit-planes.
    """

    __slots__ = (
        "slp",
        "automaton",
        "q",
        "kernel",
        "leaf_tables",
        "notbot",
        "one",
        "I",
        "final_states",
        "order",
    )

    # Annotation-only declarations (no values — compatible with __slots__).
    slp: SLP
    automaton: SpannerNFA
    q: int
    kernel: Kernel
    leaf_tables: LeafTables
    notbot: Mapping[object, PlaneRows]
    one: Mapping[object, PlaneRows]
    I: Mapping[object, PlaneRows]
    final_states: List[int]
    order: List[object]

    def __init__(
        self,
        slp: SLP,
        automaton: SpannerNFA,
        kernel: Union[None, str, Kernel] = None,
    ) -> None:
        if automaton.has_epsilon:
            raise EvaluationError("preprocessing requires an ε-free automaton")
        self.slp = slp
        self.automaton = automaton
        self.q = automaton.num_states
        #: the bit-plane backend that built (and owns the layout of) the
        #: tables; also consulted by the counting-table build.
        self.kernel = resolve_kernel(kernel)
        #: leaf nonterminal -> {(i, j) -> sorted tuple of partial marker sets}
        self.leaf_tables = {}
        self._compute_leaf_tables()
        reachable = self.slp.reachable()
        self.order = [n for n in self.slp.topological_order() if n in reachable]
        #: notbot: nonterminal -> q row bitmasks; bit j of row i set iff
        #: R_A[i,j] ≠ ⊥.  one: same, bit set iff R_A[i,j] = 1.  I: inner
        #: nonterminal -> flat row-major q·q intermediate-state bitmasks.
        #: Containers are kernel-native (int lists or uint64 ndarrays);
        #: go through the accessors, which int()-normalise.
        started = time.monotonic()
        with get_tracer().span(
            "kernel.build_planes", kernel=self.kernel.name, q=self.q
        ):
            self.notbot, self.one, self.I = self.kernel.build_planes(
                self.slp, self.order, self.q, self.leaf_tables
            )
        get_registry().histogram(
            f"kernel.{self.kernel.name}.build_planes_seconds"
        ).observe(time.monotonic() - started)
        start_mask = int(self.notbot[slp.start][automaton.start])
        # Sorted ascending: enumeration streams and RankedAccess.select both
        # walk this list, so construction order must be deterministic.
        self.final_states = sorted(
            j for j in automaton.accepting if (start_mask >> j) & 1
        )

    # -- Lemma 6.5, leaf part ------------------------------------------------

    def _compute_leaf_tables(self) -> None:
        # P_i = {(ℓ, Y) : ℓ --Y--> i with Y a marker-set symbol}
        incoming_marker: Dict[int, List[Tuple[int, FrozenSet[Marker]]]] = {}
        char_arcs: List[Tuple[int, str, int]] = []
        for source, symbol, target in self.automaton.arcs():
            if is_marker_item(symbol):
                incoming_marker.setdefault(target, []).append((source, symbol))
            else:
                char_arcs.append((source, symbol, target))

        tables: Dict[object, Dict[Tuple[int, int], Set[Pairs]]] = {}
        reachable = self.slp.reachable()
        wanted = {
            self.slp.terminal(name): name
            for name in reachable
            if self.slp.is_leaf(name)
        }
        for source, symbol, target in char_arcs:
            leaf_name = wanted.get(symbol)
            if leaf_name is None:
                continue
            bucket = tables.setdefault(leaf_name, {})
            bucket.setdefault((source, target), set()).add(())
            for origin, marker_set in incoming_marker.get(source, []):
                pairs = tuple(sorted((1, marker) for marker in marker_set))
                bucket.setdefault((origin, target), set()).add(pairs)
        for leaf_name in wanted.values():
            entries = tables.get(leaf_name, {})
            self.leaf_tables[leaf_name] = {
                key: tuple(sorted(values)) for key, values in entries.items()
            }

    # -- accessor API used by computation / counting / enumeration -----------
    #
    # Every value is int()-normalised on the way out: plane containers are
    # kernel-native (Python ints, or numpy uint64 scalars for q <= 64), and
    # int() is a no-op on an int, so the reference kernel pays nothing.

    def r_value(self, name: object, i: int, j: int) -> int:
        """``R_A[i, j]`` as one of :data:`BOT` / :data:`EMP` / :data:`ONE`."""
        if not (int(self.notbot[name][i]) >> j) & 1:
            return BOT
        return ONE if (int(self.one[name][i]) >> j) & 1 else EMP

    def notbot_row(self, name: object, i: int) -> int:
        """Bitmask of the ``j`` with ``R_A[i, j] ≠ ⊥``."""
        return int(self.notbot[name][i])

    def one_row(self, name: object, i: int) -> int:
        """Bitmask of the ``j`` with ``R_A[i, j] = 1``."""
        return int(self.one[name][i])

    def intermediate_mask(self, name: object, i: int, j: int) -> int:
        """``I_A[i, j]`` as a bitmask over intermediate states ``k``."""
        return int(self.I[name][i * self.q + j])

    def intermediate_states(self, name: object, i: int, j: int) -> List[int]:
        """``I_A[i, j]`` as a list of states."""
        return bits_list(int(self.I[name][i * self.q + j]))

    def i_bar(self, name: object, i: int, j: int) -> List[int]:
        """The paper's ``Ī_A[i,j]``: ``[BASE]`` for base cases, else ``I_A[i,j]``."""
        if self.slp.is_leaf(name) or self.r_value(name, i, j) == EMP:
            return [BASE]
        return self.intermediate_states(name, i, j)

    def leaf_entry(self, name: object, i: int, j: int) -> Tuple[Pairs, ...]:
        """``M_Tx[i, j]`` as a sorted tuple of partial marker sets."""
        return self.leaf_tables[name].get((i, j), ())

    # -- plane export / import (the persistence hooks) ------------------------

    def export_planes(self) -> Dict[str, Any]:
        """The tables as one *canonical* dict — the serialisation hook.

        Plane containers are normalised to plain Python-int lists, so two
        preprocessings built (or restored) by different kernel backends
        export byte-for-byte comparable dicts — the cross-kernel property
        tests diff exactly this.  ``leaf_tables`` is shared by reference
        (it is kernel-independent); treat the result as read-only.
        Together with the (slp, automaton) pair the dict fully determines
        the object, so :meth:`from_planes` can restore it without
        re-running the Lemma 6.5 computation.
        """
        def canonical(rows: PlaneRows) -> List[int]:
            return [int(v) for v in rows]

        # Walk self.order (not .items()): a store-restored ``I`` is a lazy
        # container that only decodes a vector when it is looked up.
        inner = [name for name in self.order if not self.slp.is_leaf(name)]
        return {
            "leaf_tables": self.leaf_tables,
            "notbot": {name: canonical(self.notbot[name]) for name in self.order},
            "one": {name: canonical(self.one[name]) for name in self.order},
            "I": {name: canonical(self.I[name]) for name in inner},
            "final_states": list(self.final_states),
        }

    @classmethod
    def from_planes(
        cls,
        slp: SLP,
        automaton: SpannerNFA,
        planes: Dict[str, Any],
        kernel: Union[None, str, Kernel] = None,
    ) -> "Preprocessing":
        """Rebuild a :class:`Preprocessing` from :meth:`export_planes` output.

        Skips the ``O(size(S) · q²)`` table computation entirely — this is
        what makes disk-persisted warm starts cheap.  The tables must have
        been built for a structurally identical (slp, automaton) pair with
        matching nonterminal names; coverage of every reachable nonterminal
        is validated, the table *contents* are trusted.  Plane containers
        may be in any kernel's layout (the accessors normalise); ``kernel``
        records the backend that decoded them and steers later derived
        builds (e.g. counting tables).
        """
        if automaton.has_epsilon:
            raise EvaluationError("preprocessing requires an ε-free automaton")
        obj = cls.__new__(cls)
        obj.slp = slp
        obj.automaton = automaton
        obj.q = automaton.num_states
        obj.kernel = resolve_kernel(kernel)
        obj.leaf_tables = planes["leaf_tables"]
        obj.notbot = planes["notbot"]
        obj.one = planes["one"]
        obj.I = planes["I"]
        obj.final_states = list(planes["final_states"])
        reachable = slp.reachable()
        obj.order = [n for n in slp.topological_order() if n in reachable]
        for name in obj.order:
            if name not in obj.notbot or name not in obj.one:
                raise EvaluationError(f"imported planes miss nonterminal {name!r}")
            if slp.is_leaf(name):
                if name not in obj.leaf_tables:
                    raise EvaluationError(f"imported planes miss leaf table {name!r}")
            elif name not in obj.I:
                raise EvaluationError(f"imported planes miss I-vector of {name!r}")
        return obj


def preprocess(
    slp: SLP, automaton: SpannerNFA, kernel: Union[None, str, Kernel] = None
) -> Preprocessing:
    """Run the Lemma 6.5 preprocessing (inputs must be padded, ε-free)."""
    return Preprocessing(slp, automaton, kernel=kernel)
