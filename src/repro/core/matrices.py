"""Evaluation preprocessing: leaf tables ``M_Tx`` and matrices ``R_A``, ``I_A``.

This implements Lemma 6.5 of the paper.  For the (padded) SLP ``S`` and the
(padded, ε-free) spanner automaton ``M`` with ``q`` states it computes:

* ``M_Tx[i, j]`` for every leaf nonterminal — the partial marker sets over a
  single document symbol (Definition 6.2 restricted to leaves);
* ``R_A[i, j] ∈ {⊥, ℮, 1}`` for every nonterminal — whether ``M_A[i, j]``
  is empty, exactly ``{∅}``, or contains a nonempty marker set
  (Definition 6.4);
* ``I_A[i, j]`` for every inner nonterminal — the set of intermediate
  states ``k`` with ``R_B[i, k] ≠ ⊥`` and ``R_C[k, j] ≠ ⊥``, stored as a
  bitmask (Definition 6.4);
* ``F' = {j ∈ F : R_S0[start, j] ≠ ⊥}``.

Everything is bundled in a :class:`Preprocessing` object consumed by
:mod:`repro.core.computation` and :mod:`repro.core.enumeration`.

Total time ``O(|M| + size(S) · q^2)`` thanks to bitmask rows (the paper
states ``O(|M| + size(S) · q^3)``; bit-parallel AND saves a factor).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import EvaluationError
from repro.slp.grammar import SLP
from repro.spanner.automaton import SpannerNFA
from repro.spanner.marked_words import is_marker_item
from repro.spanner.markers import Pairs

from repro.core.boolmat import iter_bits

#: R-matrix entries (Definition 6.4).
BOT = 0  # ⊥ : M_A[i,j] = ∅
EMP = 1  # ℮ : M_A[i,j] = {∅}
ONE = 2  # 1 : M_A[i,j] contains a nonempty partial marker set

#: Sentinel intermediate state for base cases (the paper's ␣b␣).
BASE = -1


class Preprocessing:
    """Precomputed evaluation tables for one (automaton, SLP) pair.

    Both inputs must already be ``#``-padded (see
    :mod:`repro.spanner.transform`); the automaton must be ε-free.
    """

    __slots__ = (
        "slp",
        "automaton",
        "q",
        "leaf_tables",
        "R",
        "I",
        "final_states",
        "order",
    )

    def __init__(self, slp: SLP, automaton: SpannerNFA) -> None:
        if automaton.has_epsilon:
            raise EvaluationError("preprocessing requires an ε-free automaton")
        self.slp = slp
        self.automaton = automaton
        self.q = automaton.num_states
        #: leaf nonterminal -> {(i, j) -> sorted tuple of partial marker sets}
        self.leaf_tables: Dict[object, Dict[Tuple[int, int], Tuple[Pairs, ...]]] = {}
        #: nonterminal -> q x q list-of-lists with BOT/EMP/ONE entries
        self.R: Dict[object, List[List[int]]] = {}
        #: inner nonterminal -> q x q list-of-lists of bitmasks over k
        self.I: Dict[object, List[List[int]]] = {}
        self._compute_leaf_tables()
        self._compute_matrices()
        start_row = self.R[slp.start][automaton.start]
        self.final_states = [j for j in automaton.accepting if start_row[j] != BOT]

    # -- Lemma 6.5, leaf part ------------------------------------------------

    def _compute_leaf_tables(self) -> None:
        q = self.q
        # P_i = {(ℓ, Y) : ℓ --Y--> i with Y a marker-set symbol}
        incoming_marker: Dict[int, List[Tuple[int, frozenset]]] = {}
        char_arcs: List[Tuple[int, str, int]] = []
        for source, symbol, target in self.automaton.arcs():
            if is_marker_item(symbol):
                incoming_marker.setdefault(target, []).append((source, symbol))
            else:
                char_arcs.append((source, symbol, target))

        tables: Dict[object, Dict[Tuple[int, int], set]] = {}
        reachable = self.slp.reachable()
        wanted = {
            self.slp.terminal(name): name
            for name in reachable
            if self.slp.is_leaf(name)
        }
        for source, symbol, target in char_arcs:
            leaf_name = wanted.get(symbol)
            if leaf_name is None:
                continue
            bucket = tables.setdefault(leaf_name, {})
            bucket.setdefault((source, target), set()).add(())
            for origin, marker_set in incoming_marker.get(source, ()):
                pairs = tuple(sorted((1, marker) for marker in marker_set))
                bucket.setdefault((origin, target), set()).add(pairs)
        for leaf_name in wanted.values():
            entries = tables.get(leaf_name, {})
            self.leaf_tables[leaf_name] = {
                key: tuple(sorted(values)) for key, values in entries.items()
            }

    # -- Lemma 6.5, recursive part -------------------------------------------

    def _compute_matrices(self) -> None:
        q = self.q
        reachable = self.slp.reachable()
        self.order = [n for n in self.slp.topological_order() if n in reachable]
        for name in self.order:
            if self.slp.is_leaf(name):
                rows = [[BOT] * q for _ in range(q)]
                for (i, j), entries in self.leaf_tables[name].items():
                    if entries == ((),):
                        rows[i][j] = EMP
                    elif entries:
                        rows[i][j] = ONE
                self.R[name] = rows
                continue
            left, right = self.slp.children(name)
            r_left, r_right = self.R[left], self.R[right]
            # row/column bitmasks of the child matrices
            left_notbot = [0] * q
            left_one = [0] * q
            for i in range(q):
                row = r_left[i]
                notbot = one = 0
                for k in range(q):
                    value = row[k]
                    if value != BOT:
                        notbot |= 1 << k
                        if value == ONE:
                            one |= 1 << k
                left_notbot[i] = notbot
                left_one[i] = one
            right_notbot = [0] * q
            right_one = [0] * q
            for k in range(q):
                row = r_right[k]
                bit = 1 << k
                for j in range(q):
                    value = row[j]
                    if value != BOT:
                        right_notbot[j] |= bit
                        if value == ONE:
                            right_one[j] |= bit
            rows = [[BOT] * q for _ in range(q)]
            masks = [[0] * q for _ in range(q)]
            for i in range(q):
                nb_i, one_i = left_notbot[i], left_one[i]
                row_r = rows[i]
                row_m = masks[i]
                if not nb_i:
                    continue
                for j in range(q):
                    mask = nb_i & right_notbot[j]
                    if not mask:
                        continue
                    row_m[j] = mask
                    if (one_i & mask) or (right_one[j] & mask):
                        row_r[j] = ONE
                    else:
                        row_r[j] = EMP
            self.R[name] = rows
            self.I[name] = masks

    # -- helpers used by computation / enumeration ---------------------------

    def intermediate_states(self, name: object, i: int, j: int) -> List[int]:
        """``I_A[i, j]`` as a list of states."""
        return list(iter_bits(self.I[name][i][j]))

    def i_bar(self, name: object, i: int, j: int) -> List[int]:
        """The paper's ``Ī_A[i,j]``: ``[BASE]`` for base cases, else ``I_A[i,j]``."""
        if self.slp.is_leaf(name) or self.R[name][i][j] == EMP:
            return [BASE]
        return self.intermediate_states(name, i, j)

    def leaf_entry(self, name: object, i: int, j: int) -> Tuple[Pairs, ...]:
        """``M_Tx[i, j]`` as a sorted tuple of partial marker sets."""
        return self.leaf_tables[name].get((i, j), ())


def preprocess(slp: SLP, automaton: SpannerNFA) -> Preprocessing:
    """Run the Lemma 6.5 preprocessing (inputs must be padded, ε-free)."""
    return Preprocessing(slp, automaton)
