"""(M,S)-trees: the enumeration data structure of Sec. 8.

An (M,S)-tree is an ordered binary tree whose nodes are labelled with
triples of SLP nonterminals and automaton states:

* inner node ``A⟨i▹k▹j⟩`` — reading ``D(A)`` takes the automaton from ``i``
  to ``j`` through intermediate state ``k`` at the ``B``/``C`` boundary of
  the rule ``A -> B C``;
* empty-leaf ``A⟨i▹j, ℮⟩`` — the only marked word for ``D(A)`` from ``i``
  to ``j`` is the unmarked one (``R_A[i,j] = ℮``);
* terminal-leaf ``Tx⟨i▹j, 1⟩`` — a leaf nonterminal whose marker sets come
  from the precomputed table ``M_Tx[i,j]``.

The *yield* of a tree (Definition 8.1) is a set of partial marker sets; a
tree has at most ``2|X|`` terminal-leaves and ``4|X| · depth(A)`` nodes
(Lemma 8.4), and its yield can be enumerated with ``O(|X|)`` delay after
``O(depth(A) · |X|)`` preprocessing (Lemma 8.5).
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Tuple, Union

from repro.spanner.markers import Pairs, shift

from repro.core.matrices import Preprocessing


class MTreeLeaf:
    """A leaf ``A⟨i▹j, ℮⟩`` (empty-leaf) or ``Tx⟨i▹j, 1⟩`` (terminal-leaf)."""

    __slots__ = ("nonterminal", "i", "j", "is_terminal")

    def __init__(self, nonterminal: object, i: int, j: int, is_terminal: bool) -> None:
        self.nonterminal = nonterminal
        self.i = i
        self.j = j
        self.is_terminal = is_terminal

    @property
    def label(self) -> str:
        flag = "1" if self.is_terminal else "℮"
        return f"{self.nonterminal}⟨{self.i}▹{self.j},{flag}⟩"

    def __repr__(self) -> str:
        return self.label


class MTreeNode:
    """An inner node ``A⟨i▹k▹j⟩`` with arc shifts ``0`` / ``|D(B)|``."""

    __slots__ = ("nonterminal", "i", "k", "j", "left", "right", "shift")

    def __init__(
        self,
        nonterminal: object,
        i: int,
        k: int,
        j: int,
        left: "MTree",
        right: "MTree",
        shift: int,
    ) -> None:
        self.nonterminal = nonterminal
        self.i = i
        self.k = k
        self.j = j
        self.left = left
        self.right = right
        self.shift = shift

    @property
    def label(self) -> str:
        return f"{self.nonterminal}⟨{self.i}▹{self.k}▹{self.j}⟩"

    def __repr__(self) -> str:
        return f"{self.label}({self.left!r}, {self.right!r})"


MTree = Union[MTreeLeaf, MTreeNode]


def tree_size(tree: MTree) -> int:
    """Number of nodes (the measure of Lemma 8.4)."""
    size = 0
    stack: List[MTree] = [tree]
    while stack:
        node = stack.pop()
        size += 1
        if isinstance(node, MTreeNode):
            stack.append(node.left)
            stack.append(node.right)
    return size


def terminal_leaves(tree: MTree) -> List[Tuple[MTreeLeaf, int]]:
    """The terminal-leaves left-to-right, each with its total arc shift.

    The shift of a leaf is the sum of arc labels from the root (Lemma 8.5's
    "leaf pointers with total shifts").
    """
    out: List[Tuple[MTreeLeaf, int]] = []
    stack: List[Tuple[MTree, int]] = [(tree, 0)]
    while stack:
        node, offset = stack.pop()
        if isinstance(node, MTreeLeaf):
            if node.is_terminal:
                out.append((node, offset))
        else:
            # push right first so the left subtree is processed first
            stack.append((node.right, offset + node.shift))
            stack.append((node.left, offset))
    return out


def tree_yield(tree: MTree, prep: Preprocessing) -> Iterator[Pairs]:
    """Enumerate ``yield(T)`` (Definition 8.1 / Lemma 8.5).

    Terminal-leaf tables are combined by a product over their (pre-shifted)
    marker-set lists; because the leaves are visited left-to-right their
    shifted positions are strictly increasing, so each combination is a
    plain concatenation, already in canonical order.
    """
    blocks: List[List[Pairs]] = []
    for leaf, offset in terminal_leaves(tree):
        entries = prep.leaf_entry(leaf.nonterminal, leaf.i, leaf.j)
        blocks.append([shift(pairs, offset) for pairs in entries])
    if not blocks:
        yield ()
        return
    for combination in itertools.product(*blocks):
        merged: Pairs = ()
        for part in combination:
            merged += part
        yield merged


def render_tree(tree: MTree, indent: str = "") -> str:
    """ASCII rendering of an (M,S)-tree (compare with the paper's Fig. 4)."""
    if isinstance(tree, MTreeLeaf):
        return f"{indent}{tree.label}"
    return "\n".join(
        [
            f"{indent}{tree.label}",
            render_tree(tree.left, indent + "  ├0─ "),
            render_tree(tree.right, indent + f"  └{tree.shift}─ "),
        ]
    )
