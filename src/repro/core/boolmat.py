"""Boolean matrix kernel for compressed membership (Lemma 4.5).

A boolean ``q × q`` matrix is stored as a list of ``q`` Python integers,
one bitmask per row (bit ``j`` of row ``i`` set iff ``M[i, j]``).  Matrix
product then costs one OR per set bit, which in practice behaves like the
``O(q^3 / w)`` word-parallel bound of the RAM model the paper assumes.
"""

from __future__ import annotations

from typing import Iterable, List

BoolMatrix = List[int]


def zero(q: int) -> BoolMatrix:
    """The all-false matrix."""
    return [0] * q


def identity(q: int) -> BoolMatrix:
    """The identity matrix."""
    return [1 << i for i in range(q)]


def from_edges(q: int, edges: Iterable[tuple]) -> BoolMatrix:
    """Matrix with ``M[i, j]`` true for every ``(i, j)`` in ``edges``."""
    rows = [0] * q
    for i, j in edges:
        rows[i] |= 1 << j
    return rows


def multiply(a: BoolMatrix, b: BoolMatrix) -> BoolMatrix:
    """Boolean matrix product ``a · b``."""
    out = []
    for row in a:
        acc = 0
        remaining = row
        while remaining:
            j = (remaining & -remaining).bit_length() - 1
            acc |= b[j]
            remaining &= remaining - 1
        out.append(acc)
    return out


def entry(matrix: BoolMatrix, i: int, j: int) -> bool:
    """``M[i, j]``."""
    return bool((matrix[i] >> j) & 1)


def row_reaches(matrix: BoolMatrix, i: int, targets: int) -> bool:
    """Whether row ``i`` intersects the ``targets`` bitmask."""
    return bool(matrix[i] & targets)


def mask_of(states: Iterable[int]) -> int:
    """Bitmask with one bit per state."""
    mask = 0
    for s in states:
        mask |= 1 << s
    return mask


def iter_bits(mask: int) -> Iterable[int]:
    """Indices of the set bits of ``mask``, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


#: Per-byte set-bit tables: ``_BYTE_BITS[b]`` are the bit indices of byte
#: ``b``; ``_BYTE_BITS_AT[p][b]`` the same indices shifted by ``8 * p`` for
#: byte position ``p`` of a 64-bit word.  8 * 256 small tuples, built once.
_BYTE_BITS = tuple(
    tuple(i for i in range(8) if (b >> i) & 1) for b in range(256)
)
_BYTE_BITS_AT = tuple(
    tuple(tuple(i + 8 * p for i in bits) for bits in _BYTE_BITS)
    for p in range(8)
)


def bits_list(mask: int) -> List[int]:
    """``list(iter_bits(mask))``, decoded by byte-table lookup when it fits.

    The fast path covers one machine word (``0 <= mask < 2**64``, i.e.
    automata with ``q <= 64`` states): eight table lookups and tuple
    concatenations instead of a ``bit_length`` call per set bit, and no
    generator protocol at all.  Wider masks (``q > 64``) fall back to
    :func:`iter_bits`, so they cannot regress.
    """
    if mask < 0 or (mask >> 64):
        return list(iter_bits(mask))
    if mask < 256:
        return list(_BYTE_BITS[mask])
    tables = _BYTE_BITS_AT
    out: List[int] = []
    position = 0
    while mask:
        byte = mask & 255
        if byte:
            out += tables[position][byte]
        mask >>= 8
        position += 1
    return out
