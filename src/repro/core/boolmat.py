"""Boolean matrix kernel for compressed membership (Lemma 4.5).

A boolean ``q × q`` matrix is stored as a list of ``q`` Python integers,
one bitmask per row (bit ``j`` of row ``i`` set iff ``M[i, j]``).  Matrix
product then costs one OR per set bit, which in practice behaves like the
``O(q^3 / w)`` word-parallel bound of the RAM model the paper assumes.
"""

from __future__ import annotations

from typing import Iterable, List

BoolMatrix = List[int]


def zero(q: int) -> BoolMatrix:
    """The all-false matrix."""
    return [0] * q


def identity(q: int) -> BoolMatrix:
    """The identity matrix."""
    return [1 << i for i in range(q)]


def from_edges(q: int, edges: Iterable[tuple]) -> BoolMatrix:
    """Matrix with ``M[i, j]`` true for every ``(i, j)`` in ``edges``."""
    rows = [0] * q
    for i, j in edges:
        rows[i] |= 1 << j
    return rows


def multiply(a: BoolMatrix, b: BoolMatrix) -> BoolMatrix:
    """Boolean matrix product ``a · b``."""
    out = []
    for row in a:
        acc = 0
        remaining = row
        while remaining:
            j = (remaining & -remaining).bit_length() - 1
            acc |= b[j]
            remaining &= remaining - 1
        out.append(acc)
    return out


def entry(matrix: BoolMatrix, i: int, j: int) -> bool:
    """``M[i, j]``."""
    return bool((matrix[i] >> j) & 1)


def row_reaches(matrix: BoolMatrix, i: int, targets: int) -> bool:
    """Whether row ``i`` intersects the ``targets`` bitmask."""
    return bool(matrix[i] & targets)


def mask_of(states: Iterable[int]) -> int:
    """Bitmask with one bit per state."""
    mask = 0
    for s in states:
        mask |= 1 << s
    return mask


def iter_bits(mask: int) -> Iterable[int]:
    """Indices of the set bits of ``mask``, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low
