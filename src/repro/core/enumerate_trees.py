"""EnumAll (Algorithm 1): enumerate the (M,S)-trees ``Trees(A, i, k, j)``.

Python generators realise the paper's output-buffer protocol directly: each
recursive call produces its next tree only when the consumer requests it,
so the delay analysis of Lemma 8.9 (delay ``O(max(A,i,k,j))`` =
``O(|X| · depth(A))`` tree nodes per step) carries over.

The recursion nests one generator per grammar level; callers evaluating
very deep (unbalanced) SLPs should balance first
(:func:`repro.slp.balance.balance`) — the public driver in
:mod:`repro.core.enumeration` raises the interpreter recursion limit
accordingly as a convenience.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.matrices import BASE, EMP, Preprocessing
from repro.core.mtrees import MTree, MTreeLeaf, MTreeNode


def enum_all(prep: Preprocessing, name: object, i: int, k: int, j: int) -> Iterator[MTree]:
    """Enumerate ``Trees(name, i, k, j)``; ``k = BASE`` marks the base case.

    Preconditions mirror the paper's: ``k ∈ Ī_name[i, j]``, and for inner
    nonterminals ``R_name[i, j] = 1`` when ``k ≠ BASE``.
    """
    if k == BASE:
        yield MTreeLeaf(name, i, j, prep.r_value(name, i, j) != EMP)
        return
    left, right = prep.slp.children(name)
    offset = prep.slp.length(left)
    for k_left in prep.i_bar(left, i, k):
        for k_right in prep.i_bar(right, k, j):
            for left_tree in enum_all(prep, left, i, k_left, k):
                for right_tree in enum_all(prep, right, k, k_right, j):
                    yield MTreeNode(name, i, k, j, left_tree, right_tree, offset)


def enum_root_trees(prep: Preprocessing, j: int) -> Iterator[MTree]:
    """All (M,S₀)-trees for accepting state ``j`` (every ``k ∈ Ī_S0``)."""
    start = prep.slp.start
    i = prep.automaton.start
    for k in prep.i_bar(start, i, j):
        yield from enum_all(prep, start, i, k, j)
