"""Counting and ranked access: extensions implied by the paper's machinery.

The paper's Lemmas 6.8/6.9 and 8.7 say that, for a *deterministic*
automaton, every marker set ``Λ ∈ M_A[i,j]`` decomposes **uniquely** as
``Λ_B ⊗ Λ_C`` through **exactly one** intermediate state ``k``.  That
turns the set cardinalities into a clean recurrence::

    |M_A[i, j]|  =  Σ_{k ∈ I_A[i,j]}  |M_B[i, k]| · |M_C[k, j]|

which this module exploits for two tasks the paper does not spell out but
which follow directly from its data structures:

* :func:`count_results` — ``|⟦M⟧(D)|`` in ``O(size(S) · q^2)`` arithmetic
  operations, **without enumerating anything** (counts may be astronomically
  large; Python integers handle that);
* :class:`RankedAccess` — *ranked enumeration*: return the ``k``-th result
  (in a fixed canonical order) in ``O(depth(S) · q)`` time per query, i.e.
  random access into a relation that may have ``10^12`` tuples.

Both require the DFA preprocessing (counting over an NFA would multiple-
count tuples reachable along several runs).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import EvaluationError
from repro.slp.grammar import SLP
from repro.spanner.automaton import SpannerNFA
from repro.spanner.markers import Pairs, shift, to_span_tuple
from repro.spanner.spans import SpanTuple
from repro.spanner.transform import END_SYMBOL, pad_slp, pad_spanner

from repro.core.boolmat import bits_list
from repro.core.matrices import EMP, Preprocessing

Key = Tuple[object, int, int]


class CountingTables:
    """Per-(nonterminal, i, j) result counts ``|M_A[i,j]|`` (DFA only).

    Storage is one flat ``i*q+j`` count vector per nonterminal (indexable
    in two array reads, no tuple hashing on the :meth:`count` hot path —
    ranked access issues one lookup per descent step).  The build is
    delegated to the preprocessing's kernel backend
    (:meth:`~repro.core.kernels.base.Kernel.build_counts`); the arithmetic
    is exact Python bigints in every backend, since counts may be
    astronomically large.  :attr:`counts` offers the historical
    ``{(name, i, j): count}`` dict as a derived view for export and
    persistence.
    """

    __slots__ = ("prep", "_flat")

    def __init__(self, prep: Preprocessing) -> None:
        if not prep.automaton.is_deterministic:
            raise EvaluationError(
                "exact counting requires a DFA (Lemmas 6.9/8.7); determinize first"
            )
        self.prep = prep
        #: nonterminal -> flat row-major q·q vector of |M_A[i,j]|
        self._flat: Dict[object, List[int]] = prep.kernel.build_counts(prep)

    @property
    def counts(self) -> Dict[Key, int]:
        """``{(name, i, j): |M_A[i,j]|}`` over the notbot-set cells.

        A derived view (rebuilt per access) kept for export and the
        store's persistence hook; hot-path consumers use :meth:`count`.
        The key set is exactly the cells whose ``notbot`` bit is set —
        the same canonical set the store serialises positionally.
        """
        prep = self.prep
        q = prep.q
        out: Dict[Key, int] = {}
        for name in prep.order:
            row = self._flat.get(name)
            if row is None:
                continue
            for i in range(q):
                base = i * q
                for j in bits_list(prep.notbot_row(name, i)):
                    out[(name, i, j)] = row[base + j]
        return out

    @classmethod
    def from_counts(
        cls, prep: Preprocessing, counts: Dict[Key, int]
    ) -> "CountingTables":
        """Rebuild tables from a persisted ``counts`` mapping (no recompute).

        The restore hook of the preprocessing store: ``counts`` must have
        been built for a structurally identical preprocessing with matching
        nonterminal names.  The DFA requirement is still enforced.
        """
        if not prep.automaton.is_deterministic:
            raise EvaluationError(
                "exact counting requires a DFA (Lemmas 6.9/8.7); determinize first"
            )
        obj = cls.__new__(cls)
        obj.prep = prep
        q = prep.q
        flat: Dict[object, List[int]] = {}
        for (name, i, j), value in counts.items():
            row = flat.get(name)
            if row is None:
                row = flat[name] = [0] * (q * q)
            row[i * q + j] = value
        obj._flat = flat
        return obj

    def count(self, name: object, i: int, j: int) -> int:
        row = self._flat.get(name)
        return row[i * self.prep.q + j] if row is not None else 0

    def total(self) -> int:
        """``|⟦M⟧(D)|`` (Lemma 6.3: sum over the accepting states)."""
        prep = self.prep
        return sum(
            self.count(prep.slp.start, prep.automaton.start, j)
            for j in prep.final_states
        )


class RankedAccess:
    """Random access into ``⟦M⟧(D)`` by rank (0-based, canonical order).

    The canonical order is: accepting state ``j`` (ascending), then
    intermediate state ``k`` (ascending), then recursively the rank within
    the left factor, then within the right factor.  It is a fixed total
    order, the same for every query — so ``select(0..total-1)`` enumerates
    the exact relation, and any slice of it can be fetched independently
    (e.g. for pagination or parallel processing).
    """

    __slots__ = ("prep", "tables")

    def __init__(
        self, prep: Preprocessing, tables: Optional[CountingTables] = None
    ) -> None:
        if tables is not None and tables.prep is not prep:
            raise EvaluationError("counting tables belong to a different preprocessing")
        self.prep = prep
        self.tables = CountingTables(prep) if tables is None else tables

    @property
    def total(self) -> int:
        return self.tables.total()

    def select(self, rank: int) -> Pairs:
        """The marker set with the given rank, in ``O(depth(S) · q)`` time."""
        if rank < 0:
            raise IndexError(f"rank {rank} out of range")
        prep = self.prep
        remaining = rank
        # final_states is sorted at Preprocessing construction, so this walk
        # matches the enumeration stream order exactly.
        for j in prep.final_states:
            bucket = self.tables.count(prep.slp.start, prep.automaton.start, j)
            if remaining < bucket:
                return self._select_in(
                    prep.slp.start, prep.automaton.start, j, remaining, 0
                )
            remaining -= bucket
        raise IndexError(f"rank {rank} out of range (total {self.total})")

    def select_tuple(self, rank: int) -> SpanTuple:
        """The ``rank``-th span-tuple."""
        return to_span_tuple(self.select(rank))

    def _select_in(
        self, name: object, i: int, j: int, rank: int, offset: int
    ) -> Pairs:
        """The rank-th element of ``M_name[i,j]``, shifted by ``offset``.

        Iterative left-first descent, so arbitrarily deep grammars are safe;
        parts come out in document order, making the result a plain
        concatenation (already canonically sorted).
        """
        prep = self.prep
        slp = prep.slp
        parts: List[Pairs] = []
        stack = [(name, i, j, rank, offset)]
        while stack:
            name, i, j, rank, offset = stack.pop()
            if prep.r_value(name, i, j) == EMP:
                # M_name[i,j] = {∅}: nothing to collect, prune the descent —
                # this is what keeps a select at O(|X| · depth(S)) instead
                # of walking the whole derivation tree.
                continue
            if slp.is_leaf(name):
                entries = prep.leaf_entry(name, i, j)
                part = entries[rank]
                if part:
                    parts.append(shift(part, offset))
                continue
            left, right = slp.children(name)
            split = slp.length(left)
            for k in prep.intermediate_states(name, i, j):
                right_count = self.tables.count(right, k, j)
                bucket = self.tables.count(left, i, k) * right_count
                if rank < bucket:
                    left_rank, right_rank = divmod(rank, right_count)
                    # push right first so the left factor is resolved first
                    stack.append((right, k, j, right_rank, offset + split))
                    stack.append((left, i, k, left_rank, offset))
                    break
                rank -= bucket
            else:
                raise IndexError(f"inconsistent counting tables at {name!r}")
        merged: Pairs = ()
        for part in parts:
            merged += part
        return merged

    def slice(self, start: int, stop: int) -> List[SpanTuple]:
        """``[select_tuple(r) for r in range(start, stop)]`` (bounds-checked)."""
        total = self.total
        if not 0 <= start <= stop <= total:
            raise IndexError(f"slice [{start}:{stop}] out of range (total {total})")
        return [self.select_tuple(rank) for rank in range(start, stop)]


def count_results(
    slp: SLP,
    automaton: SpannerNFA,
    end_symbol: str = END_SYMBOL,
    kernel=None,
) -> int:
    """``|⟦M⟧(D)|`` without enumeration (counting extension).

    >>> from repro.slp.families import power_slp
    >>> from repro.spanner.regex import compile_spanner
    >>> spanner = compile_spanner(r"(a|b)*(?P<x>ab)(a|b)*", alphabet="ab")
    >>> count_results(power_slp("ab", 40), spanner)   # ~10^12 results, exactly
    1099511627776
    """
    prep = _dfa_preprocessing(slp, automaton, end_symbol, kernel)
    return CountingTables(prep).total()


def ranked_access(
    slp: SLP,
    automaton: SpannerNFA,
    end_symbol: str = END_SYMBOL,
    kernel=None,
) -> RankedAccess:
    """Build a :class:`RankedAccess` for ``⟦M⟧(D)``.

    >>> from repro.slp.families import power_slp
    >>> from repro.spanner.regex import compile_spanner
    >>> spanner = compile_spanner(r"(a|b)*(?P<x>ab)(a|b)*", alphabet="ab")
    >>> ra = ranked_access(power_slp("ab", 40), spanner)
    >>> ra.select_tuple(123_456_789_012)["x"]   # random access into ~10^12 tuples
    [1952109677527,1952109677529⟩
    """
    return RankedAccess(_dfa_preprocessing(slp, automaton, end_symbol, kernel))


def _dfa_preprocessing(slp, automaton, end_symbol, kernel=None) -> Preprocessing:
    base = automaton.eliminate_epsilon()
    if not base.is_deterministic:
        base = base.determinize().trim()
    return Preprocessing(
        pad_slp(slp, end_symbol), pad_spanner(base, end_symbol), kernel=kernel
    )
