"""Computing the full solution set ``⟦M⟧(D)`` (Theorem 7.1).

Implements the recursive procedure ``CompM`` of the paper: for every needed
triple ``(A, i, j)`` the set ``M_A[i, j]`` of partial marker sets is

* the precomputed leaf table for leaf nonterminals,
* ``⋃_{k ∈ I_A[i,j]} M_B[i,k] ⊗_{|D(B)|} M_C[k,j]`` for rules ``A -> B C``
  (Lemma 6.8, with the combination of Definition 6.7).

Because every marker set is encoded as a position-sorted tuple (the
canonical order ``⪯`` of the paper's Theorem 7.1 proof) the combination
``Λ_B ⊗ Λ_C`` is a plain tuple concatenation and duplicate elimination
across the ``k``-union is a set union.  The "only needed entries" recursion
(property (†) in the paper) keeps every intermediate ``M_A[i,j]`` no larger
than the final result, giving ``O(size(S) · q^4 · size(⟦M⟧(D)))`` overall.

Recursion is realised iteratively (two phases: mark needed triples
top-down, then evaluate bottom-up in grammar order) so that arbitrarily
deep SLPs are safe.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from repro.slp.grammar import SLP
from repro.spanner.automaton import SpannerNFA
from repro.spanner.markers import Pairs, shift, to_span_tuple
from repro.spanner.spans import SpanTuple
from repro.spanner.transform import END_SYMBOL, pad_slp, pad_spanner

from repro.core.matrices import Preprocessing

Key = Tuple[object, int, int]


def compute_marker_sets(prep: Preprocessing) -> FrozenSet[Pairs]:
    """All marker sets of ``⟦M⟧(D)`` from a padded preprocessing."""
    slp = prep.slp
    needed: Set[Key] = set()
    roots = [(slp.start, prep.automaton.start, j) for j in prep.final_states]

    # Phase 1: mark the needed (A, i, j) triples top-down.
    stack: List[Key] = list(roots)
    needed.update(roots)
    while stack:
        name, i, j = stack.pop()
        if slp.is_leaf(name):
            continue
        left, right = slp.children(name)
        for k in prep.intermediate_states(name, i, j):
            for key in ((left, i, k), (right, k, j)):
                if key not in needed:
                    needed.add(key)
                    stack.append(key)

    # Phase 2: evaluate bottom-up along the grammar's topological order.
    tables: Dict[Key, Tuple[Pairs, ...]] = {}
    by_name: Dict[object, List[Tuple[int, int]]] = {}
    for name, i, j in needed:
        by_name.setdefault(name, []).append((i, j))
    for name in prep.order:
        pairs_list = by_name.get(name)
        if pairs_list is None:
            continue
        if slp.is_leaf(name):
            for i, j in pairs_list:
                tables[(name, i, j)] = prep.leaf_entry(name, i, j)
            continue
        left, right = slp.children(name)
        offset = slp.length(left)
        for i, j in pairs_list:
            merged: Set[Pairs] = set()
            for k in prep.intermediate_states(name, i, j):
                left_sets = tables[(left, i, k)]
                right_sets = tables[(right, k, j)]
                for lam_b in left_sets:
                    for lam_c in right_sets:
                        # ⊗_offset: concatenation keeps the canonical order
                        merged.add(lam_b + shift(lam_c, offset))
            tables[(name, i, j)] = tuple(sorted(merged))

    result: Set[Pairs] = set()
    for name, i, j in roots:
        result.update(tables.get((name, i, j), ()))
    return frozenset(result)


def compute(
    slp: SLP,
    automaton: SpannerNFA,
    end_symbol: str = END_SYMBOL,
) -> FrozenSet[SpanTuple]:
    """The full relation ``⟦M⟧(D)`` as a set of span-tuples (Theorem 7.1).

    Works for NFAs as well as DFAs (duplicates across different
    intermediate states are eliminated by the canonical-order union).

    >>> from repro.slp.construct import balanced_slp
    >>> from repro.spanner.regex import compile_spanner
    >>> slp = balanced_slp("abcca")
    >>> spanner = compile_spanner(r"[bc]*(?P<x>a).*(?P<y>c+).*", alphabet="abc")
    >>> sorted(str(t) for t in compute(slp, spanner))
    ['SpanTuple(x=[1,2⟩, y=[3,4⟩)', 'SpanTuple(x=[1,2⟩, y=[3,5⟩)', 'SpanTuple(x=[1,2⟩, y=[4,5⟩)']
    """
    padded_slp = pad_slp(slp, end_symbol)
    padded_nfa = pad_spanner(automaton.eliminate_epsilon(), end_symbol)
    prep = Preprocessing(padded_slp, padded_nfa)
    return frozenset(to_span_tuple(pairs) for pairs in compute_marker_sets(prep))
