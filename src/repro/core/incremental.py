"""Incremental spanner aggregates under document updates.

The paper's conclusion asks "whether spanner evaluation on compressed
documents can handle updates of the document".  This module answers the
aggregate side of that question:

:class:`IncrementalSpannerIndex` maintains, for one spanner ``M``, the
quantities ``⟦M⟧(D) ≠ ∅`` and ``|⟦M⟧(D)|`` while ``D`` is edited through
the AVL-grammar editor (:mod:`repro.slp.edits`).  The trick is that every
AVL node is immutable and hash-consed, so the per-node ``q × q`` *count
matrix*

    ``C_v[i, j] = |M_v[i, j]|``   (the number of partial marker sets, Def. 6.2)

is a pure function of the node and can be memoised across edits: the
Lemma 6.9/8.7 disjointness (for a DFA) turns composition into an ordinary
integer matrix product ``C_v = C_left · C_right``.  An edit creates only
``O(log d)`` fresh nodes (Sec. "edits" of DESIGN.md), so re-answering

* :meth:`count`        — exact ``|⟦M⟧(D)|``,
* :meth:`is_nonempty`  — ``⟦M⟧(D) ≠ ∅``,

after an update costs ``O(q³ · log d)`` arithmetic operations instead of a
full ``O(size(S) · q³)`` re-evaluation.  Full enumeration/ranked access are
available through :meth:`snapshot`, which exports the current document as
an ordinary SLP.

What remains open (as in the paper): maintaining the *enumeration*
structures themselves incrementally.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import EvaluationError
from repro.slp.avl import AvlBuilder, AvlNode, avl_from_slp, avl_to_slp
from repro.slp.grammar import SLP, Symbol
from repro.spanner.automaton import SpannerNFA
from repro.spanner.marked_words import is_marker_item
from repro.spanner.transform import END_SYMBOL, pad_spanner

CountMatrix = List[List[int]]


def _multiply_counts(a: CountMatrix, b: CountMatrix, q: int) -> CountMatrix:
    """Integer matrix product, skipping zero entries (matrices are sparse)."""
    out = [[0] * q for _ in range(q)]
    for i in range(q):
        row_a = a[i]
        row_out = out[i]
        for k in range(q):
            weight = row_a[k]
            if weight:
                row_b = b[k]
                for j in range(q):
                    if row_b[j]:
                        row_out[j] += weight * row_b[j]
    return out


class IncrementalSpannerIndex:
    """Maintain ``|⟦M⟧(D)|`` and non-emptiness under document edits.

    Parameters
    ----------
    spanner:
        The regular spanner; determinised internally (exact counting needs
        a DFA, Lemma 6.9/8.7).
    slp:
        The initial document.

    >>> from repro.slp.construct import balanced_slp
    >>> from repro.spanner.regex import compile_spanner
    >>> index = IncrementalSpannerIndex(
    ...     compile_spanner(r".*(?P<x>ab).*", alphabet="ab"),
    ...     balanced_slp("aaaa"),
    ... )
    >>> index.count()
    0
    >>> index.insert(2, "b")      # document becomes aabaa
    >>> index.count()
    1
    >>> index.replace(0, 4, "abab")
    >>> index.count()
    2
    """

    def __init__(
        self,
        spanner: SpannerNFA,
        slp: SLP,
        end_symbol: str = END_SYMBOL,
    ) -> None:
        base = spanner.eliminate_epsilon()
        if not base.is_deterministic:
            base = base.determinize().trim()
        self._dfa = pad_spanner(base, end_symbol)
        self._end_symbol = end_symbol
        self._q = self._dfa.num_states
        self._leaf_matrices: Dict[Symbol, CountMatrix] = {}
        self._memo: Dict[int, CountMatrix] = {}
        self._builder = AvlBuilder()
        self._root: AvlNode = avl_from_slp(slp, self._builder)
        self._compute_incoming()
        self._end_matrix = self._leaf_matrix(end_symbol)

    # -- automaton-side tables (static) -----------------------------------

    def _compute_incoming(self) -> None:
        """P_i = {(ℓ, Y)}: marker-set arcs, needed for leaf count matrices."""
        incoming: Dict[int, List] = {}
        for source, symbol, target in self._dfa.arcs():
            if is_marker_item(symbol):
                incoming.setdefault(target, []).append((source, symbol))
        self._incoming = incoming

    def _build_leaf_matrix(self, symbol: Symbol) -> CountMatrix:
        """``C_Tx[i, j] = |M_Tx[i, j]|`` per the Lemma 6.5 leaf construction."""
        q = self._q
        matrix = [[0] * q for _ in range(q)]
        for source, arc_symbol, target in self._dfa.arcs():
            if arc_symbol != symbol:
                continue
            matrix[source][target] += 1  # the ∅ marker set
            for origin, _marker_set in self._incoming.get(source, ()):
                matrix[origin][target] += 1
        return matrix

    def _leaf_matrix(self, symbol: Symbol) -> CountMatrix:
        matrix = self._leaf_matrices.get(symbol)
        if matrix is None:
            matrix = self._build_leaf_matrix(symbol)
            self._leaf_matrices[symbol] = matrix
        return matrix

    # -- per-node memoised composition -------------------------------------

    def _node_matrix(self, node: AvlNode) -> CountMatrix:
        memo = self._memo
        cached = memo.get(node.uid)
        if cached is not None:
            return cached
        # iterative post-order to keep deep chains off the Python stack
        stack = [node]
        while stack:
            current = stack[-1]
            if current.uid in memo:
                stack.pop()
                continue
            if current.is_leaf:
                memo[current.uid] = self._leaf_matrix(current.symbol)
                stack.pop()
                continue
            left_done = current.left.uid in memo
            right_done = current.right.uid in memo
            if left_done and right_done:
                memo[current.uid] = _multiply_counts(
                    memo[current.left.uid], memo[current.right.uid], self._q
                )
                stack.pop()
            else:
                if not left_done:
                    stack.append(current.left)
                if not right_done:
                    stack.append(current.right)
        return memo[node.uid]

    # -- queries ------------------------------------------------------------

    def count(self) -> int:
        """Exact ``|⟦M⟧(D)|`` for the current document."""
        doc_matrix = self._node_matrix(self._root)
        padded = _multiply_counts(doc_matrix, self._end_matrix, self._q)
        start = self._dfa.start
        return sum(padded[start][j] for j in self._dfa.accepting)

    def is_nonempty(self) -> bool:
        """``⟦M⟧(D) ≠ ∅`` for the current document."""
        return self.count() > 0

    @property
    def length(self) -> int:
        """Current document length."""
        return self._root.length

    @property
    def cached_nodes(self) -> int:
        """Number of memoised count matrices (monitoring/testing)."""
        return len(self._memo)

    def snapshot(self) -> SLP:
        """The current document as a balanced SLP (for full evaluation)."""
        return avl_to_slp(self._root)

    # -- edits (mirroring repro.slp.edits.SlpEditor) -------------------------

    def _word_node(self, word: Sequence[Symbol]) -> AvlNode:
        if len(word) == 0:
            raise EvaluationError("empty edit word; use delete instead")
        if self._end_symbol in word:
            raise EvaluationError(
                f"the end sentinel {self._end_symbol!r} cannot appear in the document"
            )
        return self._builder.from_symbols(word)

    def _check_range(self, start: int, stop: int) -> None:
        if not 0 <= start <= stop <= self._root.length:
            raise IndexError(
                f"range [{start}:{stop}] invalid for document of length {self._root.length}"
            )

    def append(self, word: Sequence[Symbol]) -> None:
        self._root = self._builder.join(self._root, self._word_node(word))

    def prepend(self, word: Sequence[Symbol]) -> None:
        self._root = self._builder.join(self._word_node(word), self._root)

    def insert(self, index: int, word: Sequence[Symbol]) -> None:
        self._check_range(index, index)
        node = self._word_node(word)
        if index == 0:
            self._root = self._builder.join(node, self._root)
        elif index == self._root.length:
            self._root = self._builder.join(self._root, node)
        else:
            left = self._builder.extract(self._root, 0, index)
            right = self._builder.extract(self._root, index, self._root.length)
            self._root = self._builder.join(self._builder.join(left, node), right)

    def delete(self, start: int, stop: int) -> None:
        self._check_range(start, stop)
        if start == stop:
            return
        if start == 0 and stop == self._root.length:
            raise EvaluationError("deleting the whole document would leave it empty")
        pieces = []
        if start > 0:
            pieces.append(self._builder.extract(self._root, 0, start))
        if stop < self._root.length:
            pieces.append(self._builder.extract(self._root, stop, self._root.length))
        self._root = self._builder.concat_all(pieces)

    def replace(self, start: int, stop: int, word: Sequence[Symbol]) -> None:
        self._check_range(start, stop)
        node = self._word_node(word)
        pieces = []
        if start > 0:
            pieces.append(self._builder.extract(self._root, 0, start))
        pieces.append(node)
        if stop < self._root.length:
            pieces.append(self._builder.extract(self._root, stop, self._root.length))
        self._root = self._builder.concat_all(pieces)

    def __repr__(self) -> str:
        return (
            f"IncrementalSpannerIndex(doc_length={self.length}, "
            f"states={self._q}, cached_nodes={self.cached_nodes})"
        )
