"""Spanner query suites: the paper's examples and realistic workload queries."""

from __future__ import annotations

from repro.spanner.automaton import NFABuilder, SpannerDFA, SpannerNFA
from repro.spanner.markers import cl, op
from repro.spanner.regex import compile_spanner


def figure2_spanner() -> SpannerDFA:
    """The DFA of Figure 2 of the paper (states renamed 1..6 → 0..5).

    It represents the ``({a,b,c}, {x,y})``-spanner that marks, after an
    ``{a,b}*`` prefix, one ``c``-block with either ``x`` or ``y``:

    * state 0 loops on ``a, b``; ``{⊿x}`` → 1 and ``{⊿y}`` → 3;
    * 1 −c→ 2, 2 loops on ``c``, ``{◁x}`` → 5   (and symmetrically via y);
    * state 5 loops on ``Σ`` and is the only accepting state.

    >>> dfa = figure2_spanner()
    >>> from repro.baselines.naive import naive_evaluate
    >>> sorted(str(t) for t in naive_evaluate(dfa, "aabccaabaa"))[:2]
    ['SpanTuple(x=[4,5⟩)', 'SpanTuple(x=[4,6⟩)']
    """
    b = NFABuilder()
    s = [b.state() for _ in range(6)]
    b.set_start(s[0])
    for ch in "ab":
        b.arc(s[0], ch, s[0])
    b.arc(s[0], frozenset({op("x")}), s[1])
    b.arc(s[1], "c", s[2])
    b.arc(s[2], "c", s[2])
    b.arc(s[2], frozenset({cl("x")}), s[5])
    b.arc(s[0], frozenset({op("y")}), s[3])
    b.arc(s[3], "c", s[4])
    b.arc(s[4], "c", s[4])
    b.arc(s[4], frozenset({cl("y")}), s[5])
    for ch in "abc":
        b.arc(s[5], ch, s[5])
    b.accept(s[5])
    return b.build(deterministic=True)


def intro_spanner() -> SpannerNFA:
    """The running example of the paper's introduction.

    ``(b|c)* ⊿x a ◁x Σ* ⊿y c+ ◁y Σ*`` — the first ``a`` paired with every
    later ``c``-block.
    """
    return compile_spanner(r"[bc]*(?P<x>a).*(?P<y>c+).*", alphabet="abc")


def key_value_spanner(key: str = "user", alphabet=None) -> SpannerNFA:
    """Extract every value of ``key=<value>`` from a server log.

    Built for :func:`repro.workloads.documents.server_log` documents.
    """
    from repro.workloads.documents import LOG_ALPHABET

    alphabet = LOG_ALPHABET if alphabet is None else alphabet
    return compile_spanner(
        rf".*{key}=(?P<value>[a-z]+) .*",
        alphabet=alphabet,
    )


def pair_spanner(alphabet=None) -> SpannerNFA:
    """Joint extraction of user and action from one log line.

    Demonstrates multi-variable spanners on realistic documents.
    """
    from repro.workloads.documents import LOG_ALPHABET

    alphabet = LOG_ALPHABET if alphabet is None else alphabet
    return compile_spanner(
        r".*user=(?P<user>[a-z]+) action=(?P<action>[a-z]+) .*",
        alphabet=alphabet,
    )


def motif_spanner(motif: str = "tata") -> SpannerNFA:
    """Mark every occurrence of a DNA motif."""
    return compile_spanner(rf".*(?P<m>{motif}).*", alphabet="acgt")


def motif_pair_spanner(first: str = "tata", second: str = "gcgc") -> SpannerNFA:
    """Mark co-occurring motifs (first strictly before second)."""
    return compile_spanner(
        rf".*(?P<m1>{first}).*(?P<m2>{second}).*", alphabet="acgt"
    )


def marker_spanner(marker_char: str = "c", alphabet: str = "abc") -> SpannerNFA:
    """One result per occurrence of ``marker_char`` — selectivity dial (bench E4)."""
    return compile_spanner(
        rf".*(?P<x>{marker_char}).*", alphabet=alphabet
    )
