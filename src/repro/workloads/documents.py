"""Synthetic document generators.

The paper motivates compressed evaluation with huge, redundancy-heavy
textual data (Sec. 1: logs, natural-language corpora, genomic data).  These
generators produce laptop-scale stand-ins with *controllable* redundancy so
the benchmarks can sweep compressibility:

* :func:`server_log` — templated log lines (heavy template reuse);
* :func:`dna` — pseudo-genomic text grown by repeat-copy-mutate;
* :func:`block_text` — documents assembled from a pool of ``distinct``
  random blocks: the pool size dials the compression ratio (bench E9).
"""

from __future__ import annotations

import random
import string
from typing import List, Optional, Sequence

#: Alphabet of :func:`server_log` documents.
LOG_ALPHABET = frozenset(string.ascii_lowercase + string.digits + "=. \n")

#: Alphabet of :func:`dna` documents.
DNA_ALPHABET = frozenset("acgt")

_DEFAULT_USERS = ["alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi"]
_DEFAULT_ACTIONS = ["login", "logout", "read", "write", "delete", "share"]


def server_log(
    num_lines: int,
    users: Optional[Sequence[str]] = None,
    actions: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> str:
    """A templated server log: ``user=<name> action=<verb> status=<code>\\n``.

    With small user/action pools the text is highly repetitive, which is
    exactly the regime where SLP compression (and hence compressed
    evaluation) shines.

    >>> log = server_log(2, seed=1)
    >>> log.count("\\n")
    2
    """
    users = _DEFAULT_USERS if users is None else list(users)
    actions = _DEFAULT_ACTIONS if actions is None else list(actions)
    rng = random.Random(seed)
    lines = []
    for _ in range(num_lines):
        lines.append(
            f"user={rng.choice(users)} action={rng.choice(actions)} "
            f"status={rng.choice(['200', '404', '500'])}\n"
        )
    return "".join(lines)


def dna(
    length: int,
    seed: int = 0,
    repeat_bias: float = 0.85,
    mutation_rate: float = 0.02,
) -> str:
    """Pseudo-genomic text with long approximate repeats.

    Grows the sequence by either appending random bases or copying an
    earlier chunk (probability ``repeat_bias``) with point mutations —
    mimicking the repeat structure that makes real genomes LZ-compressible.

    >>> s = dna(500, seed=3)
    >>> len(s), set(s) <= set("acgt")
    (500, True)
    """
    rng = random.Random(seed)
    out: List[str] = list(rng.choice("acgt") for _ in range(min(32, length)))
    while len(out) < length:
        if len(out) > 64 and rng.random() < repeat_bias:
            chunk = rng.randint(16, min(256, len(out)))
            start = rng.randint(0, len(out) - chunk)
            copied = out[start : start + chunk]
            for i, base in enumerate(copied):
                if rng.random() < mutation_rate:
                    copied[i] = rng.choice("acgt")
            out.extend(copied)
        else:
            out.append(rng.choice("acgt"))
    return "".join(out[:length])


def block_text(
    length: int,
    distinct_blocks: int,
    block_length: int = 32,
    alphabet: str = "ab",
    seed: int = 0,
) -> str:
    """Text assembled from a pool of ``distinct_blocks`` random blocks.

    A small pool means heavy reuse (tiny grammars); a pool of
    ``length / block_length`` blocks is essentially incompressible.  This
    is the compressibility dial for the crossover experiment (bench E9).
    """
    rng = random.Random(seed)
    pool = [
        "".join(rng.choice(alphabet) for _ in range(block_length))
        for _ in range(max(1, distinct_blocks))
    ]
    out: List[str] = []
    while sum(map(len, out)) < length:
        out.append(rng.choice(pool))
    return "".join(out)[:length]


def random_text(length: int, alphabet: str = "ab", seed: int = 0) -> str:
    """Uniformly random (incompressible) text — the worst case for SLPs."""
    rng = random.Random(seed)
    return "".join(rng.choice(alphabet) for _ in range(length))
