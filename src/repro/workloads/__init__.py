"""Synthetic documents, corpora and spanner query suites for examples/benchmarks."""

from repro.workloads.corpus import corpus_texts, write_corpus
from repro.workloads.documents import (
    DNA_ALPHABET,
    LOG_ALPHABET,
    block_text,
    dna,
    random_text,
    server_log,
)
from repro.workloads.queries import (
    figure2_spanner,
    intro_spanner,
    key_value_spanner,
    marker_spanner,
    motif_pair_spanner,
    motif_spanner,
    pair_spanner,
)

__all__ = [
    "DNA_ALPHABET",
    "LOG_ALPHABET",
    "block_text",
    "corpus_texts",
    "dna",
    "figure2_spanner",
    "intro_spanner",
    "key_value_spanner",
    "marker_spanner",
    "motif_pair_spanner",
    "motif_spanner",
    "pair_spanner",
    "random_text",
    "server_log",
    "write_corpus",
]
