"""Synthetic corpora: directories of compressed grammar files.

The corpus-shaped workload the parallel subsystem is benchmarked on:
many moderately sized documents, compressed once and written as
``repro-slpb`` files.  Real corpora (log shards, genome read bundles,
crawl segments) contain *duplicates* — identical shards replicated for
redundancy or re-ingested by overlapping crawls — so the generator has a
``duplication`` dial: ``num_docs`` files with only
``ceil(num_docs / duplication)`` distinct contents.  Duplicates get
distinct file names but identical bytes, hence identical structural
digests — exactly what the digest-affinity scheduler and the store's
content addressing deduplicate.
"""

from __future__ import annotations

import os
import random
from typing import Callable, List

from repro.slp import io as slp_io
from repro.slp.grammar import SLP
from repro.slp.repair import repair_slp

from repro.workloads.documents import block_text


def corpus_texts(
    num_docs: int,
    *,
    doc_length: int = 600,
    distinct_blocks: int = 12,
    alphabet: str = "ab",
    duplication: int = 1,
    seed: int = 0,
) -> List[str]:
    """``num_docs`` documents, each duplicated ``duplication`` times.

    Distinct documents are :func:`~repro.workloads.documents.block_text`
    instances with per-document seeds; the duplicates are interleaved
    round-robin (like replicated shards landing in one listing), not
    appended in runs, so schedulers cannot rely on adjacency.
    """
    if num_docs < 0:
        raise ValueError(f"num_docs must be >= 0, got {num_docs}")
    duplication = max(1, duplication)
    num_distinct = -(-num_docs // duplication)  # ceil
    rng = random.Random(seed)
    distinct = [
        block_text(
            doc_length,
            distinct_blocks,
            alphabet=alphabet,
            seed=rng.randrange(2**31),
        )
        for _ in range(num_distinct)
    ]
    return [distinct[k % num_distinct] for k in range(num_docs)]


def write_corpus(
    directory: str,
    num_docs: int,
    *,
    doc_length: int = 600,
    distinct_blocks: int = 12,
    alphabet: str = "ab",
    duplication: int = 1,
    seed: int = 0,
    builder: Callable[[str], SLP] = repair_slp,
    fmt: str = "binary",
    prefix: str = "doc",
) -> List[str]:
    """Write a synthetic corpus of grammar files; return the paths in order.

    Each distinct document is compressed once with ``builder`` and the
    grammar re-serialised per file (``fmt``: ``"binary"`` → ``.slpb``,
    ``"json"`` → ``.slp.json``), so duplicated documents produce
    byte-identical files under different names.
    """
    if fmt not in ("binary", "json"):
        raise ValueError(f"fmt must be 'binary' or 'json', got {fmt!r}")
    os.makedirs(directory, exist_ok=True)
    texts = corpus_texts(
        num_docs,
        doc_length=doc_length,
        distinct_blocks=distinct_blocks,
        alphabet=alphabet,
        duplication=duplication,
        seed=seed,
    )
    compressed: dict = {}
    paths = []
    suffix = ".slpb" if fmt == "binary" else ".slp.json"
    for k, text in enumerate(texts):
        slp = compressed.get(text)
        if slp is None:
            slp = compressed[text] = builder(text)
        path = os.path.join(directory, f"{prefix}-{k:05d}{suffix}")
        if fmt == "binary":
            slp_io.save_binary(slp, path)
        else:
            slp_io.save_file(slp, path)
        paths.append(path)
    return paths


__all__ = ["corpus_texts", "write_corpus"]
