"""On-disk persistence of Lemma 6.5 preprocessing (and counting) tables.

A :class:`PreprocessingStore` is a directory of ``.prep`` files.  Each
filename is a hash of three digests:

* ``slp_digest`` — :meth:`repro.slp.grammar.SLP.structural_digest` of the
  *source* document grammar (the engine's cache identity);
* ``automaton_digest`` — :meth:`repro.spanner.automaton.SpannerNFA.structural_digest`
  of the padded (NFA or DFA) automaton the tables were built against;
* the digest of the *padded* grammar, which captures the engine's
  padding configuration (``balance``, ``end_symbol``) so differently
  configured engines sharing a directory keep separate entries.

The store format version is written inside the payload, not the
filename: a stale-version entry occupies the same path, is rejected on
load (never misread) and is overwritten in place by the rebuild — so a
version bump recycles the directory rather than orphaning old files.

Payload layout (``repro-prep`` v1, little-endian, uvarint = unsigned
LEB128)::

    magic b"rPREP\\x00" | u16 version | 16B padded-SLP digest |
    16B automaton digest | u32 q | u32 n_names |
    final_states: uvarint count, uvarint each |
    kinds: n_names bytes (0 = leaf, 1 = inner), in the padded SLP's
        canonical order (used below and validated against the live SLP) |
    planes section: per nonterminal in canonical order, the notbot plane
        (q rows) then the one plane (q rows); every row is a fixed-width
        field of row_words = ceil(q / 64) little-endian u64 words |
    I section: per *inner* nonterminal in canonical order, the dense
        intermediate-state vector — q*q fields of row_words words,
        row-major, mirroring the in-memory flat layout |
    leaf-table section: per *leaf* nonterminal in canonical order:
        uvarint n_entries; per entry uvarint i, uvarint j,
        uvarint n_marker_sets; per set uvarint n_pairs; per pair
        uvarint position, uvarint len + UTF-8 var, u8 kind |
    counting tables: u8 present flag; if 1, positional: per nonterminal
        in canonical order, per set bit (i, j) of its notbot plane in
        row-major order, uvarint |M_A[i,j]| — the keys are implicit in
        the notbot planes, so no per-entry key bytes are spent |
    u32 CRC-32 of every preceding byte

The word-aligned sections are the restore hot path, and their codec is
the active kernel backend's (:mod:`repro.core.kernels`,
``Kernel.decode_words``): the reference kernel decodes each section with
a single C-level ``array('Q').frombytes`` + per-name list slices instead
of per-entry Python arithmetic; the numpy kernel goes further and
attaches read-only ``np.frombuffer`` uint64 views *straight into the
payload bytes* — zero copies and zero per-row Python objects (the word
sections are little-endian u64 fields, i.e. already in the numpy
kernel's native plane layout).  Either way the bulk decode —
O(size(S) · q²) *bytes* moved but only O(size(S)) Python operations — is
what lets a store-backed cold start beat re-running the
O(size(S) · q²) Lemma 6.5 recurrence by a wide margin.

Nonterminal *names* are never stored.  Tables are indexed by position in
the padded SLP's :meth:`~repro.slp.grammar.SLP.canonical_order`, which is
naming-independent, so a structurally equal grammar loaded tomorrow (with
fresh names) re-attaches the same tables.  The payload embeds the padded
grammar's and automaton's digests and :meth:`load` re-derives both from
the live objects: any mismatch — a different balancer, another end
symbol, a colliding key — is a miss, never a wrong answer.

Corruption (truncation, bit-flips, stale versions) is handled by
rebuilding: :meth:`load` returns ``None`` and counts a
:attr:`StoreStats.rejects`; it never raises on a bad file.  A *corrupt*
entry (bad magic, truncated, CRC mismatch) is additionally
**quarantined** — renamed aside to ``<name>.prep.quarantined`` and
counted in :attr:`StoreStats.quarantined` / the ``store.quarantined``
metric — so the rebuild overwrites a vacant path and the bad bytes stay
available for post-mortem instead of being re-read (and re-rejected)
on every subsequent call.  Saves are atomic (tmp + fsync + rename: a
writer killed mid-save leaves only a tmp file, never a partial entry)
and degrade to a warn-once no-op when the disk is full.  The
:mod:`repro.faults` sites ``store.save``, ``store.save.bytes``,
``store.save.commit`` and ``store.load.bytes`` let tests inject all of
those failures deterministically.
"""

from __future__ import annotations

import errno
import hashlib
import os
import struct
import sys
import warnings
import zlib
from array import array
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    NamedTuple,
    Optional,
    Tuple,
    Union,
)

from repro.core.kernels import Kernel, resolve_kernel
from repro.faults import fault_point, mangle
from repro.obs.metrics import BYTE_BUCKETS, get_registry
from repro.core.kernels.base import PlaneRows
from repro.core.matrices import Preprocessing
from repro.slp.grammar import SLP
from repro.spanner.automaton import SpannerNFA
from repro.spanner.markers import CLOSE, OPEN, Marker, Pairs

from repro.store.binary import _read_uvarint, _write_uvarint

MAGIC = b"rPREP\x00"
STORE_FORMAT_VERSION = 1

_HEAD = struct.Struct("<6sH16s16sII")
_CRC = struct.Struct("<I")
#: The fast word codec uses native array('Q'); big-endian hosts take the
#: portable int.to_bytes/from_bytes path so files stay little-endian.
_LITTLE_ENDIAN = sys.byteorder == "little"


@dataclass
class StoreStats:
    """Counters of one :class:`PreprocessingStore` (live, not a snapshot)."""

    hits: int = 0
    misses: int = 0
    rejects: int = 0  # present but stale/corrupt/mismatched -> rebuilt
    writes: int = 0
    quarantined: int = 0  # corrupt entries renamed aside (self-healing)


class _Reader:
    """Cursor over a payload with bounds-checked primitive reads."""

    __slots__ = ("buf", "pos", "end")

    def __init__(self, buf: bytes, pos: int, end: int) -> None:
        self.buf = buf
        self.pos = pos
        self.end = end

    def uvarint(self) -> int:
        # _read_uvarint inlined: this is called per count/leaf entry.
        buf, pos, end = self.buf, self.pos, self.end
        value = 0
        shift = 0
        while True:
            if pos >= end:
                raise ValueError("truncated payload")
            byte = buf[pos]
            pos += 1
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                self.pos = pos
                return value
            shift += 7

    def byte(self) -> int:
        if self.pos >= self.end:
            raise ValueError("truncated payload")
        value = self.buf[self.pos]
        self.pos += 1
        return value

    def raw(self, length: int) -> bytes:
        if self.pos + length > self.end:
            raise ValueError("truncated payload")
        out = self.buf[self.pos : self.pos + length]
        self.pos += length
        return out


def _pack_words(values: Any, row_words: int) -> bytes:
    """``values`` as consecutive little-endian ``row_words``-word fields.

    Accepts int lists as well as kernel-native word arrays: anything with
    a ``tobytes`` method (a numpy uint64 plane, whose memory *is* this
    format on little-endian hosts) is serialised with one C call.
    """
    if _LITTLE_ENDIAN:
        if hasattr(values, "tobytes"):  # kernel-native word array
            return values.tobytes()
        if row_words == 1:
            return array("Q", values).tobytes()  # one C call
    width = row_words * 8
    return b"".join(int(value).to_bytes(width, "little") for value in values)


class _LazyIVectors(Dict[object, Any]):
    """Intermediate-state vectors decoded per nonterminal on first access.

    Counting and ranked access never touch ``I`` after a restore (the
    counts are persisted too), and evaluation/enumeration touch only the
    nonterminals they actually descend through — so the restore path
    keeps a reference into the payload bytes and pays the q²-word decode
    per name on demand instead of up front (with the numpy kernel the
    "decode" is a zero-copy ``np.frombuffer`` view).  Decoded vectors are
    memoised in the dict itself, so steady-state access is a plain dict
    lookup.
    """

    __slots__ = ("_buf", "_base", "_index", "_row_words", "_cells", "_decode")

    def __init__(
        self,
        buf: bytes,
        base: int,
        inners: List[object],
        row_words: int,
        cells: int,
        decode: Callable[[bytes, int, int, int], Any],
    ) -> None:
        super().__init__()
        self._buf = buf
        self._base = base
        self._index = {name: t for t, name in enumerate(inners)}
        self._row_words = row_words
        self._cells = cells
        self._decode = decode

    def __missing__(self, name: object) -> Any:
        t = self._index[name]  # unknown name -> KeyError, as a dict would
        field = self._cells * self._row_words * 8
        values = self._decode(
            self._buf, self._base + t * field, self._cells, self._row_words
        )
        self[name] = values
        return values

    def __contains__(self, name: object) -> bool:
        return dict.__contains__(self, name) or name in self._index


def _encode_prep(
    prep: Preprocessing, counts: Optional[Dict[Tuple[object, int, int], int]]
) -> bytes:
    slp = prep.slp
    q = prep.q
    order = slp.canonical_order()
    row_words = (q + 63) // 64
    out = bytearray(
        _HEAD.pack(
            MAGIC,
            STORE_FORMAT_VERSION,
            bytes.fromhex(slp.structural_digest()),
            bytes.fromhex(prep.automaton.structural_digest()),
            q,
            len(order),
        )
    )
    _write_uvarint(out, len(prep.final_states))
    for state in prep.final_states:
        _write_uvarint(out, state)
    out += bytes(0 if slp.is_leaf(name) else 1 for name in order)  # kinds
    for name in order:  # planes section
        out += _pack_words(prep.notbot[name], row_words)
        out += _pack_words(prep.one[name], row_words)
    for name in order:  # dense I section (mirrors the in-memory layout)
        if not slp.is_leaf(name):
            out += _pack_words(prep.I[name], row_words)
    for name in order:  # leaf-table section
        if not slp.is_leaf(name):
            continue
        entries = sorted(prep.leaf_tables[name].items())
        _write_uvarint(out, len(entries))
        for (i, j), marker_sets in entries:
            _write_uvarint(out, i)
            _write_uvarint(out, j)
            _write_uvarint(out, len(marker_sets))
            for pairs in marker_sets:
                _write_uvarint(out, len(pairs))
                for pos, marker in pairs:
                    _write_uvarint(out, pos)
                    var = marker.var.encode("utf-8")
                    _write_uvarint(out, len(var))
                    out += var
                    out.append(0 if marker.kind == OPEN else 1)
    if counts is None:
        out.append(0)
    else:
        # Positional: the counts dict is keyed by exactly the notbot-set
        # cells (every consumer reads through ``CountingTables.count``,
        # which only ever queries those), so the keys are implicit.
        out.append(1)
        get = counts.get
        for name in order:
            nb_rows = prep.notbot[name]
            for i in range(q):
                row = int(nb_rows[i])  # kernel-native rows may be np scalars
                while row:
                    lsb = row & -row
                    _write_uvarint(out, get((name, i, lsb.bit_length() - 1), 0))
                    row ^= lsb
    out += _CRC.pack(zlib.crc32(out))
    return bytes(out)


def _decode_prep(
    buf: bytes,
    padded_slp: SLP,
    automaton: SpannerNFA,
    kernel: Union[None, str, Kernel] = None,
) -> Optional[Tuple[Preprocessing, Optional[Dict[Tuple[object, int, int], int]]]]:
    """Attach a stored payload to live objects; ``None`` on any mismatch.

    ``kernel`` selects the word-section codec (and the layout of the
    attached planes).  Raises ``ValueError``/``struct.error`` on corrupt
    bytes (callers treat those as a reject too).
    """
    kernel = resolve_kernel(kernel)
    if len(buf) < _HEAD.size + _CRC.size:
        raise ValueError("truncated payload")
    magic, version, slp_digest, auto_digest, q, n_names = _HEAD.unpack_from(buf, 0)
    if magic != MAGIC:
        raise ValueError(f"bad magic {magic!r}")
    if version != STORE_FORMAT_VERSION:
        return None  # stale format: rebuild
    (stored_crc,) = _CRC.unpack_from(buf, len(buf) - _CRC.size)
    if stored_crc != zlib.crc32(memoryview(buf)[: len(buf) - _CRC.size]):
        raise ValueError("CRC mismatch")
    if (
        slp_digest.hex() != padded_slp.structural_digest()
        or auto_digest.hex() != automaton.structural_digest()
        or q != automaton.num_states
    ):
        return None  # built for different inputs: a clean miss
    order = padded_slp.canonical_order()
    if n_names != len(order):
        return None
    reader = _Reader(buf, _HEAD.size, len(buf) - _CRC.size)
    final_states = [reader.uvarint() for _ in range(reader.uvarint())]
    kinds = reader.raw(len(order))
    expected_kinds = bytes(0 if padded_slp.is_leaf(n) else 1 for n in order)
    if bytes(kinds) != expected_kinds:
        return None  # shape disagrees with the live grammar
    row_words = (q + 63) // 64
    field = row_words * 8
    # planes section: one bulk word-decode (a zero-copy view under the
    # numpy kernel), then C-level slicing per name — ndarray slices stay
    # views into the payload, list slices are cheap copies.
    plane_values = 2 * q
    n_plane_values = len(order) * plane_values
    plane_offset = reader.pos
    reader.raw(n_plane_values * field)  # bounds check + cursor advance
    values = kernel.decode_words(buf, plane_offset, n_plane_values, row_words)
    notbot: Dict[object, PlaneRows] = {}
    one: Dict[object, PlaneRows] = {}
    for k, name in enumerate(order):
        base = k * plane_values
        notbot[name] = values[base : base + q]
        one[name] = values[base + q : base + plane_values]
    # dense I section: retained in place, decoded lazily per accessed name
    inners = [name for name in order if not padded_slp.is_leaf(name)]
    cells = q * q
    i_offset = reader.pos
    reader.raw(len(inners) * cells * field)  # bounds check + cursor advance
    i_vectors = _LazyIVectors(
        buf, i_offset, inners, row_words, cells, kernel.decode_words
    )
    leaf_tables: Dict[object, Dict[Tuple[int, int], Tuple[Pairs, ...]]] = {}
    for name in order:
        if not padded_slp.is_leaf(name):
            continue
        table: Dict[Tuple[int, int], Tuple[Pairs, ...]] = {}
        for _ in range(reader.uvarint()):
            i = reader.uvarint()
            j = reader.uvarint()
            marker_sets: List[Pairs] = []
            for _ in range(reader.uvarint()):
                pairs: List[Tuple[int, Marker]] = []
                for _ in range(reader.uvarint()):
                    pos = reader.uvarint()
                    var = reader.raw(reader.uvarint()).decode("utf-8")
                    marker_kind = OPEN if reader.byte() == 0 else CLOSE
                    pairs.append((pos, Marker(var, marker_kind)))
                marker_sets.append(tuple(pairs))
            table[(i, j)] = tuple(marker_sets)
        leaf_tables[name] = table
    counts: Optional[Dict[Tuple[object, int, int], int]] = None
    if reader.byte():
        counts = {}
        uvarint = reader.uvarint
        for name in order:
            nb_rows = notbot[name]
            for i in range(q):
                row = int(nb_rows[i])  # kernel-native rows may be np scalars
                while row:
                    lsb = row & -row
                    counts[(name, i, lsb.bit_length() - 1)] = uvarint()
                    row ^= lsb
    prep = Preprocessing.from_planes(
        padded_slp,
        automaton,
        {
            "leaf_tables": leaf_tables,
            "notbot": notbot,
            "one": one,
            "I": i_vectors,
            "final_states": final_states,
        },
        kernel=kernel,
    )
    return prep, counts


class StoreEntryInfo(NamedTuple):
    """Header fields of one ``.prep`` file (see :meth:`PreprocessingStore.scan_headers`)."""

    filename: str
    version: int
    padded_digest: str
    automaton_digest: str
    q: int
    n_names: int


class PreprocessingStore:
    """A directory of persisted preprocessing tables, consulted by the engine.

    >>> import tempfile
    >>> from repro.slp.construct import balanced_slp
    >>> from repro.engine import Engine
    >>> from repro.spanner.regex import compile_spanner
    >>> store = PreprocessingStore(tempfile.mkdtemp())
    >>> spanner = compile_spanner(r".*(?P<x>ab).*", alphabet="ab")
    >>> Engine(store=store).count(spanner, balanced_slp("abab"))   # builds + persists
    2
    >>> Engine(store=store).count(spanner, balanced_slp("abab"))   # fresh process: store hit
    2
    >>> store.stats.hits, store.stats.writes >= 1
    (1, True)
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.stats = StoreStats()
        self._warned_no_space = False

    def _path(
        self, slp_digest: str, automaton_digest: str, padded_digest: str
    ) -> str:
        # The padded-SLP digest is part of the file key: it captures the
        # engine's whole padding configuration (balance, end_symbol), so
        # engines with different settings sharing one directory keep
        # separate entries instead of clobbering each other's.
        key = hashlib.blake2b(
            f"{slp_digest}:{automaton_digest}:{padded_digest}".encode(),
            digest_size=16,
        ).hexdigest()
        return os.path.join(self.directory, f"{key}.prep")

    def load(
        self,
        slp_digest: str,
        automaton_digest: str,
        padded_slp: SLP,
        automaton: SpannerNFA,
        kernel: Union[None, str, Kernel] = None,
    ) -> Optional[Tuple[Preprocessing, Optional[Dict[Tuple[object, int, int], int]]]]:
        """The persisted ``(Preprocessing, counts)`` for the key, or ``None``.

        ``counts`` is ``None`` when the entry was saved before its counting
        tables were ever built.  ``kernel`` selects the word-section codec
        — the on-disk format is kernel-independent, so entries written
        under one backend restore under any other.  Stale versions,
        corrupt payloads and digest mismatches all return ``None``
        (counted in :attr:`StoreStats.rejects`) so the caller simply
        rebuilds; a payload that fails to *decode* (truncation,
        bit-flips, garbage) is additionally quarantined — renamed aside
        so the rebuild's save lands on a vacant path.
        """
        path = self._path(
            slp_digest, automaton_digest, padded_slp.structural_digest()
        )
        registry = get_registry()
        try:
            with open(path, "rb") as fh:
                buf = fh.read()
        except OSError:
            self.stats.misses += 1
            registry.counter("store.misses").inc()
            return None
        buf = mangle("store.load.bytes", buf)
        try:
            restored = _decode_prep(buf, padded_slp, automaton, kernel)
        except Exception:  # repro-check: broad-except — untrusted cache bytes: any decode failure means quarantine + rebuild (counted as a reject)
            self._quarantine(path)
            restored = None
        if restored is None:
            self.stats.rejects += 1
            registry.counter("store.rejects").inc()
            return None
        self.stats.hits += 1
        registry.counter("store.restores").inc()
        registry.counter("store.restore_bytes").inc(len(buf))
        registry.histogram("store.entry_bytes", BYTE_BUCKETS).observe(len(buf))
        return restored

    def _quarantine(self, path: str) -> None:
        """Move a corrupt entry aside so the rebuild owns its path.

        The bad bytes stay on disk (``<name>.prep.quarantined``,
        invisible to :meth:`__len__` / :meth:`scan_headers`) for
        post-mortem; a second corruption of the same key overwrites the
        previous quarantine file rather than accumulating.
        """
        try:
            os.replace(path, f"{path}.quarantined")
        except OSError:
            try:
                os.unlink(path)  # can't rename: removing still unblocks rebuild
            except OSError:
                return  # neither worked; the entry stays and keeps rejecting
        self.stats.quarantined += 1
        get_registry().counter("store.quarantined").inc()

    def save(
        self,
        slp_digest: str,
        automaton_digest: str,
        prep: Preprocessing,
        counts: Optional[Dict[Tuple[object, int, int], int]] = None,
    ) -> None:
        """Persist the tables under the key (atomic; best-effort).

        The write goes to a tmp file that is fsynced and then renamed
        over the entry, so a writer killed at *any* point leaves either
        the old entry or the new one — never a partial payload the next
        reader must CRC-reject.  A full disk (``ENOSPC``) degrades to a
        warn-once no-op: the store is a cache, so losing a write costs
        a rebuild, not correctness.
        """
        path = self._path(
            slp_digest, automaton_digest, prep.slp.structural_digest()
        )
        data = _encode_prep(prep, counts)
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            fault_point("store.save")
            payload = mangle("store.save.bytes", data)
            with open(tmp, "wb") as fh:
                fh.write(payload)
                fh.flush()
                os.fsync(fh.fileno())
            fault_point("store.save.commit")
            os.replace(tmp, path)
        except OSError as exc:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            get_registry().counter("store.save_errors").inc()
            if exc.errno == errno.ENOSPC and not self._warned_no_space:
                self._warned_no_space = True
                warnings.warn(
                    f"preprocessing store {self.directory!r} is out of disk "
                    f"space; persistence is disabled until space frees up "
                    f"(evaluation continues, rebuilding tables in memory)",
                    RuntimeWarning,
                    stacklevel=2,
                )
            return
        self.stats.writes += 1
        registry = get_registry()
        registry.counter("store.writes").inc()
        registry.counter("store.save_bytes").inc(len(data))

    def __len__(self) -> int:
        return sum(1 for n in os.listdir(self.directory) if n.endswith(".prep"))

    def scan_headers(self) -> List[StoreEntryInfo]:
        """Header fields of every well-formed entry (payloads untouched).

        The filename key is a one-way hash, so this scan is how tooling
        (``repro stats --store``) correlates a grammar with its entries:
        the header's padded-SLP digest is derivable from a grammar plus a
        padding configuration.  Unreadable or wrong-magic files are
        skipped, never raised on.
        """
        out: List[StoreEntryInfo] = []
        for name in sorted(os.listdir(self.directory)):
            if not name.endswith(".prep"):
                continue
            try:
                with open(os.path.join(self.directory, name), "rb") as fh:
                    head = fh.read(_HEAD.size)
                magic, version, slp_digest, auto_digest, q, n_names = _HEAD.unpack(
                    head
                )
            except (OSError, struct.error):
                continue
            if magic != MAGIC:
                continue
            out.append(
                StoreEntryInfo(
                    name, version, slp_digest.hex(), auto_digest.hex(), q, n_names
                )
            )
        return out

    def clear(self) -> None:
        """Remove every persisted entry, quarantined ones included
        (counters are kept)."""
        for name in os.listdir(self.directory):
            if name.endswith(".prep") or name.endswith(".prep.quarantined"):
                try:
                    os.unlink(os.path.join(self.directory, name))
                except OSError:
                    pass

    def __repr__(self) -> str:
        return (
            f"PreprocessingStore({self.directory!r}, entries={len(self)}, "
            f"hits={self.stats.hits}, misses={self.stats.misses}, "
            f"rejects={self.stats.rejects}, writes={self.stats.writes}, "
            f"quarantined={self.stats.quarantined})"
        )
