"""Store priming: pay for shared preprocessing once, before fan-out.

Workers in a :class:`~repro.parallel.pool.WorkerPool` coordinate only
through the content-addressed :class:`~repro.store.prepstore.PreprocessingStore`
— there is no lock around a table build, so two workers handed
structurally equal grammars in the same instant could both run the
``O(size(S) · q²)`` build and race to write the same entry (harmless:
the store's atomic replace keeps one copy — but one build is wasted).

:func:`prime_store` removes the race *and* the waste for the common
case: scan the corpus digests (cheap ``repro-slpb`` header reads), and
for every digest that is missing from the store, build its tables once
in the parent and persist them.  By default only *duplicated* digests
are primed — a singleton grammar is built exactly once by whichever
worker receives it anyway (and digest-affinity sharding already keeps
duplicates on one worker; priming additionally covers duplicates that
were split across spanners or re-planned after a crash).
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ReproError
from repro.slp import io as slp_io

from repro.store.prepstore import PreprocessingStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.spec import EngineConfig

#: Tasks whose tables need the determinized padded automaton.
_DETERMINISTIC_TASKS = ("enumerate", "count")


def prime_store(
    store: Union[str, PreprocessingStore],
    spanner_paths: Sequence[Tuple[object, Sequence[str]]],
    *,
    task: str = "evaluate",
    config: Optional["EngineConfig"] = None,
    only_duplicated: bool = True,
) -> int:
    """Precompute missing ``.prep`` entries for a corpus; return #built.

    ``spanner_paths`` pairs each spanner (a ``SpannerNFA`` or
    :class:`~repro.engine.spec.SpannerSpec`) with the grammar paths it
    will be evaluated over.  ``task`` picks which tables are needed
    (``enumerate``/``count`` need the determinized automaton, ``count``
    additionally persists counting tables).  ``config`` — an
    :class:`~repro.engine.spec.EngineConfig` — carries the padding
    configuration the fleet will use; its ``store_dir`` is overridden by
    ``store``.  With ``only_duplicated`` (default) singleton digests are
    left for the workers themselves.
    """
    from repro.engine.spec import EngineConfig, SpannerSpec

    directory = store.directory if isinstance(store, PreprocessingStore) else store
    config = EngineConfig() if config is None else config
    engine = replace(config, store_dir=directory).build()
    deterministic = task in _DETERMINISTIC_TASKS
    built = 0
    for spanner, paths in spanner_paths:
        nfa = SpannerSpec.of(spanner).resolve()
        groups: Dict[Optional[str], List[str]] = {}
        for path in paths:
            try:
                digest = slp_io.peek_digest(path)
            except (OSError, ValueError, ReproError):
                continue  # unreadable: the worker will raise properly
            groups.setdefault(digest, []).append(path)
        for digest, group in groups.items():
            if only_duplicated and len(group) < 2:
                continue
            slp = slp_io.load_file(group[0])
            if engine.warm_from_store(nfa, slp, deterministic):
                continue  # already paid for (this run or a previous one)
            if task == "count":
                engine.count(nfa, slp)  # builds + persists tables AND counts
            else:
                engine.preprocessing(nfa, slp, deterministic)
            built += 1
    return built


__all__ = ["prime_store"]
