"""The ``repro-slpb`` versioned binary SLP format.

Byte layout (all integers little-endian; see also the format summary in
:mod:`repro.slp.io`):

======  =======  ====================================================
offset  size     field
======  =======  ====================================================
0       6        magic ``b"rSLPB\\x00"``
6       2        format version (u16, currently 1)
8       2        flags (u16, reserved, must be 0)
10      16       structural digest of the encoded grammar (blake2b-128)
26      4        number of terminals ``T`` (u32)
30      4        number of binary rules ``R`` (u32)
34      4        start node id (u32)
38      4        byte length of the terminal blob (u32)
42      varies   terminal blob: per terminal, uvarint byte length
                 followed by that many UTF-8 bytes
...     8 * R    fixed-width rule table: rule ``k`` is two u32 node
                 ids ``(left, right)`` and defines node ``T + k``
...     4        CRC-32 of every preceding byte (u32)
======  =======  ====================================================

Node ids ``0 .. T-1`` are the leaf nonterminals in terminal-blob order;
rule ``k`` defines node ``T + k``.  Rules are stored in the canonical
(children-before-parents) order of :meth:`repro.slp.grammar.SLP.canonical_order`,
so every rule references only strictly smaller node ids — a decoder can
materialise the grammar in one forward pass, and the encoding of a grammar
is identical for structurally equal inputs.

The terminal blob is varint-delimited (terminals are almost always single
characters, so this stays near one byte of overhead each), while the rule
table is fixed-width: :class:`BinarySLPFile` mmaps the file and decodes
individual rules lazily with ``struct.unpack_from`` — random access to any
rule without parsing the rest of the file.

Every decoding error — bad magic, unsupported version, truncation,
bit-flips (caught by the CRC), out-of-range ids — raises
:class:`~repro.errors.GrammarError`; no payload may produce a raw
traceback.
"""

from __future__ import annotations

import mmap
import os
import struct
import zlib
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import GrammarError
from repro.slp.grammar import SLP

MAGIC = b"rSLPB\x00"
FORMAT_VERSION = 1

#: Anything the decoders read from: an in-memory payload or an mmap.
Buffer = Union[bytes, bytearray, memoryview, mmap.mmap]

_HEADER = struct.Struct("<6sHH16sIIII")
_RULE = struct.Struct("<II")
_CRC = struct.Struct("<I")


def _write_uvarint(out: bytearray, value: int) -> None:
    """Append the unsigned LEB128 encoding of ``value``."""
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _read_uvarint(buf: Buffer, pos: int, end: int) -> Tuple[int, int]:
    """Decode one unsigned LEB128 integer at ``pos``; returns (value, next)."""
    value = 0
    shift = 0
    while True:
        if pos >= end:
            raise GrammarError("truncated varint in binary payload")
        byte = buf[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7


def encode_slp(slp: SLP) -> bytes:
    """The ``repro-slpb`` encoding of ``slp`` (reachable part only)."""
    order = slp.canonical_order()
    leaves = [name for name in order if slp.is_leaf(name)]
    inners = [name for name in order if not slp.is_leaf(name)]
    ids: Dict[object, int] = {}
    terminal_blob = bytearray()
    for node_id, name in enumerate(leaves):
        symbol = slp.terminal(name)
        if not isinstance(symbol, str):
            raise GrammarError(
                f"only string terminals can be serialised, got {symbol!r}"
            )
        ids[name] = node_id
        data = symbol.encode("utf-8")
        _write_uvarint(terminal_blob, len(data))
        terminal_blob += data
    num_terminals = len(leaves)
    for k, name in enumerate(inners):
        ids[name] = num_terminals + k
    rule_table = bytearray()
    for name in inners:
        left, right = slp.children(name)
        rule_table += _RULE.pack(ids[left], ids[right])
    header = _HEADER.pack(
        MAGIC,
        FORMAT_VERSION,
        0,
        bytes.fromhex(slp.structural_digest()),
        num_terminals,
        len(inners),
        ids[slp.start],
        len(terminal_blob),
    )
    payload = header + bytes(terminal_blob) + bytes(rule_table)
    return payload + _CRC.pack(zlib.crc32(payload))


def _parse_header(buf: Buffer) -> Tuple[bytes, int, int, int, int]:
    """Validated header fields: (digest, T, R, start, terminals_len)."""
    if len(buf) < _HEADER.size + _CRC.size:
        raise GrammarError(
            f"not a repro-slpb payload: {len(buf)} bytes is shorter than the header"
        )
    magic, version, flags, digest, n_terms, n_rules, start, terms_len = (
        _HEADER.unpack_from(buf, 0)
    )
    if magic != MAGIC:
        raise GrammarError(f"not a repro-slpb payload: bad magic {bytes(magic)!r}")
    if version != FORMAT_VERSION:
        raise GrammarError(f"unsupported repro-slpb version {version}")
    if flags != 0:
        raise GrammarError(f"unsupported repro-slpb flags {flags:#06x}")
    expected = _HEADER.size + terms_len + _RULE.size * n_rules + _CRC.size
    if len(buf) != expected:
        raise GrammarError(
            f"corrupt repro-slpb payload: {len(buf)} bytes, expected {expected}"
        )
    return digest, n_terms, n_rules, start, terms_len


def _check_crc(buf: Buffer) -> None:
    (stored,) = _CRC.unpack_from(buf, len(buf) - _CRC.size)
    actual = zlib.crc32(memoryview(buf)[: len(buf) - _CRC.size])
    if stored != actual:
        raise GrammarError(
            f"corrupt repro-slpb payload: CRC mismatch "
            f"(stored {stored:#010x}, computed {actual:#010x})"
        )


def _decode_terminals(buf: Buffer, n_terms: int, terms_len: int) -> List[str]:
    pos = _HEADER.size
    end = pos + terms_len
    terminals: List[str] = []
    for _ in range(n_terms):
        length, pos = _read_uvarint(buf, pos, end)
        if pos + length > end:
            raise GrammarError("corrupt repro-slpb payload: terminal overruns blob")
        try:
            terminals.append(bytes(buf[pos : pos + length]).decode("utf-8"))
        except UnicodeDecodeError as exc:
            raise GrammarError(f"corrupt repro-slpb payload: {exc}") from exc
        pos += length
    if pos != end:
        raise GrammarError("corrupt repro-slpb payload: trailing terminal bytes")
    if len(set(terminals)) != len(terminals):
        raise GrammarError("duplicate terminals in binary grammar")
    return terminals


def decode_slp(
    buf: Union[bytes, bytearray, memoryview], verify_digest: bool = False
) -> SLP:
    """Decode a ``repro-slpb`` payload into an :class:`SLP`.

    Always verifies the CRC, so any accidental corruption (truncation,
    bit-flips) raises :class:`GrammarError`.  The embedded digest is
    *never* trusted as the grammar's identity: structural cache keys and
    store lookups always hash the decoded structure itself (lazily, once,
    cached on the object), so a buggy or crafted writer cannot poison
    content-addressed sharing.  ``verify_digest=True`` makes the embedded
    digest load-bearing the safe way — recompute from the decoded
    structure and raise on mismatch (an O(size) cross-check the CRC
    cannot provide, since the CRC seals whatever digest was written).
    """
    digest, n_terms, n_rules, start, terms_len = _parse_header(buf)
    _check_crc(buf)
    terminals = _decode_terminals(buf, n_terms, terms_len)
    # Inner nodes are named by their integer node id: cheap to create in
    # the hot loop and unambiguous next to the ("T", symbol) leaf names.
    names: List[object] = [("T", symbol) for symbol in terminals]
    leaf_rules = {("T", symbol): symbol for symbol in terminals}
    inner_rules: Dict[object, Tuple[object, object]] = {}
    rules_off = _HEADER.size + terms_len
    node_id = n_terms
    for left, right in _RULE.iter_unpack(
        bytes(buf[rules_off : rules_off + _RULE.size * n_rules])
    ):
        if left >= node_id or right >= node_id:
            raise GrammarError(
                f"rule {node_id - n_terms} references undefined or forward "
                f"node: ({left}, {right})"
            )
        inner_rules[node_id] = (names[left], names[right])
        names.append(node_id)
        node_id += 1
    if not names:
        raise GrammarError("binary grammar has no nonterminals")
    if start >= len(names):
        raise GrammarError(f"start id {start} out of range")
    try:
        slp = SLP(inner_rules, leaf_rules, names[start])
    except GrammarError:
        raise
    except Exception as exc:  # repro-check: broad-except — converts any corrupt-payload failure into a typed GrammarError
        raise GrammarError(f"corrupt repro-slpb payload: {exc}") from exc
    if verify_digest and slp.structural_digest() != digest.hex():
        raise GrammarError(
            "corrupt repro-slpb payload: structural digest mismatch "
            f"(stored {digest.hex()}, computed {slp.structural_digest()})"
        )
    return slp


def save_binary(slp: SLP, path: str) -> None:
    """Serialise ``slp`` to ``path`` in the ``repro-slpb`` format (atomic)."""
    data = encode_slp(slp)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wb") as fh:
        fh.write(data)
    os.replace(tmp, path)


def load_binary(path: str, verify_digest: bool = False) -> SLP:
    """Load a CRC-verified ``repro-slpb`` file into an :class:`SLP`."""
    with open(path, "rb") as fh:
        return decode_slp(fh.read(), verify_digest=verify_digest)


class BinarySLPFile:
    """Random-access view of a ``repro-slpb`` file backed by an mmap.

    Opens in O(header) time: only the 42-byte header is parsed eagerly.
    Rules decode lazily — :meth:`rule` is a single ``struct.unpack_from``
    on the mapped buffer, and the terminal table is parsed on first use —
    so callers can inspect or partially traverse grammars much larger than
    they want to materialise.  :meth:`to_slp` builds the full (verified)
    :class:`SLP`.

    Usable as a context manager::

        with BinarySLPFile(path) as f:
            f.num_rules, f.rule(0), f.terminal(0)
    """

    def __init__(self, path: str, verify: bool = False) -> None:
        self.path = path
        self._fh = open(path, "rb")
        try:
            try:
                self._buf: Union[mmap.mmap, bytes] = mmap.mmap(
                    self._fh.fileno(), 0, access=mmap.ACCESS_READ
                )
            except (ValueError, OSError):
                # empty file or mmap-less filesystem: fall back to bytes
                self._fh.seek(0)
                self._buf = self._fh.read()
            (
                self._stored_digest,
                self.num_terminals,
                self.num_rules,
                self.start_id,
                self._terms_len,
            ) = _parse_header(self._buf)
            if verify:
                _check_crc(self._buf)
        except Exception:  # repro-check: broad-except — cleanup barrier: releases the handle, then re-raises
            self.close()
            raise
        self._rules_off = _HEADER.size + self._terms_len
        self._terminals: Optional[List[str]] = None

    @property
    def num_nodes(self) -> int:
        return self.num_terminals + self.num_rules

    @property
    def digest(self) -> str:
        """The structural digest stored in the header (hex string)."""
        return self._stored_digest.hex()

    def terminal(self, node_id: int) -> str:
        """The terminal symbol of leaf node ``node_id`` (``0 .. T-1``)."""
        if self._terminals is None:
            self._terminals = _decode_terminals(
                self._buf, self.num_terminals, self._terms_len
            )
        if not 0 <= node_id < self.num_terminals:
            raise GrammarError(f"leaf node id {node_id} out of range")
        return self._terminals[node_id]

    def rule(self, k: int) -> Tuple[int, int]:
        """The ``(left, right)`` node ids of rule ``k`` (defines node ``T + k``)."""
        if not 0 <= k < self.num_rules:
            raise GrammarError(f"rule index {k} out of range")
        return _RULE.unpack_from(self._buf, self._rules_off + _RULE.size * k)

    def to_slp(self) -> SLP:
        """Materialise (and CRC-verify) the grammar as an :class:`SLP`."""
        return decode_slp(self._buf)

    def close(self) -> None:
        buf = getattr(self, "_buf", None)
        if isinstance(buf, mmap.mmap):
            buf.close()
        self._fh.close()

    def __enter__(self) -> "BinarySLPFile":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"BinarySLPFile({self.path!r}, terminals={self.num_terminals}, "
            f"rules={self.num_rules})"
        )


def open_binary(path: str, verify: bool = False) -> BinarySLPFile:
    """Open a ``repro-slpb`` file for lazy, mmap-backed random access."""
    return BinarySLPFile(path, verify=verify)
