"""Content-addressed persistence: binary grammars + preprocessing tables.

Two cooperating pieces:

* :mod:`repro.store.binary` — the ``repro-slpb`` binary SLP format:
  varint terminals, a fixed-width topologically-ordered rule table that
  decodes lazily from an mmap (:class:`BinarySLPFile`), CRC + structural
  digest integrity.  Exposed through :mod:`repro.slp.io` as
  ``save_binary`` / ``load_binary`` and the CLI ``convert`` subcommand.
* :mod:`repro.store.prepstore` — :class:`PreprocessingStore`, an on-disk
  map from ``(slp_digest, automaton_digest, padded_digest)`` — with the
  format version checked in-payload — to the Lemma 6.5 bit-plane tables
  (plus counting tables once built), so ``Engine(store=...)`` warm
  starts survive process restarts.

Both address content by :meth:`repro.slp.grammar.SLP.structural_digest`,
the naming-independent grammar hash that also powers the engine's opt-in
structural cache keys (``Engine(structural_keys=True)``).
"""

from repro.store.binary import (
    FORMAT_VERSION as BINARY_FORMAT_VERSION,
    BinarySLPFile,
    decode_slp,
    encode_slp,
    load_binary,
    open_binary,
    save_binary,
)
from repro.store.prepstore import (
    STORE_FORMAT_VERSION,
    PreprocessingStore,
    StoreEntryInfo,
    StoreStats,
)
from repro.store.priming import prime_store

__all__ = [
    "BINARY_FORMAT_VERSION",
    "BinarySLPFile",
    "PreprocessingStore",
    "STORE_FORMAT_VERSION",
    "StoreEntryInfo",
    "StoreStats",
    "decode_slp",
    "encode_slp",
    "load_binary",
    "open_binary",
    "save_binary",
    "prime_store",
]
