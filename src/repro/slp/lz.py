"""LZ77 factorisation and conversion to SLPs (Rytter's construction).

The paper (Sec. 1.1) stresses that practical dictionary compressors — most
notably the Lempel-Ziv family — convert into SLPs of similar size, so
algorithms on SLPs carry over to practical formats.  This module implements
that pipeline:

1. :func:`suffix_array` / :func:`lcp_array` — prefix-doubling suffix array
   (numpy ``lexsort`` when numpy is importable, a pure-Python prefix
   doubling otherwise — suffix/LCP arrays are unique, so both paths
   produce identical factorisations) and Kasai's LCP, with a sparse-table
   RMQ;
2. :func:`lz77_factorize` — the classic (self-referential) LZ77
   factorisation via longest-previous-factor with PSV/NSV candidates;
3. :func:`lz_slp` — Rytter's conversion: maintain an AVL grammar of the
   processed prefix and extend it factor by factor, extracting factor
   sources with :meth:`~repro.slp.avl.AvlBuilder.extract`.  Self-referential
   (overlapping) factors are handled by period unrolling.  The resulting
   SLP has ``O(z * log d)`` rules and ``O(log d)`` depth, where ``z`` is the
   number of LZ factors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

try:  # numpy accelerates the suffix-array pipeline but is optional:
    import numpy as np  # importing repro must never require numpy.
except ImportError:  # pragma: no cover - exercised by the no-numpy CI lane
    np = None

from repro.errors import GrammarError
from repro.slp.avl import AvlBuilder, AvlNode, avl_to_slp
from repro.slp.grammar import SLP


# ----------------------------------------------------------------------
# suffix array / LCP / RMQ
# ----------------------------------------------------------------------


def suffix_array(s: str) -> Sequence[int]:
    """The suffix array of ``s`` via prefix doubling (O(n log^2 n)).

    Returns an ``int64`` ndarray under numpy, a plain list without it —
    either way the same (unique) permutation, consumed by index only.
    """
    n = len(s)
    if np is None:
        return _suffix_array_python(s)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    codes = np.fromiter((ord(c) for c in s), dtype=np.int64, count=n)
    rank = np.unique(codes, return_inverse=True)[1].astype(np.int64)
    k = 1
    while True:
        second = np.full(n, -1, dtype=np.int64)
        if k < n:
            second[: n - k] = rank[k:]
        order = np.lexsort((second, rank))
        first_sorted = rank[order]
        second_sorted = second[order]
        changed = np.empty(n, dtype=np.int64)
        changed[0] = 0
        if n > 1:
            changed[1:] = (
                (first_sorted[1:] != first_sorted[:-1])
                | (second_sorted[1:] != second_sorted[:-1])
            ).astype(np.int64)
        new_rank_sorted = np.cumsum(changed)
        rank = np.empty(n, dtype=np.int64)
        rank[order] = new_rank_sorted
        if new_rank_sorted[-1] == n - 1:
            return order
        k *= 2


def _suffix_array_python(s: str) -> List[int]:
    """Dependency-free prefix doubling (same unique result as the numpy path)."""
    n = len(s)
    if n == 0:
        return []
    rank = [ord(c) for c in s]
    sa = list(range(n))
    k = 1
    while True:
        def key(i: int) -> Tuple[int, int]:
            return (rank[i], rank[i + k] if i + k < n else -1)

        sa.sort(key=key)
        new_rank = [0] * n
        previous = key(sa[0])
        value = 0
        for r in range(1, n):
            current = key(sa[r])
            if current != previous:
                value += 1
                previous = current
            new_rank[sa[r]] = value
        rank = new_rank
        if value == n - 1:
            return sa
        k *= 2


def lcp_array(s: str, sa: Sequence[int]) -> Sequence[int]:
    """Kasai's algorithm: ``lcp[r] = lcp(s[sa[r]:], s[sa[r-1]:])``, ``lcp[0] = 0``."""
    n = len(s)
    lcp = np.zeros(n, dtype=np.int64) if np is not None else [0] * n
    if n == 0:
        return lcp
    isa = _inverse_permutation(sa, n)
    h = 0
    for i in range(n):
        r = isa[i]
        if r > 0:
            j = int(sa[r - 1])
            while i + h < n and j + h < n and s[i + h] == s[j + h]:
                h += 1
            lcp[r] = h
            if h:
                h -= 1
        else:
            h = 0
    return lcp


def _inverse_permutation(sa: Sequence[int], n: int) -> Sequence[int]:
    """``isa`` with ``isa[sa[r]] = r`` (works for lists and ndarrays)."""
    if np is not None:
        isa = np.empty(n, dtype=np.int64)
        isa[sa] = np.arange(n)
        return isa
    isa = [0] * n
    for r, i in enumerate(sa):
        isa[i] = r
    return isa


class _RangeMin:
    """Sparse-table range-minimum structure over an integer sequence."""

    def __init__(self, values: Sequence[int]) -> None:
        n = len(values)
        levels = max(1, n.bit_length())
        if np is not None:
            self._table: List[Sequence[int]] = [
                np.asarray(values).astype(np.int64)
            ]
        else:
            self._table = [list(values)]
        width = 1
        for _ in range(1, levels):
            prev = self._table[-1]
            if len(prev) <= width:
                break
            if np is not None:
                self._table.append(np.minimum(prev[:-width], prev[width:]))
            else:
                self._table.append(
                    [
                        min(prev[t], prev[t + width])
                        for t in range(len(prev) - width)
                    ]
                )
            width *= 2
        self._n = n

    def query(self, lo: int, hi: int) -> int:
        """min(values[lo:hi]) for lo < hi."""
        if not 0 <= lo < hi <= self._n:
            raise IndexError(f"bad RMQ range [{lo}:{hi}] for n={self._n}")
        span = hi - lo
        level = span.bit_length() - 1
        width = 1 << level
        table = self._table[level]
        return int(min(table[lo], table[hi - width]))


# ----------------------------------------------------------------------
# LZ77 factorisation
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Literal:
    """An LZ77 factor consisting of a single fresh character."""

    char: str


@dataclass(frozen=True)
class Copy:
    """An LZ77 factor copying ``length`` characters starting at ``source``.

    ``source + length`` may exceed the factor's own start position
    (self-referential factor); consumers must unroll the periodic overlap.
    """

    source: int
    length: int


Factor = Union[Literal, Copy]


def lz77_factorize(s: str) -> List[Factor]:
    """The greedy left-to-right LZ77 factorisation of ``s``.

    Each factor is either a :class:`Literal` (first occurrence of a
    character) or the longest :class:`Copy` of an earlier occurrence
    (possibly overlapping its own start).

    >>> lz77_factorize("aabaab")
    [Literal(char='a'), Copy(source=0, length=1), Literal(char='b'), Copy(source=0, length=3)]
    """
    n = len(s)
    if n == 0:
        return []
    sa = suffix_array(s)
    lcp = lcp_array(s, sa)
    isa = _inverse_permutation(sa, n)
    rmq = _RangeMin(lcp)

    # PSV/NSV over the suffix array: for every text position i, the nearest
    # suffixes in SA order that start strictly before i.  Plain lists: they
    # are only ever indexed, one candidate pair per factor.
    psv = [-1] * n
    nsv = [-1] * n
    stack: List[int] = []
    for r in range(n):
        i = int(sa[r])
        while stack and stack[-1] > i:
            nsv[stack.pop()] = i
        psv[i] = stack[-1] if stack else -1
        stack.append(i)

    def lcp_positions(i: int, j: int) -> int:
        ri, rj = int(isa[i]), int(isa[j])
        if ri > rj:
            ri, rj = rj, ri
        return rmq.query(ri + 1, rj + 1)

    factors: List[Factor] = []
    i = 0
    while i < n:
        best_len = 0
        best_src = -1
        for cand in (int(psv[i]), int(nsv[i])):
            if cand >= 0:
                ell = lcp_positions(i, cand)
                if ell > best_len:
                    best_len, best_src = ell, cand
        if best_len == 0:
            factors.append(Literal(s[i]))
            i += 1
        else:
            best_len = min(best_len, n - i)
            factors.append(Copy(best_src, best_len))
            i += best_len
    return factors


def lz_decompress(factors: Sequence[Factor]) -> str:
    """Reconstruct the text from an LZ77 factorisation (reference decoder)."""
    out: List[str] = []
    for factor in factors:
        if isinstance(factor, Literal):
            out.append(factor.char)
        else:
            for k in range(factor.length):
                out.append(out[factor.source + k])
    return "".join(out)


# ----------------------------------------------------------------------
# LZ -> SLP (Rytter's construction via AVL grammars)
# ----------------------------------------------------------------------


def lz_to_slp(factors: Sequence[Factor], builder: Optional[AvlBuilder] = None) -> SLP:
    """Convert an LZ77 factorisation into a balanced normal-form SLP.

    Maintains an AVL grammar of the processed prefix; each :class:`Copy`
    factor is realised by extracting its source range (``O(log d)`` fresh
    nodes) and joining it onto the prefix.  Self-referential factors are
    unrolled through their period with square-and-multiply joins.
    """
    if not factors:
        raise GrammarError("cannot build an SLP from an empty factorisation")
    builder = builder if builder is not None else AvlBuilder()
    prefix: Optional[AvlNode] = None
    prefix_len = 0
    for factor in factors:
        if isinstance(factor, Literal):
            node = builder.leaf(factor.char)
        else:
            node = _copy_node(builder, prefix, prefix_len, factor)
        prefix = node if prefix is None else builder.join(prefix, node)
        prefix_len += node.length
    return avl_to_slp(prefix)


def lz_slp(s: str) -> SLP:
    """Factorise ``s`` with LZ77 and convert to an SLP in one call.

    >>> from repro.slp.derive import text
    >>> slp = lz_slp("abracadabra" * 50)
    >>> text(slp) == "abracadabra" * 50
    True
    """
    return lz_to_slp(lz77_factorize(s))


def _copy_node(
    builder: AvlBuilder, prefix: Optional[AvlNode], prefix_len: int, factor: Copy
) -> AvlNode:
    if prefix is None or factor.source >= prefix_len:
        raise GrammarError(f"factor {factor} references beyond the processed prefix")
    end = factor.source + factor.length
    if end <= prefix_len:
        return builder.extract(prefix, factor.source, end)
    # Self-referential factor: the copied text is periodic with period
    # ``prefix_len - source``; unroll by repeated squaring.
    period = prefix_len - factor.source
    block = builder.extract(prefix, factor.source, prefix_len)
    reps = -(-factor.length // period)  # ceil division
    acc: Optional[AvlNode] = None
    power = block
    k = reps
    while k:
        if k & 1:
            acc = power if acc is None else builder.join(acc, power)
        k >>= 1
        if k:
            power = builder.join(power, power)
    if acc.length > factor.length:
        acc = builder.extract(acc, 0, factor.length)
    return acc
