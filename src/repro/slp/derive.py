"""Decompression and random access on SLP-compressed documents.

All functions operate without materialising the derivation tree: they use an
explicit stack (streaming) or the precomputed ``|D(A)|`` lengths (random
access, Lemma 4.4 / Sec. 4.2 of the paper).

Positions in this module are **0-based**, matching Python string indexing.
The spanner layer (which follows the paper's 1-based span convention) does
its own offset bookkeeping.
"""

from __future__ import annotations

from typing import Hashable, Iterator, List, Optional, Tuple

from repro.errors import DecompressionLimitExceeded
from repro.slp.grammar import SLP, Name, Symbol

#: Default safety limit for APIs that materialise the document.
DEFAULT_LIMIT = 64 * 1024 * 1024


def iter_symbols(slp: SLP, root: Optional[Name] = None) -> Iterator[Symbol]:
    """Stream the symbols of ``D(root)`` left to right in O(d) time.

    Uses an explicit stack of depth at most ``depth(S)`` instead of
    recursion, so arbitrarily deep grammars are safe.
    """
    stack: List[Name] = [slp.start if root is None else root]
    leaves = slp.leaf_rules
    inner = slp.inner_rules
    while stack:
        name = stack.pop()
        while name not in leaves:
            left, right = inner[name]
            stack.append(right)
            name = left
        yield leaves[name]


def decompress(
    slp: SLP,
    root: Optional[Name] = None,
    max_length: int = DEFAULT_LIMIT,
) -> Tuple[Symbol, ...]:
    """The full derived word ``D(root)`` as a tuple of symbols.

    Raises :class:`DecompressionLimitExceeded` if the word is longer than
    ``max_length`` — SLPs can compress exponentially, so materialising
    blindly is never safe.
    """
    length = slp.length(root)
    if length > max_length:
        raise DecompressionLimitExceeded(
            f"document has {length} symbols, limit is {max_length}"
        )
    return tuple(iter_symbols(slp, root))


def text(slp: SLP, root: Optional[Name] = None, max_length: int = DEFAULT_LIMIT) -> str:
    """The derived word as a string (requires string terminals)."""
    return "".join(decompress(slp, root, max_length))


def char_at(slp: SLP, index: int, root: Optional[Name] = None) -> Symbol:
    """The symbol ``D[index]`` (0-based) in O(depth(S)) time.

    This is the classic top-down descent of Sec. 4.2: at each inner node
    compare ``index`` against ``|D(left)|`` to decide which child to enter.
    """
    name = slp.start if root is None else root
    length = slp.length(name)
    if not 0 <= index < length:
        raise IndexError(f"index {index} out of range for document of length {length}")
    while not slp.is_leaf(name):
        left, right = slp.children(name)
        left_len = slp.length(left)
        if index < left_len:
            name = left
        else:
            index -= left_len
            name = right
    return slp.terminal(name)


def substring(
    slp: SLP,
    start: int,
    stop: int,
    root: Optional[Name] = None,
    max_length: int = DEFAULT_LIMIT,
) -> Tuple[Symbol, ...]:
    """The factor ``D[start:stop]`` (0-based, half-open).

    Runs in ``O(depth(S) + (stop - start))`` time: one descent to locate the
    range, then a partial left-to-right expansion restricted to it.
    """
    name = slp.start if root is None else root
    total = slp.length(name)
    if start < 0 or stop > total or start > stop:
        raise IndexError(f"range [{start}:{stop}] invalid for document of length {total}")
    if stop - start > max_length:
        raise DecompressionLimitExceeded(
            f"substring has {stop - start} symbols, limit is {max_length}"
        )
    out: List[Symbol] = []
    want = stop - start
    if want == 0:
        return ()

    # Stack entries are (nonterminal, offset-of-range-start-inside-it).
    stack: List[Tuple[Name, int]] = [(name, start)]
    while stack and len(out) < want:
        name, offset = stack.pop()
        # Skip whole subtrees strictly before the range start.
        while not slp.is_leaf(name):
            left, right = slp.children(name)
            left_len = slp.length(left)
            if offset >= left_len:
                name, offset = right, offset - left_len
            else:
                stack.append((right, 0))
                name = left
        if offset == 0:
            out.append(slp.terminal(name))
    return tuple(out)


def count_symbol(slp: SLP, symbol: Symbol, root: Optional[Name] = None) -> int:
    """Number of occurrences ``|D(root)|_symbol``, in O(size(S)) time."""
    counts = {}
    for name in slp.topological_order():
        if slp.is_leaf(name):
            counts[name] = 1 if slp.terminal(name) == symbol else 0
        else:
            left, right = slp.children(name)
            counts[name] = counts[left] + counts[right]
    return counts[slp.start if root is None else root]


def leaf_path(slp: SLP, index: int, root: Optional[Name] = None) -> List[Name]:
    """The root-to-leaf path of nonterminals covering position ``index``.

    This is the path the model-checking construction of Theorem 5.1 has to
    re-write; its length is at most ``depth(S)``.
    """
    name = slp.start if root is None else root
    length = slp.length(name)
    if not 0 <= index < length:
        raise IndexError(f"index {index} out of range for document of length {length}")
    path = [name]
    while not slp.is_leaf(name):
        left, right = slp.children(name)
        left_len = slp.length(left)
        if index < left_len:
            name = left
        else:
            index -= left_len
            name = right
        path.append(name)
    return path
