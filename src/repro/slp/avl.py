"""AVL grammars: height-balanced, persistent, hash-consed SLP nodes.

This module is the engine behind :mod:`repro.slp.balance` (our substitution
for the SLP Balancing Theorem 4.3 of Ganardi–Jeż–Lohrey) and behind the
LZ77-to-SLP conversion (Rytter's construction).

An *AVL grammar* is an SLP whose derivation DAG satisfies the AVL balance
condition: for every inner node, the heights of the two children differ by
at most one.  Consequently the depth of the grammar is at most
``1.44 * log2(d) + O(1)`` where ``d`` is the length of the derived word.

The central operation is :meth:`AvlBuilder.join`, which concatenates two
AVL grammars into one while creating only ``O(|h1 - h2|)`` new nodes — all
pre-existing nodes are shared (the builder hash-conses every ``(left,
right)`` pair).  On top of ``join`` we get:

* :meth:`AvlBuilder.from_symbols` — balanced grammar for an explicit word;
* :meth:`AvlBuilder.extract` — the grammar of a factor ``w[i:j]``, reusing
  the existing nodes and adding only ``O(log d)`` fresh ones;
* :func:`avl_to_slp` — conversion to a normal-form :class:`~repro.slp.grammar.SLP`.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.errors import GrammarError
from repro.slp.grammar import SLP, Symbol


class AvlNode:
    """An immutable node of an AVL grammar (leaf or binary inner node).

    Nodes must be created through an :class:`AvlBuilder`, which guarantees
    hash-consing (two structurally identical nodes created by the same
    builder are the same object).
    """

    __slots__ = ("uid", "left", "right", "symbol", "height", "length")

    def __init__(
        self,
        uid: int,
        left: Optional["AvlNode"],
        right: Optional["AvlNode"],
        symbol: Optional[Symbol],
        height: int,
        length: int,
    ) -> None:
        self.uid = uid
        self.left = left
        self.right = right
        self.symbol = symbol
        self.height = height
        self.length = length

    @property
    def is_leaf(self) -> bool:
        return self.left is None

    def __repr__(self) -> str:
        if self.is_leaf:
            return f"AvlLeaf({self.symbol!r})"
        return f"AvlNode(h={self.height}, len={self.length})"


class AvlBuilder:
    """Factory for hash-consed AVL-grammar nodes.

    All nodes created by one builder live in one shared DAG; the builder's
    :attr:`num_nodes` therefore measures the total grammar size of
    everything built so far.
    """

    def __init__(self) -> None:
        self._leaf_memo: Dict[Symbol, AvlNode] = {}
        self._pair_memo: Dict[Tuple[int, int], AvlNode] = {}
        self._next_uid = 0

    @property
    def num_nodes(self) -> int:
        """Total number of distinct nodes created so far."""
        return self._next_uid

    # -- node creation -------------------------------------------------

    def leaf(self, symbol: Symbol) -> AvlNode:
        node = self._leaf_memo.get(symbol)
        if node is None:
            node = AvlNode(self._next_uid, None, None, symbol, 1, 1)
            self._next_uid += 1
            self._leaf_memo[symbol] = node
        return node

    def pair(self, left: AvlNode, right: AvlNode) -> AvlNode:
        """The node ``left · right``; requires ``|h(left) - h(right)| <= 1``."""
        key = (left.uid, right.uid)
        node = self._pair_memo.get(key)
        if node is None:
            node = AvlNode(
                self._next_uid,
                left,
                right,
                None,
                1 + max(left.height, right.height),
                left.length + right.length,
            )
            self._next_uid += 1
            self._pair_memo[key] = node
        return node

    # -- concatenation ---------------------------------------------------

    def _node2(self, a: AvlNode, b: AvlNode) -> AvlNode:
        """Balanced node for ``a · b`` where the height skew is at most 2.

        Performs the standard AVL single/double rotations when the skew is
        exactly two.  The result has height ``max(h(a), h(b))`` or one more.
        """
        d = a.height - b.height
        if -1 <= d <= 1:
            return self.pair(a, b)
        if d == 2:
            if a.left.height >= a.right.height:
                return self.pair(a.left, self.pair(a.right, b))
            ar = a.right
            return self.pair(self.pair(a.left, ar.left), self.pair(ar.right, b))
        if d == -2:
            if b.right.height >= b.left.height:
                return self.pair(self.pair(a, b.left), b.right)
            bl = b.left
            return self.pair(self.pair(a, bl.left), self.pair(bl.right, b.right))
        raise AssertionError(f"height skew {d} > 2 reached _node2")

    def join(self, left: Optional[AvlNode], right: Optional[AvlNode]) -> AvlNode:
        """AVL concatenation: grammar for ``D(left) · D(right)``.

        Creates ``O(|h(left) - h(right)| + 1)`` new nodes; the result height
        is ``max(h(left), h(right))`` or one more.  ``None`` operands act as
        the empty word.
        """
        if left is None:
            if right is None:
                raise GrammarError("cannot join two empty grammars")
            return right
        if right is None:
            return left
        if left.height > right.height + 1:
            return self._node2(left.left, self.join(left.right, right))
        if right.height > left.height + 1:
            return self._node2(self.join(left, right.left), right.right)
        return self.pair(left, right)

    def concat_all(self, nodes: Sequence[AvlNode]) -> AvlNode:
        """Join a nonempty sequence of grammars left to right."""
        if not nodes:
            raise GrammarError("cannot concatenate an empty sequence of grammars")
        acc = nodes[0]
        for node in nodes[1:]:
            acc = self.join(acc, node)
        return acc

    # -- construction from explicit words --------------------------------

    def from_symbols(self, symbols: Iterable[Symbol]) -> AvlNode:
        """A balanced grammar for an explicit word, with pairwise sharing.

        Builds bottom-up by repeatedly pairing adjacent equal-height trees,
        so periodic words (e.g. ``(ab)^k``) automatically share subtrees
        through the builder's hash-consing.
        """
        level: List[AvlNode] = [self.leaf(s) for s in symbols]
        if not level:
            raise GrammarError("cannot build a grammar for the empty word")
        while len(level) > 1:
            nxt: List[AvlNode] = []
            for i in range(0, len(level) - 1, 2):
                nxt.append(self.pair(level[i], level[i + 1]))
            if len(level) % 2 == 1:
                if nxt:
                    nxt[-1] = self.join(nxt[-1], level[-1])
                else:  # pragma: no cover - len(level) == 1 handled by loop guard
                    nxt.append(level[-1])
            level = nxt
        return level[0]

    # -- factor extraction ------------------------------------------------

    def extract(self, node: AvlNode, start: int, stop: int) -> AvlNode:
        """Grammar for the factor ``D(node)[start:stop]`` (0-based, half-open).

        Reuses every node of the canonical decomposition of the range and
        creates only ``O(log d)`` fresh nodes at the two boundaries — this is
        the key step of Rytter's LZ-to-SLP construction.
        """
        if not 0 <= start < stop <= node.length:
            raise IndexError(
                f"range [{start}:{stop}] invalid for word of length {node.length}"
            )
        if start == 0 and stop == node.length:
            return node
        if node.is_leaf:  # pragma: no cover - full range handled above
            return node
        left_len = node.left.length
        if stop <= left_len:
            return self.extract(node.left, start, stop)
        if start >= left_len:
            return self.extract(node.right, start - left_len, stop - left_len)
        return self.join(
            self.extract(node.left, start, left_len),
            self.extract(node.right, 0, stop - left_len),
        )


# ----------------------------------------------------------------------
# free functions on AVL nodes
# ----------------------------------------------------------------------


def avl_symbols(node: AvlNode) -> Iterable[Symbol]:
    """Stream the derived word of an AVL grammar (O(d) time)."""
    stack = [node]
    while stack:
        cur = stack.pop()
        while not cur.is_leaf:
            stack.append(cur.right)
            cur = cur.left
        yield cur.symbol


def avl_text(node: AvlNode) -> str:
    """The derived word as a string (requires string terminals)."""
    return "".join(avl_symbols(node))


def check_avl(node: AvlNode) -> bool:
    """Verify the AVL balance condition and cached heights/lengths.

    Used by the test suite; raises ``AssertionError`` on violation.
    """
    seen: Dict[int, bool] = {}
    stack: List[Tuple[AvlNode, int]] = [(node, 0)]
    while stack:
        cur, phase = stack.pop()
        if cur.uid in seen:
            continue
        if cur.is_leaf:
            assert cur.height == 1 and cur.length == 1
            seen[cur.uid] = True
            continue
        if phase == 0:
            stack.append((cur, 1))
            stack.append((cur.left, 0))
            stack.append((cur.right, 0))
        else:
            left, right = cur.left, cur.right
            assert abs(left.height - right.height) <= 1, "AVL balance violated"
            assert cur.height == 1 + max(left.height, right.height)
            assert cur.length == left.length + right.length
            seen[cur.uid] = True
    return True


def count_dag_nodes(node: AvlNode) -> int:
    """Number of distinct nodes reachable from ``node`` (its grammar size)."""
    seen = set()
    stack = [node]
    while stack:
        cur = stack.pop()
        if cur.uid in seen:
            continue
        seen.add(cur.uid)
        if not cur.is_leaf:
            stack.append(cur.left)
            stack.append(cur.right)
    return len(seen)


def avl_to_slp(node: AvlNode) -> SLP:
    """Convert an AVL grammar into a normal-form :class:`SLP`.

    Each distinct DAG node becomes one nonterminal; leaves map to the
    canonical leaf nonterminals ``("T", symbol)``.
    """
    names: Dict[int, object] = {}
    inner: Dict[object, Tuple[object, object]] = {}
    leaves: Dict[object, Symbol] = {}
    counter = 0
    stack: List[Tuple[AvlNode, int]] = [(node, 0)]
    while stack:
        cur, phase = stack.pop()
        if cur.uid in names:
            continue
        if cur.is_leaf:
            name = ("T", cur.symbol)
            names[cur.uid] = name
            leaves[name] = cur.symbol
            continue
        if phase == 0:
            stack.append((cur, 1))
            stack.append((cur.left, 0))
            stack.append((cur.right, 0))
        else:
            name = f"A{counter}"
            counter += 1
            names[cur.uid] = name
            inner[name] = (names[cur.left.uid], names[cur.right.uid])
    return SLP(inner, leaves, names[node.uid])


def avl_from_slp(slp: SLP, builder: Optional[AvlBuilder] = None) -> AvlNode:
    """Rebuild an arbitrary SLP as an AVL grammar, bottom-up.

    For every rule ``A -> B C`` the AVL grammars of ``B`` and ``C`` are
    joined; by the ``join`` cost bound the total number of created nodes is
    ``O(size(S) * log d)`` and the result height is ``O(log d)``.
    """
    builder = builder if builder is not None else AvlBuilder()
    memo: Dict[object, AvlNode] = {}
    reachable = slp.reachable()
    for name in slp.topological_order():
        if name not in reachable:
            continue
        if slp.is_leaf(name):
            memo[name] = builder.leaf(slp.terminal(name))
        else:
            left, right = slp.children(name)
            memo[name] = builder.join(memo[left], memo[right])
    return memo[slp.start]
