"""Straight-line-program substrate: grammars, access, compressors, balancing.

Public surface:

* :class:`~repro.slp.grammar.SLP` — normal-form straight-line programs;
* :mod:`~repro.slp.derive` — decompression and O(depth) random access;
* :mod:`~repro.slp.construct` / :mod:`~repro.slp.repair` /
  :mod:`~repro.slp.lz` — grammar construction and compression;
* :mod:`~repro.slp.balance` — depth-``O(log d)`` rebalancing (the paper's
  Theorem 4.3, substituted per DESIGN.md §3);
* :mod:`~repro.slp.families` — the paper's example grammars and the
  compressible families used in the benchmarks.
"""

from repro.slp.balance import balance, depth_bound, ensure_balanced, is_balanced
from repro.slp.construct import balanced_slp, bisection_slp
from repro.slp.edits import (
    SlpEditor,
    append_text,
    concat_slp,
    delete_range,
    extract_slp,
    insert_text,
    prepend_text,
    replace_range,
)
from repro.slp.derive import (
    char_at,
    count_symbol,
    decompress,
    iter_symbols,
    leaf_path,
    substring,
    text,
)
from repro.slp.families import (
    caterpillar_slp,
    example_4_1,
    example_4_2,
    fibonacci_slp,
    power_slp,
    random_slp,
    repeated_slp,
    thue_morse_slp,
)
from repro.slp.grammar import SLP
from repro.slp.lz import lz77_factorize, lz_decompress, lz_slp, lz_to_slp
from repro.slp.repair import repair_slp
from repro.slp.stats import compression_report, slp_stats

from repro.slp import io as slp_io

__all__ = [
    "SLP",
    "SlpEditor",
    "append_text",
    "balance",
    "balanced_slp",
    "bisection_slp",
    "concat_slp",
    "delete_range",
    "extract_slp",
    "insert_text",
    "prepend_text",
    "replace_range",
    "slp_io",
    "caterpillar_slp",
    "char_at",
    "compression_report",
    "count_symbol",
    "decompress",
    "depth_bound",
    "ensure_balanced",
    "example_4_1",
    "example_4_2",
    "fibonacci_slp",
    "is_balanced",
    "iter_symbols",
    "leaf_path",
    "lz77_factorize",
    "lz_decompress",
    "lz_slp",
    "lz_to_slp",
    "power_slp",
    "random_slp",
    "repair_slp",
    "repeated_slp",
    "slp_stats",
    "substring",
    "text",
    "thue_morse_slp",
]
