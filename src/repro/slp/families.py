"""Directly-constructed SLP families used by the paper, tests and benches.

These families realise, without ever materialising the document, the
compressibility scenarios the paper discusses:

* :func:`power_slp` — ``pattern^(2^n)``: size ``O(|pattern| + n)`` for a
  document of length ``|pattern| * 2^n`` (the ``a^(2^n)`` example of
  Sec. 4.2 — exponential compression).
* :func:`repeated_slp` — ``pattern^k`` for arbitrary ``k`` via binary
  decomposition of ``k`` (square-and-multiply).
* :func:`fibonacci_slp`, :func:`thue_morse_slp` — classic self-similar words.
* :func:`caterpillar_slp` — a maximally *unbalanced* SLP (depth ``≈ d``),
  the adversarial input for balancing (bench E7) and delay (bench E6).
* :func:`example_4_1`, :func:`example_4_2` — the paper's running examples.
* :func:`random_slp` — random DAG-shaped grammars for property tests.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Sequence, Tuple

from repro.errors import GrammarError
from repro.slp.construct import balanced_slp
from repro.slp.grammar import SLP, Symbol


def power_slp(pattern: str, doublings: int) -> SLP:
    """An SLP for ``pattern^(2^doublings)`` with ``O(|pattern| + doublings)`` rules.

    >>> from repro.slp.derive import text
    >>> slp = power_slp("ab", 3)
    >>> text(slp)
    'abababababababab'
    >>> slp.length()
    16
    """
    if doublings < 0:
        raise GrammarError("doublings must be >= 0")
    base = balanced_slp(pattern)
    inner = dict(base.inner_rules)
    leaves = dict(base.leaf_rules)
    prev = base.start
    for k in range(doublings):
        name = f"P{k}"
        inner[name] = (prev, prev)
        prev = name
    return SLP(inner, leaves, prev)


def repeated_slp(pattern: str, times: int) -> SLP:
    """An SLP for ``pattern`` repeated ``times`` times, ``O(|pattern| + log times)`` rules.

    Uses the binary decomposition of ``times`` (square-and-multiply over
    concatenation).

    >>> from repro.slp.derive import text
    >>> text(repeated_slp("abc", 5))
    'abcabcabcabcabc'
    """
    if times < 1:
        raise GrammarError("times must be >= 1")
    base = balanced_slp(pattern)
    inner = dict(base.inner_rules)
    leaves = dict(base.leaf_rules)
    counter = [0]

    def fresh() -> str:
        counter[0] += 1
        return f"R{counter[0]}"

    def pair(a, b):
        name = fresh()
        inner[name] = (a, b)
        return name

    # square-and-multiply: powers[i] derives pattern^(2^i)
    power = base.start
    acc = None
    k = times
    while k:
        if k & 1:
            acc = power if acc is None else pair(acc, power)
        k >>= 1
        if k:
            power = pair(power, power)
    return SLP(inner, leaves, acc).trim()


def fibonacci_slp(n: int) -> SLP:
    """The n-th Fibonacci word as an SLP: ``F1 = b``, ``F2 = a``, ``Fn = F(n-1) F(n-2)``.

    Size ``O(n)`` for a document of length ``Fib(n)`` — exponential
    compression with naturally logarithmic grammar depth relative to the
    document length.

    >>> from repro.slp.derive import text
    >>> text(fibonacci_slp(6))
    'abaababa'
    """
    if n < 1:
        raise GrammarError("n must be >= 1")
    leaves = {("T", "a"): "a", ("T", "b"): "b"}
    if n == 1:
        return SLP({}, {("T", "b"): "b"}, ("T", "b"))
    if n == 2:
        return SLP({}, {("T", "a"): "a"}, ("T", "a"))
    inner: Dict[str, Tuple[object, object]] = {}
    names: Dict[int, object] = {1: ("T", "b"), 2: ("T", "a")}
    for k in range(3, n + 1):
        names[k] = f"F{k}"
        inner[f"F{k}"] = (names[k - 1], names[k - 2])
    return SLP(inner, leaves, names[n])


def thue_morse_slp(n: int) -> SLP:
    """The Thue–Morse word of length ``2^n`` over ``{a, b}`` as an SLP.

    ``A_k -> A_(k-1) B_(k-1)``, ``B_k -> B_(k-1) A_(k-1)``; size ``O(n)``.

    >>> from repro.slp.derive import text
    >>> text(thue_morse_slp(3))
    'abbabaab'
    """
    if n < 0:
        raise GrammarError("n must be >= 0")
    leaves = {("T", "a"): "a", ("T", "b"): "b"}
    if n == 0:
        return SLP({}, {("T", "a"): "a"}, ("T", "a"))
    inner: Dict[str, Tuple[object, object]] = {}
    a_prev, b_prev = ("T", "a"), ("T", "b")
    for k in range(1, n + 1):
        inner[f"A{k}"] = (a_prev, b_prev)
        inner[f"B{k}"] = (b_prev, a_prev)
        a_prev, b_prev = f"A{k}", f"B{k}"
    return SLP(inner, leaves, a_prev)


def caterpillar_slp(n: int, pattern: str = "ab") -> SLP:
    """A maximally unbalanced SLP: depth ``≈ n`` for a document of length ``n + |pattern|``.

    ``C_k -> C_(k-1) T_x`` where ``x`` cycles through ``pattern``.  The
    adversarial input for balancing and for the enumeration-delay bound
    (delay is ``O(depth)``, so caterpillars show the unbalanced worst case).

    >>> slp = caterpillar_slp(100)
    >>> slp.length(), slp.depth() >= 100
    (102, True)
    """
    if n < 1:
        raise GrammarError("n must be >= 1")
    leaves = {("T", c): c for c in set(pattern)}
    inner: Dict[str, Tuple[object, object]] = {
        "C0": (("T", pattern[0]), ("T", pattern[1 % len(pattern)]))
    }
    prev = "C0"
    for k in range(1, n + 1):
        symbol = pattern[(k + 1) % len(pattern)]
        inner[f"C{k}"] = (prev, ("T", symbol))
        prev = f"C{k}"
    return SLP(inner, leaves, prev)


def example_4_1() -> SLP:
    """The SLP of Example 4.1 (binarised to normal form).

    Original rules: ``S0 -> A b a A B b``, ``A -> B a B``, ``B -> baab``,
    deriving ``baababaabbabaababaabbaabb`` (25 symbols).
    """
    return SLP.from_general_rules(
        {
            "S0": ["A", "b", "a", "A", "B", "b"],
            "A": ["B", "a", "B"],
            "B": list("baab"),
        },
        start="S0",
    )


def example_4_2() -> SLP:
    """The normal-form SLP of Example 4.2 / Figure 3, deriving ``aabccaabaa``."""
    return SLP(
        inner_rules={
            "S0": ("A", "B"),
            "A": ("C", "D"),
            "B": ("C", "E"),
            "C": ("E", "Tb"),
            "D": ("Tc", "Tc"),
            "E": ("Ta", "Ta"),
        },
        leaf_rules={"Ta": "a", "Tb": "b", "Tc": "c"},
        start="S0",
    )


def random_slp(
    num_inner: int,
    alphabet: Sequence[Symbol] = "ab",
    seed: Optional[int] = None,
    max_length: Optional[int] = None,
) -> SLP:
    """A random normal-form SLP with ``num_inner`` inner nonterminals.

    Each inner rule picks two uniformly random earlier nonterminals, which
    yields DAG-shaped grammars with highly varied document lengths and
    depths — the property-test workhorse.  If ``max_length`` is given,
    children are re-drawn (with a deterministic fallback) so that no
    nonterminal derives more than ``max_length`` symbols.
    """
    if num_inner < 1:
        raise GrammarError("num_inner must be >= 1")
    if not alphabet:
        raise GrammarError("alphabet must be nonempty")
    rng = random.Random(seed)
    leaves = {("T", c): c for c in alphabet}
    names = list(leaves)
    lengths = {name: 1 for name in names}
    inner: Dict[str, Tuple[object, object]] = {}
    for k in range(num_inner):
        left, right = rng.choice(names), rng.choice(names)
        if max_length is not None and lengths[left] + lengths[right] > max_length:
            # fall back to the shortest available pair
            shortest = min(names, key=lengths.__getitem__)
            left = right = shortest
            if 2 * lengths[shortest] > max_length:
                # cannot grow further; reuse an existing nonterminal pairing
                left = right = min(names, key=lengths.__getitem__)
        name = f"G{k}"
        inner[name] = (left, right)
        lengths[name] = lengths[left] + lengths[right]
        names.append(name)
    return SLP(inner, leaves, f"G{num_inner - 1}")
