"""SLP balancing (substitute for the Balancing Theorem 4.3).

The paper invokes Ganardi–Jeż–Lohrey (FOCS'19): any SLP of size ``s`` can be
rebalanced in ``O(s)`` time into an equivalent SLP of size ``O(s)`` and depth
``O(log d)``.  Implementing GJL verbatim is out of scope; we substitute
Rytter-style **AVL-grammar rebalancing** (see ``DESIGN.md`` §3):

* same depth guarantee: ``depth(S') <= 1.44 * log2(d) + 3``;
* size ``O(s · log d)`` instead of ``O(s)`` (measured in bench E7).

Everything downstream of the theorem — the ``O(|X| · log d)`` enumeration
delay (Thm 8.10) and the ``O(|X| · log d)`` model-checking rewrite
(Thm 5.1.2) — depends only on the depth, so the substitution preserves the
paper's behaviour.
"""

from __future__ import annotations

import math

from repro.slp.avl import AvlBuilder, avl_from_slp, avl_to_slp
from repro.slp.grammar import SLP

#: AVL trees with n leaves have height <= 1.4405 log2(n + 2); the +3 covers
#: the leaf-nonterminal level and rounding.
AVL_DEPTH_FACTOR = 1.4405
AVL_DEPTH_SLACK = 3


def balance(slp: SLP) -> SLP:
    """Rebalance ``slp`` into an equivalent SLP of depth ``O(log d)``.

    The derived document is unchanged.  The result satisfies
    ``result.depth() <= depth_bound(result.length())``.

    >>> from repro.slp.families import caterpillar_slp
    >>> deep = caterpillar_slp(500)
    >>> deep.depth() > 500
    True
    >>> flat = balance(deep)
    >>> flat.depth() <= depth_bound(flat.length())
    True
    """
    builder = AvlBuilder()
    root = avl_from_slp(slp, builder)
    return avl_to_slp(root)


def depth_bound(length: int) -> int:
    """The guaranteed post-balancing depth bound for a document of ``length``."""
    if length < 1:
        raise ValueError("documents have length >= 1")
    return int(AVL_DEPTH_FACTOR * math.log2(length + 2)) + AVL_DEPTH_SLACK


def is_balanced(slp: SLP, factor: float = AVL_DEPTH_FACTOR, slack: int = AVL_DEPTH_SLACK) -> bool:
    """Whether ``slp`` is ``c``-balanced: ``depth(S) <= factor*log2(d) + slack``."""
    return slp.depth() <= factor * math.log2(slp.length() + 2) + slack


def ensure_balanced(slp: SLP) -> SLP:
    """Return ``slp`` unchanged if already balanced, else :func:`balance` it."""
    return slp if is_balanced(slp) else balance(slp)
