"""Straight-line programs (SLPs) in normal form.

An SLP is a context-free grammar that derives exactly one word (Sec. 4 of the
paper).  Following the paper we keep all SLPs in *normal form*:

* every inner nonterminal ``A`` has a binary rule ``A -> B C`` (Chomsky
  normal form), and
* for every terminal ``x`` there is exactly one *leaf nonterminal* ``T_x``
  with the rule ``T_x -> x``.

Terminals may be arbitrary hashable objects.  Plain documents use
single-character strings; the model-checking construction of Theorem 5.1
additionally uses marker-set symbols as terminals.

The class computes, at construction time, a topological order of the
nonterminals, the derived length ``|D(A)|`` of every nonterminal
(Lemma 4.4) and the depth of every nonterminal, so that all later
algorithms can treat these as O(1) lookups.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Hashable, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import GrammarError

Symbol = Hashable
Name = Hashable


class SLP:
    """A straight-line program in normal form.

    Parameters
    ----------
    inner_rules:
        Mapping from inner nonterminal name to a ``(left, right)`` pair of
        nonterminal names.
    leaf_rules:
        Mapping from leaf nonterminal name to the terminal symbol it derives.
    start:
        Name of the start nonterminal.

    Example (the normal-form SLP of Example 4.2 of the paper)::

        >>> slp = SLP(
        ...     inner_rules={
        ...         "S0": ("A", "B"), "A": ("C", "D"), "B": ("C", "E"),
        ...         "C": ("E", "Tb"), "D": ("Tc", "Tc"), "E": ("Ta", "Ta"),
        ...     },
        ...     leaf_rules={"Ta": "a", "Tb": "b", "Tc": "c"},
        ...     start="S0",
        ... )
        >>> from repro.slp.derive import text
        >>> text(slp)
        'aabccaabaa'
        >>> slp.length()
        10
    """

    __slots__ = (
        "_inner",
        "_leaves",
        "start",
        "_topo",
        "_lengths",
        "_depths",
        "_leaf_for_terminal",
        "_canon_order",
        "_digest",
    )

    def __init__(
        self,
        inner_rules: Mapping[Name, Tuple[Name, Name]],
        leaf_rules: Mapping[Name, Symbol],
        start: Name,
    ) -> None:
        self._inner: Dict[Name, Tuple[Name, Name]] = dict(inner_rules)
        self._leaves: Dict[Name, Symbol] = dict(leaf_rules)
        self.start = start
        self._validate()
        self._topo = self._topological_order()
        self._lengths = self._compute_lengths()
        self._depths = self._compute_depths()
        self._leaf_for_terminal = {sym: name for name, sym in self._leaves.items()}
        self._canon_order: Optional[List[Name]] = None
        self._digest: Optional[str] = None

    # ------------------------------------------------------------------
    # validation and derived structure
    # ------------------------------------------------------------------

    def _validate(self) -> None:
        overlap = set(self._inner) & set(self._leaves)
        if overlap:
            raise GrammarError(f"names used both as inner and leaf nonterminals: {sorted(map(repr, overlap))}")
        if not self._inner and not self._leaves:
            raise GrammarError("an SLP must have at least one rule")
        defined = set(self._inner) | set(self._leaves)
        if self.start not in defined:
            raise GrammarError(f"start nonterminal {self.start!r} has no rule")
        for name, (left, right) in self._inner.items():
            if left not in defined:
                raise GrammarError(f"rule for {name!r} references undefined nonterminal {left!r}")
            if right not in defined:
                raise GrammarError(f"rule for {name!r} references undefined nonterminal {right!r}")
        seen_terminals: Dict[Symbol, Name] = {}
        for name, sym in self._leaves.items():
            if sym in seen_terminals:
                raise GrammarError(
                    f"terminal {sym!r} has two leaf nonterminals "
                    f"({seen_terminals[sym]!r} and {name!r}); normal form requires a unique one"
                )
            seen_terminals[sym] = name

    def _topological_order(self) -> List[Name]:
        """Children-before-parents order over *all* nonterminals.

        Raises :class:`GrammarError` if the rule graph has a cycle (which
        would make the grammar derive no finite word).
        """
        order: List[Name] = []
        state: Dict[Name, int] = {}  # 0 = visiting, 1 = done
        for root in list(self._leaves) + list(self._inner):
            if state.get(root) == 1:
                continue
            stack: List[Tuple[Name, int]] = [(root, 0)]
            while stack:
                name, phase = stack.pop()
                if phase == 0:
                    if state.get(name) == 1:
                        continue
                    if state.get(name) == 0:
                        raise GrammarError(f"cycle through nonterminal {name!r}")
                    state[name] = 0
                    stack.append((name, 1))
                    if name in self._inner:
                        left, right = self._inner[name]
                        for child in (right, left):
                            if state.get(child) != 1:
                                if state.get(child) == 0:
                                    raise GrammarError(f"cycle through nonterminal {child!r}")
                                stack.append((child, 0))
                else:
                    state[name] = 1
                    order.append(name)
        return order

    def _compute_lengths(self) -> Dict[Name, int]:
        lengths: Dict[Name, int] = {}
        for name in self._topo:
            if name in self._leaves:
                lengths[name] = 1
            else:
                left, right = self._inner[name]
                lengths[name] = lengths[left] + lengths[right]
        return lengths

    def _compute_depths(self) -> Dict[Name, int]:
        """Depth per the paper: leaves have depth 1, ``A -> B C`` adds 1."""
        depths: Dict[Name, int] = {}
        for name in self._topo:
            if name in self._leaves:
                depths[name] = 1
            else:
                left, right = self._inner[name]
                depths[name] = 1 + max(depths[left], depths[right])
        return depths

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------

    @property
    def inner_rules(self) -> Mapping[Name, Tuple[Name, Name]]:
        """Read-only view of the binary rules ``A -> (B, C)``."""
        return self._inner

    @property
    def leaf_rules(self) -> Mapping[Name, Symbol]:
        """Read-only view of the leaf rules ``T_x -> x``."""
        return self._leaves

    def is_leaf(self, name: Name) -> bool:
        """Whether ``name`` is a leaf nonterminal ``T_x``."""
        return name in self._leaves

    def terminal(self, name: Name) -> Symbol:
        """The terminal derived by leaf nonterminal ``name``."""
        return self._leaves[name]

    def leaf_for(self, symbol: Symbol) -> Optional[Name]:
        """The unique leaf nonterminal for ``symbol``, or ``None``."""
        return self._leaf_for_terminal.get(symbol)

    def children(self, name: Name) -> Tuple[Name, Name]:
        """The pair ``(B, C)`` of the rule ``name -> B C``."""
        return self._inner[name]

    def length(self, name: Optional[Name] = None) -> int:
        """``|D(A)|`` for nonterminal ``A`` (default: the start symbol)."""
        return self._lengths[self.start if name is None else name]

    def depth(self, name: Optional[Name] = None) -> int:
        """Depth of a nonterminal (default: ``depth(S)``), per Sec. 4.1."""
        return self._depths[self.start if name is None else name]

    @property
    def alphabet(self) -> frozenset:
        """The set of terminal symbols with a leaf nonterminal."""
        return frozenset(self._leaves.values())

    @property
    def num_nonterminals(self) -> int:
        return len(self._inner) + len(self._leaves)

    @property
    def num_inner(self) -> int:
        return len(self._inner)

    @property
    def num_leaves(self) -> int:
        return len(self._leaves)

    @property
    def size(self) -> int:
        """``size(S) = |N| + sum_A |D_S(A)|`` as defined in Sec. 4.1."""
        return self.num_nonterminals + 2 * len(self._inner) + len(self._leaves)

    def topological_order(self) -> List[Name]:
        """All nonterminals, children before parents."""
        return list(self._topo)

    def nonterminals(self) -> Iterator[Name]:
        return iter(self._topo)

    # ------------------------------------------------------------------
    # structural operations
    # ------------------------------------------------------------------

    def reachable(self, root: Optional[Name] = None) -> frozenset:
        """Nonterminals reachable from ``root`` (default: start)."""
        root = self.start if root is None else root
        seen = {root}
        stack = [root]
        while stack:
            name = stack.pop()
            if name in self._inner:
                for child in self._inner[name]:
                    if child not in seen:
                        seen.add(child)
                        stack.append(child)
        return frozenset(seen)

    def trim(self) -> "SLP":
        """A copy with all nonterminals unreachable from the start removed."""
        keep = self.reachable()
        return SLP(
            inner_rules={n: rule for n, rule in self._inner.items() if n in keep},
            leaf_rules={n: sym for n, sym in self._leaves.items() if n in keep},
            start=self.start,
        )

    def restrict(self, root: Name) -> "SLP":
        """The sub-SLP deriving ``D(root)``, i.e. with ``root`` as start."""
        keep = self.reachable(root)
        return SLP(
            inner_rules={n: rule for n, rule in self._inner.items() if n in keep},
            leaf_rules={n: sym for n, sym in self._leaves.items() if n in keep},
            start=root,
        )

    def canonical(self) -> "SLP":
        """A structurally identical SLP with deterministic integer-ish names.

        Inner nonterminals become ``"N0", "N1", ...`` in the canonical
        (naming-independent) order of :meth:`canonical_order`; the leaf
        nonterminal for terminal ``x`` becomes ``("T", x)``.  Two SLPs that
        are equal up to renaming therefore produce *identical* canonical
        forms, no matter how or in what order their rules were built —
        useful for comparing grammars produced by different builders.
        """
        keep = self.reachable()
        mapping: Dict[Name, Name] = {}
        counter = 0
        for name in self.canonical_order():
            if name in self._leaves:
                mapping[name] = ("T", self._leaves[name])
            else:
                mapping[name] = f"N{counter}"
                counter += 1
        return SLP(
            inner_rules={
                mapping[n]: (mapping[l], mapping[r])
                for n, (l, r) in self._inner.items()
                if n in keep
            },
            leaf_rules={mapping[n]: sym for n, sym in self._leaves.items() if n in keep},
            start=mapping[self.start],
        )

    def same_structure(self, other: "SLP") -> bool:
        """Whether two SLPs are identical up to renaming of nonterminals."""
        a, b = self.canonical(), other.canonical()
        return a._inner == b._inner and a._leaves == b._leaves and a.start == b.start

    def canonical_order(self) -> List[Name]:
        """Reachable nonterminals in a naming-independent canonical order.

        Deterministic post-order DFS from the start symbol, left child
        before right, each node listed once at its first completion.  The
        order depends only on the rooted rule DAG (with ordered children)
        and is therefore identical for any two SLPs that are equal up to
        renaming — unlike :meth:`topological_order`, which follows rule
        insertion order.  This is the index space used by the on-disk
        preprocessing store and by :meth:`structural_digest`.
        """
        if self._canon_order is None:
            order: List[Name] = []
            done: set = set()
            stack: List[Tuple[Name, int]] = [(self.start, 0)]
            while stack:
                name, phase = stack.pop()
                if name in done:
                    continue
                if phase == 0:
                    stack.append((name, 1))
                    if name in self._inner:
                        left, right = self._inner[name]
                        stack.append((right, 0))
                        stack.append((left, 0))
                else:
                    done.add(name)
                    order.append(name)
            self._canon_order = order
        return list(self._canon_order)

    def structural_digest(self) -> str:
        """A content hash of the reachable grammar structure (hex string).

        One pass over :meth:`canonical_order`: leaves contribute their
        terminal symbol, inner nodes the canonical indices of their
        children.  Two SLPs get the same digest iff their reachable parts
        are identical up to renaming of nonterminals (modulo hash
        collisions), regardless of how or in what order the rules were
        built.  Computed once and cached on the object — SLPs are
        immutable — so repeated cache lookups cost a dict read.
        """
        if self._digest is None:
            h = hashlib.blake2b(digest_size=16)
            index: Dict[Name, int] = {}
            for name in self.canonical_order():
                index[name] = len(index)
                if name in self._leaves:
                    token = symbol_token(self._leaves[name])
                    h.update(b"L")
                    h.update(len(token).to_bytes(4, "little"))
                    h.update(token)
                else:
                    left, right = self._inner[name]
                    h.update(b"I")
                    h.update(index[left].to_bytes(4, "little"))
                    h.update(index[right].to_bytes(4, "little"))
            self._digest = h.hexdigest()
        return self._digest

    def __repr__(self) -> str:
        return (
            f"SLP(start={self.start!r}, inner={len(self._inner)}, "
            f"leaves={len(self._leaves)}, length={self.length()}, depth={self.depth()})"
        )

    # ------------------------------------------------------------------
    # construction from general context-free rules
    # ------------------------------------------------------------------

    @classmethod
    def from_general_rules(
        cls,
        rules: Mapping[Name, Sequence],
        start: Name,
    ) -> "SLP":
        """Build a normal-form SLP from general (non-binary) CFG rules.

        ``rules`` maps each nonterminal name to a nonempty sequence of
        right-hand-side items.  An item that is itself a key of ``rules`` is
        treated as a nonterminal reference; every other item is a terminal
        symbol.  Long right-hand sides are binarised in a balanced fashion,
        and terminals get fresh shared leaf nonterminals.

        Example (the SLP of Example 4.1 of the paper, size 16)::

            >>> slp = SLP.from_general_rules(
            ...     {"S0": list("A") + ["b", "a", "A", "B", "b"],
            ...      "A": ["B", "a", "B"],
            ...      "B": list("baab")},
            ...     start="S0",
            ... )
            >>> from repro.slp.derive import text
            >>> text(slp)
            'baababaabbabaababaabbaabb'
        """
        if start not in rules:
            raise GrammarError(f"start nonterminal {start!r} has no rule")
        inner: Dict[Name, Tuple[Name, Name]] = {}
        leaves: Dict[Name, Symbol] = {}
        leaf_names: Dict[Symbol, Name] = {}
        fresh = _FreshNames(set(rules))

        def leaf_name(symbol: Symbol) -> Name:
            if symbol not in leaf_names:
                name = fresh.make(f"T[{symbol!r}]")
                leaf_names[symbol] = name
                leaves[name] = symbol
            return leaf_names[symbol]

        def binarise(items: List[Name]) -> Name:
            """Balanced binarisation of >= 2 nonterminal names; returns root."""
            if len(items) == 1:
                return items[0]
            mid = len(items) // 2
            left = binarise(items[:mid])
            right = binarise(items[mid:])
            name = fresh.make("B")
            inner[name] = (left, right)
            return name

        alias: Dict[Name, Name] = {}
        for name, rhs in rules.items():
            if len(rhs) == 0:
                raise GrammarError(f"rule for {name!r} has an empty right-hand side")
            resolved = [item if item in rules else leaf_name(item) for item in rhs]
            if len(resolved) == 1:
                # Unit rule A -> B (or A -> x): record an alias to keep the
                # grammar in Chomsky normal form.
                alias[name] = resolved[0]
            else:
                mid = len(resolved) // 2
                inner[name] = (binarise(resolved[:mid]), binarise(resolved[mid:]))

        def resolve(name: Name, _guard: int = 0) -> Name:
            seen = set()
            while name in alias:
                if name in seen:
                    raise GrammarError(f"cycle of unit rules through {name!r}")
                seen.add(name)
                name = alias[name]
            return name

        inner = {n: (resolve(l), resolve(r)) for n, (l, r) in inner.items()}
        return cls(inner, leaves, resolve(start)).trim()


def symbol_token(symbol: Symbol) -> bytes:
    """A deterministic byte encoding of a terminal symbol for hashing.

    Strings hash by their UTF-8 bytes; marker-set symbols (frozensets of
    markers, used by spliced model-checking grammars) by the sorted reprs
    of their elements; anything else by its ``repr``.
    """
    if isinstance(symbol, str):
        return b"s:" + symbol.encode("utf-8")
    if isinstance(symbol, frozenset):
        return b"f:" + ",".join(sorted(repr(m) for m in symbol)).encode("utf-8")
    return b"r:" + repr(symbol).encode("utf-8")


class _FreshNames:
    """Generates names guaranteed not to clash with a set of reserved ones."""

    def __init__(self, reserved: Iterable[Name]) -> None:
        self._reserved = set(reserved)
        self._counter = 0

    def make(self, hint: str) -> str:
        while True:
            name = f"_{hint}#{self._counter}"
            self._counter += 1
            if name not in self._reserved:
                self._reserved.add(name)
                return name
