"""Serialisation of SLPs: a JSON text format and a binary mmap-able format.

Both formats store nonterminals in topological order with integer ids, so
files are deterministic for structurally equal grammars, load in one pass,
and stay close to the information-theoretic grammar size.  Only string
terminals are supported (marker-set terminals of spliced model-checking
grammars are internal and never serialised).

**JSON format** (``repro-slp``, version 1) — human-readable interchange::

    {
      "format": "repro-slp",
      "version": 1,
      "terminals": ["a", "b"],            # index = terminal id
      "rules": [[0, 1], [2, 2], ...],     # pairs of node ids
      "start": 5
    }

Node ids: ``0 .. len(terminals)-1`` are the leaf nonterminals (in list
order); rule ``k`` defines node ``len(terminals) + k``.

**Binary format** (``repro-slpb``, version 1) — the production on-disk
representation; see :mod:`repro.store.binary` for the authoritative
field-by-field specification.  Byte layout (little-endian)::

    [ 0..5]  magic b"rSLPB\\x00"
    [ 6..7]  u16 format version (1)
    [ 8..9]  u16 flags (reserved, 0)
    [10..25] blake2b-128 structural digest of the grammar
    [26..29] u32 number of terminals T
    [30..33] u32 number of rules R
    [34..37] u32 start node id
    [38..41] u32 terminal-blob byte length
    [42.. ]  terminal blob: per terminal, uvarint length + UTF-8 bytes
    [ .... ] rule table: R fixed-width (u32 left, u32 right) pairs;
             rule k defines node T + k and references only ids < T + k
    [last 4] u32 CRC-32 of everything before it

The fixed-width rule table means rules decode lazily straight out of an
mmap (:func:`open_binary`), and the CRC means any truncation, bit-flip
or wrong-magic file raises :class:`~repro.errors.GrammarError`.  The
embedded digest is informational (it lets tooling identify a grammar
without decoding it); structural cache keys always re-hash the decoded
structure, and ``verify_digest=True`` cross-checks the two at load.

**Versioning rules** (both formats): the version is bumped on any change
to the byte/field layout; readers reject versions they do not know
(``GrammarError``), never guess.  New optional information must go into
new fields (JSON) or a new version (binary) — the reserved ``flags``
field exists so version 1 readers can hard-reject files using
yet-unspecified extensions.

:func:`load_file` auto-detects the format by sniffing the magic bytes, so
every CLI subcommand accepts either representation; ``repro-spanner
convert`` translates between them.
"""

from __future__ import annotations

import json
from typing import Dict, List, TextIO, Tuple, Union

from repro.errors import GrammarError
from repro.slp.grammar import SLP

FORMAT_NAME = "repro-slp"
FORMAT_VERSION = 1


def slp_to_dict(slp: SLP) -> dict:
    """The JSON-ready dictionary encoding of ``slp`` (reachable part only).

    Nodes are emitted in :meth:`~repro.slp.grammar.SLP.canonical_order`
    (naming-independent), so structurally equal grammars — however they
    were built or renamed — serialise to the same document, and
    JSON <-> binary conversions round-trip byte-identically.
    """
    order = slp.canonical_order()
    terminals: List[str] = []
    ids: Dict[object, int] = {}
    for name in order:
        if slp.is_leaf(name):
            symbol = slp.terminal(name)
            if not isinstance(symbol, str):
                raise GrammarError(
                    f"only string terminals can be serialised, got {symbol!r}"
                )
            ids[name] = len(terminals)
            terminals.append(symbol)
    rules: List[Tuple[int, int]] = []
    for name in order:
        if slp.is_leaf(name):
            continue
        left, right = slp.children(name)
        ids[name] = len(terminals) + len(rules)
        rules.append((ids[left], ids[right]))
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "terminals": terminals,
        "rules": rules,
        "start": ids[slp.start],
    }


def slp_from_dict(data: dict) -> SLP:
    """Decode :func:`slp_to_dict` output back into an :class:`SLP`."""
    if not isinstance(data, dict):
        raise GrammarError(
            f"not a {FORMAT_NAME} document: expected an object, got {type(data).__name__}"
        )
    if data.get("format") != FORMAT_NAME:
        raise GrammarError(f"not a {FORMAT_NAME} document: {data.get('format')!r}")
    if data.get("version") != FORMAT_VERSION:
        raise GrammarError(f"unsupported version {data.get('version')!r}")
    terminals = data["terminals"]
    rules = data["rules"]
    if len(set(terminals)) != len(terminals):
        raise GrammarError("duplicate terminals in serialised grammar")
    names: List[object] = [("T", symbol) for symbol in terminals]
    leaf_rules = {("T", symbol): symbol for symbol in terminals}
    inner_rules: Dict[object, Tuple[object, object]] = {}
    for index, pair in enumerate(rules):
        if len(pair) != 2:
            raise GrammarError(f"rule {index} is not binary: {pair!r}")
        left, right = pair
        node_id = len(terminals) + index
        if not (0 <= left < node_id and 0 <= right < node_id):
            raise GrammarError(
                f"rule {index} references undefined or forward node: {pair!r}"
            )
        name = f"N{index}"
        inner_rules[name] = (names[left], names[right])
        names.append(name)
    start = data["start"]
    if not 0 <= start < len(names):
        raise GrammarError(f"start id {start} out of range")
    return SLP(inner_rules, leaf_rules, names[start])


def dumps(slp: SLP, indent: Union[int, None] = None) -> str:
    """Serialise to a JSON string.

    >>> from repro.slp.construct import balanced_slp
    >>> from repro.slp.derive import text
    >>> text(loads(dumps(balanced_slp("abracadabra"))))
    'abracadabra'
    """
    return json.dumps(slp_to_dict(slp), indent=indent)


def loads(payload: str) -> SLP:
    """Deserialise from a JSON string."""
    try:
        data = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise GrammarError(f"not valid JSON: {exc}") from exc
    return slp_from_dict(data)


def dump(slp: SLP, fh: TextIO) -> None:
    """Serialise to an open text file."""
    json.dump(slp_to_dict(slp), fh)


def load(fh: TextIO) -> SLP:
    """Deserialise from an open text file."""
    try:
        data = json.load(fh)
    except json.JSONDecodeError as exc:
        raise GrammarError(f"not valid JSON: {exc}") from exc
    return slp_from_dict(data)


def save_file(slp: SLP, path: str) -> None:
    """Serialise to ``path`` as JSON (see :func:`save_binary` for binary)."""
    with open(path, "w", encoding="utf-8") as fh:
        dump(slp, fh)


def sniff_format(path: str) -> str:
    """``"binary"`` or ``"json"``: the on-disk format of ``path`` by magic."""
    with open(path, "rb") as fh:
        return "binary" if fh.read(len(BINARY_MAGIC)) == BINARY_MAGIC else "json"


def load_file(path: str) -> SLP:
    """Deserialise from ``path``, auto-detecting JSON vs binary by magic."""
    with open(path, "rb") as fh:
        data = fh.read()
    if data.startswith(BINARY_MAGIC):
        from repro.store.binary import decode_slp

        return decode_slp(data)
    try:
        payload = data.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise GrammarError(
            f"{path}: neither a {FORMAT_NAME} JSON document nor a repro-slpb "
            f"binary ({exc})"
        ) from exc
    return loads(payload)


#: First bytes of a ``repro-slpb`` file (kept in sync with repro.store.binary).
BINARY_MAGIC = b"rSLPB\x00"


def save_binary(slp: SLP, path: str) -> None:
    """Serialise to ``path`` in the ``repro-slpb`` binary format."""
    from repro.store.binary import save_binary as _save

    _save(slp, path)


def load_binary(path: str) -> SLP:
    """Load (and fully verify) a ``repro-slpb`` file."""
    from repro.store.binary import load_binary as _load

    return _load(path)


def peek_digest(path: str) -> str:
    """The structural digest of the grammar at ``path``, cheaply if possible.

    For ``repro-slpb`` files the digest is read straight from the header
    (16 bytes at a fixed offset) without decoding the grammar; JSON files
    are decoded and hashed.  The header digest is written by our own
    encoder and CRC-sealed, so it is trustworthy for *scheduling* —
    grouping duplicate documents onto one worker, deduplicating store
    priming — where a wrong value can only cost a missed optimisation,
    never a wrong answer (every load-bearing consumer re-derives digests
    from decoded structure).
    """
    with open(path, "rb") as fh:
        head = fh.read(26)  # magic(6) + version(2) + flags(2) + digest(16)
    if head.startswith(BINARY_MAGIC) and len(head) == 26:
        return head[10:26].hex()
    return load_file(path).structural_digest()


def peek_alphabet(path: str):
    """The grammar's terminal alphabet as a frozenset, cheaply if possible.

    ``repro-slpb`` files store the terminal blob right after the header,
    so the alphabet is read without decoding the (much larger) rule
    table; JSON files are decoded fully.  Lets tooling infer a shared
    corpus alphabet without the per-file decode the workers will pay
    anyway.
    """
    if sniff_format(path) == "binary":
        with open_binary(path) as fh:
            return frozenset(
                fh.terminal(node_id) for node_id in range(fh.num_terminals)
            )
    return frozenset(load_file(path).alphabet)


def open_binary(path: str, verify: bool = False):
    """Open a ``repro-slpb`` file for lazy, mmap-backed random access.

    Returns a :class:`repro.store.binary.BinarySLPFile`; rules decode on
    demand with ``struct.unpack_from`` against the mapped buffer.
    """
    from repro.store.binary import open_binary as _open

    return _open(path, verify=verify)
