"""Serialisation of SLPs: a compact, stable JSON-based format.

The on-disk format stores nonterminals in topological order with integer
ids, so files are deterministic for structurally equal grammars, load in
one pass, and stay close to the information-theoretic grammar size::

    {
      "format": "repro-slp",
      "version": 1,
      "terminals": ["a", "b"],            # index = terminal id
      "rules": [[0, 1], [2, 2], ...],     # pairs of node ids
      "start": 5
    }

Node ids: ``0 .. len(terminals)-1`` are the leaf nonterminals (in list
order); rule ``k`` defines node ``len(terminals) + k``.

Only string terminals are supported (marker-set terminals of spliced
model-checking grammars are internal and never serialised).
"""

from __future__ import annotations

import json
from typing import Dict, List, TextIO, Tuple, Union

from repro.errors import GrammarError
from repro.slp.grammar import SLP

FORMAT_NAME = "repro-slp"
FORMAT_VERSION = 1


def slp_to_dict(slp: SLP) -> dict:
    """The JSON-ready dictionary encoding of ``slp`` (reachable part only)."""
    reachable = slp.reachable()
    terminals: List[str] = []
    ids: Dict[object, int] = {}
    for name in slp.topological_order():
        if name in reachable and slp.is_leaf(name):
            symbol = slp.terminal(name)
            if not isinstance(symbol, str):
                raise GrammarError(
                    f"only string terminals can be serialised, got {symbol!r}"
                )
            ids[name] = len(terminals)
            terminals.append(symbol)
    rules: List[Tuple[int, int]] = []
    for name in slp.topological_order():
        if name not in reachable or slp.is_leaf(name):
            continue
        left, right = slp.children(name)
        ids[name] = len(terminals) + len(rules)
        rules.append((ids[left], ids[right]))
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "terminals": terminals,
        "rules": rules,
        "start": ids[slp.start],
    }


def slp_from_dict(data: dict) -> SLP:
    """Decode :func:`slp_to_dict` output back into an :class:`SLP`."""
    if not isinstance(data, dict):
        raise GrammarError(
            f"not a {FORMAT_NAME} document: expected an object, got {type(data).__name__}"
        )
    if data.get("format") != FORMAT_NAME:
        raise GrammarError(f"not a {FORMAT_NAME} document: {data.get('format')!r}")
    if data.get("version") != FORMAT_VERSION:
        raise GrammarError(f"unsupported version {data.get('version')!r}")
    terminals = data["terminals"]
    rules = data["rules"]
    if len(set(terminals)) != len(terminals):
        raise GrammarError("duplicate terminals in serialised grammar")
    names: List[object] = [("T", symbol) for symbol in terminals]
    leaf_rules = {("T", symbol): symbol for symbol in terminals}
    inner_rules: Dict[object, Tuple[object, object]] = {}
    for index, pair in enumerate(rules):
        if len(pair) != 2:
            raise GrammarError(f"rule {index} is not binary: {pair!r}")
        left, right = pair
        node_id = len(terminals) + index
        if not (0 <= left < node_id and 0 <= right < node_id):
            raise GrammarError(
                f"rule {index} references undefined or forward node: {pair!r}"
            )
        name = f"N{index}"
        inner_rules[name] = (names[left], names[right])
        names.append(name)
    start = data["start"]
    if not 0 <= start < len(names):
        raise GrammarError(f"start id {start} out of range")
    return SLP(inner_rules, leaf_rules, names[start])


def dumps(slp: SLP, indent: Union[int, None] = None) -> str:
    """Serialise to a JSON string.

    >>> from repro.slp.construct import balanced_slp
    >>> from repro.slp.derive import text
    >>> text(loads(dumps(balanced_slp("abracadabra"))))
    'abracadabra'
    """
    return json.dumps(slp_to_dict(slp), indent=indent)


def loads(payload: str) -> SLP:
    """Deserialise from a JSON string."""
    try:
        data = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise GrammarError(f"not valid JSON: {exc}") from exc
    return slp_from_dict(data)


def dump(slp: SLP, fh: TextIO) -> None:
    """Serialise to an open text file."""
    json.dump(slp_to_dict(slp), fh)


def load(fh: TextIO) -> SLP:
    """Deserialise from an open text file."""
    try:
        data = json.load(fh)
    except json.JSONDecodeError as exc:
        raise GrammarError(f"not valid JSON: {exc}") from exc
    return slp_from_dict(data)


def save_file(slp: SLP, path: str) -> None:
    """Serialise to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        dump(slp, fh)


def load_file(path: str) -> SLP:
    """Deserialise from ``path``."""
    with open(path, "r", encoding="utf-8") as fh:
        return load(fh)
