"""Reporting helpers: grammar statistics and compression comparisons."""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional, Sequence

from repro.slp.grammar import SLP
from repro.slp.construct import balanced_slp, bisection_slp
from repro.slp.lz import lz_slp
from repro.slp.repair import repair_slp


def slp_stats(slp: SLP) -> Dict[str, object]:
    """A dictionary of the standard grammar measures used in the paper.

    ``size`` is the paper's ``size(S) = |N| + sum |D(A)|``; ``ratio`` is the
    compression ratio ``d / size``.
    """
    length = slp.length()
    return {
        "length": length,
        "size": slp.size,
        "num_nonterminals": slp.num_nonterminals,
        "num_inner": slp.num_inner,
        "num_leaves": slp.num_leaves,
        "depth": slp.depth(),
        "ratio": length / slp.size,
    }


#: The compressors compared in bench E8.
DEFAULT_COMPRESSORS: Mapping[str, Callable[[str], SLP]] = {
    "balanced": balanced_slp,
    "bisection": bisection_slp,
    "repair": repair_slp,
    "lz": lz_slp,
}


def compression_report(
    text: str,
    compressors: Optional[Mapping[str, Callable[[str], SLP]]] = None,
) -> Dict[str, Dict[str, object]]:
    """Run several grammar compressors on ``text`` and collect their stats."""
    compressors = DEFAULT_COMPRESSORS if compressors is None else compressors
    return {name: slp_stats(build(text)) for name, build in compressors.items()}
