"""Building SLPs from explicit (uncompressed) strings.

Two builders are provided:

* :func:`bisection_slp` — the classic BISECTION scheme: split at the largest
  power of two and hash-cons by factor content.  Periodic and doubling
  structure compresses well (``a^(2^n)`` becomes ``O(n)`` rules) and the
  result depth is ``O(log d)``.
* :func:`balanced_slp` — AVL bottom-up pairing (via
  :meth:`~repro.slp.avl.AvlBuilder.from_symbols`); always ``O(log d)`` depth
  and shares equal aligned subtrees.

Neither attempts to be a *smallest* grammar (that problem is NP-hard, see
Sec. 1.1 of the paper); :mod:`repro.slp.repair` and :mod:`repro.slp.lz`
provide the practical compressors.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.errors import GrammarError
from repro.slp.avl import AvlBuilder, avl_to_slp
from repro.slp.grammar import SLP, Symbol


def balanced_slp(word: Sequence[Symbol]) -> SLP:
    """A depth-``O(log d)`` SLP for ``word`` via AVL pairing."""
    if len(word) == 0:
        raise GrammarError("cannot build an SLP for the empty word")
    builder = AvlBuilder()
    return avl_to_slp(builder.from_symbols(word))


def bisection_slp(word: Sequence[Symbol]) -> SLP:
    """The BISECTION grammar of ``word``.

    Recursively split ``w`` into ``w[:k] . w[k:]`` where ``k`` is the largest
    power of two smaller than ``|w|`` (exact halves for power-of-two
    lengths), memoising on factor content so that repeated factors share
    nonterminals.

    >>> from repro.slp.derive import text
    >>> slp = bisection_slp("a" * 1024)
    >>> text(slp) == "a" * 1024
    True
    >>> slp.num_inner  # logarithmic in the document length
    10
    """
    if len(word) == 0:
        raise GrammarError("cannot build an SLP for the empty word")
    if isinstance(word, str):
        pass  # strings slice to strings, which hash cheaply
    else:
        word = tuple(word)

    inner: Dict[str, Tuple[object, object]] = {}
    leaves: Dict[object, Symbol] = {}
    memo: Dict[object, object] = {}
    counter = [0]

    def build(factor) -> object:
        name = memo.get(factor)
        if name is not None:
            return name
        if len(factor) == 1:
            symbol = factor if isinstance(factor, str) else factor[0]
            name = ("T", symbol)
            leaves[name] = symbol
        else:
            split = _largest_power_of_two_below(len(factor))
            left = build(factor[:split])
            right = build(factor[split:])
            name = f"A{counter[0]}"
            counter[0] += 1
            inner[name] = (left, right)
        memo[factor] = name
        return name

    start = build(word)
    return SLP(inner, leaves, start)


def _largest_power_of_two_below(n: int) -> int:
    """The largest power of two strictly smaller than ``n`` (n >= 2)."""
    return 1 << (n.bit_length() - 1) if n & (n - 1) else n >> 1
