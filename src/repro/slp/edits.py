"""Compressed document updates (the paper's concluding open problem).

The conclusion of the paper asks "whether spanner evaluation on compressed
documents can handle updates of the document".  While maintaining the
evaluation tables *incrementally* remains open, the document side is fully
solvable with the AVL-grammar toolkit: every edit below runs in
``O(log d)`` or ``O(log² d)`` **new grammar rules** — without touching the
unaffected parts of the document — and returns a balanced SLP ready for
(re-)evaluation:

* :func:`concat_slp` — ``D1 · D2``;
* :func:`append_text` / :func:`prepend_text` — ``D · w`` / ``w · D``;
* :func:`extract_slp` — the factor ``D[i:j]`` *as an SLP* (no expansion);
* :func:`delete_range` — ``D`` with ``D[i:j]`` removed;
* :func:`insert_text` — ``D`` with ``w`` inserted at position ``i``;
* :func:`replace_range` — splice a replacement over ``D[i:j]``.

Positions are 0-based half-open, matching :mod:`repro.slp.derive`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import GrammarError
from repro.slp.avl import AvlBuilder, AvlNode, avl_from_slp, avl_to_slp
from repro.slp.grammar import SLP, Symbol


class SlpEditor:
    """Batch editor sharing one hash-consed AVL builder across edits.

    Repeated edits through one editor reuse each other's nodes, so a long
    edit session costs ``O(edits · log² d)`` total rules instead of
    rebuilding from scratch each time.

    >>> from repro.slp.construct import balanced_slp
    >>> from repro.slp.derive import text
    >>> editor = SlpEditor(balanced_slp("hello world"))
    >>> editor.replace(6, 11, "there")
    >>> editor.append("!")
    >>> text(editor.to_slp())
    'hello there!'
    """

    def __init__(self, slp: SLP, builder: Optional[AvlBuilder] = None) -> None:
        self._builder = builder if builder is not None else AvlBuilder()
        self._root: AvlNode = avl_from_slp(slp, self._builder)

    @property
    def length(self) -> int:
        return self._root.length

    def _check_range(self, start: int, stop: int) -> None:
        if not 0 <= start <= stop <= self._root.length:
            raise IndexError(
                f"range [{start}:{stop}] invalid for document of length {self._root.length}"
            )

    def _word_node(self, word: Sequence[Symbol]) -> AvlNode:
        if len(word) == 0:
            raise GrammarError("edits with empty words: use delete/extract instead")
        return self._builder.from_symbols(word)

    # -- edits ------------------------------------------------------------

    def append(self, word: Sequence[Symbol]) -> None:
        """``D := D · word``."""
        self._root = self._builder.join(self._root, self._word_node(word))

    def prepend(self, word: Sequence[Symbol]) -> None:
        """``D := word · D``."""
        self._root = self._builder.join(self._word_node(word), self._root)

    def concat(self, other: SLP) -> None:
        """``D := D · D(other)`` — other stays compressed throughout."""
        self._root = self._builder.join(
            self._root, avl_from_slp(other, self._builder)
        )

    def insert(self, index: int, word: Sequence[Symbol]) -> None:
        """Insert ``word`` before position ``index``."""
        self._check_range(index, index)
        node = self._word_node(word)
        if index == 0:
            self._root = self._builder.join(node, self._root)
        elif index == self._root.length:
            self._root = self._builder.join(self._root, node)
        else:
            left = self._builder.extract(self._root, 0, index)
            right = self._builder.extract(self._root, index, self._root.length)
            self._root = self._builder.join(self._builder.join(left, node), right)

    def delete(self, start: int, stop: int) -> None:
        """Remove ``D[start:stop]`` (must leave a nonempty document)."""
        self._check_range(start, stop)
        if start == stop:
            return
        if start == 0 and stop == self._root.length:
            raise GrammarError("deleting the whole document would leave it empty")
        pieces = []
        if start > 0:
            pieces.append(self._builder.extract(self._root, 0, start))
        if stop < self._root.length:
            pieces.append(self._builder.extract(self._root, stop, self._root.length))
        self._root = self._builder.concat_all(pieces)

    def replace(self, start: int, stop: int, word: Sequence[Symbol]) -> None:
        """``D := D[:start] · word · D[stop:]``."""
        self._check_range(start, stop)
        node = self._word_node(word)
        pieces = []
        if start > 0:
            pieces.append(self._builder.extract(self._root, 0, start))
        pieces.append(node)
        if stop < self._root.length:
            pieces.append(self._builder.extract(self._root, stop, self._root.length))
        self._root = self._builder.concat_all(pieces)

    def extract(self, start: int, stop: int) -> SLP:
        """The factor ``D[start:stop]`` as its own (balanced) SLP."""
        self._check_range(start, stop)
        if start == stop:
            raise GrammarError("the empty factor has no SLP")
        return avl_to_slp(self._builder.extract(self._root, start, stop))

    def to_slp(self) -> SLP:
        """The current document as a balanced normal-form SLP."""
        return avl_to_slp(self._root)


# ----------------------------------------------------------------------
# one-shot functional conveniences
# ----------------------------------------------------------------------


def concat_slp(left: SLP, right: SLP) -> SLP:
    """SLP for ``D(left) · D(right)``, balanced, in O((s1+s2)·log d) rules.

    >>> from repro.slp.construct import balanced_slp
    >>> from repro.slp.derive import text
    >>> text(concat_slp(balanced_slp("abc"), balanced_slp("def")))
    'abcdef'
    """
    builder = AvlBuilder()
    return avl_to_slp(
        builder.join(avl_from_slp(left, builder), avl_from_slp(right, builder))
    )


def append_text(slp: SLP, word: Sequence[Symbol]) -> SLP:
    """SLP for ``D · word``."""
    editor = SlpEditor(slp)
    editor.append(word)
    return editor.to_slp()


def prepend_text(slp: SLP, word: Sequence[Symbol]) -> SLP:
    """SLP for ``word · D``."""
    editor = SlpEditor(slp)
    editor.prepend(word)
    return editor.to_slp()


def extract_slp(slp: SLP, start: int, stop: int) -> SLP:
    """The factor ``D[start:stop]`` as an SLP, never materialised.

    >>> from repro.slp.families import power_slp
    >>> from repro.slp.derive import text
    >>> big = power_slp("ab", 40)                   # d = 2^41
    >>> text(extract_slp(big, 2**40 - 2, 2**40 + 2))
    'abab'
    """
    return SlpEditor(slp).extract(start, stop)


def insert_text(slp: SLP, index: int, word: Sequence[Symbol]) -> SLP:
    """SLP for ``D[:index] · word · D[index:]``."""
    editor = SlpEditor(slp)
    editor.insert(index, word)
    return editor.to_slp()


def delete_range(slp: SLP, start: int, stop: int) -> SLP:
    """SLP for ``D`` with ``D[start:stop]`` removed."""
    editor = SlpEditor(slp)
    editor.delete(start, stop)
    return editor.to_slp()


def replace_range(slp: SLP, start: int, stop: int, word: Sequence[Symbol]) -> SLP:
    """SLP for ``D[:start] · word · D[stop:]``."""
    editor = SlpEditor(slp)
    editor.replace(start, stop, word)
    return editor.to_slp()
