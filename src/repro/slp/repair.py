"""Re-Pair grammar compression.

Re-Pair (Larsson & Moffat) repeatedly replaces a most frequent adjacent
symbol pair by a fresh nonterminal until no pair occurs twice.  It is one of
the practical grammar compressors the paper alludes to in Sec. 1.1 (smallest
grammar is NP-hard; Re-Pair is a standard approximation used in practice).

The implementation uses a doubly-linked list over the sequence, per-pair
occurrence sets, and a lazily-invalidated max-heap, giving near-linear
behaviour on typical inputs.  The final (possibly long) start sequence is
binarised in balanced fashion to produce a normal-form :class:`SLP`.
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.errors import GrammarError
from repro.slp.grammar import SLP, Symbol


def repair_slp(word: Sequence[Symbol], min_count: int = 2) -> SLP:
    """Compress ``word`` with Re-Pair and return a normal-form SLP.

    ``min_count`` is the threshold below which pairs are no longer replaced
    (the classic algorithm uses 2).

    >>> from repro.slp.derive import text
    >>> slp = repair_slp("abcabcabcabc")
    >>> text(slp)
    'abcabcabcabc'
    >>> slp.num_inner < 12
    True
    """
    if len(word) == 0:
        raise GrammarError("cannot compress the empty word")
    if min_count < 2:
        raise GrammarError("min_count must be >= 2")

    pairing = _RepairState(word)
    while True:
        best = pairing.pop_best(min_count)
        if best is None:
            break
        pairing.replace_all(best)

    sequence, rules = pairing.result()
    return _to_slp(sequence, rules)


class _RepairState:
    """Mutable Re-Pair working state (linked list + pair index + heap)."""

    def __init__(self, word: Sequence[Symbol]) -> None:
        n = len(word)
        # Items are terminal symbols or integer rule ids (>= 0); terminals
        # are wrapped as ("t", sym) to avoid clashes with rule ids.
        self.items: List[Optional[Tuple]] = [("t", s) for s in word]
        self.prev = list(range(-1, n - 1))
        self.next = [i + 1 if i + 1 < n else -1 for i in range(n)]
        self.head = 0
        self.occ: Dict[Tuple, Set[int]] = {}
        self.heap: List[Tuple[int, int, Tuple]] = []
        self.rules: List[Tuple[Tuple, Tuple]] = []  # rule id -> (left, right)
        self._push_seq = 0
        for i in range(n - 1):
            self._add_occurrence((self.items[i], self.items[i + 1]), i)

    # -- pair bookkeeping ------------------------------------------------

    def _add_occurrence(self, pair: Tuple, pos: int) -> None:
        bucket = self.occ.get(pair)
        if bucket is None:
            bucket = set()
            self.occ[pair] = bucket
        bucket.add(pos)
        self._push_seq += 1
        heapq.heappush(self.heap, (-len(bucket), self._push_seq, pair))

    def _remove_occurrence(self, pair: Tuple, pos: int) -> None:
        bucket = self.occ.get(pair)
        if bucket is not None:
            bucket.discard(pos)

    def pop_best(self, min_count: int) -> Optional[Tuple]:
        """The currently most frequent pair, or ``None`` if below threshold."""
        while self.heap:
            neg_count, _, pair = self.heap[0]
            current = len(self.occ.get(pair, ()))
            if -neg_count != current:
                heapq.heappop(self.heap)  # stale entry
                continue
            if current < min_count:
                return None
            return pair
        return None

    # -- replacement -------------------------------------------------------

    def replace_all(self, pair: Tuple) -> None:
        """Replace every non-overlapping occurrence of ``pair`` left to right."""
        rule_id = len(self.rules)
        self.rules.append(pair)
        new_item = ("r", rule_id)
        positions = sorted(self.occ.pop(pair, ()))
        consumed: Set[int] = set()
        for pos in positions:
            if pos in consumed:
                continue
            right = self.next[pos]
            # The occurrence may have been destroyed by a previous replacement.
            if right == -1 or self.items[pos] is None or self.items[right] is None:
                continue
            if (self.items[pos], self.items[right]) != pair:
                continue
            consumed.add(right)
            left = self.prev[pos]
            right_next = self.next[right]
            # drop neighbouring pair occurrences that are about to change
            if left != -1:
                self._remove_occurrence((self.items[left], self.items[pos]), left)
            if right_next != -1:
                self._remove_occurrence((self.items[right], self.items[right_next]), right)
            # contract [pos, right] into pos
            self.items[pos] = new_item
            self.items[right] = None
            self.next[pos] = right_next
            if right_next != -1:
                self.prev[right_next] = pos
            # register the new neighbouring pairs
            if left != -1:
                self._add_occurrence((self.items[left], new_item), left)
            if right_next != -1:
                self._add_occurrence((new_item, self.items[right_next]), pos)

    def result(self) -> Tuple[List[Tuple], List[Tuple[Tuple, Tuple]]]:
        sequence = []
        pos = self.head
        while pos != -1:
            if self.items[pos] is not None:
                sequence.append(self.items[pos])
            pos = self.next[pos]
        return sequence, self.rules


def _to_slp(sequence: List[Tuple], rules: List[Tuple[Tuple, Tuple]]) -> SLP:
    """Assemble the Re-Pair output into a normal-form SLP."""
    inner: Dict[object, Tuple[object, object]] = {}
    leaves: Dict[object, Symbol] = {}

    def name_of(item: Tuple) -> object:
        kind, value = item
        if kind == "t":
            name = ("T", value)
            leaves[name] = value
            return name
        return f"R{value}"

    for rule_id, (left, right) in enumerate(rules):
        inner[f"R{rule_id}"] = (name_of(left), name_of(right))

    names = [name_of(item) for item in sequence]
    counter = [0]

    def binarise(parts: List[object]) -> object:
        if len(parts) == 1:
            return parts[0]
        mid = len(parts) // 2
        left = binarise(parts[:mid])
        right = binarise(parts[mid:])
        name = f"S{counter[0]}"
        counter[0] += 1
        inner[name] = (left, right)
        return name

    start = binarise(names)
    return SLP(inner, leaves, start).trim()
