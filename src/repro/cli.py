"""Command-line interface: compress, inspect, and query documents.

Usage (also available as ``python -m repro``)::

    repro-spanner compress  corpus.txt -o corpus.slp.json --method repair
    repro-spanner convert   corpus.slp.json -o corpus.slpb
    repro-spanner stats     corpus.slpb
    repro-spanner query     corpus.slpb '.*user=(?P<u>[a-z]+) .*' --limit 10
    repro-spanner query     corpus.slp.json '.*(?P<x>ab).*' --task count
    repro-spanner batch     a.slpb b.slpb -p '.*(?P<x>ab).*' -p '(?P<y>a+)b' --task count --store .prep
    repro-spanner batch     shards/*.slpb -p '(?P<x>a+)b' --jobs 8 --store .prep
    repro-spanner serve     --socket /run/repro.sock --store .prep --jobs 8
    repro-spanner ping      --connect /run/repro.sock --timeout 5
    repro-spanner batch     shards/*.slpb -p '(?P<x>a+)b' --connect /run/repro.sock
    repro-spanner decompress corpus.slp.json -o corpus.txt --limit 1000000

The query subcommand exposes all four evaluation tasks of the paper
(``--task nonempty | count | enumerate | check``) plus ranked access
(``--rank K``).  The batch subcommand runs every pattern against every
grammar through the :class:`~repro.engine.Engine`, sharing padded
documents, prepared automata and preprocessing tables across the grid;
with ``--store DIR`` the preprocessing tables persist to disk so repeated
invocations warm-start (``query`` takes the same flag), and ``--jobs N``
shards the grid across N worker processes that share the store
(:mod:`repro.parallel`).  ``serve`` runs the long-lived service daemon
(:mod:`repro.service`): a persistent worker fleet behind a unix socket,
so the preprocessing amortises across invocations — ``query``, ``batch``
and ``stats`` route through it with ``--connect PATH`` and print exactly
what the in-process paths print.  Every subcommand accepts grammars in
either the JSON (``repro-slp``) or binary (``repro-slpb``) format — the
loader sniffs the magic bytes — and ``convert`` translates between the
two.

The ``--store/--structural-keys/--kernel`` group (and ``--jobs``,
``--connect`` where they apply) is declared once in shared argparse
parent parsers, so the engine-facing subcommands can never drift apart
in flag spelling or semantics.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.core.kernels import KERNEL_CHOICES
from repro.engine.batch import PRINTABLE_BATCH_TASKS
from repro.errors import ReproError
from repro.slp import io as slp_io
from repro.slp.construct import balanced_slp, bisection_slp
from repro.slp.derive import iter_symbols
from repro.slp.lz import lz_slp
from repro.slp.repair import repair_slp
from repro.slp.stats import slp_stats
from repro.spanner.regex import compile_spanner
from repro.spanner.spans import Span, SpanTuple

COMPRESSORS = {
    "repair": repair_slp,
    "lz": lz_slp,
    "bisection": bisection_slp,
    "balanced": balanced_slp,
}


def _engine_options_parent() -> argparse.ArgumentParser:
    """The shared ``--store/--structural-keys/--kernel`` option group.

    Declared once and attached as an argparse *parent* to every
    engine-facing subcommand (``query``/``batch``/``stats``/``serve``),
    so the knobs cannot drift apart across subcommands.
    """
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("engine options")
    group.add_argument(
        "--store", metavar="DIR",
        help="persist/restore preprocessing tables in this directory so "
        "repeated runs warm-start across processes",
    )
    group.add_argument(
        "--structural-keys", action="store_true",
        help="key caches by grammar content instead of object identity "
        "(equal grammars loaded twice share one entry)",
    )
    group.add_argument(
        "--kernel", choices=KERNEL_CHOICES, default="auto",
        help="bit-plane kernel backend, applied by every engine this "
        "command builds, including --jobs workers (default: auto-detect "
        "— numpy when available, else the pure-python reference)",
    )
    group.add_argument(
        "--trace", metavar="PATH",
        help="append JSONL trace spans to this file; the trace context "
        "propagates into --jobs workers and across --connect, so one "
        "file collects client, daemon and fleet spans (env: REPRO_TRACE)",
    )
    return parent


def _jobs_parent(default: int, help_text: str) -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--jobs", type=int, default=default, metavar="N", help=help_text
    )
    return parent


def _connect_parent() -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--connect", metavar="SOCKET",
        help="route execution through the long-lived service daemon "
        "listening on this unix socket (see 'repro-spanner serve'); "
        "engine options then apply daemon-side, not locally",
    )
    parent.add_argument(
        "--priority", type=int, default=0, metavar="N",
        help="with --connect: weighted-fair scheduling priority of this "
        "job on the daemon (each step doubles its share of the fleet; "
        "default 0, clamped server-side)",
    )
    parent.add_argument(
        "--tag", metavar="TAG",
        help="with --connect: cancellation tag for this job; "
        "'repro-spanner cancel --connect SOCKET TAG' aborts every "
        "matching job on the daemon",
    )
    parent.add_argument(
        "--deadline-ms", type=int, default=None, metavar="MS",
        help="with --connect: per-request latency budget; a job still "
        "unfinished past it fails with DeadlineExceeded and its "
        "in-flight shards are cancelled (default: no deadline)",
    )
    return parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-spanner",
        description="Regular spanner evaluation over SLP-compressed documents.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    engine_parent = _engine_options_parent()
    connect_parent = _connect_parent()

    p_compress = sub.add_parser("compress", help="compress a text file into an SLP")
    p_compress.add_argument("input", help="input text file")
    p_compress.add_argument("-o", "--output", help="output .slp.json (default: <input>.slp.json)")
    p_compress.add_argument(
        "--method", choices=sorted(COMPRESSORS), default="repair",
        help="grammar compressor (default: repair)",
    )

    p_convert = sub.add_parser(
        "convert", help="convert a grammar between the JSON and binary formats"
    )
    p_convert.add_argument("grammar", help=".slp.json or .slpb file")
    p_convert.add_argument(
        "-o", "--output",
        help="output file (default: toggle between <input>.slpb and .slp.json)",
    )
    p_convert.add_argument(
        "--to", choices=["binary", "json"],
        help="target format (default: inferred from the output extension, "
        "else the opposite of the input format)",
    )

    p_stats = sub.add_parser(
        "stats", help="show grammar statistics",
        parents=[engine_parent, connect_parent],
    )
    p_stats.add_argument(
        "grammar", nargs="?",
        help=".slp.json or .slpb file (optional with --connect, which "
        "reports the daemon's status instead)",
    )
    p_stats.add_argument(
        "--profile", action="store_true",
        help="also time a probe preprocessing build plus a store "
        "save/restore round-trip with the active kernel",
    )

    p_decompress = sub.add_parser("decompress", help="expand an SLP back to text")
    p_decompress.add_argument("grammar", help=".slp.json file")
    p_decompress.add_argument("-o", "--output", help="output file (default: stdout)")
    p_decompress.add_argument(
        "--limit", type=int, default=10_000_000,
        help="refuse to expand documents longer than this (default 10M)",
    )

    p_query = sub.add_parser(
        "query", help="evaluate a spanner on a compressed document",
        parents=[engine_parent, connect_parent],
    )
    p_query.add_argument("grammar", help=".slp.json file")
    p_query.add_argument("pattern", help="spanner regex, e.g. '.*(?P<x>ab).*'")
    p_query.add_argument(
        "--alphabet",
        help="document alphabet (default: the grammar's terminals)",
    )
    p_query.add_argument(
        "--task", choices=["enumerate", "count", "nonempty", "check"],
        default="enumerate",
    )
    p_query.add_argument("--limit", type=int, default=20, help="max results to print")
    p_query.add_argument(
        "--rank", type=int, help="print only the result with this rank (0-based)"
    )
    p_query.add_argument(
        "--span", action="append", default=[],
        help="for --task check: VAR=START,END (1-based, end-exclusive); repeatable",
    )
    p_query.add_argument(
        "--show-text", action="store_true",
        help="also print the extracted substrings (expands only the spans)",
    )

    p_batch = sub.add_parser(
        "batch",
        help="evaluate many patterns over many documents, sharing work",
        parents=[
            engine_parent,
            _jobs_parent(
                1,
                "shard the batch across N worker processes (each hydrates "
                "its own engine; with --store the fleet shares one table "
                "store)",
            ),
            connect_parent,
        ],
    )
    p_batch.add_argument("grammars", nargs="+", help=".slp.json files")
    p_batch.add_argument(
        "-p", "--pattern", action="append", required=True, dest="patterns",
        help="spanner regex (repeatable; every pattern runs on every grammar)",
    )
    p_batch.add_argument(
        "--alphabet",
        help="shared alphabet (default: union of all grammars' terminals)",
    )
    p_batch.add_argument(
        "--task", choices=list(PRINTABLE_BATCH_TASKS), default="count",
    )
    p_batch.add_argument(
        "--limit", type=int, default=10,
        help="max results printed per (grammar, pattern) pair (enumerate)",
    )
    p_batch.add_argument(
        "--cache-stats", action="store_true",
        help="print engine cache hit/miss statistics after the batch",
    )

    p_serve = sub.add_parser(
        "serve",
        help="run the long-lived service daemon (persistent worker fleet "
        "behind a unix socket)",
        parents=[
            engine_parent,
            _jobs_parent(
                max(1, os.cpu_count() or 1),
                "size of the persistent worker fleet (default: all cores)",
            ),
        ],
    )
    p_serve.add_argument(
        "--socket", required=True, metavar="PATH",
        help="unix socket to listen on (created owner-only; clients use "
        "--connect PATH)",
    )
    p_serve.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock cap per job (default: none)",
    )
    p_serve.add_argument(
        "--max-pending-jobs", type=int, default=32, metavar="N",
        help="admission bound across all clients: past N concurrently "
        "admitted jobs, new submissions get a structured 'busy' "
        "refusal instead of unbounded queueing (default 32)",
    )
    p_serve.add_argument(
        "--max-jobs-per-client", type=int, default=8, metavar="N",
        help="per-connection admission bound (default 8)",
    )
    p_serve.add_argument(
        "--shard-timeout", type=float, default=None, metavar="SECONDS",
        help="hung-shard watchdog: execution allowance for a mean-cost "
        "shard before its worker is killed and the shard retried "
        "(costlier shards get proportionally longer, each failed "
        "attempt doubles it; default: disabled)",
    )

    p_ping = sub.add_parser(
        "ping",
        help="liveness probe: exit 0 iff a daemon answers ping on the "
        "socket within --timeout",
    )
    p_ping.add_argument(
        "--connect", required=True, metavar="SOCKET",
        help="unix socket of the daemon (see 'repro-spanner serve')",
    )
    p_ping.add_argument(
        "--timeout", type=float, default=5.0, metavar="SECONDS",
        help="bound on the dial and on the ping round trip (default 5)",
    )

    p_cancel = sub.add_parser(
        "cancel",
        help="abort tagged jobs on a running daemon (see --tag on "
        "query/batch)",
    )
    p_cancel.add_argument("tag", metavar="TAG", help="cancellation tag to match")
    p_cancel.add_argument(
        "--connect", required=True, metavar="SOCKET",
        help="unix socket of the daemon (see 'repro-spanner serve')",
    )
    return parser


def _configure_trace(args) -> None:
    """Point the process-global tracer at ``--trace PATH`` (if given)."""
    trace = getattr(args, "trace", None)
    if trace:
        from repro.obs.trace import get_tracer

        get_tracer().configure(trace)


def cmd_compress(args) -> int:
    with open(args.input, "r", encoding="utf-8") as fh:
        document = fh.read()
    if not document:
        print("error: input document is empty", file=sys.stderr)
        return 1
    slp = COMPRESSORS[args.method](document)
    output = args.output or args.input + ".slp.json"
    slp_io.save_file(slp, output)
    stats = slp_stats(slp)
    print(
        f"{args.input}: {stats['length']:,} symbols -> grammar size "
        f"{stats['size']:,} (ratio {stats['ratio']:.2f}x, depth {stats['depth']})"
    )
    print(f"wrote {output}")
    return 0


def cmd_convert(args) -> int:
    is_binary_input = slp_io.sniff_format(args.grammar) == "binary"
    slp = slp_io.load_file(args.grammar)
    target = args.to
    if target is None and args.output:
        target = "binary" if args.output.endswith(".slpb") else (
            "json" if args.output.endswith(".json") else None
        )
    if target is None:
        target = "json" if is_binary_input else "binary"
    if args.output:
        output = args.output
    else:
        base = args.grammar
        for suffix in (".slpb", ".slp.json", ".json"):
            if base.endswith(suffix):
                base = base[: -len(suffix)]
                break
        output = base + (".slpb" if target == "binary" else ".slp.json")
    if target == "binary":
        slp_io.save_binary(slp, output)
    else:
        slp_io.save_file(slp, output)
    print(
        f"{args.grammar} -> {output} ({target}, {os.path.getsize(output):,} bytes, "
        f"digest {slp.structural_digest()})"
    )
    return 0


def _print_service_status(socket_path: str) -> None:
    """The daemon's ping payload, printed in stats' key/value style.

    An unreachable daemon raises :class:`~repro.service.ServiceError`,
    which ``main`` turns into the usual ``error: ...`` exit.
    """
    from repro.service.client import ServiceClient

    with ServiceClient(socket_path, timeout=30.0) as client:
        info = client.ping()
        metrics = client.metrics()
    print(f"{'service_socket':18s} {socket_path}")
    print(f"{'service_pid':18s} {info['pid']}")
    print(f"{'service_uptime':18s} {info['uptime']:.1f} s")
    print(f"{'service_requests':18s} {info['requests']}")
    print(f"{'service_jobs_run':18s} {info['jobs_run']}")
    fleet = info["fleet"]
    print(f"{'fleet_workers':18s} {fleet['alive']} of {fleet['jobs']} alive")
    scheduler = info.get("scheduler") or {}
    if scheduler:
        print(
            f"{'sched_jobs':18s} {scheduler.get('active_jobs', 0)} active "
            f"({scheduler.get('queued_shards', 0)} shards queued, "
            f"{scheduler.get('inflight_shards', 0)} in flight)"
        )
        print(
            f"{'sched_totals':18s} {scheduler.get('jobs_completed', 0)} done, "
            f"{scheduler.get('jobs_failed', 0)} failed, "
            f"{scheduler.get('jobs_cancelled', 0)} cancelled, "
            f"{scheduler.get('jobs_rejected_busy', 0)} busy-rejected"
        )
    config = info["config"]
    print(f"{'fleet_store':18s} {config['store_dir'] or '(none)'}")
    print(f"{'fleet_kernel':18s} {config['kernel'] or 'auto'}")
    _print_service_metrics(metrics)


def _print_service_metrics(metrics: dict) -> None:
    """Highlights of the daemon's merged metrics + the slow-query log."""
    combined = metrics.get("combined") or {}
    counters = combined.get("counters") or {}
    histograms = combined.get("histograms") or {}
    interesting = (
        "wire.frames",
        "worker.shards_done",
        "engine.prep_builds",
        "store.restores",
        "store.writes",
    )
    parts = [
        f"{name}={counters[name]}" for name in interesting if name in counters
    ]
    if parts:
        print(f"{'metrics':18s} " + "  ".join(parts))
    for name in ("scheduler.job_seconds", "scheduler.shard_seconds"):
        hist = histograms.get(name)
        if hist and hist.get("count"):
            print(
                f"{name:18s} {hist['count']} samples, "
                f"mean {hist['total'] / hist['count'] * 1e3:.1f} ms, "
                f"max {hist['max'] * 1e3:.1f} ms"
            )
    slow = (metrics.get("daemon") or {}).get("slow") or []
    for entry in slow[:5]:
        tags = entry.get("tags") or {}
        detail = " ".join(f"{k}={v}" for k, v in sorted(tags.items()))
        print(
            f"{'slow_query':18s} {entry['seconds'] * 1e3:.1f} ms  "
            f"{entry['name']}  {detail}".rstrip()
        )


def cmd_stats(args) -> int:
    _configure_trace(args)
    if args.connect:
        _print_service_status(args.connect)  # a dead daemon raises -> error exit
        if args.grammar is None:
            return 0
    elif args.grammar is None:
        print(
            "error: stats needs a grammar file (or --connect SOCKET)",
            file=sys.stderr,
        )
        return 1
    slp = slp_io.load_file(args.grammar)
    for key, value in slp_stats(slp).items():
        print(f"{key:18s} {value}")
    # The content address: this is what engine structural keys, .slpb
    # headers and the preprocessing store key entries by.
    print(f"{'structural_digest':18s} {slp.structural_digest()}")
    if args.store:
        from repro.core.prepared import PreparedDocument
        from repro.store import PreprocessingStore

        if not os.path.isdir(args.store):
            # Read-only inspection must not conjure up an empty store at
            # a mistyped path and report a plausible "0 of 0".
            print(
                f"error: store directory {args.store!r} does not exist",
                file=sys.stderr,
            )
            return 1
        store = PreprocessingStore(args.store)
        # .prep filenames are one-way hashes; entries are correlated with
        # this grammar through the padded form's digest in their headers
        # (default engine padding: balance on, '#' end symbol).
        padded_digest = PreparedDocument(slp).padded.structural_digest()
        entries = store.scan_headers()
        matching = [e for e in entries if e.padded_digest == padded_digest]
        print(f"{'padded_digest':18s} {padded_digest}")
        print(
            f"{'store_entries':18s} {len(matching)} of {len(entries)} "
            f"in {args.store}"
        )
        for entry in matching:
            print(
                f"  {entry.filename}  automaton {entry.automaton_digest}  "
                f"q={entry.q}"
            )
    if args.profile:
        _print_profile(slp, args.kernel)
    return 0


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:.2f} ms"


def _print_profile(slp, kernel_spec: str) -> None:
    """Time a probe preprocessing build + store round-trip (stats --profile).

    Timed through :class:`~repro.obs.trace.Stopwatch`, so with ``--trace``
    the same probe stages also land in the JSONL trace as spans.
    """
    import tempfile

    from repro.core.kernels import resolve_kernel
    from repro.core.matrices import Preprocessing
    from repro.core.prepared import PreparedDocument, PreparedSpanner
    from repro.obs.trace import stopwatch
    from repro.store import PreprocessingStore

    kernel = resolve_kernel(None if kernel_spec == "auto" else kernel_spec)
    # A one-variable universal probe: valid over any alphabet, so the
    # timings reflect this grammar, not a hand-picked pattern.
    alphabet = "".join(sorted(slp.alphabet))
    probe = compile_spanner(r".*(?P<x>.).*", alphabet=alphabet)
    doc = PreparedDocument(slp)
    span = PreparedSpanner(probe)
    automaton = span.padded_dfa

    with stopwatch("profile.prep_build", kernel=kernel.name) as t_build:
        prep = Preprocessing(doc.padded, automaton, kernel=kernel)

    slp_digest = slp.structural_digest()
    auto_digest = automaton.structural_digest()
    with tempfile.TemporaryDirectory(prefix="repro-profile-") as tmp:
        store = PreprocessingStore(tmp)
        with stopwatch("profile.store_save", kernel=kernel.name) as t_save:
            store.save(slp_digest, auto_digest, prep)
        with stopwatch("profile.store_restore", kernel=kernel.name) as t_restore:
            restored = store.load(
                slp_digest, auto_digest, doc.padded, automaton, kernel=kernel
            )
    detected = " (auto-detected)" if kernel_spec == "auto" else ""
    print(f"{'kernel':18s} {kernel.name}{detected}")
    print(f"{'prep_build':18s} {_fmt_ms(t_build.seconds)}  (probe DFA, q={prep.q})")
    print(f"{'store_save':18s} {_fmt_ms(t_save.seconds)}")
    status = "hit" if restored is not None else "MISS"
    print(f"{'store_restore':18s} {_fmt_ms(t_restore.seconds)}  ({status})")


def cmd_decompress(args) -> int:
    slp = slp_io.load_file(args.grammar)
    if slp.length() > args.limit:
        print(
            f"error: document has {slp.length():,} symbols, over the "
            f"--limit of {args.limit:,}",
            file=sys.stderr,
        )
        return 1
    out = open(args.output, "w", encoding="utf-8") if args.output else sys.stdout
    try:
        for symbol in iter_symbols(slp):
            out.write(symbol)
    finally:
        if args.output:
            out.close()
    return 0


def _parse_span(spec: str) -> tuple:
    try:
        var, bounds = spec.split("=", 1)
        start, end = bounds.split(",", 1)
        return var, Span(int(start), int(end))
    except ValueError:
        raise ReproError(f"bad --span {spec!r}; expected VAR=START,END")


def _extract_text(slp, tup: SpanTuple) -> dict:
    from repro.slp.derive import substring

    return {
        var: "".join(substring(slp, span.start - 1, span.end - 1))
        for var, span in tup.items()
    }


def _query_connected(args) -> int:
    """``query --connect``: ship the query to a running daemon.

    Prints exactly what the in-process path prints (the daemon is held
    bit-identical to the serial engine by the differential harness).
    ``--show-text`` still expands spans locally — the grammar file is
    right here, and the daemon should not stream documents back.
    """
    from repro.engine.spec import SpannerSpec
    from repro.session import connect as session_connect

    if args.rank is not None:
        print(
            "error: --rank needs an in-process session "
            "(drop --connect for ranked access)",
            file=sys.stderr,
        )
        return 1
    alphabet = args.alphabet or "".join(
        sorted(slp_io.peek_alphabet(args.grammar))
    )
    spec = SpannerSpec(pattern=args.pattern, alphabet=alphabet)
    with session_connect(
        args.connect,
        priority=args.priority,
        tag=args.tag,
        deadline_ms=args.deadline_ms,
        trace=args.trace or None,
    ) as session:
        if args.task == "nonempty":
            print(
                "nonempty"
                if session.is_nonempty(spec, args.grammar)
                else "empty"
            )
            return 0
        if args.task == "count":
            print(session.count(spec, args.grammar))
            return 0
        if args.task == "check":
            if not args.span:
                print(
                    "error: --task check needs at least one --span",
                    file=sys.stderr,
                )
                return 1
            tup = SpanTuple(dict(_parse_span(s) for s in args.span))
            result = session.model_check(spec, args.grammar, tup)
            print(f"{tup}: {'IN' if result else 'NOT IN'} the relation")
            return 0 if result else 2
        # enumerate.  The serial loop checks its limit *after* printing,
        # so --limit <= 0 still shows one tuple; cap the same way here to
        # keep the two routes print-identical for every input.
        cap = max(args.limit, 1)
        slp = slp_io.load_file(args.grammar) if args.show_text else None
        shown = 0
        for tup in session.enumerate(spec, args.grammar, limit=cap):
            line = str(tup)
            if args.show_text:
                line += f"   {_extract_text(slp, tup)}"
            print(line)
            shown += 1
        if shown == cap:
            remaining = session.count(spec, args.grammar) - shown
            if remaining > 0:
                print(f"... ({remaining:,} more; raise --limit or use --rank)")
        if shown == 0:
            print("(no results)")
        return 0


def cmd_query(args) -> int:
    from repro.engine import Engine

    if args.connect:
        return _query_connected(args)
    _configure_trace(args)
    slp = slp_io.load_file(args.grammar)
    alphabet = args.alphabet if args.alphabet else "".join(sorted(slp.alphabet))
    spanner = compile_spanner(args.pattern, alphabet=alphabet)
    # Routed through the engine (not the single-pair evaluator) so --store
    # gives single queries the same persistent warm starts as batch: the
    # differential harness holds the two facades result-identical.
    store = None
    if args.store:
        from repro.store import PreprocessingStore

        store = PreprocessingStore(args.store)
    engine = Engine(
        structural_keys=args.structural_keys, store=store, kernel=args.kernel
    )

    if args.task == "nonempty":
        print("nonempty" if engine.is_nonempty(spanner, slp) else "empty")
        return 0
    if args.task == "count":
        print(engine.count(spanner, slp))
        return 0
    if args.task == "check":
        if not args.span:
            print("error: --task check needs at least one --span", file=sys.stderr)
            return 1
        tup = SpanTuple(dict(_parse_span(s) for s in args.span))
        result = engine.model_check(spanner, slp, tup)
        print(f"{tup}: {'IN' if result else 'NOT IN'} the relation")
        return 0 if result else 2

    # enumerate / ranked access
    if args.rank is not None:
        tup = engine.ranked(spanner, slp).select_tuple(args.rank)
        line = str(tup)
        if args.show_text:
            line += f"   {_extract_text(slp, tup)}"
        print(f"#{args.rank}: {line}")
        return 0
    shown = 0
    for tup in engine.enumerate(spanner, slp):
        line = str(tup)
        if args.show_text:
            line += f"   {_extract_text(slp, tup)}"
        print(line)
        shown += 1
        if shown >= args.limit:
            remaining = engine.count(spanner, slp) - shown
            if remaining > 0:
                print(f"... ({remaining:,} more; raise --limit or use --rank)")
            break
    if shown == 0:
        print("(no results)")
    return 0


def _print_batch_items(args, items) -> None:
    """The batch output, shared verbatim by every execution route."""
    for item in items:
        doc = args.grammars[item.document_index]
        pattern = args.patterns[item.spanner_index]
        header = f"{doc} :: {pattern}"
        if args.task == "count":
            print(f"{header} -> {item.result}")
        elif args.task == "nonempty":
            print(f"{header} -> {'nonempty' if item.result else 'empty'}")
        else:
            print(f"{header}:")
            for tup in item.result:
                print(f"  {tup}")
            if not item.result:
                print("  (no results)")


def cmd_batch(args) -> int:
    from repro.engine import Engine, run_batch

    if args.jobs < 1:
        print(f"error: --jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 1
    if not args.connect:
        _configure_trace(args)
    if args.alphabet:
        alphabet = args.alphabet
    elif args.jobs > 1 or args.connect:
        # Workers (or the daemon) decode the grammars themselves; the
        # parent only needs the union alphabet, which .slpb headers
        # yield without the (serial) full-corpus decode.
        alphabet = "".join(
            sorted(set().union(*(slp_io.peek_alphabet(p) for p in args.grammars)))
        )
    else:
        slps = [slp_io.load_file(path) for path in args.grammars]
        alphabet = "".join(sorted(set().union(*(slp.alphabet for slp in slps))))
    limit = args.limit if args.task == "enumerate" else None
    if args.connect:
        # Routed through the running daemon: its persistent fleet (and
        # its caches, warm from previous invocations) does the work; the
        # output below is identical to the local paths.  Patterns travel
        # as recipes — the daemon compiles (and caches) them server-side
        # and returns the real compile error on a bad one, so paying for
        # a local NFA construction here would be pure waste.
        from repro.engine.spec import SpannerSpec
        from repro.session import connect as session_connect

        if args.jobs != 1:
            print(
                "note: --jobs is ignored with --connect; the daemon's "
                "fleet size applies",
                file=sys.stderr,
            )

        specs = [
            SpannerSpec(pattern=p, alphabet=alphabet) for p in args.patterns
        ]
        with session_connect(
            args.connect,
            priority=args.priority,
            tag=args.tag,
            deadline_ms=args.deadline_ms,
            trace=args.trace or None,
        ) as session:
            items = session.batch(
                specs, list(args.grammars), task=args.task, limit=limit
            )
            service_info = session.stats() if args.cache_stats else None
        _print_batch_items(args, items)
        if service_info is not None:
            fleet = service_info["fleet"]
            print(
                f"# service {args.connect}: pid {service_info['pid']}, "
                f"{service_info['jobs_run']} jobs over "
                f"{service_info['requests']} requests, "
                f"{fleet['alive']}/{fleet['jobs']} workers "
                f"(uptime {service_info['uptime']:.1f}s)"
            )
        return 0
    spanners = [compile_spanner(p, alphabet=alphabet) for p in args.patterns]
    if args.jobs > 1:
        # Sharded across processes: every worker hydrates its own
        # content-addressed engine; --store makes the whole fleet (and
        # later invocations) share one table store.
        from repro.parallel import parallel_batch

        items, parallel_report = parallel_batch(
            spanners,
            list(args.grammars),
            task=args.task,
            limit=limit,
            jobs=args.jobs,
            store=args.store or None,
            kernel=args.kernel,
            report=True,
        )
        cache_stats = parallel_report.cache_stats
        store_stats = parallel_report.store_stats
    else:
        store = None
        if args.store:
            from repro.store import PreprocessingStore

            store = PreprocessingStore(args.store)
        engine = Engine(
            structural_keys=args.structural_keys, store=store, kernel=args.kernel
        )
        if args.alphabet:
            slps = [slp_io.load_file(path) for path in args.grammars]
        items = run_batch(spanners, slps, task=args.task, limit=limit, engine=engine)
        cache_stats = engine.cache_stats()
        store_stats = None if store is None else store.stats
    _print_batch_items(args, items)
    if args.cache_stats:
        for name, stats in cache_stats.items():
            print(
                f"# cache {name} [{stats.key_mode}]: {stats.hits} hits, "
                f"{stats.misses} misses, {stats.evictions} evictions "
                f"(hit rate {stats.hit_rate:.0%})"
            )
        if store_stats is not None:
            print(
                f"# store {args.store}: {store_stats.hits} hits, "
                f"{store_stats.misses} misses, {store_stats.rejects} rejects, "
                f"{store_stats.writes} writes"
            )
    return 0


def cmd_serve(args) -> int:
    from repro.service.server import serve
    from repro.session import SessionConfig

    if args.jobs < 1:
        print(f"error: --jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 1
    config = SessionConfig(
        store_dir=args.store or None,
        # None = auto: the fleet always shares through content digests.
        structural_keys=True if args.structural_keys else None,
        kernel=None if args.kernel == "auto" else args.kernel,
        jobs=args.jobs,
        timeout=args.timeout,
        max_pending_jobs=args.max_pending_jobs,
        max_jobs_per_client=args.max_jobs_per_client,
        shard_timeout=args.shard_timeout,
        trace=args.trace or None,
    )
    return serve(
        config,
        args.socket,
        announce=lambda line: print(line, flush=True),
    )


def cmd_ping(args) -> int:
    """Liveness probe (``repro-spanner ping --connect PATH``).

    Exit 0 iff a healthy daemon answers ``ping`` within ``--timeout``;
    non-zero (with a diagnostic on stderr) otherwise — connect refused,
    dial timeout, a stalled daemon, a garbled response.  Built for
    health checks: ``repro-spanner ping --connect /run/repro.sock``.
    """
    from repro.service.client import ServiceClient
    from repro.service.protocol import ServiceError

    # retries=0: a probe reports the daemon's state *now*; retry policy
    # belongs to whatever supervisor invokes the probe.
    client = ServiceClient(
        args.connect,
        timeout=args.timeout,
        connect_timeout=args.timeout,
        retries=0,
    )
    try:
        info = client.ping()
    except ServiceError as exc:
        print(f"unhealthy: {exc}", file=sys.stderr)
        return 1
    finally:
        client.close()
    fleet = info.get("fleet") or {}
    print(
        f"ok: pid {info.get('pid')}, uptime {info.get('uptime', 0.0):.1f}s, "
        f"{fleet.get('alive', '?')}/{fleet.get('jobs', '?')} workers alive"
    )
    return 0


def cmd_cancel(args) -> int:
    from repro.service.client import ServiceClient

    with ServiceClient(args.connect, timeout=30.0) as client:
        cancelled = client.cancel(args.tag)
    print(f"cancelled {cancelled} job(s) tagged {args.tag!r}")
    # "nothing matched" exits nonzero so scripts can tell a no-op from a
    # kill, the way `pkill` does
    return 0 if cancelled else 2


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = {
        "compress": cmd_compress,
        "convert": cmd_convert,
        "stats": cmd_stats,
        "decompress": cmd_decompress,
        "query": cmd_query,
        "batch": cmd_batch,
        "serve": cmd_serve,
        "ping": cmd_ping,
        "cancel": cmd_cancel,
    }[args.command]
    try:
        return handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
