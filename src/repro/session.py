"""The unified ``Session`` API: one facade over every execution backend.

Before this module, the public API had sprawled across four surfaces
that each re-threaded the same knobs — ``Engine(kernel=, store=,
structural_keys=)``, ``parallel_corpus/many/batch(jobs=, ...)``,
``CompressedSpannerEvaluator(kernel=)`` and the CLI flags.  A
:class:`Session` subsumes them: it is configured once by a
:class:`SessionConfig` and routes every call to one of two pluggable
backends with identical result semantics (the differential harness
holds them bit-identical):

* the **in-process backend** (the default): a private
  :class:`~repro.engine.engine.Engine` serves single-pair calls, and —
  when ``jobs > 1`` — the :mod:`repro.parallel` pool serves corpus /
  many / batch calls, exactly as before;
* the **daemon backend** (``connect("path.sock")`` /
  ``SessionConfig(socket_path=...)``): every batch call is shipped as a
  length-prefixed JSON request over a unix socket to a long-lived
  ``repro-spanner serve`` daemon (:mod:`repro.service`), whose
  persistent worker fleet keeps engine caches warm *across* client
  processes — the ``O(size(S) · q²)`` preprocessing amortises over the
  daemon's lifetime, not one CLI invocation.

:class:`~repro.engine.engine.Engine` and the ``parallel_*`` functions
remain available as the low-level core (and ``from repro import
Engine`` keeps working unchanged); new code should start here.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, replace
from types import TracebackType
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Type,
    Union,
    cast,
)

from repro.engine.batch import BATCH_TASKS, BatchItem, batch_items_from_flat, run_task
from repro.engine.spec import EngineConfig, SpannerSpec, TaskSpec
from repro.slp import io as slp_io
from repro.slp.grammar import SLP
from repro.spanner.automaton import SpannerNFA
from repro.spanner.spans import SpanTuple
from repro.spanner.transform import END_SYMBOL

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.counting import RankedAccess

#: Anything a session accepts as a document: an in-memory grammar or a
#: path to a ``.slp.json`` / ``.slpb`` file.
Document = Union[str, SLP]
#: Anything a session accepts as a spanner: a compiled automaton or a
#: picklable/JSON-able recipe.
Spanner = Union[SpannerNFA, SpannerSpec]


@dataclass(frozen=True)
class SessionConfig:
    """Every knob of a :class:`Session`, in one picklable value.

    Subsumes the old ``Engine`` constructor arguments (store, key mode,
    kernel, padding, cache capacities) *and* the parallel options
    (``jobs``, retries, timeout) *and* the backend selector
    (``socket_path``).

    ``structural_keys=None`` (the default) means *auto*: identity keys
    for a serial in-process engine (the cheapest correct choice when
    the caller reuses objects), content-digest keys whenever work
    crosses a process boundary (parallel jobs, the daemon fleet) —
    cross-process sharing only ever works through digests.  ``kernel``
    is a backend *name* (``None``/``"auto"``/``"python"``/``"numpy"``),
    never a live kernel object, so a config can cross process
    boundaries and every worker re-resolves it against its own
    environment.
    """

    store_dir: Optional[str] = None
    structural_keys: Optional[bool] = None
    balance: bool = True
    end_symbol: str = END_SYMBOL
    max_documents: int = 64
    max_spanners: int = 64
    max_preprocessings: int = 128
    kernel: Optional[str] = None
    jobs: int = 1
    max_retries: int = 2
    timeout: Optional[float] = None
    socket_path: Optional[str] = None
    #: Weighted-fair scheduling weight of this session's daemon jobs:
    #: each step doubles the job's share of the fleet (daemon backend
    #: only; clamped server-side).
    priority: int = 0
    #: Whether a daemon job submitted by this session should be
    #: abandoned the moment the submitting connection drops.  On by
    #: default: a dead client's job is pure wasted fleet time.
    cancel_on_disconnect: bool = True
    #: Cancellation tag attached to this session's daemon jobs: any
    #: client may later abort every matching job with
    #: ``ServiceClient.cancel(tag)`` (``repro-spanner cancel``).
    tag: Optional[str] = None
    #: Daemon-side admission bounds (serve-time config): how many jobs
    #: may be admitted fleet-wide / per client connection before new
    #: submissions are refused with a structured ``busy`` frame.
    max_pending_jobs: int = 32
    max_jobs_per_client: int = 8
    #: Path of a JSONL trace sink (``repro.obs``).  When set, every
    #: request opens a root span and the context propagates across the
    #: wire and into fleet workers, so one file collects the client,
    #: daemon and worker spans of a request.  ``None`` (the default)
    #: keeps the zero-overhead no-op path.
    trace: Optional[str] = None
    #: Per-request latency budget (daemon backend): every request this
    #: session ships carries ``deadline_ms`` on the wire, and a job
    #: still unfinished past it fails with
    #: :class:`~repro.service.protocol.DeadlineExceeded` (its in-flight
    #: shards are cancelled).  Distinct from ``timeout`` (the client
    #: socket I/O bound) and from the daemon's own ``job_timeout``
    #: safety net.  ``None`` means no deadline.
    deadline_ms: Optional[int] = None
    #: Hung-shard watchdog (serve-time config): the execution allowance,
    #: in seconds, granted to a mean-cost shard before the scheduler
    #: kills the worker running it and retries the shard elsewhere.
    #: Costlier shards get proportionally longer; each failed attempt
    #: doubles the allowance.  ``None`` (the default) disables the
    #: watchdog.
    shard_timeout: Optional[float] = None
    #: What a daemon-backed session does when the daemon cannot be
    #: reached (after the client's connect retries): ``"raise"`` (the
    #: default) surfaces :class:`~repro.service.protocol.\
    #: ServiceUnavailableError`; ``"fallback"`` degrades gracefully to a
    #: private in-process backend built from this same config (minus the
    #: socket), counting a ``session.fallbacks`` metric per degraded
    #: call.  Results are bit-identical either way — the differential
    #: harness holds the backends equal.
    on_unavailable: str = "raise"

    def resolved_structural_keys(self, cross_process: bool) -> bool:
        """The key mode after resolving the ``None`` = auto default."""
        if self.structural_keys is not None:
            return self.structural_keys
        return cross_process

    def engine_config(self, cross_process: bool = True) -> EngineConfig:
        """The :class:`EngineConfig` slice of this config."""
        return EngineConfig(
            store_dir=self.store_dir,
            structural_keys=self.resolved_structural_keys(cross_process),
            balance=self.balance,
            end_symbol=self.end_symbol,
            max_documents=self.max_documents,
            max_spanners=self.max_spanners,
            max_preprocessings=self.max_preprocessings,
            kernel=self.kernel,
            trace_path=self.trace,
        )

    def summary(self) -> Dict[str, object]:
        """A JSON-able digest (what the daemon reports on ``ping``)."""
        return {
            "store_dir": self.store_dir,
            "structural_keys": self.structural_keys,
            "kernel": self.kernel,
            "jobs": self.jobs,
            "balance": self.balance,
            "max_pending_jobs": self.max_pending_jobs,
            "max_jobs_per_client": self.max_jobs_per_client,
            "trace": self.trace,
            "shard_timeout": self.shard_timeout,
        }


def _as_spec(spanner: Spanner) -> SpannerSpec:
    return SpannerSpec.of(spanner)


def _resolve(spanner: Spanner) -> SpannerNFA:
    if isinstance(spanner, SpannerNFA):
        return spanner
    return SpannerSpec.of(spanner).resolve()


class _InProcessBackend:
    """Today's engine + parallel paths, unchanged semantics."""

    name = "in-process"

    def __init__(self, config: SessionConfig) -> None:
        self.config = config
        self.engine = config.engine_config(cross_process=False).build()

    def load(self, document: Document) -> SLP:
        if isinstance(document, SLP):
            return document
        return slp_io.load_file(document)

    def single(
        self,
        task: str,
        spanner: Spanner,
        document: Document,
        limit: Optional[int] = None,
    ) -> object:
        return run_task(
            self.engine, task, _resolve(spanner), self.load(document), limit
        )

    def model_check(
        self, spanner: Spanner, document: Document, span_tuple: SpanTuple
    ) -> bool:
        return self.engine.model_check(
            _resolve(spanner), self.load(document), span_tuple
        )

    def ranked(self, spanner: Spanner, document: Document) -> "RankedAccess":
        return self.engine.ranked(_resolve(spanner), self.load(document))

    def enumerate(
        self, spanner: Spanner, document: Document, limit: Optional[int] = None
    ) -> Iterator[SpanTuple]:
        import itertools

        stream = self.engine.enumerate(_resolve(spanner), self.load(document))
        if limit is None:
            return stream
        # clamp like run_task does, so a negative limit means "nothing"
        # on every backend instead of an islice ValueError here only
        return itertools.islice(stream, max(limit, 0))

    def grid(
        self,
        spanners: Sequence[Spanner],
        documents: Sequence[Document],
        task: str,
        limit: Optional[int],
    ) -> List[object]:
        """Row-major (documents outer) results for the full grid."""
        from repro.obs.trace import get_tracer

        # Root span of the whole call; with jobs > 1 the parallel API
        # captures it as the current context, so worker shard spans in
        # other processes parent here (no-op when tracing is off).
        with get_tracer().span(
            "session.request",
            task=task,
            documents=len(documents),
            spanners=len(spanners),
        ):
            if self.config.jobs > 1:
                from repro.parallel import parallel_batch

                items = parallel_batch(
                    [_as_spec(sp) for sp in spanners],
                    list(documents),
                    task=task,
                    limit=limit,
                    jobs=self.config.jobs,
                    store=self.config.store_dir,
                    structural_keys=self.config.resolved_structural_keys(True),
                    kernel=self.config.kernel,
                    max_retries=self.config.max_retries,
                    timeout=self.config.timeout,
                )
                return [item.result for item in items]
            resolved = [_resolve(sp) for sp in spanners]
            results: List[object] = []
            for document in documents:
                slp = self.load(document)
                for spanner in resolved:
                    results.append(
                        run_task(self.engine, task, spanner, slp, limit)
                    )
            return results

    def stats(self) -> Dict[str, object]:
        return {
            "backend": self.name,
            "cache": self.engine.cache_stats(),
            "store": self.engine.store_stats(),
        }

    def close(self) -> None:
        pass  # nothing held beyond the engine's (garbage-collected) caches


class _DaemonBackend:
    """A client of a long-lived ``repro-spanner serve`` daemon."""

    name = "daemon"

    def __init__(self, config: SessionConfig) -> None:
        from repro.service.client import ServiceClient

        self.config = config
        self.client = ServiceClient(config.socket_path, timeout=config.timeout)
        # Built lazily, and only when on_unavailable == "fallback" and a
        # call actually hits an unreachable daemon.
        self._fallback_backend: Optional[_InProcessBackend] = None
        if config.trace is not None:
            from repro.obs.trace import get_tracer

            get_tracer().configure(config.trace)

    def _fallback(self) -> _InProcessBackend:
        """The graceful-degradation backend (``on_unavailable="fallback"``).

        A private in-process backend over the same config minus the
        socket: same store, same kernel, same key mode resolution —
        results stay bit-identical to the daemon's, only the cache
        warmth differs.  Each degraded call bumps ``session.fallbacks``.
        """
        from repro.obs.metrics import get_registry

        get_registry().counter("session.fallbacks").inc()
        if self._fallback_backend is None:
            self._fallback_backend = _InProcessBackend(
                replace(self.config, socket_path=None)
            )
        return self._fallback_backend

    def _unavailable_is_fatal(self) -> bool:
        return self.config.on_unavailable != "fallback"

    @staticmethod
    def _spill(documents: Sequence[Document], spill_dir: str) -> List[str]:
        """Paths for ``documents`` (in-memory SLPs spilled to temp files).

        The daemon shares the client's filesystem (it listens on a unix
        socket), so documents travel by path — the same
        :func:`~repro.parallel.sharding.as_paths` bridge the parallel
        workers use, with the same content addressing.
        """
        from repro.parallel.sharding import as_paths

        return as_paths(documents, spill_dir)

    def grid(
        self,
        spanners: Sequence[Spanner],
        documents: Sequence[Document],
        task: str,
        limit: Optional[int],
    ) -> List[object]:
        from repro.obs.trace import get_tracer
        from repro.service.protocol import ServiceUnavailableError

        try:
            with tempfile.TemporaryDirectory(prefix="repro-spill-") as spill_dir:
                paths = self._spill(documents, spill_dir)
                # The client-side root span of the whole request: the daemon
                # parents its ``service.run`` span under this context, and
                # the context (with the sink path) rides the wire so every
                # process appends to one JSONL file.  Untraced sessions get
                # the no-op span and the request frame is byte-identical.
                with get_tracer().span(
                    "session.request",
                    task=task,
                    documents=len(paths),
                    spanners=len(spanners),
                ) as span:
                    ctx = span.context()
                    return self.client.run_grid(
                        paths,
                        spanners,
                        task=task,
                        limit=limit,
                        priority=self.config.priority,
                        tag=self.config.tag,
                        cancel_on_disconnect=self.config.cancel_on_disconnect,
                        deadline_ms=self.config.deadline_ms,
                        trace=ctx.to_wire() if ctx is not None else None,
                    )
        except ServiceUnavailableError:
            if self._unavailable_is_fatal():
                raise
            return self._fallback().grid(spanners, documents, task, limit)

    def single(
        self,
        task: str,
        spanner: Spanner,
        document: Document,
        limit: Optional[int] = None,
    ) -> object:
        return self.grid([spanner], [document], task, limit)[0]

    def model_check(
        self, spanner: Spanner, document: Document, span_tuple: SpanTuple
    ) -> bool:
        from repro.service.protocol import ServiceUnavailableError

        try:
            with tempfile.TemporaryDirectory(prefix="repro-spill-") as spill_dir:
                [path] = self._spill([document], spill_dir)
                return self.client.check(path, spanner, span_tuple)
        except ServiceUnavailableError:
            if self._unavailable_is_fatal():
                raise
            return self._fallback().model_check(spanner, document, span_tuple)

    def ranked(self, spanner: Spanner, document: Document) -> "RankedAccess":
        raise NotImplementedError(
            "ranked access needs an in-process session (constant-delay "
            "select cannot usefully cross a request/response boundary); "
            "use connect() without a socket path"
        )

    def enumerate(
        self, spanner: Spanner, document: Document, limit: Optional[int] = None
    ) -> Iterator[SpanTuple]:
        # Over a daemon the stream is materialised (bounded by `limit`)
        # on the server and shipped whole; the canonical order is
        # preserved by the order-preserving wire encoding.
        return iter(
            cast(List[SpanTuple], self.single("enumerate", spanner, document, limit))
        )

    def stats(self) -> Dict[str, object]:
        info = self.client.ping()
        info["backend"] = self.name
        return cast(Dict[str, object], info)

    def close(self) -> None:
        self.client.close()


class Session:
    """Unified spanner evaluation over a pluggable execution backend.

    Construct via :func:`connect` (or directly).  Sessions are context
    managers; :meth:`close` releases the backend (for the daemon
    backend: the client socket — the daemon itself keeps running).

    >>> from repro import connect
    >>> from repro.slp.construct import balanced_slp
    >>> from repro.spanner.regex import compile_spanner
    >>> spanner = compile_spanner(r".*(?P<x>a+)b.*", alphabet="ab")
    >>> with connect() as session:
    ...     session.count(spanner, balanced_slp("aabab"))
    3
    """

    def __init__(self, config: Optional[SessionConfig] = None, **overrides: Any) -> None:
        if config is None:
            config = SessionConfig(**overrides)
        elif overrides:
            config = replace(config, **overrides)
        if config.on_unavailable not in ("raise", "fallback"):
            raise ValueError(
                f"on_unavailable must be 'raise' or 'fallback', "
                f"not {config.on_unavailable!r}"
            )
        self.config = config
        self._backend: Union[_InProcessBackend, _DaemonBackend]
        if config.socket_path is not None:
            self._backend = _DaemonBackend(config)
        else:
            self._backend = _InProcessBackend(config)

    @property
    def backend(self) -> str:
        """``"in-process"`` or ``"daemon"``."""
        return self._backend.name

    # -- single-pair tasks ----------------------------------------------

    def evaluate(self, spanner: Spanner, document: Document) -> FrozenSet[SpanTuple]:
        """The full relation ``⟦M⟧(D)`` (Thm 7.1), as a frozenset."""
        return cast(
            FrozenSet[SpanTuple], self._backend.single("evaluate", spanner, document)
        )

    def count(self, spanner: Spanner, document: Document) -> int:
        """``|⟦M⟧(D)|`` without enumerating."""
        return cast(int, self._backend.single("count", spanner, document))

    def is_nonempty(self, spanner: Spanner, document: Document) -> bool:
        """``⟦M⟧(D) ≠ ∅`` (Thm 5.1.1)."""
        return cast(bool, self._backend.single("nonempty", spanner, document))

    def enumerate(
        self, spanner: Spanner, document: Document, limit: Optional[int] = None
    ) -> Iterator[SpanTuple]:
        """``⟦M⟧(D)`` in canonical order, duplicate-free (Thm 8.10).

        In process this streams with logarithmic delay; over a daemon
        the (``limit``-bounded) prefix is materialised server-side and
        shipped in one response, same tuples, same order.
        """
        return self._backend.enumerate(spanner, document, limit)

    def model_check(
        self, spanner: Spanner, document: Document, span_tuple: SpanTuple
    ) -> bool:
        """``t ∈ ⟦M⟧(D)`` (Thm 5.1.2)."""
        return self._backend.model_check(spanner, document, span_tuple)

    def ranked(self, spanner: Spanner, document: Document) -> "RankedAccess":
        """Ranked access into ``⟦M⟧(D)`` (in-process backend only)."""
        return self._backend.ranked(spanner, document)

    # -- batch shapes ---------------------------------------------------

    def corpus(
        self,
        spanner: Spanner,
        documents: Sequence[Document],
        *,
        task: str = "evaluate",
        limit: Optional[int] = None,
    ) -> List[object]:
        """``[task(M, D) for D in documents]``, in input order."""
        self._check_task(task)
        return self._backend.grid([spanner], documents, task, limit)

    def many(
        self,
        spanners: Sequence[Spanner],
        document: Document,
        *,
        task: str = "evaluate",
        limit: Optional[int] = None,
    ) -> List[object]:
        """``[task(M, D) for M in spanners]``, in input order."""
        self._check_task(task)
        return self._backend.grid(spanners, [document], task, limit)

    def batch(
        self,
        spanners: Sequence[Spanner],
        documents: Sequence[Document],
        *,
        task: str = "count",
        limit: Optional[int] = None,
    ) -> List[BatchItem]:
        """The (documents × spanners) grid, row-major like ``run_batch``."""
        self._check_task(task)
        flat = self._backend.grid(spanners, documents, task, limit)
        return batch_items_from_flat(flat, len(spanners), task)

    @staticmethod
    def _check_task(task: str) -> None:
        if task not in BATCH_TASKS:
            raise ValueError(
                f"unknown batch task {task!r}; expected one of {BATCH_TASKS}"
            )

    # -- Engine-compatible conveniences ---------------------------------

    def evaluate_corpus(
        self, spanner: Spanner, documents: Sequence[Document]
    ) -> List[object]:
        """``[⟦M⟧(D) for D in documents]`` (Engine-compatible shape)."""
        return self.corpus(spanner, documents, task="evaluate")

    def evaluate_many(
        self, spanners: Sequence[Spanner], document: Document
    ) -> List[object]:
        """``[⟦M⟧(D) for M in spanners]`` (Engine-compatible shape)."""
        return self.many(spanners, document, task="evaluate")

    def count_corpus(
        self, spanner: Spanner, documents: Sequence[Document]
    ) -> List[object]:
        """``[|⟦M⟧(D)| for D in documents]``."""
        return self.corpus(spanner, documents, task="count")

    def count_many(
        self, spanners: Sequence[Spanner], document: Document
    ) -> List[object]:
        """``[|⟦M⟧(D)| for M in spanners]``."""
        return self.many(spanners, document, task="count")

    # -- lifecycle / introspection --------------------------------------

    def stats(self) -> Dict[str, object]:
        """Backend statistics: engine cache/store stats in process, the
        daemon's ``ping`` payload (pid, uptime, fleet, counters) over a
        socket."""
        return self._backend.stats()

    def close(self) -> None:
        """Release the backend (idempotent)."""
        self._backend.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"Session(backend={self.backend!r}, jobs={self.config.jobs})"


def connect(
    socket_path: Optional[str] = None,
    *,
    config: Optional[SessionConfig] = None,
    **overrides: Any,
) -> Session:
    """Open a :class:`Session` — the one entry point of the public API.

    ``connect()`` gives the in-process backend; ``connect("/run/repro.sock")``
    attaches to a running ``repro-spanner serve`` daemon.  Keyword
    overrides (or a full :class:`SessionConfig` via ``config=``) carry
    every knob: ``store_dir``, ``kernel``, ``jobs``, ``structural_keys``,
    padding, timeouts.

    >>> from repro import connect
    >>> connect(jobs=1).backend
    'in-process'
    """
    if config is None:
        config = SessionConfig(**overrides)
    elif overrides:
        config = replace(config, **overrides)
    if socket_path is not None:
        config = replace(config, socket_path=socket_path)
    return Session(config)


__all__ = ["Document", "Session", "SessionConfig", "Spanner", "connect"]
