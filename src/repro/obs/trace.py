"""Monotonic-clock tracing with cross-process context propagation.

The tracer is deliberately tiny and dependency-free: a :class:`Span` is
a named ``[start, end)`` interval on ``time.monotonic()`` (system-wide
on Linux, so spans from different processes on one host are directly
comparable), linked to its parent by explicit ids.  A
:class:`TraceContext` is the picklable / JSON-codable projection of a
span — ``(trace_id, span_id, sink path)`` — and is what crosses the two
process boundaries the system already has: it rides inside
``TaskSpec.trace`` to parallel and fleet workers, and inside the
optional ``trace`` field of a daemon request frame.

Finished spans are appended as single JSON lines to the sink path.  A
single ``write()`` of one line in append mode is atomic on POSIX, so
client, daemon, and every worker can share one JSONL file and the trace
still reads back consistently.

The disabled path is the common one and must stay near-free: when no
sink is configured and no span is active, :meth:`Tracer.span` returns a
shared no-op context manager without allocating.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass
from types import TracebackType
from typing import Any, Dict, List, Mapping, Optional, Tuple, Type, Union

__all__ = [
    "ENV_TRACE",
    "Span",
    "Stopwatch",
    "TraceContext",
    "Tracer",
    "get_tracer",
    "new_id",
    "read_trace",
    "set_tracer",
    "stopwatch",
]

#: Environment variable naming the default JSONL sink.
ENV_TRACE = "REPRO_TRACE"


def new_id() -> str:
    """A 16-hex-digit id, unique enough for spans within one trace."""
    return os.urandom(8).hex()


@dataclass(frozen=True)
class TraceContext:
    """The wire/pickle-safe identity of a span: what children parent to.

    ``path`` names the JSONL sink so a remote process can join the same
    trace file; it is optional so a context can also address a sink the
    receiver already has configured.
    """

    trace_id: str
    span_id: str
    path: Optional[str] = None

    def to_wire(self) -> Dict[str, str]:
        """Encode for a JSON frame (omits ``path`` when unset)."""
        payload = {"id": self.trace_id, "span": self.span_id}
        if self.path is not None:
            payload["path"] = self.path
        return payload

    @classmethod
    def from_wire(cls, payload: object) -> Optional["TraceContext"]:
        """Decode a frame field; ``None`` for missing/malformed input."""
        if not isinstance(payload, Mapping):
            return None
        trace_id = payload.get("id")
        span_id = payload.get("span")
        if not isinstance(trace_id, str) or not isinstance(span_id, str):
            return None
        path = payload.get("path")
        if path is not None and not isinstance(path, str):
            path = None
        return cls(trace_id=trace_id, span_id=span_id, path=path)


class Span:
    """One named monotonic-clock interval inside a trace."""

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "start", "end", "tags")

    def __init__(
        self,
        name: str,
        *,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        tags: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = time.monotonic()
        self.end: Optional[float] = None
        self.tags: Dict[str, Any] = tags or {}

    @property
    def seconds(self) -> float:
        """Elapsed time; measured live while the span is still open."""
        end = self.end if self.end is not None else time.monotonic()
        return end - self.start

    def context(self, path: Optional[str] = None) -> TraceContext:
        """The :class:`TraceContext` naming this span as parent."""
        return TraceContext(trace_id=self.trace_id, span_id=self.span_id, path=path)

    def as_line(self) -> Dict[str, Any]:
        """The JSONL export record."""
        record: Dict[str, Any] = {
            "name": self.name,
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "start": self.start,
            "end": self.end,
            "dur": None if self.end is None else self.end - self.start,
            "pid": os.getpid(),
        }
        if self.tags:
            record["tags"] = self.tags
        return record


class _NoopSpan:
    """Shared do-nothing handle for the tracing-disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        return None

    def finish(self) -> None:
        return None

    def context(self, path: Optional[str] = None) -> Optional[TraceContext]:
        return None


NOOP_SPAN = _NoopSpan()


class _OpenSpan:
    """A live span bound to its sink; context manager or explicit finish."""

    __slots__ = ("span", "sink", "_tracer", "_on_stack")

    def __init__(self, span: Span, sink: str, tracer: "Tracer", on_stack: bool) -> None:
        self.span = span
        self.sink = sink
        self._tracer = tracer
        self._on_stack = on_stack

    def __enter__(self) -> "_OpenSpan":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        if exc_type is not None:
            self.span.tags.setdefault("error", exc_type.__name__)
        self.finish()

    @property
    def seconds(self) -> float:
        return self.span.seconds

    def context(self, path: Optional[str] = None) -> TraceContext:
        """Context for children; defaults the sink to this span's own."""
        return self.span.context(path if path is not None else self.sink)

    def finish(self) -> None:
        if self.span.end is not None:  # already finished
            return
        self.span.end = time.monotonic()
        if self._on_stack:
            self._tracer._pop(self)
        self._tracer._write(self.span, self.sink)


class Tracer:
    """Creates spans, tracks the per-thread active span, writes JSONL.

    Sink resolution for a new span, in order: an explicit ``path``
    argument, the parent context's ``path``, the sink of the enclosing
    span on this thread, the tracer's configured default.  No sink
    means no span — the caller gets the shared no-op handle.
    """

    def __init__(self, path: Optional[str] = None) -> None:
        self._path = path
        self._local = threading.local()

    # -- configuration ----------------------------------------------------

    @property
    def path(self) -> Optional[str]:
        return self._path

    def configure(self, path: Optional[str]) -> None:
        """Set (or clear) the default sink for spans with no other sink."""
        self._path = path

    @property
    def enabled(self) -> bool:
        return self._path is not None or bool(self._stack())

    # -- span lifecycle ---------------------------------------------------

    def span(
        self,
        name: str,
        *,
        parent: Optional[TraceContext] = None,
        path: Optional[str] = None,
        **tags: Any,
    ) -> Union[_OpenSpan, _NoopSpan]:
        """Open a span as a context manager, nesting on this thread.

        Inside the ``with`` block the span is the implicit parent for
        further :meth:`span` calls on the same thread, which is how
        engine internals (store restore, kernel build) land under the
        worker's shard span without any API plumbing.
        """
        handle = self.begin(name, parent=parent, path=path, on_stack=True, **tags)
        return handle

    def begin(
        self,
        name: str,
        *,
        parent: Optional[TraceContext] = None,
        path: Optional[str] = None,
        on_stack: bool = False,
        **tags: Any,
    ) -> Union[_OpenSpan, _NoopSpan]:
        """Open a span without entering it; finish via ``.finish()``.

        Used where span lifetime does not match a lexical scope — e.g.
        the scheduler opens a queue span at submit and finishes it at
        first dispatch.
        """
        stack = self._stack()
        sink = path
        if sink is None and parent is not None:
            sink = parent.path
        enclosing = stack[-1] if stack else None
        if sink is None and enclosing is not None:
            sink = enclosing.sink
        if sink is None:
            sink = self._path
        if sink is None:
            return NOOP_SPAN
        if parent is not None:
            trace_id, parent_id = parent.trace_id, parent.span_id
        elif enclosing is not None:
            trace_id, parent_id = enclosing.span.trace_id, enclosing.span.span_id
        else:
            trace_id, parent_id = new_id(), None
        span = Span(
            name,
            trace_id=trace_id,
            span_id=new_id(),
            parent_id=parent_id,
            tags=dict(tags) if tags else None,
        )
        handle = _OpenSpan(span, sink, self, on_stack)
        if on_stack:
            stack.append(handle)
        return handle

    def current_context(self, path: Optional[str] = None) -> Optional[TraceContext]:
        """Context of this thread's innermost active span, if any."""
        stack = self._stack()
        if not stack:
            return None
        return stack[-1].context(path)

    # -- internals --------------------------------------------------------

    def _stack(self) -> List[_OpenSpan]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _pop(self, handle: _OpenSpan) -> None:
        stack = self._stack()
        if handle in stack:
            while stack and stack[-1] is not handle:
                stack.pop()
            stack.pop()

    def _write(self, span: Span, sink: str) -> None:
        line = json.dumps(span.as_line(), separators=(",", ":"), default=str)
        try:
            with open(sink, "a", encoding="utf-8") as fh:
                fh.write(line + "\n")
        except OSError:
            # A broken sink must never fail the traced operation; drop
            # the span and disable the default sink if it is the culprit.
            if sink == self._path:
                self._path = None


class Stopwatch:
    """Always-on timer that doubles as a span when tracing is enabled.

    ``stats --profile`` style call sites need the elapsed time whether
    or not a trace sink is configured; this wraps a monotonic timer
    around an (optional) span so both report from the same clock.
    """

    __slots__ = ("name", "seconds", "_handle", "_start")

    def __init__(self, name: str, tracer: Optional[Tracer] = None, **tags: Any) -> None:
        self.name = name
        self.seconds = 0.0
        tracer = tracer if tracer is not None else get_tracer()
        self._handle = tracer.span(name, **tags)
        self._start = 0.0

    def __enter__(self) -> "Stopwatch":
        self._handle.__enter__()
        self._start = time.monotonic()
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.seconds = time.monotonic() - self._start
        self._handle.__exit__(exc_type, exc, tb)


def stopwatch(name: str, **tags: Any) -> Stopwatch:
    """Shorthand for :class:`Stopwatch` on the process-global tracer."""
    return Stopwatch(name, **tags)


# -- process-global tracer ------------------------------------------------

_global_lock = threading.Lock()
_global_tracer: Optional[Tracer] = None


def get_tracer() -> Tracer:
    """The process-global tracer; ``REPRO_TRACE`` seeds its sink."""
    global _global_tracer
    if _global_tracer is None:
        with _global_lock:
            if _global_tracer is None:
                _global_tracer = Tracer(os.environ.get(ENV_TRACE) or None)
    return _global_tracer


def set_tracer(tracer: Optional[Tracer]) -> None:
    """Replace the process-global tracer (tests)."""
    global _global_tracer
    with _global_lock:
        _global_tracer = tracer


def read_trace(path: str) -> List[Dict[str, Any]]:
    """Load a JSONL trace file back into span records (skips torn lines)."""
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for raw in fh:
            raw = raw.strip()
            if not raw:
                continue
            try:
                record = json.loads(raw)
            except ValueError:
                continue
            if isinstance(record, dict):
                records.append(record)
    return records


def _span_children(
    records: List[Dict[str, Any]],
) -> Dict[Optional[str], List[Dict[str, Any]]]:
    children: Dict[Optional[str], List[Dict[str, Any]]] = {}
    for record in records:
        children.setdefault(record.get("parent"), []).append(record)
    return children


def descendants(records: List[Dict[str, Any]], root_span_id: str) -> List[Dict[str, Any]]:
    """All spans transitively parented to ``root_span_id`` (test helper)."""
    by_parent = _span_children(records)
    out: List[Dict[str, Any]] = []
    frontier: Tuple[str, ...] = (root_span_id,)
    while frontier:
        next_frontier: List[str] = []
        for parent in frontier:
            for record in by_parent.get(parent, []):
                out.append(record)
                span_id = record.get("span")
                if isinstance(span_id, str):
                    next_frontier.append(span_id)
        frontier = tuple(next_frontier)
    return out
