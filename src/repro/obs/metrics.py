"""Process-local metrics: counters, gauges, fixed-bucket histograms.

Each process (client, daemon, every fleet worker) owns one
:class:`MetricsRegistry`.  Registries never talk to each other live;
instead a registry exports a plain-dict :meth:`~MetricsRegistry.snapshot`
— JSON-codable and picklable — and snapshots merge associatively via
:func:`merge_snapshots`:

* counters add,
* gauges keep the maximum,
* histograms add per-bucket counts (identical bounds) and fold
  count/total/min/max,
* slow-log entries union and keep the global top-N.

Associativity is what lets workers ship *cumulative* snapshots with each
result message while the scheduler keeps only the latest per worker and
merges on demand — no ordering or pairwise discipline required (covered
by a property test).

The registry also hosts the slow-query log: completed jobs over a
latency threshold are recorded with their tenant tag, so one tenant's
``q²`` blowup dragging the fleet is visible from ``repro-spanner stats
--connect`` without reading a full trace.

Failure-path counters (PR 9) follow the same conventions; the ones
every operator dashboard should watch:

* ``faults.injected`` — fault-layer activations (:mod:`repro.faults`);
  nonzero outside a chaos run means ``REPRO_FAULTS`` leaked into prod;
* ``sched.watchdog_kills`` — workers killed by a hung-shard watchdog
  (the scheduler's or a :class:`~repro.parallel.pool.WorkerPool`'s);
* ``store.quarantined`` — corrupt ``.prep`` entries moved aside and
  rebuilt; ``store.save_errors`` — failed (rolled-back) store saves;
* ``client.retries`` — service-client connect/busy retries;
  ``session.fallbacks`` — daemon calls degraded to in-process.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "BYTE_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SlowLog",
    "TIME_BUCKETS",
    "get_registry",
    "merge_snapshots",
    "set_registry",
]

#: Default histogram bounds for durations in seconds (100µs .. 30s).
TIME_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.001, 0.0025, 0.01, 0.025, 0.1, 0.25, 1.0, 2.5, 10.0, 30.0,
)

#: Default histogram bounds for payload sizes in bytes (256B .. 16MiB).
BYTE_BUCKETS: Tuple[float, ...] = (
    256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0, 1048576.0, 4194304.0, 16777216.0,
)


class Counter:
    """A monotonically increasing integer; merge = sum."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A last-written level; merge = max (the only associative choice
    that stays meaningful for queue depths and high-water marks)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bound bucket histogram; values above the last bound land in
    the overflow bucket, so ``len(counts) == len(bounds) + 1``."""

    __slots__ = ("bounds", "counts", "count", "total", "vmin", "vmax")

    def __init__(self, bounds: Sequence[float] = TIME_BUCKETS) -> None:
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.vmin: Optional[float] = None
        self.vmax: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_right(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.vmin is None or value < self.vmin:
            self.vmin = value
        if self.vmax is None or value > self.vmax:
            self.vmax = value

    def as_dict(self) -> Dict[str, Any]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
            "min": self.vmin,
            "max": self.vmax,
        }


class SlowLog:
    """Top-N completed operations over a latency threshold, with tags."""

    __slots__ = ("threshold", "limit", "entries", "_lock")

    def __init__(self, threshold: float = 0.0, limit: int = 32) -> None:
        self.threshold = threshold
        self.limit = limit
        self.entries: List[Dict[str, Any]] = []
        self._lock = threading.Lock()

    def record(self, name: str, seconds: float, **tags: Any) -> None:
        if seconds < self.threshold:
            return
        entry: Dict[str, Any] = {"name": name, "seconds": seconds}
        if tags:
            entry["tags"] = tags
        with self._lock:
            self.entries.append(entry)
            self.entries.sort(key=_slow_sort_key)
            del self.entries[self.limit:]

    def snapshot(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [dict(entry) for entry in self.entries]


def _slow_sort_key(entry: Mapping[str, Any]) -> Tuple[float, str]:
    # Deterministic order (slowest first, then name) keeps top-N
    # truncation associative under merging.
    return (-float(entry.get("seconds", 0.0)), str(entry.get("name", "")))


class MetricsRegistry:
    """Named metrics for one process; snapshot/merge via plain dicts."""

    def __init__(self, slow_threshold: float = 0.0, slow_limit: int = 32) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self.slow = SlowLog(threshold=slow_threshold, limit=slow_limit)

    # Metric handles are created once and then mutated without the
    # registry lock: single bytecode-level updates are tolerable to
    # race (metrics, not ledgers), and the hot paths stay cheap.

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            with self._lock:
                metric = self._counters.setdefault(name, Counter())
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            with self._lock:
                metric = self._gauges.setdefault(name, Gauge())
        return metric

    def histogram(self, name: str, bounds: Sequence[float] = TIME_BUCKETS) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            with self._lock:
                metric = self._histograms.setdefault(name, Histogram(bounds))
        return metric

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-codable, picklable copy of every metric."""
        with self._lock:
            counters = {name: c.value for name, c in self._counters.items()}
            gauges = {name: g.value for name, g in self._gauges.items()}
            histograms = {name: h.as_dict() for name, h in self._histograms.items()}
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "slow": self.slow.snapshot(),
        }


def _merge_histogram(left: Mapping[str, Any], right: Mapping[str, Any]) -> Dict[str, Any]:
    merged: Dict[str, Any] = {
        "count": int(left.get("count", 0)) + int(right.get("count", 0)),
        "total": float(left.get("total", 0.0)) + float(right.get("total", 0.0)),
        "min": _fold(min, left.get("min"), right.get("min")),
        "max": _fold(max, left.get("max"), right.get("max")),
    }
    lb, rb = list(left.get("bounds", [])), list(right.get("bounds", []))
    if lb and lb == rb:
        merged["bounds"] = lb
        merged["counts"] = [
            int(a) + int(b)
            for a, b in zip(left.get("counts", []), right.get("counts", []))
        ]
    else:
        # Mismatched bounds (mixed code versions): drop the buckets but
        # keep the scalar summary.  Empty bounds never match non-empty
        # ones, so this degradation is itself associative.
        merged["bounds"] = []
        merged["counts"] = []
    return merged


def _fold(op: Any, left: Optional[float], right: Optional[float]) -> Optional[float]:
    if left is None:
        return right
    if right is None:
        return left
    return float(op(left, right))


def merge_snapshots(
    snapshots: Iterable[Mapping[str, Any]], slow_limit: int = 32
) -> Dict[str, Any]:
    """Associatively merge registry snapshots into one combined view."""
    counters: Dict[str, int] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, Dict[str, Any]] = {}
    slow: List[Dict[str, Any]] = []
    for snap in snapshots:
        if not isinstance(snap, Mapping):
            continue
        for name, value in dict(snap.get("counters", {})).items():
            counters[name] = counters.get(name, 0) + int(value)
        for name, value in dict(snap.get("gauges", {})).items():
            value = float(value)
            gauges[name] = value if name not in gauges else max(gauges[name], value)
        for name, hist in dict(snap.get("histograms", {})).items():
            if name in histograms:
                histograms[name] = _merge_histogram(histograms[name], hist)
            else:
                histograms[name] = _copy_histogram(hist)
        slow.extend(dict(entry) for entry in snap.get("slow", []))
    slow.sort(key=_slow_sort_key)
    return {
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
        "slow": slow[:slow_limit],
    }


def _copy_histogram(hist: Mapping[str, Any]) -> Dict[str, Any]:
    return {
        "bounds": list(hist.get("bounds", [])),
        "counts": [int(c) for c in hist.get("counts", [])],
        "count": int(hist.get("count", 0)),
        "total": float(hist.get("total", 0.0)),
        "min": hist.get("min"),
        "max": hist.get("max"),
    }


# -- process-global registry ----------------------------------------------

_global_lock = threading.Lock()
_global_registry: Optional[MetricsRegistry] = None


def get_registry() -> MetricsRegistry:
    """The process-global registry every layer instruments into."""
    global _global_registry
    if _global_registry is None:
        with _global_lock:
            if _global_registry is None:
                _global_registry = MetricsRegistry()
    return _global_registry


def set_registry(registry: Optional[MetricsRegistry]) -> None:
    """Replace the process-global registry (tests)."""
    global _global_registry
    with _global_lock:
        _global_registry = registry
