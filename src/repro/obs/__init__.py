"""``repro.obs`` — dependency-free tracing and metrics.

The instrument panel of the system: monotonic-clock spans with
cross-process :class:`TraceContext` propagation (JSONL export), and a
process-local :class:`MetricsRegistry` whose snapshots merge
associatively across workers.  See CONTRIBUTING.md ("Instrumenting a
code path") for naming conventions and the overhead budget.
"""

from repro.obs.metrics import (
    BYTE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SlowLog,
    TIME_BUCKETS,
    get_registry,
    merge_snapshots,
    set_registry,
)
from repro.obs.trace import (
    ENV_TRACE,
    Span,
    Stopwatch,
    TraceContext,
    Tracer,
    get_tracer,
    new_id,
    read_trace,
    set_tracer,
    stopwatch,
)

__all__ = [
    "BYTE_BUCKETS",
    "Counter",
    "ENV_TRACE",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SlowLog",
    "Span",
    "Stopwatch",
    "TIME_BUCKETS",
    "TraceContext",
    "Tracer",
    "get_registry",
    "get_tracer",
    "merge_snapshots",
    "new_id",
    "read_trace",
    "set_registry",
    "set_tracer",
    "stopwatch",
]
