"""Benchmark harness helpers (timing, delay profiles, table rendering)."""

from repro.bench.harness import (
    DelayProfile,
    Table,
    fmt_seconds,
    measure_enumeration,
    time_call,
)

__all__ = [
    "DelayProfile",
    "Table",
    "fmt_seconds",
    "measure_enumeration",
    "time_call",
]
