"""Benchmark harness utilities: timing, delay recording, result rows.

Shared by the ``benchmarks/`` pytest-benchmark targets and the standalone
``benchmarks/run_all.py`` table generator.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, List, Optional, Tuple


def time_call(fn: Callable, *args, repeat: int = 1, **kwargs) -> Tuple[object, float]:
    """Run ``fn`` ``repeat`` times; return (last result, best wall time in s)."""
    best = float("inf")
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - start)
    return result, best


@dataclass
class DelayProfile:
    """Per-result timing of an enumeration run.

    For an *empty* enumeration (``count == 0``) there is no delay to speak
    of, so the delay statistics are ``nan`` — not ``0.0``, which would
    silently record a perfect delay profile for a run that produced nothing.
    With exactly one result the statistics fall back to ``first_result``.
    """

    preprocessing: float        # seconds until the iterator was created
    first_result: float         # seconds from iterator creation to result 1
    delays: List[float] = field(default_factory=list)  # inter-result gaps
    count: int = 0
    exhausted: bool = False
    #: Exception raised by the enumerator during the exhaustion probe past
    #: the cap (the measured profile is still complete); None otherwise.
    #: BaseExceptions like KeyboardInterrupt still propagate.
    probe_error: Optional[Exception] = None

    @property
    def max_delay(self) -> float:
        if self.delays:
            return max(self.delays)
        return self.first_result if self.count else float("nan")

    @property
    def mean_delay(self) -> float:
        if self.delays:
            return statistics.fmean(self.delays)
        return self.first_result if self.count else float("nan")

    @property
    def median_delay(self) -> float:
        if self.delays:
            return statistics.median(self.delays)
        return self.first_result if self.count else float("nan")


def measure_enumeration(
    make_iterator: Callable[[], Iterator],
    max_results: Optional[int] = None,
    probe: bool = True,
) -> DelayProfile:
    """Time an enumeration: preprocessing, first result, inter-result delays.

    ``make_iterator`` should perform the preprocessing and return the result
    iterator; enumeration stops after ``max_results`` results (or at
    exhaustion).  When the cap is hit and ``probe`` is true (the default),
    one extra (untimed, discarded) item is requested to decide
    ``exhausted`` — an iterator that ends exactly at ``max_results``
    reports ``exhausted=True``, not the cap.  Pass ``probe=False`` when the
    cap must also bound wall-clock (e.g. time-to-first-result runs where
    the next result may be expensive); ``exhausted`` then stays ``False``
    for capped runs.  A cap of 0 does no work at all (no probe either).
    If the probe itself raises an :class:`Exception`, the completed
    profile is still returned with it recorded in ``probe_error``
    (``BaseException``s like ``KeyboardInterrupt`` still propagate).
    """
    start = time.perf_counter()
    iterator = iter(make_iterator())
    created = time.perf_counter()
    profile = DelayProfile(preprocessing=created - start, first_result=0.0)
    previous = created
    while True:
        if max_results is not None and profile.count >= max_results:
            # A cap of 0 asks for no work at all — never probe past it.
            if probe and max_results > 0:
                try:
                    profile.exhausted = next(iterator, _EXHAUSTED) is _EXHAUSTED
                except Exception as exc:  # repro-check: broad-except — documented probe contract: failures are recorded, never raised
                    profile.exhausted = False
                    profile.probe_error = exc
            return profile
        try:
            item = next(iterator)
        except StopIteration:
            profile.exhausted = True
            return profile
        now = time.perf_counter()
        if profile.count == 0:
            profile.first_result = now - previous
        else:
            profile.delays.append(now - previous)
        profile.count += 1
        previous = now


#: Sentinel for the exhaustion probe of :func:`measure_enumeration`.
_EXHAUSTED = object()


class Table:
    """Minimal aligned-column table with a markdown-ish rendering."""

    def __init__(self, title: str, columns: List[str]) -> None:
        self.title = title
        self.columns = columns
        self.rows: List[List[str]] = []

    def add(self, *values: object) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append([_fmt(v) for v in values])

    def as_dict(self) -> dict:
        """The table as plain data (for JSON trajectory artifacts)."""
        return {
            "title": self.title,
            "columns": list(self.columns),
            "rows": [list(row) for row in self.rows],
        }

    def render(self) -> str:
        widths = [
            max(len(self.columns[c]), *(len(r[c]) for r in self.rows)) if self.rows else len(self.columns[c])
            for c in range(len(self.columns))
        ]
        header = " | ".join(col.ljust(w) for col, w in zip(self.columns, widths))
        rule = "-+-".join("-" * w for w in widths)
        body = [
            " | ".join(cell.rjust(w) for cell, w in zip(row, widths))
            for row in self.rows
        ]
        return "\n".join([f"## {self.title}", "", header, rule, *body, ""])

    def __str__(self) -> str:
        return self.render()


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


def fmt_seconds(seconds: float) -> str:
    """Human-readable duration."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}µs"
    if seconds < 1:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.3f}s"
