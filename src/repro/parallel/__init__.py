"""Sharded parallel execution: corpus/batch evaluation across processes.

The paper's complexity results make a *corpus* of SLP-compressed
documents embarrassingly parallel: every task runs in time polynomial in
``size(S)``, so once the automaton is prepared, documents are
independent units of work.  This subsystem ships that observation as
three layers:

* :mod:`repro.parallel.sharding` — partition a corpus of grammar files
  (in-memory SLPs are spilled to ``repro-slpb`` temp files) into
  size-balanced shards, using grammar size — read straight from the
  binary header — as the cost model, with digest-affinity so duplicate
  documents land on one worker's in-memory cache;
* :mod:`repro.parallel.pool` / :mod:`repro.parallel.worker` — a
  :class:`WorkerPool` of ``multiprocessing`` workers, each hydrating its
  own ``Engine(store=..., structural_keys=True)`` from a shared store
  directory so Lemma 6.5 tables are built once per digest across the
  whole fleet; dynamic pull-based dispatch, ordered result collection,
  per-worker stats aggregation, and crash recovery (a dead worker's
  shard is re-queued to a survivor — or a spawned replacement — with
  capped retries);
* :mod:`repro.parallel.api` — :func:`parallel_corpus`,
  :func:`parallel_many` and :func:`parallel_batch`, mirrored by
  ``repro batch --jobs N`` in the CLI and held bit-identical to the
  serial engine by the differential harness.

Typical use::

    from repro.parallel import parallel_corpus

    results = parallel_corpus(
        spanner, paths, task="count", jobs=8, store=".prep-store"
    )
"""

from repro.parallel.api import parallel_batch, parallel_corpus, parallel_many
from repro.parallel.pool import (
    ParallelExecutionError,
    ParallelReport,
    WorkerPool,
    aggregate_cache_stats,
    aggregate_store_stats,
)
from repro.parallel.sharding import (
    Shard,
    ShardPlan,
    WorkItem,
    as_paths,
    corpus_items,
    grammar_cost,
    grid_items,
    plan_shards,
    spill_corpus,
)

__all__ = [
    "ParallelExecutionError",
    "ParallelReport",
    "Shard",
    "ShardPlan",
    "WorkItem",
    "WorkerPool",
    "aggregate_cache_stats",
    "aggregate_store_stats",
    "as_paths",
    "corpus_items",
    "grammar_cost",
    "grid_items",
    "parallel_batch",
    "parallel_corpus",
    "parallel_many",
    "plan_shards",
    "spill_corpus",
]
