"""One-call entry points: sharded corpus/batch evaluation over processes.

The three functions mirror the serial batch API
(:func:`repro.engine.batch.evaluate_corpus` / ``evaluate_many`` /
``run_batch``) and return results in exactly the same order — the
differential harness holds them bit-identical — while executing on a
:class:`~repro.parallel.pool.WorkerPool`:

* :func:`parallel_corpus` — one spanner over a corpus of documents
  (paths or in-memory SLPs, which are spilled to ``repro-slpb`` temp
  files first);
* :func:`parallel_many` — many spanners over one document;
* :func:`parallel_batch` — the full (documents × spanners) grid,
  row-major like ``run_batch``, which backs ``repro batch --jobs N``.

Give every call the same ``store`` directory and the fleet shares
preprocessing builds through content addressing; with
``prime="duplicates"`` (the default when a store is set) a cheap parent
pass first builds one entry per *duplicated* grammar digest, so no two
workers ever race to build the same tables.
"""

from __future__ import annotations

import os
import tempfile
from typing import Dict, List, Optional, Sequence, Union

from repro.engine.batch import batch_items_from_flat
from repro.engine.spec import EngineConfig, SpannerSpec, TaskSpec
from repro.obs.trace import get_tracer
from repro.slp.grammar import SLP
from repro.spanner.automaton import SpannerNFA

from repro.parallel.pool import ParallelReport, WorkerPool
from repro.parallel.sharding import (
    WorkItem,
    as_paths,
    corpus_items,
    grid_items,
    plan_shards,
)

Documents = Sequence[Union[str, SLP]]

#: Shards per worker: >1 so the dynamic queue can actually rebalance when
#: one shard runs long (with exactly one shard per worker there is
#: nothing to steal).
SHARDS_PER_JOB = 4


def _default_jobs() -> int:
    return max(1, os.cpu_count() or 1)


def _execute(
    items: List[WorkItem],
    spanner_specs: List[SpannerSpec],
    task: TaskSpec,
    *,
    jobs: Optional[int],
    store: Optional[str],
    structural_keys: bool,
    kernel: Optional[str],
    prime: Union[bool, str],
    max_retries: int,
    timeout: Optional[float],
    shard_timeout: Optional[float],
    fault_tokens: Optional[Dict[int, str]],
) -> ParallelReport:
    if prime not in (True, False, "duplicates", "all"):
        raise ValueError(
            f"prime must be True, False, 'duplicates' or 'all', got {prime!r}"
        )
    jobs = _default_jobs() if jobs is None else jobs
    # trace_path hands the workers this process's default sink, so
    # engine-internal spans trace even when the task carries no context.
    config = EngineConfig(
        store_dir=store,
        structural_keys=structural_keys,
        kernel=kernel,
        trace_path=get_tracer().path,
    )
    plan = plan_shards(items, num_shards=jobs * SHARDS_PER_JOB)
    if fault_tokens:
        plan = plan.with_fault_tokens(fault_tokens)
    if store is not None and prime and task.task != "nonempty":
        from repro.store.priming import prime_store

        prime_store(
            store,
            [(spec, [it.path for it in items if it.spanner_id == sid])
             for sid, spec in enumerate(spanner_specs)],
            task=task.task,
            config=config,
            only_duplicated=(prime == "duplicates" or prime is True),
        )
    pool = WorkerPool(
        jobs,
        config,
        max_retries=max_retries,
        timeout=timeout,
        shard_timeout=shard_timeout,
    )
    return pool.run(plan, spanner_specs, task)


def parallel_corpus(
    spanner: Union[SpannerNFA, SpannerSpec],
    documents: Documents,
    *,
    task: str = "evaluate",
    limit: Optional[int] = None,
    jobs: Optional[int] = None,
    store: Optional[str] = None,
    structural_keys: bool = True,
    kernel: Optional[str] = None,
    prime: Union[bool, str] = True,
    max_retries: int = 2,
    timeout: Optional[float] = None,
    shard_timeout: Optional[float] = None,
    report: bool = False,
    _fault_tokens: Optional[Dict[int, str]] = None,
):
    """``[task(M, D) for D in documents]`` across ``jobs`` processes.

    The parallel counterpart of
    :func:`repro.engine.batch.evaluate_corpus`: results come back in
    ``documents`` order, bit-identical to the serial engine (the
    differential harness enforces this).  ``documents`` may mix grammar
    file paths and in-memory SLPs; SLPs are spilled to ``repro-slpb``
    temp files so workers only ever receive paths.

    ``store`` (a directory path) is the fleet's shared preprocessing
    store; ``prime`` controls the parent-side priming pass (``True`` /
    ``"duplicates"``: build once per duplicated digest before fan-out,
    ``"all"``: every missing digest, ``False``: skip).  ``report=True``
    returns the full :class:`~repro.parallel.pool.ParallelReport`
    (aggregated cache/store stats, retry and crash counts) instead of
    the bare result list.  ``shard_timeout`` arms the pool's hung-shard
    watchdog (see :class:`~repro.parallel.pool.WorkerPool`).
    ``_fault_tokens`` is test-only crash injection (see
    :func:`repro.parallel.worker.maybe_inject_fault`); richer fault
    schedules live in :mod:`repro.faults` (``REPRO_FAULTS``).

    >>> import tempfile
    >>> from repro.slp.construct import balanced_slp
    >>> from repro.spanner.regex import compile_spanner
    >>> spanner = compile_spanner(r".*(?P<x>ab).*", alphabet="ab")
    >>> docs = [balanced_slp(d) for d in ("abab", "bbbb", "aab")]
    >>> [len(r) for r in parallel_corpus(spanner, docs, jobs=2)]
    [2, 0, 1]
    """
    spec = SpannerSpec.of(spanner)
    # The caller's active span (if any) rides inside the task, so worker
    # shard spans in other processes parent to it and share its sink.
    task_spec = TaskSpec(
        task=task, limit=limit, trace=get_tracer().current_context()
    )
    with tempfile.TemporaryDirectory(prefix="repro-spill-") as spill_dir:
        paths = as_paths(documents, spill_dir)
        items = corpus_items(paths)
        result = _execute(
            items,
            [spec],
            task_spec,
            jobs=jobs,
            store=store,
            structural_keys=structural_keys,
            kernel=kernel,
            prime=prime,
            max_retries=max_retries,
            timeout=timeout,
            shard_timeout=shard_timeout,
            fault_tokens=_fault_tokens,
        )
    return result if report else result.results


def parallel_many(
    spanners: Sequence[Union[SpannerNFA, SpannerSpec]],
    document: Union[str, SLP],
    *,
    task: str = "evaluate",
    limit: Optional[int] = None,
    jobs: Optional[int] = None,
    store: Optional[str] = None,
    structural_keys: bool = True,
    kernel: Optional[str] = None,
    max_retries: int = 2,
    timeout: Optional[float] = None,
    shard_timeout: Optional[float] = None,
    report: bool = False,
):
    """``[task(M, D) for M in spanners]`` across ``jobs`` processes.

    The parallel counterpart of
    :func:`repro.engine.batch.evaluate_many`: one document, a shard plan
    over the spanners.  Every worker loads the document once and shares
    its balanced/padded forms across its shard through the engine's
    document cache.
    """
    specs = [SpannerSpec.of(sp) for sp in spanners]
    task_spec = TaskSpec(
        task=task, limit=limit, trace=get_tracer().current_context()
    )
    with tempfile.TemporaryDirectory(prefix="repro-spill-") as spill_dir:
        [path] = as_paths([document], spill_dir)
        items = [
            WorkItem(index=k, path=path, spanner_id=k)
            for k in range(len(specs))
        ]
        result = _execute(
            items,
            specs,
            task_spec,
            jobs=jobs,
            store=store,
            structural_keys=structural_keys,
            kernel=kernel,
            prime=False,  # distinct automata: nothing to deduplicate
            max_retries=max_retries,
            timeout=timeout,
            shard_timeout=shard_timeout,
            fault_tokens=None,
        )
    return result if report else result.results


def parallel_batch(
    spanners: Sequence[Union[SpannerNFA, SpannerSpec]],
    documents: Documents,
    *,
    task: str = "count",
    limit: Optional[int] = None,
    jobs: Optional[int] = None,
    store: Optional[str] = None,
    structural_keys: bool = True,
    kernel: Optional[str] = None,
    prime: Union[bool, str] = True,
    max_retries: int = 2,
    timeout: Optional[float] = None,
    shard_timeout: Optional[float] = None,
    report: bool = False,
):
    """The (documents × spanners) grid on a worker pool.

    Returns :class:`~repro.engine.batch.BatchItem` rows in the same
    row-major order as :func:`repro.engine.batch.run_batch` — documents
    outer, spanners inner — so ``repro batch --jobs N`` prints exactly
    what ``--jobs 1`` prints.  With ``report=True`` the return value is
    ``(items, ParallelReport)`` for fleet-level stats.
    """
    specs = [SpannerSpec.of(sp) for sp in spanners]
    task_spec = TaskSpec(
        task=task, limit=limit, trace=get_tracer().current_context()
    )
    n_spanners = len(specs)
    with tempfile.TemporaryDirectory(prefix="repro-spill-") as spill_dir:
        paths = as_paths(documents, spill_dir)
        items = grid_items(paths, n_spanners)
        result = _execute(
            items,
            specs,
            task_spec,
            jobs=jobs,
            store=store,
            structural_keys=structural_keys,
            kernel=kernel,
            prime=prime,
            max_retries=max_retries,
            timeout=timeout,
            shard_timeout=shard_timeout,
            fault_tokens=None,
        )
    items_out = batch_items_from_flat(result.results, n_spanners, task)
    return (items_out, result) if report else items_out


__all__ = ["parallel_batch", "parallel_corpus", "parallel_many"]
