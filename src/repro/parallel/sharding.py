"""Shard planning: partition a corpus into size-balanced units of work.

A *work item* is one (document file, spanner) cell; a *shard* is the unit
a worker claims from the queue.  Two scheduling ideas do the heavy
lifting:

* **Grammar size as the cost model.**  The paper's preprocessing runs in
  ``O(size(S) · q²)``, so ``size(S)`` — read straight from the
  ``repro-slpb`` header without decoding, falling back to file bytes for
  JSON — is a faithful per-document cost proxy.  Shards are balanced
  with the classic LPT greedy (heaviest item to the lightest shard),
  which is within 4/3 of optimal makespan.
* **Digest affinity.**  Items whose grammars share a structural digest
  are placed in the *same* shard: the worker's structurally-keyed engine
  then builds the Lemma 6.5 tables once and serves the duplicates from
  its in-memory cache — no cross-process coordination needed.  Duplicate
  items are costed at a small fraction of the first occurrence so the
  balancer sees their true (cache-hit) weight.

In-memory corpora are *spilled* to ``repro-slpb`` temp files first
(:func:`spill_corpus`): workers are always handed paths, never pickled
grammars, so the task messages stay tiny and the store's
content-addressing works identically for both entry points.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.slp import io as slp_io
from repro.slp.grammar import SLP

#: Relative cost of re-evaluating a document whose digest already occurred
#: earlier in the same shard (an in-memory preprocessing cache hit: the
#: spanner run over the derivation is still paid, the table build is not).
DUPLICATE_COST_FACTOR = 0.15

_SLPB_COUNTS = struct.Struct("<II")  # (n_terminals, n_rules) at offset 26


def grammar_cost(path: str) -> int:
    """``size(S)`` of the grammar at ``path``, without decoding it.

    For ``repro-slpb`` files the terminal/rule counts sit at fixed header
    offsets; for JSON the byte size is used, scaled to roughly match
    (one rule serialises to ~10 bytes of JSON).  Costs only steer shard
    balance, so an approximation is fine; a zero cost is bumped to 1 so
    every item has weight.
    """
    try:
        with open(path, "rb") as fh:
            head = fh.read(34)
    except OSError:
        return 1
    if head.startswith(slp_io.BINARY_MAGIC) and len(head) >= 34:
        n_terms, n_rules = _SLPB_COUNTS.unpack_from(head, 26)
        return max(1, n_terms + n_rules)
    try:
        return max(1, os.path.getsize(path) // 10)
    except OSError:
        return 1


@dataclass(frozen=True)
class WorkItem:
    """One (document, spanner) cell of the corpus grid.

    ``index`` is the item's position in the caller's original order —
    result collection places payloads back by this index, so shard
    execution order never leaks into the API's return order.
    """

    index: int
    path: str
    spanner_id: int = 0
    cost: float = 1.0
    digest: Optional[str] = None


@dataclass(frozen=True)
class Shard:
    """A batch of work items claimed as one unit by a worker.

    ``fault_token`` is test-only crash injection, kept as a per-shard
    shim over the general fault layer: the worker translates it into a
    :class:`repro.faults.FaultRule` at the ``worker.shard`` site (see
    :func:`repro.parallel.worker.maybe_inject_fault`).  It is ``None``
    in production; daemon-wide fault schedules are configured through
    ``REPRO_FAULTS`` instead (:mod:`repro.faults`).
    """

    shard_id: int
    items: Tuple[WorkItem, ...]
    fault_token: Optional[str] = None

    @property
    def cost(self) -> float:
        return sum(item.cost for item in self.items)


@dataclass
class ShardPlan:
    """The output of :func:`plan_shards`: balanced shards over a corpus."""

    shards: List[Shard]
    num_items: int

    @property
    def total_cost(self) -> float:
        return sum(shard.cost for shard in self.shards)

    @property
    def imbalance(self) -> float:
        """max/mean shard cost (1.0 = perfectly balanced)."""
        costs = [shard.cost for shard in self.shards if shard.items]
        if not costs:
            return 1.0
        mean = sum(costs) / len(costs)
        return max(costs) / mean if mean else 1.0

    def with_fault_tokens(self, tokens: Dict[int, str]) -> "ShardPlan":
        """A copy with crash-injection tokens on the given shards (tests)."""
        return ShardPlan(
            [
                replace(s, fault_token=tokens.get(s.shard_id, s.fault_token))
                for s in self.shards
            ],
            self.num_items,
        )


def plan_shards(
    items: Sequence[WorkItem],
    num_shards: int,
    *,
    digest_affinity: bool = True,
) -> ShardPlan:
    """Partition ``items`` into ``num_shards`` cost-balanced shards.

    With ``digest_affinity`` (the default), items sharing a grammar digest
    travel together and repeats are discounted by
    :data:`DUPLICATE_COST_FACTOR` — see the module docstring.  Groups are
    placed by LPT greedy; empty shards are dropped, so the plan may hold
    fewer shards than requested.
    """
    num_shards = max(1, num_shards)
    # Group items that should share a worker's in-memory caches.
    groups: List[List[WorkItem]]
    if digest_affinity:
        by_key: Dict[object, List[WorkItem]] = {}
        for item in items:
            # (digest, spanner) pairs share one preprocessing entry; an
            # unknown digest can never be deduplicated, so it stays alone.
            key = (
                (item.digest, item.spanner_id)
                if item.digest is not None
                else ("#unique", item.index)
            )
            by_key.setdefault(key, []).append(item)
        groups = [
            [
                replace(it, cost=it.cost * (1.0 if k == 0 else DUPLICATE_COST_FACTOR))
                for k, it in enumerate(group)
            ]
            for group in by_key.values()
        ]
    else:
        groups = [[item] for item in items]

    def group_cost(group: List[WorkItem]) -> float:
        return sum(item.cost for item in group)

    # LPT greedy: heaviest group onto the currently lightest shard.
    buckets: List[List[WorkItem]] = [[] for _ in range(num_shards)]
    loads = [0.0] * num_shards
    for group in sorted(groups, key=group_cost, reverse=True):
        lightest = min(range(num_shards), key=loads.__getitem__)
        buckets[lightest].extend(group)
        loads[lightest] += group_cost(group)
    shards = [
        Shard(shard_id, tuple(bucket))
        for shard_id, bucket in enumerate(b for b in buckets if b)
    ]
    return ShardPlan(shards, num_items=len(items))


def corpus_items(
    paths: Sequence[str],
    spanner_ids: Optional[Sequence[int]] = None,
) -> List[WorkItem]:
    """Work items for a corpus of grammar files, cost/digest annotated.

    ``spanner_ids`` assigns each path a spanner (default: spanner 0 for
    all — the ``parallel_corpus`` shape); item ``k`` gets index ``k``.
    """
    items = []
    for k, path in enumerate(paths):
        try:
            digest = slp_io.peek_digest(path)
        except (OSError, ValueError, ReproError):
            digest = None  # unreadable now; the worker will raise properly
        items.append(
            WorkItem(
                index=k,
                path=path,
                spanner_id=spanner_ids[k] if spanner_ids is not None else 0,
                cost=float(grammar_cost(path)),
                digest=digest,
            )
        )
    return items


def grid_items(
    paths: Sequence[str], n_spanners: int
) -> List[WorkItem]:
    """Work items for the (documents × spanners) grid, row-major.

    Item ``doc_index * n_spanners + spanner_id`` is document
    ``doc_index`` under spanner ``spanner_id`` — the one place the grid
    index convention lives (``parallel_batch`` and the service daemon
    both shard through here, so they can never disagree on result
    order).  Cost/digest annotations are read once per document and
    shared across its row.
    """
    items = []
    for doc_index, proto in enumerate(corpus_items(paths)):
        for spanner_id in range(n_spanners):
            items.append(
                WorkItem(
                    index=doc_index * n_spanners + spanner_id,
                    path=proto.path,
                    spanner_id=spanner_id,
                    cost=proto.cost,
                    digest=proto.digest,
                )
            )
    return items


def spill_corpus(
    slps: Iterable[SLP], directory: str, prefix: str = "doc"
) -> List[str]:
    """Write in-memory SLPs to ``repro-slpb`` files under ``directory``.

    The bridge from the in-memory API shape to the path-based worker
    protocol: returns the file paths in input order.
    """
    os.makedirs(directory, exist_ok=True)
    paths = []
    for k, slp in enumerate(slps):
        path = os.path.join(directory, f"{prefix}-{k:06d}.slpb")
        slp_io.save_binary(slp, path)
        paths.append(path)
    return paths


def as_paths(documents: Sequence, spill_dir: Optional[str]) -> List[str]:
    """Paths for a mixed path/``SLP`` corpus, spilling SLPs to ``spill_dir``.

    The one place the mixed API shape becomes the all-paths worker/daemon
    shape (both :mod:`repro.parallel.api` and the session's daemon
    backend route through here); order is preserved.
    """
    slps = [(k, doc) for k, doc in enumerate(documents) if isinstance(doc, SLP)]
    paths: List[Optional[str]] = [
        doc if not isinstance(doc, SLP) else None for doc in documents
    ]
    if slps:
        if spill_dir is None:
            raise ValueError("in-memory SLPs need a spill directory")
        for (k, _), path in zip(
            slps, spill_corpus([doc for _, doc in slps], spill_dir)
        ):
            paths[k] = path
    return paths  # type: ignore[return-value]


__all__ = [
    "DUPLICATE_COST_FACTOR",
    "Shard",
    "ShardPlan",
    "WorkItem",
    "as_paths",
    "corpus_items",
    "grammar_cost",
    "grid_items",
    "plan_shards",
    "spill_corpus",
]
