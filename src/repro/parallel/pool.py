"""The worker pool: dynamic shard dispatch with crash recovery.

The parent is the scheduler.  Every worker owns a private pair of pipes
— parent→worker for shard dispatch, worker→parent for
``ready``/``done``/``error``/``bye`` messages (see
:mod:`repro.parallel.worker`) — and the parent multiplexes over all
result pipes with :func:`multiprocessing.connection.wait`.  Work is
*pulled*: a shard is only sent to a worker when it reports idle, so a
slow shard never blocks the rest of the plan behind it — the
dynamic-queue equivalent of work stealing, with the parent as the
(cheap, message-only) steal target.

Why pipes and not one shared ``multiprocessing.Queue``: a queue
multiplexes all writers over one pipe behind a cross-process lock held
by each sender's feeder thread.  A worker that dies *hard* (``os._exit``,
segfault, OOM kill) in the window between writing its message and
releasing that lock — a real window on a busy single-core box — leaves
the lock held forever and wedges every surviving worker's next ``put``.
With one pipe per worker there is exactly one writer per channel, no
lock to leak, and a crashed worker can only truncate its *own* stream —
which the parent additionally uses as a crash signal (EOF).

Failure semantics, the part that makes this subsystem more than a
``Pool.map``:

* a worker that *raises* stays alive; its shard is re-queued and the
  worker rejoins the idle set (it may legitimately retry its own shard —
  transient errors — or a different one);
* a worker that *dies* is detected by EOF on its result pipe (with
  exit-code polling as a backstop); the shard it held is re-queued — to
  a surviving worker, or to a freshly spawned replacement when none
  survives (so crash recovery works even at ``jobs=1``);
* each shard has a retry budget (``max_retries``) and the fleet has a
  crash budget; exceeding either aborts the run with a
  :class:`ParallelExecutionError` carrying the last traceback seen, so a
  deterministic crash cannot loop forever.

Results are collected *by item index*, not arrival order: callers get
their corpus back in input order no matter how shards interleave.

Two lifetimes share this scheduler.  A plain :class:`WorkerPool` is
*per-call*: :meth:`WorkerPool.run` spawns the fleet, executes one plan,
and tears the fleet down again (gracefully on success — sentinel,
farewell stats — and *hard* on abnormal exit: ``KeyboardInterrupt`` or a
client error terminates every worker immediately instead of waiting for
goodbyes, so an interrupted run never leaks processes).  The service
daemon's :class:`~repro.service.fleet.PersistentFleet` subclasses the
pool with ``persistent = True``: workers are spawned once, survive
across :meth:`run` calls (their engine caches staying warm), and are
only released by :meth:`close`.  Pools are context managers — ``with
WorkerPool(...) as pool`` guarantees the fleet is gone on exit either
way.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from multiprocessing import connection
from typing import Dict, List, Optional, Sequence

from repro.engine.cache import CacheStats
from repro.engine.spec import EngineConfig, SpannerSpec, TaskSpec
from repro.errors import ReproError
from repro.obs.metrics import get_registry, merge_snapshots
from repro.store.prepstore import StoreStats

from repro.parallel.sharding import Shard, ShardPlan
from repro.parallel.worker import worker_main

#: Environment override for the multiprocessing start method
#: (``fork`` where available — cheapest — else ``spawn``).
START_METHOD_ENV = "REPRO_PARALLEL_START_METHOD"


def _debug(*parts) -> None:
    """Scheduler trace, enabled by ``REPRO_PARALLEL_DEBUG=1`` (stderr)."""
    if os.environ.get("REPRO_PARALLEL_DEBUG"):
        import sys

        print("[repro.parallel]", *parts, file=sys.stderr, flush=True)


class ParallelExecutionError(ReproError, RuntimeError):
    """A parallel run could not complete (retries exhausted / fleet lost)."""


def default_start_method() -> str:
    env = os.environ.get(START_METHOD_ENV)
    if env:
        return env
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def aggregate_cache_stats(
    per_worker: Sequence[Dict[str, CacheStats]]
) -> Dict[str, CacheStats]:
    """Sum per-worker engine cache stats layer-by-layer."""
    merged: Dict[str, CacheStats] = {}
    for stats in per_worker:
        for layer, s in stats.items():
            prev = merged.get(layer)
            if prev is None:
                merged[layer] = s
            else:
                merged[layer] = CacheStats(
                    hits=prev.hits + s.hits,
                    misses=prev.misses + s.misses,
                    evictions=prev.evictions + s.evictions,
                    size=prev.size + s.size,
                    maxsize=prev.maxsize + s.maxsize,
                    key_mode=s.key_mode,
                )
    return merged


def aggregate_store_stats(
    per_worker: Sequence[Optional[StoreStats]],
) -> Optional[StoreStats]:
    """Sum per-worker store counters (``None`` when no engine had a store)."""
    merged: Optional[StoreStats] = None
    for s in per_worker:
        if s is None:
            continue
        if merged is None:
            merged = StoreStats()
        merged.hits += s.hits
        merged.misses += s.misses
        merged.rejects += s.rejects
        merged.writes += s.writes
        merged.quarantined += s.quarantined
    return merged


@dataclass
class ParallelReport:
    """Everything a :class:`WorkerPool` run produced.

    ``results[k]`` is the payload of work item ``k`` in the caller's
    original order.  Stats are both kept per worker (diagnosis: is one
    worker cold?) and aggregated (headline hit rates for the whole
    fleet).
    """

    results: List[object]
    jobs: int
    shards: int
    retries: int = 0
    workers_crashed: int = 0
    watchdog_kills: int = 0
    worker_cache_stats: Dict[int, Dict[str, CacheStats]] = field(default_factory=dict)
    worker_store_stats: Dict[int, Optional[StoreStats]] = field(default_factory=dict)
    #: Latest cumulative registry snapshot per worker (see
    #: :func:`repro.obs.metrics.merge_snapshots` for the merge rules).
    worker_metrics: Dict[int, dict] = field(default_factory=dict)

    @property
    def cache_stats(self) -> Dict[str, CacheStats]:
        return aggregate_cache_stats(list(self.worker_cache_stats.values()))

    @property
    def store_stats(self) -> Optional[StoreStats]:
        return aggregate_store_stats(list(self.worker_store_stats.values()))

    @property
    def metrics(self) -> dict:
        """The fleet-wide merged metrics snapshot."""
        return merge_snapshots(list(self.worker_metrics.values()))


class _Worker:
    """Parent-side handle: process, its two pipe ends, and its assignment."""

    __slots__ = ("wid", "process", "task_conn", "result_conn", "assigned", "ready")

    def __init__(self, wid, process, task_conn, result_conn) -> None:
        self.wid = wid
        self.process = process
        self.task_conn = task_conn  # parent writes shards / the sentinel
        self.result_conn = result_conn  # parent reads worker messages
        self.assigned: Optional[Shard] = None  # the shard it is running
        self.ready = False  # said "ready" at least once

    @property
    def idle(self) -> bool:
        """Hydrated and holding no shard: eligible for a dispatch."""
        return self.ready and self.assigned is None

    def send(self, message) -> bool:
        """Put one message on the task pipe; ``False`` if the worker died
        between messages (the caller re-queues, the reaper cleans up)."""
        try:
            self.task_conn.send(message)
        except (OSError, ValueError):
            return False
        return True

    def close(self) -> None:
        for conn in (self.task_conn, self.result_conn):
            try:
                conn.close()
            except OSError:
                pass


class WorkerPool:
    """A fleet of engine-hydrating workers executing a :class:`ShardPlan`.

    Parameters
    ----------
    jobs:
        Number of worker processes.
    config:
        The :class:`EngineConfig` every worker hydrates from.  Share a
        ``store_dir`` to let workers (and later runs) reuse each other's
        preprocessing builds.
    max_retries:
        How many times one shard may fail (worker crash *or* in-worker
        exception) before the run aborts.
    timeout:
        Wall-clock cap for one :meth:`run` (safety net for CI; ``None``
        = no cap).
    shard_timeout:
        Hung-shard watchdog: the execution allowance, in seconds,
        granted to a *mean-cost* shard before the worker running it is
        killed and the shard retried (under the same ``max_retries``
        budget).  Costlier shards get proportionally longer; each
        failed attempt doubles the allowance, so a shard that is merely
        slow converges to completion instead of looping.  ``None`` (the
        default) disables the watchdog — only ``timeout`` then bounds a
        wedged worker.
    start_method:
        ``multiprocessing`` start method; default per
        :func:`default_start_method` / ``REPRO_PARALLEL_START_METHOD``.
    """

    #: Subclasses whose fleet outlives :meth:`run` (the service daemon's
    #: :class:`~repro.service.fleet.PersistentFleet`) set this ``True``.
    persistent = False

    def __init__(
        self,
        jobs: int,
        config: Optional[EngineConfig] = None,
        *,
        max_retries: int = 2,
        timeout: Optional[float] = None,
        shard_timeout: Optional[float] = None,
        start_method: Optional[str] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.config = config if config is not None else EngineConfig()
        self.max_retries = max_retries
        self.timeout = timeout
        self.shard_timeout = shard_timeout
        self.start_method = start_method or default_start_method()
        self._ctx = multiprocessing.get_context(self.start_method)
        self._workers: Dict[int, _Worker] = {}
        self._next_wid = 0

    # -- fleet plumbing (shared with the persistent service fleet) ------

    def _worker_target(self):
        """The worker process entry point (module-level: spawn-safe)."""
        return worker_main

    def _worker_args(self, spanners, task) -> tuple:
        """Extra ``_worker_target`` arguments after the pipe ends."""
        return (self.config, tuple(spanners), task)

    def _shard_message(self, shard: Shard, spanners, task):
        """What goes down the task pipe for one shard dispatch."""
        return shard

    def _spawn_worker(self, spanners, task) -> None:
        wid = self._next_wid
        self._next_wid += 1
        task_rx, task_tx = self._ctx.Pipe(duplex=False)
        result_rx, result_tx = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=self._worker_target(),
            args=(wid, task_rx, result_tx) + self._worker_args(spanners, task),
            daemon=True,
            name=f"repro-parallel-{wid}",
        )
        process.start()
        # The parent must not keep the worker-side pipe ends open, or
        # EOF (our crash signal) would never fire on the result pipe.
        task_rx.close()
        result_tx.close()
        self._workers[wid] = _Worker(wid, process, task_tx, result_rx)

    def _ensure_fleet(self) -> None:
        """Bring a persistent fleet (back) to its configured strength."""
        while len(self._workers) < self.jobs:
            self._spawn_worker((), None)

    def _reset_fleet(self) -> None:
        """Hard-replace every worker (after a failed persistent run).

        A failed run may leave workers mid-shard; their late ``done``
        messages would corrupt the next run's bookkeeping, so the whole
        fleet is terminated and respawned cold.
        """
        self.abort()
        self._ensure_fleet()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()

    # -- lifecycle ------------------------------------------------------

    def run(
        self,
        plan: ShardPlan,
        spanners: Sequence[SpannerSpec],
        task: TaskSpec,
    ) -> ParallelReport:
        """Execute ``plan``; block until every item has a result."""
        workers = self._workers
        if self.persistent:
            self._ensure_fleet()
            n_workers = len(workers)
        else:
            n_workers = min(self.jobs, max(1, len(plan.shards)))
            while len(workers) < n_workers:
                self._spawn_worker(spanners, task)

        # Every crash is attributable to either a shard failure (bounded
        # by the per-shard retry budget) or a hydration failure (bounded
        # by the fleet size per retry round); anything past this budget
        # is a systemic failure worth aborting on, not retrying through.
        crash_budget = n_workers + (self.max_retries + 1) * len(plan.shards)
        pending: List[Shard] = list(plan.shards)
        retries: Dict[int, int] = {}
        payloads: Dict[int, List] = {}  # shard_id -> [(index, result)]
        report = ParallelReport(
            results=[None] * plan.num_items, jobs=n_workers, shards=len(plan.shards)
        )
        last_error = ""
        deadline = None if self.timeout is None else time.monotonic() + self.timeout
        # Hung-shard watchdog state: when each in-flight shard was
        # dispatched, and which workers the watchdog already killed (so
        # their EOF reap is attributed, and a corpse is not re-killed).
        dispatched_at: Dict[int, float] = {}
        watchdog_killed: set = set()
        mean_cost = 1.0
        if plan.shards:
            mean_cost = max(1.0, plan.total_cost / len(plan.shards))

        def dispatch() -> None:
            for worker in list(workers.values()):
                if not pending:
                    return
                if worker.idle:
                    shard = pending.pop()
                    worker.assigned = shard
                    _debug("dispatch shard", shard.shard_id, "-> worker", worker.wid)
                    if not worker.send(self._shard_message(shard, spanners, task)):
                        # Died between messages; the reaper re-queues it.
                        worker.assigned = None
                        pending.append(shard)
                    else:
                        dispatched_at[worker.wid] = time.monotonic()

        def watchdog() -> None:
            """Kill workers whose shard is past its execution allowance.

            The kill makes the result pipe EOF, so the normal reap path
            re-queues the shard (charging its retry budget) and refills
            the fleet — a hang is handled exactly like a crash.
            """
            if self.shard_timeout is None:
                return
            now = time.monotonic()
            for worker in list(workers.values()):
                shard = worker.assigned
                started = dispatched_at.get(worker.wid)
                if shard is None or started is None:
                    continue
                if worker.wid in watchdog_killed:
                    continue
                scale = max(1.0, max(shard.cost, 1.0) / mean_cost)
                attempts = retries.get(shard.shard_id, 0)
                allowance = self.shard_timeout * scale * (2.0 ** attempts)
                if now - started <= allowance:
                    continue
                watchdog_killed.add(worker.wid)
                report.watchdog_kills += 1
                get_registry().counter("sched.watchdog_kills").inc()
                _debug(
                    "watchdog kill worker", worker.wid, "shard",
                    shard.shard_id, "after", f"{now - started:.1f}s",
                )
                try:
                    worker.process.kill()
                except OSError:
                    pass

        def fail_shard(shard: Shard, why: str) -> None:
            nonlocal last_error
            last_error = why or last_error
            count = retries.get(shard.shard_id, 0) + 1
            retries[shard.shard_id] = count
            report.retries += 1
            if count > self.max_retries:
                raise ParallelExecutionError(
                    f"shard {shard.shard_id} failed {count} times "
                    f"(max_retries={self.max_retries}); last failure:\n{why}"
                )
            pending.append(shard)

        def reap(worker: _Worker, why: str) -> None:
            """Remove a dead worker, re-queue its shard, refill the fleet."""
            del workers[worker.wid]
            dispatched_at.pop(worker.wid, None)
            watchdog_killed.discard(worker.wid)
            report.workers_crashed += 1
            _debug(
                "reap worker", worker.wid, "exitcode", worker.process.exitcode,
                "held shard",
                None if worker.assigned is None else worker.assigned.shard_id,
            )
            worker.close()
            if report.workers_crashed > crash_budget:
                raise ParallelExecutionError(
                    f"{report.workers_crashed} worker crashes exceed the "
                    f"fleet's crash budget ({crash_budget}); last failure:\n"
                    f"{why or last_error or '(no traceback captured)'}"
                )
            if worker.assigned is not None:
                shard, worker.assigned = worker.assigned, None
                fail_shard(shard, why)  # raises once its retries run out
            # Keep the fleet at strength while there is queued work: a
            # crash with retry budget left must be recoverable even at
            # jobs=1 (no survivors) — a replacement is spawned, it is not
            # only "surviving workers" that inherit the shard.  A
            # persistent fleet refills unconditionally: it also has to
            # serve the *next* job at full strength.
            refill = n_workers - len(workers)
            if not self.persistent:
                refill = min(len(pending), refill)
            for _ in range(refill):
                self._spawn_worker(spanners, task)

        def handle(worker: _Worker, message) -> None:
            nonlocal last_error
            kind = message[0]
            _debug("recv", kind, "from worker", worker.wid)
            if kind == "ready":
                worker.ready = True
            elif kind == "done":
                _, _, shard_id, payload, metrics = message
                if shard_id not in payloads:  # a retry may double-report
                    payloads[shard_id] = payload
                report.worker_metrics[worker.wid] = metrics  # cumulative: keep latest
                worker.assigned = None
                dispatched_at.pop(worker.wid, None)
            elif kind == "error":
                _, _, shard_id, trace = message
                dispatched_at.pop(worker.wid, None)
                if worker.assigned is not None:
                    shard, worker.assigned = worker.assigned, None
                    if shard.shard_id not in payloads:
                        fail_shard(shard, trace)
                elif shard_id is None:
                    # Hydration failed before "ready": remember why; the
                    # EOF reap (or the all-dead check) surfaces it.
                    last_error = trace

        try:
            while len(payloads) < len(plan.shards):
                if deadline is not None and time.monotonic() > deadline:
                    raise ParallelExecutionError(
                        f"parallel run exceeded its {self.timeout}s timeout "
                        f"({len(payloads)}/{len(plan.shards)} shards done)"
                    )
                dispatch()
                watchdog()
                conns = {w.result_conn: w for w in workers.values()}
                for conn in connection.wait(list(conns), timeout=0.1):
                    worker = conns[conn]
                    try:
                        message = conn.recv()
                    except (EOFError, OSError):
                        if worker.wid in watchdog_killed:
                            why = (
                                f"worker {worker.wid} was killed by the "
                                f"hung-shard watchdog: shard "
                                + (
                                    str(worker.assigned.shard_id)
                                    if worker.assigned is not None
                                    else "<none>"
                                )
                                + f" exceeded its execution allowance "
                                f"(shard_timeout={self.shard_timeout}s)"
                            )
                        else:
                            why = (
                                f"worker {worker.wid} died (exit code "
                                f"{worker.process.exitcode}) while running shard "
                                + (
                                    str(worker.assigned.shard_id)
                                    if worker.assigned is not None
                                    else "<none>"
                                )
                                + (
                                    f"; it reported:\n{last_error}"
                                    if last_error
                                    else ""
                                )
                            )
                        reap(worker, why)
                        continue
                    handle(worker, message)
                # Backstop for exotic deaths that leave the pipe open (a
                # wedged-but-alive child cannot be detected here; the
                # timeout covers it).
                for worker in list(workers.values()):
                    if worker.process.exitcode is not None and not worker.result_conn.poll():
                        reap(
                            worker,
                            f"worker {worker.wid} exited with code "
                            f"{worker.process.exitcode} without a farewell",
                        )
            for shard_payload in payloads.values():
                for index, result in shard_payload:
                    report.results[index] = result
        except Exception:  # repro-check: broad-except — teardown barrier, re-raised below
            # A failed run must not leak processes: per-call pools tear
            # the fleet down hard, a persistent fleet replaces it (some
            # workers may still be mid-shard; see _reset_fleet).
            if self.persistent:
                self._reset_fleet()
            else:
                self.abort()
            raise
        except BaseException:
            # KeyboardInterrupt / SystemExit: the user wants out *now* —
            # terminate every worker immediately, never wait the graceful
            # goodbye window (this is the Ctrl-C regression guard).
            self.abort()
            raise
        if not self.persistent:
            self.close(report)
        return report

    def close(self, report: Optional[ParallelReport] = None) -> None:
        """Gracefully release the fleet: sentinels, farewells, join.

        Each worker is sent the shutdown sentinel and given a bounded
        window to answer with its ``bye`` (whose per-worker stats are
        recorded on ``report`` when one is given); stragglers are then
        terminated.  Idempotent — closing an empty or already-closed
        pool is a no-op.
        """
        workers = self._workers
        alive = [w for w in workers.values() if w.process.exitcode is None]
        for worker in alive:
            worker.send(None)  # sentinel; a send to a dead worker is moot
        goodbye_deadline = time.monotonic() + 10.0
        waiting = {w.result_conn: w for w in alive}
        while waiting and time.monotonic() < goodbye_deadline:
            for conn in connection.wait(list(waiting), timeout=0.2):
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    del waiting[conn]
                    continue
                # Drain queued ready/done/error messages until the
                # farewell arrives: popping on the first message would
                # throw away the stats of any worker with backlog (e.g. a
                # replacement whose "ready" was never consumed).
                if message[0] == "bye":
                    _, wid, cache_stats, store_stats, metrics = message
                    if report is not None:
                        report.worker_cache_stats[wid] = cache_stats
                        report.worker_store_stats[wid] = store_stats
                        report.worker_metrics[wid] = metrics
                    del waiting[conn]
        for worker in workers.values():
            worker.process.join(timeout=5.0)
            if worker.process.exitcode is None:
                worker.process.terminate()
                worker.process.join(timeout=5.0)
            worker.close()
        workers.clear()

    def abort(self) -> None:
        """Hard-stop the fleet: terminate every worker, reap, close pipes.

        The abnormal-exit path (``KeyboardInterrupt``, client errors,
        fleet resets): no sentinels, no farewell stats, no waiting on
        worker cooperation.  Idempotent.
        """
        workers = self._workers
        for worker in workers.values():
            if worker.process.exitcode is None:
                worker.process.terminate()
        for worker in workers.values():
            worker.process.join(timeout=5.0)
            if worker.process.exitcode is None:  # ignored SIGTERM
                worker.process.kill()
                worker.process.join(timeout=5.0)
            worker.close()
        workers.clear()

    # -- external-scheduler surface -------------------------------------
    #
    # The service daemon's FleetScheduler owns a persistent fleet from
    # its own thread and needs the same three primitives run() uses
    # inline: spawn a replacement, drop a corpse, and multiplex over the
    # result pipes.  These are thin, thread-unsafe accessors — exactly
    # one thread may drive a pool at a time (run() here, or the
    # scheduler loop there), which is the same contract run() already
    # relies on.

    def spawn_worker(self) -> None:
        """Add one worker at the fleet's standing configuration.

        Only meaningful for persistent fleets, whose workers hydrate
        from ``self.config`` alone and take specs per shard message.
        """
        self._spawn_worker((), None)

    def remove_worker(self, wid: int) -> None:
        """Forget a (dead) worker and close the parent-side pipe ends."""
        worker = self._workers.pop(wid, None)
        if worker is not None:
            worker.close()

    def connection_map(self) -> Dict[object, _Worker]:
        """``result_conn -> worker`` for :func:`connection.wait` loops."""
        return {w.result_conn: w for w in self._workers.values()}

    def idle_workers(self) -> List[_Worker]:
        """Hydrated workers holding no shard, in wid order."""
        return [w for w in self._workers.values() if w.idle]

    def _worker_snapshot(self) -> List[_Worker]:
        # One atomic-in-CPython copy: the daemon answers ping on the
        # event loop while the job executor thread mutates the dict
        # (reap/respawn), so iterating self._workers directly could
        # raise "dictionary changed size during iteration".  The
        # snapshot may be a beat stale; these are diagnostics.
        return list(self._workers.values())

    @property
    def worker_pids(self) -> List[int]:
        """PIDs of the current fleet (diagnostics / persistence checks)."""
        return [w.process.pid for w in self._worker_snapshot()]

    def alive_workers(self) -> int:
        """How many fleet processes are currently running."""
        return sum(
            1 for w in self._worker_snapshot() if w.process.exitcode is None
        )


__all__ = [
    "ParallelExecutionError",
    "ParallelReport",
    "START_METHOD_ENV",
    "WorkerPool",
    "aggregate_cache_stats",
    "aggregate_store_stats",
    "default_start_method",
]
