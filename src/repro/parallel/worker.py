"""The worker process: hydrate an engine, drain shards, report results.

Each worker builds its *own* :class:`~repro.engine.engine.Engine` from a
picklable :class:`~repro.engine.spec.EngineConfig`.  With a shared store
directory the fleet cooperates through content addressing alone: the
first worker to need a (document digest, automaton digest) pair builds
the Lemma 6.5 tables and persists them; every later worker — in this run
or the next — restores them with the store's bulk word decode instead of
re-running the ``O(size(S) · q²)`` recurrence.

Message protocol (worker → parent, over the worker's private result
pipe — one writer per channel, so a crash can never wedge a sibling;
see the :mod:`repro.parallel.pool` docstring):

* ``("ready", wid)`` — hydration done, give me work;
* ``("done", wid, shard_id, [(item_index, payload), ...], metrics)`` — a
  shard's results, tagged with original item indices for ordered
  collection; ``metrics`` is the worker's *cumulative*
  :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`, so the parent
  keeps the latest per worker and merges across workers;
* ``("error", wid, shard_id, traceback_text)`` — the shard raised; the
  worker survives and asks for more work, the parent re-queues the shard
  (capped);
* ``("bye", wid, cache_stats, store_stats, metrics)`` — sentinel
  acknowledged; the per-worker stats ride home on the farewell message.

A worker that dies *without* a message (segfault, ``os._exit``, OOM
kill) is detected by the parent through EOF on this pipe (exit-code
polling as backstop); the shard it held is re-queued to a surviving
worker (see :class:`~repro.parallel.pool.WorkerPool`).
"""

from __future__ import annotations

import os
import time
import traceback
from typing import Optional, Sequence

from repro.engine.spec import EngineConfig, SpannerSpec, TaskSpec
from repro.faults import FaultRule, fault_point, inject
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer
from repro.slp import io as slp_io

from repro.parallel.sharding import Shard

#: The per-shard injection site of both worker loops: an armed
#: ``REPRO_FAULTS`` plan (inherited through the spawn environment) can
#: crash, hang, or fail a shard here, and the legacy ``fault_token``
#: shim below fires at the same site.
SHARD_FAULT_SITE = "worker.shard"


def maybe_inject_fault(token: Optional[str]) -> None:
    """Legacy per-shard fault tokens, now a shim over :mod:`repro.faults`.

    Two token forms survive for the scheduler/differential tests that
    carry faults per shard over the wire (``_shard_sleep`` /
    ``_fault_tokens``, gated by ``REPRO_SERVICE_TEST_FAULTS``):

    * ``"sleep:<seconds>"`` — a ``hang`` fault: stall this shard before
      running it (the deterministic slow-shard primitive);
    * ``"<path>:<n>"`` — a ``crash`` fault keyed by the file-backed
      attempt counter at ``<path>``: the process hard-exits
      (``os._exit``, no cleanup — exactly like a segfault) while at
      most ``n`` attempts have been made, so ``n`` larger than the
      pool's retry cap exercises the give-up path.

    New code should arm a ``REPRO_FAULTS`` plan instead — same kinds,
    same counters, addressable by site without plumbing tokens through
    the shard plan.  Production shards carry ``token=None`` and skip
    this entirely.
    """
    if token is None:
        return
    if token.startswith("sleep:"):
        rule = FaultRule(
            site=SHARD_FAULT_SITE,
            kind="hang",
            arg=float(token.partition(":")[2]),
        )
    else:
        path, _, bound = token.rpartition(":")
        rule = FaultRule(
            site=SHARD_FAULT_SITE, kind="crash", nth=int(bound), counter=path
        )
    inject(rule, SHARD_FAULT_SITE)


def run_shard(engine, resolved_spanners, task: TaskSpec, shard: Shard):
    """Evaluate every item of ``shard``, returning ``[(index, payload)]``.

    Repeated paths within a shard — ``parallel_many``'s one document
    under every spanner, exact-duplicate corpus files — are decoded
    once; reusing the *object* also lets identity-keyed engines share
    the prepared document across the shard.
    """
    payload = []
    loaded = {}  # path -> SLP, for the lifetime of this shard
    for item in shard.items:
        slp = loaded.get(item.path)
        if slp is None:
            slp = loaded[item.path] = slp_io.load_file(item.path)
        result = task.run(engine, resolved_spanners[item.spanner_id], slp)
        payload.append((item.index, result))
    return payload


def metrics_snapshot(engine):
    """This worker's registry snapshot, with engine cache stats folded in.

    Cache counters are *set* (not incremented) to the engine's cumulative
    values, so repeated snapshots stay cumulative per worker — the parent
    keeps only the latest snapshot per worker and sums across workers.
    """
    registry = get_registry()
    for layer, stats in engine.cache_stats().items():
        registry.counter(f"cache.{layer}.hits").value = stats.hits
        registry.counter(f"cache.{layer}.misses").value = stats.misses
        registry.counter(f"cache.{layer}.evictions").value = stats.evictions
        registry.gauge(f"cache.{layer}.size").set(stats.size)
    return registry.snapshot()


def _traced_shard(engine, resolved_spanners, task: TaskSpec, shard: Shard):
    """Run one shard under a ``worker.shard`` span parented to the
    request's :class:`~repro.obs.trace.TraceContext` (no-op untraced)."""
    registry = get_registry()
    started = time.monotonic()
    with get_tracer().span(
        "worker.shard",
        parent=task.trace,
        shard=shard.shard_id,
        pid=os.getpid(),
        task=task.task,
        items=len(shard.items),
    ):
        payload = run_shard(engine, resolved_spanners, task, shard)
    registry.counter("worker.shards_done").inc()
    registry.histogram("worker.shard_seconds").observe(time.monotonic() - started)
    return payload


def worker_main(
    worker_id: int,
    task_conn,
    result_conn,
    config: EngineConfig,
    spanner_specs: Sequence[SpannerSpec],
    task: TaskSpec,
) -> None:
    """Entry point of one worker process (module-level: spawn-safe).

    ``task_conn``/``result_conn`` are this worker's private pipe ends;
    the parent holds the opposite ends.
    """
    try:
        engine = config.build()
        # Resolve every spanner spec once: within this worker even an
        # identity-keyed engine shares prepared automata across items.
        resolved = tuple(spec.resolve() for spec in spanner_specs)
    except BaseException:
        # Hydration failed: report once so the parent can surface the
        # traceback instead of diagnosing a silent early exit.
        result_conn.send(("error", worker_id, None, traceback.format_exc()))
        return
    result_conn.send(("ready", worker_id))
    while True:
        try:
            shard = task_conn.recv()
        except (EOFError, OSError):
            return  # parent went away: nothing useful left to do
        if shard is None:
            result_conn.send(
                (
                    "bye",
                    worker_id,
                    engine.cache_stats(),
                    engine.store_stats(),
                    metrics_snapshot(engine),
                )
            )
            return
        try:
            maybe_inject_fault(shard.fault_token)
            fault_point(SHARD_FAULT_SITE)
            payload = _traced_shard(engine, resolved, task, shard)
        except Exception:  # repro-check: broad-except — worker fault barrier: any shard failure becomes an error message, the worker survives
            result_conn.send(
                ("error", worker_id, shard.shard_id, traceback.format_exc())
            )
            continue
        result_conn.send(
            ("done", worker_id, shard.shard_id, payload, metrics_snapshot(engine))
        )


#: Cap on the per-worker resolved-spanner cache of a *persistent* worker
#: (the daemon fleet serves arbitrarily many requests; compiled automata
#: are small, but the cache must not grow without bound forever).
MAX_RESOLVED_SPANNERS = 256


def _spec_cache_key(spec: SpannerSpec):
    """A value key for a spec: persistent workers receive every spec as a
    *fresh* unpickled object, so identity cannot deduplicate repeats."""
    if spec.nfa is not None:
        return ("nfa", spec.nfa.structural_digest())
    return ("pattern", spec.pattern, spec.alphabet)


def service_worker_main(
    worker_id: int,
    task_conn,
    result_conn,
    config: EngineConfig,
) -> None:
    """Entry point of one *persistent* service worker (daemon fleet).

    Same pipes, same message protocol, same engine hydration and the
    same :func:`run_shard` execution as :func:`worker_main` — which is
    what keeps daemon-backed results bit-identical to the per-call pool
    — but the fleet outlives any single request, so the spanners and
    task arrive *per dispatch*: a task message is ``(shard,
    spanner_specs, task_spec)`` instead of a bare shard, and the worker
    resolves (and caches, by content) spanner specs as they appear.
    The worker's engine persists across requests, so its document /
    spanner / preprocessing caches keep amortising work for the whole
    daemon lifetime.
    """
    try:
        engine = config.build()
    except BaseException:
        result_conn.send(("error", worker_id, None, traceback.format_exc()))
        return
    resolved = {}
    result_conn.send(("ready", worker_id))
    while True:
        try:
            message = task_conn.recv()
        except (EOFError, OSError):
            return  # parent went away: nothing useful left to do
        if message is None:
            result_conn.send(
                (
                    "bye",
                    worker_id,
                    engine.cache_stats(),
                    engine.store_stats(),
                    metrics_snapshot(engine),
                )
            )
            return
        shard, specs, task = message
        try:
            maybe_inject_fault(shard.fault_token)
            fault_point(SHARD_FAULT_SITE)
            spanners = []
            for spec in specs:
                key = _spec_cache_key(spec)
                nfa = resolved.get(key)
                if nfa is None:
                    if len(resolved) >= MAX_RESOLVED_SPANNERS:
                        resolved.clear()
                    nfa = resolved[key] = spec.resolve()
                spanners.append(nfa)
            payload = _traced_shard(engine, tuple(spanners), task, shard)
        except Exception:  # repro-check: broad-except — worker fault barrier: any shard failure becomes an error message, the worker survives
            result_conn.send(
                ("error", worker_id, shard.shard_id, traceback.format_exc())
            )
            continue
        result_conn.send(
            ("done", worker_id, shard.shard_id, payload, metrics_snapshot(engine))
        )


__all__ = [
    "maybe_inject_fault",
    "metrics_snapshot",
    "run_shard",
    "service_worker_main",
    "worker_main",
]
