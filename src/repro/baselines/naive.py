"""Brute-force reference semantics for tiny inputs.

``naive_evaluate`` literally follows Proposition 3.3: it enumerates every
candidate span-tuple over the automaton's variables and keeps those whose
marked word ``m(D, t)`` the automaton accepts.  Exponential in ``|X|`` and
quadratic-per-variable in ``|D|`` — only usable for documents of a few
dozen symbols — but its correctness is self-evident, which makes it the
ground truth for the whole test suite.
"""

from __future__ import annotations

import itertools
from typing import FrozenSet, Iterable, List, Optional

from repro.spanner.automaton import SpannerNFA
from repro.spanner.marked_words import m
from repro.spanner.markers import from_span_tuple
from repro.spanner.spans import Span, SpanTuple, all_spans


def candidate_tuples(variables: Iterable[str], length: int) -> Iterable[SpanTuple]:
    """Every (X, D)-tuple over ``variables`` for a document of ``length``."""
    variables = sorted(variables)
    options: List[List[Optional[Span]]] = [
        [None] + list(all_spans(length)) for _ in variables
    ]
    for combo in itertools.product(*options):
        yield SpanTuple(dict(zip(variables, combo)))


def naive_evaluate(automaton: SpannerNFA, document: str) -> FrozenSet[SpanTuple]:
    """``⟦M⟧(D)`` by exhaustive model checking of every candidate tuple.

    >>> from repro.spanner.regex import compile_spanner
    >>> spanner = compile_spanner(r".*(?P<x>a+)b", alphabet="ab")
    >>> sorted(str(t) for t in naive_evaluate(spanner, "aab"))
    ['SpanTuple(x=[1,3⟩)', 'SpanTuple(x=[2,3⟩)']
    """
    result = set()
    for tup in candidate_tuples(automaton.variables, len(document)):
        word = m(document, from_span_tuple(tup))
        if automaton.accepts(word):
            result.add(tup)
    return frozenset(result)


def naive_model_check(automaton: SpannerNFA, document: str, tup: SpanTuple) -> bool:
    """``t ∈ ⟦M⟧(D)`` by running the automaton on ``m(D, t)`` directly."""
    if not tup.is_valid_for(len(document)):
        return False
    return automaton.accepts(m(document, from_span_tuple(tup)))


def naive_is_nonempty(automaton: SpannerNFA, document: str) -> bool:
    """``⟦M⟧(D) ≠ ∅`` by exhaustive search (tiny inputs only)."""
    for tup in candidate_tuples(automaton.variables, len(document)):
        if naive_model_check(automaton, document, tup):
            return True
    return False
