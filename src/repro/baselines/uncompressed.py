"""Decompress-and-solve baseline: spanner evaluation on plain documents.

This is the prior-art pipeline the paper compares against (Sec. 1.2/1.3):
``O(d)`` preprocessing and constant-delay enumeration on the uncompressed
document, in the style of Florenzano et al. (PODS'18) and Amarilli et al.
(ICDT'19).  The data structure is the *product DAG* of the automaton and
the document-as-a-path:

* nodes ``(p, s)`` — after reading ``p`` document symbols the automaton is
  in state ``s``;
* edges ``(p, s) → (p+1, s')`` labelled with the marker-set symbol read
  just before document position ``p+1`` (or no label);
* trimmed to nodes that lie on some accepting path.

Enumeration walks the trimmed DAG depth-first; runs of label-free,
choice-free edges are skipped through memoised jump pointers, so the
per-result delay is governed by the number of markers plus branching
points — the practical analogue of the constant-delay guarantee.

Used both as the benchmark baseline (benches E1/E5/E6/E9) and as a second
reference implementation for correctness tests.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.errors import EvaluationError
from repro.spanner.automaton import SpannerNFA
from repro.spanner.marked_words import m
from repro.spanner.markers import Pairs, from_span_tuple, to_span_tuple
from repro.spanner.spans import SpanTuple
from repro.spanner.transform import END_SYMBOL, pad_spanner

Node = Tuple[int, int]  # (document position 0..n, automaton state)


class UncompressedEvaluator:
    """Evaluate a regular spanner over an explicit (uncompressed) document.

    Mirrors the interface of
    :class:`~repro.core.evaluator.CompressedSpannerEvaluator` so benchmarks
    can swap the two.

    >>> from repro.spanner.regex import compile_spanner
    >>> ev = UncompressedEvaluator(
    ...     compile_spanner(r".*(?P<x>a+)b.*", alphabet="ab"), "aabab")
    >>> sorted(str(t) for t in ev.evaluate())
    ['SpanTuple(x=[1,3⟩)', 'SpanTuple(x=[2,3⟩)', 'SpanTuple(x=[4,5⟩)']
    """

    def __init__(
        self,
        spanner: SpannerNFA,
        document: str,
        end_symbol: str = END_SYMBOL,
        determinize: bool = True,
    ) -> None:
        self.spanner = spanner
        self.document = document
        self.end_symbol = end_symbol
        base = spanner.eliminate_epsilon()
        if determinize and not base.is_deterministic:
            base = base.determinize().trim()
        self._base = base
        self._padded = pad_spanner(base, end_symbol)
        self._padded_doc = document + end_symbol
        self._graph: Optional[Dict[Node, List[Tuple[Node, Optional[frozenset]]]]] = None
        self._jump: Dict[Node, Node] = {}

    # -- O(d) preprocessing: the trimmed product DAG ------------------------

    def build(self) -> Dict[Node, List[Tuple[Node, Optional[frozenset]]]]:
        """Build (once) and return the trimmed product DAG."""
        if self._graph is not None:
            return self._graph
        automaton = self._padded
        doc = self._padded_doc
        n = len(doc)

        # forward pass: reachable (p, s) nodes layer by layer
        layers: List[Set[int]] = [set() for _ in range(n + 1)]
        layers[0].add(automaton.start)
        edges: Dict[Node, List[Tuple[Node, Optional[frozenset]]]] = {}
        marker_arcs: Dict[int, List[Tuple[frozenset, int]]] = {}
        for source, symbol, target in automaton.arcs():
            if isinstance(symbol, frozenset):
                marker_arcs.setdefault(source, []).append((symbol, target))
        for p in range(n):
            char = doc[p]
            for state in layers[p]:
                outgoing: List[Tuple[Node, Optional[frozenset]]] = []
                for target in automaton.successors(state, char):
                    outgoing.append(((p + 1, target), None))
                    layers[p + 1].add(target)
                for symbol, mid in marker_arcs.get(state, ()):
                    for target in automaton.successors(mid, char):
                        outgoing.append(((p + 1, target), symbol))
                        layers[p + 1].add(target)
                if outgoing:
                    edges[(p, state)] = outgoing

        # backward pass: keep only nodes that reach an accepting node
        useful: Set[Node] = {(n, f) for f in automaton.accepting if f in layers[n]}
        for p in range(n - 1, -1, -1):
            for state in layers[p]:
                node = (p, state)
                kept = [
                    (target, label)
                    for target, label in edges.get(node, ())
                    if target in useful
                ]
                if kept:
                    edges[node] = kept
                    useful.add(node)
                else:
                    edges.pop(node, None)
        self._graph = edges if (0, automaton.start) in useful else {}
        return self._graph

    # -- tasks ---------------------------------------------------------------

    def is_nonempty(self) -> bool:
        """``⟦M⟧(D) ≠ ∅`` by direct NFA simulation over the document, O(d·|M|)."""
        current = {self._base.start}
        for char in self.document:
            nxt: Set[int] = set()
            for state in current:
                nxt.update(self._base.successors(state, char))
                for symbol, targets in self._base._delta.get(state, {}).items():
                    if isinstance(symbol, frozenset):
                        for mid in targets:
                            nxt.update(self._base.successors(mid, char))
            # marker chains of length > 1 per position are handled by the
            # extended form (one set symbol per position), so one hop suffices
            current = nxt
            if not current:
                return False
        if current & self._base.accepting:
            return True
        # tail-spanning: a final marker set may precede acceptance
        for state in current:
            for symbol, targets in self._base._delta.get(state, {}).items():
                if isinstance(symbol, frozenset) and targets & self._base.accepting:
                    return True
        return False

    def model_check(self, tup: SpanTuple) -> bool:
        """``t ∈ ⟦M⟧(D)`` by running on the marked word, O((d + |X|)·|M|)."""
        if not tup.is_valid_for(len(self.document)):
            return False
        return self._base.accepts(m(self.document, from_span_tuple(tup)))

    def enumerate_raw(self) -> Iterator[Pairs]:
        """Stream marker sets by DFS over the trimmed product DAG."""
        graph = self.build()
        start = (0, self._padded.start)
        if start not in graph:
            return  # empty relation (trimming removed everything)
        n = len(self._padded_doc)
        # Iterative DFS carrying the collected (position, marker) pairs.
        stack: List[Tuple[Node, Pairs]] = [(start, ())]
        while stack:
            node, collected = stack.pop()
            node = self._skip(node)
            if node[0] == n:
                yield collected
                continue
            for target, label in reversed(graph.get(node, ())):
                if label is None:
                    stack.append((target, collected))
                else:
                    position = node[0] + 1
                    addition = tuple(sorted((position, marker) for marker in label))
                    stack.append((target, collected + addition))

    def _skip(self, node: Node) -> Node:
        """Follow unique, label-free edges (memoised chain compression)."""
        graph = self._graph
        seen: List[Node] = []
        while True:
            cached = self._jump.get(node)
            if cached is not None:
                node = cached
                break
            out = graph.get(node)
            if out is None or len(out) != 1 or out[0][1] is not None:
                break
            seen.append(node)
            node = out[0][0]
        for origin in seen:
            self._jump[origin] = node
        return node

    def enumerate(self) -> Iterator[SpanTuple]:
        """Stream ``⟦M⟧(D)`` as span-tuples (duplicate-free for DFAs)."""
        for pairs in self.enumerate_raw():
            yield to_span_tuple(pairs)

    def evaluate(self) -> FrozenSet[SpanTuple]:
        """The full relation as a set."""
        return frozenset(self.enumerate())

    def count(self) -> int:
        return sum(1 for _ in self.enumerate_raw())

    def __repr__(self) -> str:
        return (
            f"UncompressedEvaluator(doc_length={len(self.document)}, "
            f"spanner_states={self.spanner.num_states})"
        )
