"""Baselines: decompress-and-solve and brute-force reference semantics."""

from repro.baselines.naive import (
    candidate_tuples,
    naive_evaluate,
    naive_is_nonempty,
    naive_model_check,
)
from repro.baselines.uncompressed import UncompressedEvaluator

__all__ = [
    "UncompressedEvaluator",
    "candidate_tuples",
    "naive_evaluate",
    "naive_is_nonempty",
    "naive_model_check",
]
