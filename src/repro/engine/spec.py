"""Picklable specifications of engines, spanners and evaluation tasks.

The parallel execution subsystem (:mod:`repro.parallel`) ships work to
worker *processes*, so everything that crosses the process boundary must
be a small, picklable value — never a live engine or an open store.
Three specs cover the boundary:

* :class:`SpannerSpec` — a recipe for a spanner: either a compiled
  :class:`~repro.spanner.automaton.SpannerNFA` (pickled structurally) or
  a ``(pattern, alphabet)`` pair compiled on first use in the worker.
  Workers resolve each spec exactly once and reuse the resulting object,
  so even identity-keyed engine caches share work across a shard.
* :class:`TaskSpec` — which of the :data:`~repro.engine.batch.BATCH_TASKS`
  to run, plus the ``enumerate`` materialisation cap.  Validated at
  construction so a bad task name fails in the parent, not in a worker.
* :class:`EngineConfig` — the constructor arguments of an
  :class:`~repro.engine.engine.Engine` as plain values; the store is
  carried as a *directory path* and reopened by each worker, which is
  what lets a whole fleet share one content-addressed store.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.obs.trace import TraceContext
from repro.spanner.automaton import SpannerNFA
from repro.spanner.transform import END_SYMBOL

from repro.engine.batch import BATCH_TASKS, run_task
from repro.engine.engine import Engine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.slp.grammar import SLP


@dataclass(frozen=True)
class SpannerSpec:
    """A picklable recipe for one spanner.

    Exactly one source must be provided: an already-compiled ``nfa``
    (shipped by structure; digests survive the round-trip) or a
    ``pattern``/``alphabet`` pair compiled lazily by :meth:`resolve`.
    """

    pattern: Optional[str] = None
    alphabet: Optional[str] = None
    nfa: Optional[SpannerNFA] = None

    def __post_init__(self) -> None:
        if (self.nfa is None) == (self.pattern is None):
            raise ValueError("SpannerSpec needs exactly one of nfa or pattern")
        if self.nfa is None and self.alphabet is None:
            raise ValueError("SpannerSpec with a pattern needs an alphabet")

    @classmethod
    def of(cls, spanner: object) -> "SpannerSpec":
        """Coerce a ``SpannerNFA`` or an existing spec into a spec."""
        if isinstance(spanner, SpannerSpec):
            return spanner
        if isinstance(spanner, SpannerNFA):
            return cls(nfa=spanner)
        raise TypeError(
            f"expected a SpannerNFA or SpannerSpec, got {type(spanner).__name__}"
        )

    def resolve(self) -> SpannerNFA:
        """The compiled spanner (compiling ``pattern`` if necessary)."""
        if self.nfa is not None:
            return self.nfa
        from repro.spanner.regex import compile_spanner

        assert self.pattern is not None  # __post_init__ invariant
        return compile_spanner(self.pattern, alphabet=self.alphabet)


@dataclass(frozen=True)
class TaskSpec:
    """One evaluation task, validated against :data:`BATCH_TASKS`."""

    task: str = "evaluate"
    limit: Optional[int] = None  # enumerate only: max tuples materialised
    #: Optional tracing parent: worker-side spans (shard runs, store
    #: restores, kernel builds) attach under this context, which is how
    #: a client's root span reaches across the process boundary.
    trace: Optional[TraceContext] = None

    def __post_init__(self) -> None:
        if self.task not in BATCH_TASKS:
            raise ValueError(
                f"unknown batch task {self.task!r}; expected one of {BATCH_TASKS}"
            )

    def run(self, engine: Engine, spanner: SpannerNFA, slp: "SLP") -> object:
        """Execute the task on one (spanner, document) pair."""
        return run_task(engine, self.task, spanner, slp, self.limit)


@dataclass(frozen=True)
class EngineConfig:
    """Constructor arguments of an :class:`Engine`, as picklable values.

    ``store_dir`` (a path, not a live store) is reopened per worker;
    ``structural_keys`` defaults to ``True`` because cross-process sharing
    only works through content digests — two workers never share object
    identities.  ``kernel`` is the bit-plane backend *name*
    (``None``/``"auto"``/``"python"``/``"numpy"``), never a live kernel
    object, so every worker re-resolves it against its own environment —
    a fleet whose workers disagree on numpy availability still agrees on
    results (backends are bit-identical by contract).
    """

    store_dir: Optional[str] = None
    structural_keys: bool = True
    balance: bool = True
    end_symbol: str = END_SYMBOL
    max_documents: int = 64
    max_spanners: int = 64
    max_preprocessings: int = 128
    kernel: Optional[str] = None
    #: Optional JSONL trace sink.  Carried as a *path* (like
    #: ``store_dir``) so every worker process that builds an engine from
    #: this config points its process-global tracer at the same file.
    trace_path: Optional[str] = None

    def build(self) -> Engine:
        """A fresh engine (with its own store handle) from this config."""
        if self.trace_path is not None:
            from repro.obs.trace import get_tracer

            get_tracer().configure(self.trace_path)
        store = None
        if self.store_dir is not None:
            from repro.store import PreprocessingStore

            store = PreprocessingStore(self.store_dir)
        return Engine(
            balance=self.balance,
            end_symbol=self.end_symbol,
            max_documents=self.max_documents,
            max_spanners=self.max_spanners,
            max_preprocessings=self.max_preprocessings,
            structural_keys=self.structural_keys,
            store=store,
            kernel=self.kernel,
        )


__all__ = ["EngineConfig", "SpannerSpec", "TaskSpec"]
