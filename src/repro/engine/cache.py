"""LRU caches for the batch evaluation engine.

Two layers:

* :class:`LRUCache` — a plain ordered-dict LRU with hit/miss/eviction
  counters, used by :class:`~repro.engine.engine.Engine` for every shared
  artifact (balanced/padded SLPs, padded automata, counting tables);
* :class:`PreprocessingCache` — an LRU of Lemma 6.5
  :class:`~repro.core.matrices.Preprocessing` tables for (SLP, automaton)
  pairs.

The caches themselves are key-agnostic; the engine chooses between two
key modes (reported per layer via :attr:`CacheStats.key_mode`):

* **identity** (the default) — keys derived from ``id()`` of the source
  objects.  Two structurally equal SLP objects are different cache
  entries; callers that want sharing reuse the SLP object (the CLI and
  :mod:`repro.engine.batch` do).  Keying by ``id()`` is safe because
  every identity-keyed entry pins strong references to its key objects,
  so an id cannot be recycled while its entry is alive.
* **structural** (``Engine(structural_keys=True)``) — keys derived from
  :meth:`~repro.slp.grammar.SLP.structural_digest` /
  :meth:`~repro.spanner.automaton.SpannerNFA.structural_digest`.  Equal
  grammars loaded twice (e.g. the same document re-read from disk) share
  one entry.  The digest is computed once per object and cached on it, so
  after the first lookup a structural key costs the same dict read as an
  identity key; no pinning is needed because digests are never recycled.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Hashable,
    List,
    Optional,
    Tuple,
    TypeVar,
    cast,
)

from repro.core.matrices import Preprocessing
from repro.slp.grammar import SLP
from repro.spanner.automaton import SpannerNFA

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.counting import CountingTables

V = TypeVar("V")


@dataclass(frozen=True)
class CacheStats:
    """Counters of one :class:`LRUCache` (a snapshot, not a live view).

    ``key_mode`` names how the owning layer derives its keys:
    ``"identity"`` (object ids) or ``"structural"`` (content digests).
    """

    hits: int
    misses: int
    evictions: int
    size: int
    maxsize: int
    key_mode: str = "identity"

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LRUCache:
    """Least-recently-used cache with instrumentation.

    ``maxsize <= 0`` disables caching entirely (every lookup misses and
    nothing is stored), which keeps the engine usable in constant memory.
    """

    __slots__ = ("maxsize", "_data", "hits", "misses", "evictions", "on_evict", "key_mode")

    def __init__(
        self,
        maxsize: int,
        on_evict: Optional[Callable[[object], None]] = None,
        key_mode: str = "identity",
    ) -> None:
        self.maxsize = maxsize
        self._data: "OrderedDict[Hashable, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.on_evict = on_evict
        self.key_mode = key_mode

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def get_or_build(self, key: Hashable, build: Callable[[], V]) -> V:
        """The cached value for ``key``, building (and storing) it on a miss."""
        if key in self._data:
            self.hits += 1
            self._data.move_to_end(key)
            return self._data[key]  # type: ignore[return-value]
        self.misses += 1
        value = build()
        self.put(key, value)
        return value

    def get(self, key: Hashable) -> Optional[object]:
        """The cached value or ``None`` (counts as hit/miss)."""
        if key in self._data:
            self.hits += 1
            self._data.move_to_end(key)
            return self._data[key]
        self.misses += 1
        return None

    def peek(self, key: Hashable, record_hit: bool = True) -> Optional[object]:
        """The cached value or ``None`` (a miss is never counted).

        For probing alternative keys before deciding to build: only the
        eventual build should record the miss.  ``record_hit=False`` also
        suppresses the hit count and the MRU promotion — use it to inspect
        an entry that may turn out to be unusable.
        """
        if key in self._data:
            if record_hit:
                self.hits += 1
                self._data.move_to_end(key)
            return self._data[key]
        return None

    def put(self, key: Hashable, value: object) -> None:
        if self.maxsize <= 0:
            return
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        while len(self._data) > self.maxsize:
            _, evicted = self._data.popitem(last=False)
            self.evictions += 1
            if self.on_evict is not None:
                self.on_evict(evicted)

    def clear(self) -> None:
        """Drop every entry, counting and notifying each like LRU pressure."""
        self.evictions += len(self._data)
        if self.on_evict is not None:
            for value in self._data.values():
                self.on_evict(value)
        self._data.clear()

    def values(self) -> List[object]:
        """The cached values, least-recently-used first (no stat counting)."""
        return list(self._data.values())

    @property
    def stats(self) -> CacheStats:
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            size=len(self._data),
            maxsize=self.maxsize,
            key_mode=self.key_mode,
        )


class PreprocessingEntry:
    """One cached pair: the Lemma 6.5 tables plus derived structures.

    ``counting`` is filled lazily by the engine (a
    :class:`~repro.core.counting.CountingTables`); keeping it *on the
    entry* means it is evicted together with its preprocessing, so the
    cache's ``maxsize`` really bounds the number of live table sets.
    ``pinned`` holds the key objects of identity-keyed lookups alive so
    their ids cannot be recycled while the entry is cached.
    """

    __slots__ = ("prep", "counting", "pinned")

    def __init__(
        self, prep: Preprocessing, pinned: Tuple[object, ...] = ()
    ) -> None:
        self.prep = prep
        self.counting: Optional["CountingTables"] = None  # built on demand
        self.pinned = pinned


class PreprocessingCache:
    """LRU of :class:`Preprocessing` tables per (SLP, automaton) pair.

    Inputs must already be padded/ε-free, exactly as for
    :class:`Preprocessing` itself; this class only adds the reuse layer.
    The key mode (identity or structural) is the caller's choice — see
    the module docstring — and is reported in :attr:`stats`.
    """

    __slots__ = ("_lru",)

    def __init__(
        self,
        maxsize: int = 128,
        on_evict: Optional[Callable[["PreprocessingEntry"], None]] = None,
        key_mode: str = "identity",
    ) -> None:
        self._lru = LRUCache(maxsize, on_evict=on_evict, key_mode=key_mode)

    def entry(self, slp: SLP, automaton: SpannerNFA) -> PreprocessingEntry:
        """The (possibly cached) entry for the pair, with its derived slots."""
        key = (id(slp), id(automaton))
        return self._lru.get_or_build(
            key, lambda: PreprocessingEntry(Preprocessing(slp, automaton))
        )

    def entry_keyed(
        self,
        key: Tuple[object, ...],
        pinned: Tuple[object, ...],
        build: Callable[[], Preprocessing],
    ) -> PreprocessingEntry:
        """An entry under an explicit key, building the tables on a miss.

        For callers (like the engine) whose cache identity is *source*
        objects rather than the padded inputs the tables are built from.
        With identity keys, ``key`` is derived from ``id()`` of the
        ``pinned`` objects, which the entry keeps alive for the key's
        lifetime; with structural keys, pass ``pinned=()`` — digests are
        never recycled, so nothing needs pinning.
        """
        return self._lru.get_or_build(
            key, lambda: PreprocessingEntry(build(), pinned)
        )

    def cached(
        self, key: Tuple[object, ...], record_hit: bool = True
    ) -> Optional[PreprocessingEntry]:
        """The entry under ``key`` if present, else ``None`` (miss uncounted).

        ``record_hit=False`` inspects without counting the hit or promoting
        the entry to most-recently-used.
        """
        return cast(
            Optional[PreprocessingEntry],
            self._lru.peek(key, record_hit=record_hit),
        )

    def get(self, slp: SLP, automaton: SpannerNFA) -> Preprocessing:
        """The (possibly cached) Lemma 6.5 tables for the pair."""
        return self.entry(slp, automaton).prep

    def __len__(self) -> int:
        return len(self._lru)

    def entries(self) -> List[PreprocessingEntry]:
        """The live :class:`PreprocessingEntry` objects (no stat counting)."""
        return cast(List[PreprocessingEntry], self._lru.values())

    def clear(self) -> None:
        self._lru.clear()

    @property
    def stats(self) -> CacheStats:
        return self._lru.stats
