"""Batch evaluation engine: cross-query work sharing over the paper's tasks.

Where :class:`~repro.core.evaluator.CompressedSpannerEvaluator` serves one
(spanner, document) pair, :class:`~repro.engine.engine.Engine` serves many:
it keeps LRU caches of every shared artifact (balanced/padded SLPs,
prepared automata, Lemma 6.5 preprocessing tables, counting tables) so that
batches — many spanners over one document, one spanner over a corpus, or
repeated queries over hot pairs — skip the dominant rebuild costs.

Typical use::

    from repro.engine import Engine

    engine = Engine()
    counts = engine.count_many(spanners, slp)       # document shared
    results = engine.evaluate_corpus(spanner, slps) # automaton shared
    engine.cache_stats()["preprocessings"].hit_rate
"""

from repro.engine.batch import (
    BATCH_TASKS,
    PRINTABLE_BATCH_TASKS,
    BatchItem,
    evaluate_corpus,
    evaluate_many,
    run_batch,
    run_task,
)
from repro.engine.cache import (
    CacheStats,
    LRUCache,
    PreprocessingCache,
    PreprocessingEntry,
)
from repro.engine.engine import Engine
from repro.engine.spec import EngineConfig, SpannerSpec, TaskSpec

__all__ = [
    "BATCH_TASKS",
    "PRINTABLE_BATCH_TASKS",
    "BatchItem",
    "CacheStats",
    "Engine",
    "EngineConfig",
    "LRUCache",
    "PreprocessingCache",
    "PreprocessingEntry",
    "SpannerSpec",
    "TaskSpec",
    "evaluate_corpus",
    "evaluate_many",
    "run_batch",
    "run_task",
]
