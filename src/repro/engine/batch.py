"""Module-level batch helpers over a (possibly shared) :class:`Engine`.

These are the one-call entry points for the two batch shapes of the
ROADMAP: many spanners over one document, and one spanner over a corpus of
documents.  Each accepts an optional ``engine`` so repeated batches can
keep sharing caches; without one, a fresh engine lives for the single call
(which still shares work *within* the batch).
"""

from __future__ import annotations

import itertools
from contextlib import closing
from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Sequence

from repro.slp.grammar import SLP
from repro.spanner.automaton import SpannerNFA
from repro.spanner.spans import SpanTuple

from repro.engine.engine import Engine

#: Tasks understood by :func:`run_batch`.  The CLI ``batch`` subcommand
#: offers the printable subset (``enumerate``/``count``/``nonempty``);
#: ``evaluate`` returns the full relation as a frozenset and is library-only.
BATCH_TASKS = ("evaluate", "enumerate", "count", "nonempty")

#: The subset of :data:`BATCH_TASKS` the CLI exposes.  Derived (not
#: re-listed) so the two can never drift apart: ``evaluate`` returns a
#: frozenset of tuples with no printable form, the rest print naturally.
PRINTABLE_BATCH_TASKS = tuple(t for t in BATCH_TASKS if t != "evaluate")


def run_task(
    engine: Engine,
    task: str,
    spanner: SpannerNFA,
    slp: SLP,
    limit: Optional[int] = None,
) -> object:
    """Run one :data:`BATCH_TASKS` member on one (spanner, document) pair.

    The single dispatch point shared by :func:`run_batch` and the parallel
    workers (:mod:`repro.parallel`), so serial and sharded execution cannot
    diverge in task semantics.  An unknown ``task`` raises ``ValueError``
    — library callers get the same validation the CLI's argparse choices
    provide.
    """
    if task not in BATCH_TASKS:
        raise ValueError(f"unknown batch task {task!r}; expected one of {BATCH_TASKS}")
    if task == "evaluate":
        return engine.evaluate(spanner, slp)
    if task == "enumerate":
        cap = limit if limit is None else max(limit, 0)
        # closing() restores the enumeration's recursion limit promptly
        # even if materialising a tuple raises.
        with closing(engine.enumerate(spanner, slp)) as stream:
            return list(itertools.islice(stream, cap))
    if task == "count":
        return engine.count(spanner, slp)
    return engine.is_nonempty(spanner, slp)  # nonempty


def evaluate_many(
    spanners: Iterable[SpannerNFA],
    slp: SLP,
    engine: Optional[Engine] = None,
) -> List[FrozenSet[SpanTuple]]:
    """``[⟦M⟧(D) for M in spanners]``, padding/balancing ``D`` only once.

    >>> from repro.slp.construct import balanced_slp
    >>> from repro.spanner.regex import compile_spanner
    >>> spanners = [compile_spanner(p, alphabet="ab")
    ...             for p in (r".*(?P<x>ab).*", r".*(?P<x>a+)b.*")]
    >>> [len(r) for r in evaluate_many(spanners, balanced_slp("aabab"))]
    [2, 3]
    """
    return (engine or Engine()).evaluate_many(spanners, slp)


def evaluate_corpus(
    spanner: SpannerNFA,
    slps: Iterable[SLP],
    engine: Optional[Engine] = None,
) -> List[FrozenSet[SpanTuple]]:
    """``[⟦M⟧(D) for D in slps]``, preparing the automaton only once.

    >>> from repro.slp.construct import balanced_slp
    >>> from repro.spanner.regex import compile_spanner
    >>> spanner = compile_spanner(r".*(?P<x>ab).*", alphabet="ab")
    >>> docs = [balanced_slp(d) for d in ("abab", "bbbb", "aab")]
    >>> [len(r) for r in evaluate_corpus(spanner, docs)]
    [2, 0, 1]
    """
    return (engine or Engine()).evaluate_corpus(spanner, slps)


@dataclass(frozen=True)
class BatchItem:
    """One (document, spanner) cell of a batch grid."""

    document_index: int
    spanner_index: int
    task: str
    result: object  # task-dependent: frozenset / list / int / bool


def batch_items_from_flat(
    results: Sequence[object], n_spanners: int, task: str
) -> List[BatchItem]:
    """Rebuild :class:`BatchItem` rows from a flat row-major result list.

    The inverse of the grid's ``doc_index * n_spanners + spanner_id``
    index convention (see
    :func:`repro.parallel.sharding.grid_items`); shared by
    ``parallel_batch`` and ``Session.batch`` so the reconstruction can
    never drift from the sharding.
    """
    return [
        BatchItem(index // n_spanners, index % n_spanners, task, payload)
        for index, payload in enumerate(results)
    ]


def run_batch(
    spanners: Sequence[SpannerNFA],
    slps: Sequence[SLP],
    task: str = "count",
    limit: Optional[int] = None,
    engine: Optional[Engine] = None,
) -> List[BatchItem]:
    """Run ``task`` for every (document, spanner) pair of the grid.

    ``task`` is one of :data:`BATCH_TASKS`; ``limit`` caps the number of
    tuples materialised per pair for ``enumerate`` (``None`` = all).
    Results come back row-major (documents outer, spanners inner), matching
    the CLI batch output order.
    """
    if task not in BATCH_TASKS:
        raise ValueError(f"unknown batch task {task!r}; expected one of {BATCH_TASKS}")
    eng = engine or Engine()
    items: List[BatchItem] = []
    for doc_index, slp in enumerate(slps):
        for span_index, spanner in enumerate(spanners):
            result = run_task(eng, task, spanner, slp, limit)
            items.append(BatchItem(doc_index, span_index, task, result))
    return items
