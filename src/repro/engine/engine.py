"""The batch evaluation engine: one facade, shared work across queries.

A :class:`CompressedSpannerEvaluator` rebuilds every shared artifact — the
balanced/padded SLP, the ε-eliminated/determinized/padded automaton and the
Lemma 6.5 :class:`~repro.core.matrices.Preprocessing` tables — per
(spanner, document) pair.  :class:`Engine` caches each artifact in its own
LRU, so that

* ``evaluate_many(spanners, slp)`` pads and balances the document once and
  reuses it across all spanners,
* ``evaluate_corpus(spanner, slps)`` ε-eliminates/determinizes/pads the
  automaton once and reuses it across all documents,
* repeating *the same* (spanner, document) pair hits the preprocessing
  cache and skips the dominant ``O(size(S) · q²)`` table build entirely.

Caches are keyed by object identity by default (see
:mod:`repro.engine.cache`): reuse the same ``SLP`` / ``SpannerNFA``
objects to share work.  ``Engine(structural_keys=True)`` switches every
layer to content-digest keys, so structurally equal grammars loaded twice
(e.g. the same document re-read from disk) share one entry.  With
``Engine(store=PreprocessingStore(dir))`` a cache miss additionally
consults the on-disk store before building, and writes freshly built
tables back — warm starts survive process restarts.  All four paper tasks
plus the counting/ranked-access extensions are exposed with the same
semantics as the single-pair evaluator.
"""

from __future__ import annotations

import time
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

from repro.slp.grammar import SLP
from repro.spanner.automaton import SpannerNFA
from repro.spanner.markers import Pairs, from_span_tuple, to_span_tuple
from repro.spanner.spans import SpanTuple
from repro.spanner.transform import END_SYMBOL

from repro.core.computation import compute_marker_sets
from repro.core.counting import CountingTables, RankedAccess
from repro.core.enumeration import enumerate_marker_sets
from repro.core.kernels import Kernel, resolve_kernel
from repro.core.matrices import Preprocessing
from repro.core.membership import slp_in_language
from repro.core.model_checking import splice_markers
from repro.core.prepared import PreparedDocument, PreparedSpanner

from repro.obs.metrics import TIME_BUCKETS, get_registry
from repro.obs.trace import get_tracer

from repro.engine.cache import (
    CacheStats,
    LRUCache,
    PreprocessingCache,
    PreprocessingEntry,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (store -> core -> slp)
    from repro.store.prepstore import PreprocessingStore, StoreStats

#: One (variables, start, end) -> count table as persisted by the store.
_Counts = Dict[Tuple[object, int, int], int]


class Engine:
    """Batch spanner evaluation with cross-query work sharing.

    Parameters
    ----------
    balance:
        Rebalance documents to depth ``O(log d)`` on first use (same
        default as :class:`CompressedSpannerEvaluator`).
    end_symbol:
        The padding sentinel shared by all cached artifacts.
    max_documents / max_spanners / max_preprocessings:
        LRU capacities of the three cache layers.  A preprocessing entry is
        the big one (``O(size(S) · q²)`` words), so its capacity bounds the
        engine's memory footprint.
    structural_keys:
        Key every cache layer by content digest instead of object
        identity, so structurally equal grammars/automata loaded twice
        share one entry.  Costs one ``O(size)`` hash per *object* (cached
        on it), not per lookup.
    store:
        An optional :class:`~repro.store.prepstore.PreprocessingStore`.
        Cache misses consult it before building, and freshly built tables
        (plus counting tables, once built) are written back, so warm
        starts survive process restarts.  Works in both key modes — the
        store is always content-addressed.
    kernel:
        The bit-plane backend for every preprocessing this engine builds
        or restores (:mod:`repro.core.kernels`): ``None``/``"auto"``
        auto-detects (numpy when available), ``"python"``/``"numpy"``
        select explicitly, and a :class:`~repro.core.kernels.Kernel`
        instance is used as-is.  Backends are bit-identical; this is a
        performance choice only.

    >>> from repro.slp.construct import balanced_slp
    >>> from repro.spanner.regex import compile_spanner
    >>> engine = Engine()
    >>> slp = balanced_slp("aabab")
    >>> spanner = compile_spanner(r".*(?P<x>a+)b.*", alphabet="ab")
    >>> engine.count(spanner, slp)
    3
    >>> sorted(str(t) for t in engine.evaluate(spanner, slp))
    ['SpanTuple(x=[1,3⟩)', 'SpanTuple(x=[2,3⟩)', 'SpanTuple(x=[4,5⟩)']
    """

    def __init__(
        self,
        *,
        balance: bool = True,
        end_symbol: str = END_SYMBOL,
        max_documents: int = 64,
        max_spanners: int = 64,
        max_preprocessings: int = 128,
        structural_keys: bool = False,
        store: "Optional[PreprocessingStore]" = None,
        kernel: Union[str, Kernel, None] = None,
    ) -> None:
        self.balance = balance
        self.end_symbol = end_symbol
        self.structural_keys = structural_keys
        self.store = store
        self.kernel = resolve_kernel(kernel)
        key_mode = "structural" if structural_keys else "identity"
        self._documents = LRUCache(max_documents, key_mode=key_mode)
        self._spanners = LRUCache(max_spanners, key_mode=key_mode)
        self._preps = PreprocessingCache(
            max_preprocessings, on_evict=self._on_prep_evict, key_mode=key_mode
        )
        self._counting_hits = 0
        self._counting_misses = 0
        self._counting_evictions = 0

    def _on_prep_evict(self, entry: PreprocessingEntry) -> None:
        if entry.counting is not None:
            self._counting_evictions += 1

    # -- shared artifact lookups ----------------------------------------

    def _document_key(self, slp: SLP) -> Hashable:
        return slp.structural_digest() if self.structural_keys else id(slp)

    def _spanner_key(self, spanner: SpannerNFA) -> Hashable:
        return spanner.structural_digest() if self.structural_keys else id(spanner)

    def _document(self, slp: SLP) -> PreparedDocument:
        return self._documents.get_or_build(
            self._document_key(slp),
            lambda: PreparedDocument(slp, self.balance, self.end_symbol),
        )

    def _spanner(self, spanner: SpannerNFA) -> PreparedSpanner:
        return self._spanners.get_or_build(
            self._spanner_key(spanner),
            lambda: PreparedSpanner(spanner, self.end_symbol),
        )

    def _entry(
        self,
        spanner: SpannerNFA,
        slp: SLP,
        deterministic: bool,
        defer_store_save: bool = False,
    ) -> PreprocessingEntry:
        # Keyed by the *source* objects (pinned in the entry when identity-
        # keyed), not by the derived padded forms: evicting a document/
        # spanner from its own LRU must not orphan the preprocessing built
        # from it — a repeat query still hits here even after the prepared
        # forms were dropped.  Probe the cache before touching the prepared
        # artifacts, so a hit costs no spanner/document re-preparation.
        skey, dkey = self._spanner_key(spanner), self._document_key(slp)
        cached = self._preps.cached((skey, dkey, deterministic))
        if cached is not None:
            return cached
        if deterministic:
            # The pair may live under the NFA key when the padded automaton
            # was already deterministic (the keys are collapsed on build).
            # Inspect silently first: a nondeterministic entry is unusable
            # here and must not count as a hit or be promoted to MRU.
            alt_key = (skey, dkey, False)
            alt = self._preps.cached(alt_key, record_hit=False)
            if alt is not None and alt.prep.automaton.is_deterministic:
                return self._preps.cached(alt_key)  # real hit: count + promote

        span = self._spanner(spanner)
        if deterministic and span.padded_dfa is span.padded_nfa:
            deterministic = False  # already a DFA: share one cache entry

        restored_counts: List[_Counts] = []

        def build() -> Preprocessing:
            doc = self._document(slp)
            automaton = span.padded_dfa if deterministic else span.padded_nfa
            tracer = get_tracer()
            if self.store is not None:
                with tracer.span("engine.store_restore", kernel=self.kernel.name):
                    restored = self.store.load(
                        slp.structural_digest(),
                        automaton.structural_digest(),
                        doc.padded,
                        automaton,
                        kernel=self.kernel,
                    )
                if restored is not None:
                    prep, counts = restored
                    if counts is not None:
                        restored_counts.append(counts)
                    return prep
            registry = get_registry()
            started = time.monotonic()
            with tracer.span("engine.kernel_build", kernel=self.kernel.name):
                prep = Preprocessing(doc.padded, automaton, kernel=self.kernel)
            registry.counter("engine.prep_builds").inc()
            registry.histogram("engine.build_seconds", TIME_BUCKETS).observe(
                time.monotonic() - started
            )
            # A caller about to build counting tables defers this write:
            # it re-persists with the counts right away, so an immediate
            # counts-less write of the same full payload would be wasted.
            if self.store is not None and not defer_store_save:
                self.store.save(
                    slp.structural_digest(), automaton.structural_digest(), prep
                )
            return prep

        key = (skey, dkey, deterministic)
        pinned = () if self.structural_keys else (spanner, slp)
        entry = self._preps.entry_keyed(key, pinned, build)
        if restored_counts and entry.counting is None:
            entry.counting = CountingTables.from_counts(
                entry.prep, restored_counts[0]
            )
        return entry

    def preprocessing(
        self, spanner: SpannerNFA, slp: SLP, deterministic: bool = False
    ) -> Preprocessing:
        """The (cached) Lemma 6.5 tables for the pair."""
        return self._entry(spanner, slp, deterministic).prep

    def warm_from_store(
        self, spanner: SpannerNFA, slp: SLP, deterministic: bool = False
    ) -> bool:
        """Hydrate the preprocessing cache from the store, never building.

        Returns ``True`` when the pair's tables are now in memory (already
        cached, or restored from the on-disk store — restored counting
        tables come along for free) and ``False`` when they would have to
        be built.  This is the worker/priming hook: a fleet coordinator
        can ask "is this pair already paid for?" without triggering the
        ``O(size(S) · q²)`` build that a plain lookup would run.
        """
        skey, dkey = self._spanner_key(spanner), self._document_key(slp)
        if self._preps.cached((skey, dkey, deterministic), record_hit=False) is not None:
            return True
        span = self._spanner(spanner)
        if deterministic and span.padded_dfa is span.padded_nfa:
            deterministic = False  # already a DFA: shares the NFA entry
            if self._preps.cached((skey, dkey, False), record_hit=False) is not None:
                return True
        if self.store is None:
            return False
        doc = self._document(slp)
        automaton = span.padded_dfa if deterministic else span.padded_nfa
        restored = self.store.load(
            slp.structural_digest(),
            automaton.structural_digest(),
            doc.padded,
            automaton,
            kernel=self.kernel,
        )
        if restored is None:
            return False
        prep, counts = restored
        pinned = () if self.structural_keys else (spanner, slp)
        entry = self._preps.entry_keyed(
            (skey, dkey, deterministic), pinned, lambda: prep
        )
        if counts is not None and entry.counting is None:
            entry.counting = CountingTables.from_counts(entry.prep, counts)
        return True

    def _counting_tables(self, spanner: SpannerNFA, slp: SLP) -> CountingTables:
        # Stored on the preprocessing entry so both evict together and the
        # preprocessing cache's maxsize really bounds live table memory.
        entry = self._entry(spanner, slp, deterministic=True, defer_store_save=True)
        if entry.counting is None:
            self._counting_misses += 1
            entry.counting = CountingTables(entry.prep)
            if self.store is not None:
                # Persist tables and counts together so a restart restores
                # both in one read (the build above deferred its write).
                self.store.save(
                    slp.structural_digest(),
                    entry.prep.automaton.structural_digest(),
                    entry.prep,
                    entry.counting.counts,
                )
        else:
            self._counting_hits += 1
        return entry.counting

    # -- the four paper tasks -------------------------------------------

    def is_nonempty(self, spanner: SpannerNFA, slp: SLP) -> bool:
        """``⟦M⟧(D) ≠ ∅`` (Thm 5.1.1)."""
        doc = self._document(slp)
        return slp_in_language(
            doc.balanced, self._spanner(spanner).sigma, kernel=self.kernel
        )

    def model_check(
        self, spanner: SpannerNFA, slp: SLP, span_tuple: SpanTuple
    ) -> bool:
        """``t ∈ ⟦M⟧(D)`` (Thm 5.1.2)."""
        doc = self._document(slp)
        if not span_tuple.is_valid_for(doc.balanced.length()):
            return False
        spliced = splice_markers(doc.padded, from_span_tuple(span_tuple))
        return slp_in_language(
            spliced, self._spanner(spanner).padded_nfa, kernel=self.kernel
        )

    def evaluate(self, spanner: SpannerNFA, slp: SLP) -> FrozenSet[SpanTuple]:
        """The full relation ``⟦M⟧(D)`` (Thm 7.1)."""
        prep = self.preprocessing(spanner, slp, deterministic=False)
        return frozenset(to_span_tuple(pairs) for pairs in compute_marker_sets(prep))

    def enumerate(self, spanner: SpannerNFA, slp: SLP) -> Iterator[SpanTuple]:
        """Stream ``⟦M⟧(D)`` duplicate-free with logarithmic delay (Thm 8.10)."""
        for pairs in self.enumerate_raw(spanner, slp):
            yield to_span_tuple(pairs)

    def enumerate_raw(self, spanner: SpannerNFA, slp: SLP) -> Iterator[Pairs]:
        """Like :meth:`enumerate` but yielding raw marker sets."""
        return enumerate_marker_sets(
            self.preprocessing(spanner, slp, deterministic=True)
        )

    # -- counting / ranked-access extensions ----------------------------

    def count(self, spanner: SpannerNFA, slp: SLP) -> int:
        """``|⟦M⟧(D)|`` without enumerating."""
        return self._counting_tables(spanner, slp).total()

    def ranked(self, spanner: SpannerNFA, slp: SLP) -> RankedAccess:
        """Ranked access into ``⟦M⟧(D)`` (shares the counting tables)."""
        tables = self._counting_tables(spanner, slp)
        return RankedAccess(tables.prep, tables)

    # -- batch entry points ---------------------------------------------

    def evaluate_many(
        self, spanners: Iterable[SpannerNFA], slp: SLP
    ) -> List[FrozenSet[SpanTuple]]:
        """``[⟦M⟧(D) for M in spanners]`` sharing the padded/balanced document."""
        return [self.evaluate(spanner, slp) for spanner in spanners]

    def evaluate_corpus(
        self, spanner: SpannerNFA, slps: Iterable[SLP]
    ) -> List[FrozenSet[SpanTuple]]:
        """``[⟦M⟧(D) for D in slps]`` sharing the prepared automaton."""
        return [self.evaluate(spanner, slp) for slp in slps]

    def count_many(self, spanners: Iterable[SpannerNFA], slp: SLP) -> List[int]:
        """``[|⟦M⟧(D)| for M in spanners]`` sharing the document."""
        return [self.count(spanner, slp) for spanner in spanners]

    def count_corpus(self, spanner: SpannerNFA, slps: Iterable[SLP]) -> List[int]:
        """``[|⟦M⟧(D)| for D in slps]`` sharing the automaton."""
        return [self.count(spanner, slp) for slp in slps]

    # -- instrumentation -------------------------------------------------

    def cache_stats(self) -> Dict[str, CacheStats]:
        """Hit/miss/eviction counters of every cache layer.

        Counting tables live on the preprocessing entries (evicting
        together with them), so their size is the number of entries that
        actually hold tables, bounded by that layer's maxsize.
        """
        prep_stats = self._preps.stats
        return {
            "documents": self._documents.stats,
            "spanners": self._spanners.stats,
            "preprocessings": prep_stats,
            "counting": CacheStats(
                hits=self._counting_hits,
                misses=self._counting_misses,
                evictions=self._counting_evictions,
                size=sum(
                    1 for e in self._preps.entries() if e.counting is not None
                ),
                maxsize=prep_stats.maxsize,
                key_mode=prep_stats.key_mode,
            ),
        }

    def store_stats(self) -> "Optional[StoreStats]":
        """Hit/miss/reject/write counters of the on-disk store (or ``None``)."""
        return None if self.store is None else self.store.stats

    def clear_caches(self) -> None:
        """Drop every cached artifact (counters are kept)."""
        self._documents.clear()
        self._spanners.clear()
        self._preps.clear()

    def __repr__(self) -> str:
        stats = self.cache_stats()
        return (
            f"Engine(documents={stats['documents'].size}, "
            f"spanners={stats['spanners'].size}, "
            f"preprocessings={stats['preprocessings'].size}, "
            f"kernel={self.kernel.name})"
        )
