"""The service daemon: an asyncio unix-socket front-end over the fleet.

``repro-spanner serve --socket PATH`` runs a :class:`SpannerService`:
a long-lived asyncio server that owns a
:class:`~repro.service.fleet.PersistentFleet` of engine-hydrating
workers and answers length-prefixed JSON requests
(:mod:`repro.service.protocol`) over a unix domain socket.  Because the
daemon — and its fleet, and every worker's engine caches, and the
shared preprocessing store — survives across CLI invocations and
network callers, the expensive ``O(size(S) · q²)`` Lemma 6.5
preprocessing is paid once per daemon lifetime instead of once per
process.

Request handling is two-tier:

* **control ops** (``ping``, ``shutdown``) are answered directly on the
  event loop — the daemon stays responsive while a job is running;
* **evaluation ops** (``run``, ``check``) execute on a single-thread
  executor that owns the fleet: jobs queue FIFO behind each other (the
  fleet's shard scheduler parallelises *within* a job), and the event
  loop never blocks on evaluation.

A ``run`` request is sharded with the existing LPT planner
(digest-affinity grouping, grammar-size cost model) and executed by the
persistent fleet through the PR 3 pipe/spec protocol; results return in
row-major request order, bit-identical to the serial engine (the
differential harness enforces this end to end through a real socket).

A client that disconnects mid-job only loses its response: the job
completes, the write fails quietly, and the daemon keeps serving.
"""

from __future__ import annotations

import asyncio
import os
import socket as socket_module
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Optional

from repro.engine.spec import TaskSpec
from repro.parallel.sharding import grid_items, plan_shards
from repro.service import protocol
from repro.service.fleet import PersistentFleet
from repro.service.protocol import ProtocolError, ServiceError
from repro.session import SessionConfig
from repro.slp import io as slp_io

#: Shards per fleet worker (same rebalancing rationale as the per-call
#: pool: >1 so a long shard can be stolen around).
SHARDS_PER_JOB = 4


class SpannerService:
    """One daemon: a unix-socket server plus its persistent fleet."""

    def __init__(self, config: Optional[SessionConfig] = None) -> None:
        self.config = config if config is not None else SessionConfig()
        jobs = max(1, self.config.jobs)
        self.fleet = PersistentFleet(
            jobs,
            self.config.engine_config(cross_process=True),
            max_retries=self.config.max_retries,
            timeout=self.config.timeout,
        )
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-service-job"
        )
        self._engine = None  # lazy parent-side engine (check op)
        self._validated_specs: set = set()  # request validation cache
        self._server: Optional[asyncio.AbstractServer] = None
        self._stop_event: Optional[asyncio.Event] = None
        self.socket_path: Optional[str] = None
        self.started_at = time.monotonic()
        self.requests = 0
        self.jobs_run = 0

    # -- lifecycle ------------------------------------------------------

    async def start(self, socket_path: str) -> "SpannerService":
        """Bind the socket (owner-only) and spawn the fleet."""
        self._stop_event = asyncio.Event()
        self._reclaim_stale_socket(socket_path)
        self.fleet.open()
        try:
            self._server = await asyncio.start_unix_server(
                self._on_connection, path=socket_path
            )
            # Owner-only: the socket is the entire authentication boundary.
            os.chmod(socket_path, 0o600)
        except BaseException:
            # A failed bind (unwritable directory, over-long sun_path)
            # must not strand the just-spawned fleet in the host process.
            self.fleet.abort()
            raise
        self.socket_path = socket_path
        return self

    @staticmethod
    def _reclaim_stale_socket(socket_path: str) -> None:
        """Unlink a dead daemon's socket file; refuse a live one."""
        if not os.path.exists(socket_path):
            return
        probe = socket_module.socket(
            socket_module.AF_UNIX, socket_module.SOCK_STREAM
        )
        probe.settimeout(1.0)
        try:
            probe.connect(socket_path)
        except OSError:
            os.unlink(socket_path)  # stale: no one is listening
        else:
            raise ServiceError(
                f"another service is already listening on {socket_path}"
            )
        finally:
            probe.close()

    def request_stop(self) -> None:
        """Ask the serve loop to wind down (signal handlers, shutdown op)."""
        if self._stop_event is not None:
            self._stop_event.set()

    async def serve_until_stopped(self) -> None:
        """Block until :meth:`request_stop`, then release everything."""
        assert self._stop_event is not None, "start() first"
        await self._stop_event.wait()
        await self.aclose()

    async def aclose(self) -> None:
        """Stop accepting, drain the job thread, release the fleet."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        loop = asyncio.get_running_loop()
        # The graceful fleet close (sentinels + farewells) blocks; run it
        # on the job executor so an in-flight job finishes first — close
        # therefore also acts as the drain barrier.
        await loop.run_in_executor(self._executor, self.fleet.close)
        self._executor.shutdown(wait=True)
        if self.socket_path is not None:
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass
            self.socket_path = None

    # -- connection handling --------------------------------------------

    async def _on_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    request = await protocol.read_frame(reader)
                except ProtocolError:
                    break  # garbage on the wire: drop this client only
                if request is None:
                    break  # clean EOF
                response = await self._dispatch(request)
                try:
                    await protocol.write_frame(writer, response)
                except ProtocolError as exc:
                    # The *response* would not frame (e.g. a relation
                    # whose encoding exceeds the frame cap): tell the
                    # client why instead of silently dropping it.
                    try:
                        await protocol.write_frame(
                            writer,
                            protocol.error_response(request.get("id"), exc),
                        )
                    except (ConnectionResetError, BrokenPipeError, OSError):
                        break
                except (ConnectionResetError, BrokenPipeError, OSError):
                    break  # client vanished mid-reply: the daemon survives
        except asyncio.CancelledError:
            # The daemon is shutting down with this connection still
            # open; end the handler quietly instead of letting the
            # cancellation surface as a loop-teardown error.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _dispatch(self, request: dict) -> dict:
        self.requests += 1
        request_id = request.get("id")
        op = request.get("op")
        loop = asyncio.get_running_loop()
        try:
            if op == "ping":
                result = self._info()
            elif op == "run":
                result = await loop.run_in_executor(
                    self._executor, self._run_grid, request
                )
            elif op == "check":
                result = await loop.run_in_executor(
                    self._executor, self._check, request
                )
            elif op == "shutdown":
                # Respond first, stop right after the reply is written.
                loop.call_soon(self.request_stop)
                result = {"stopping": True}
            else:
                raise ProtocolError(f"unknown op {op!r}")
        except Exception as exc:  # repro-check: broad-except — wire barrier: every failure goes on the wire as an error frame
            return protocol.error_response(request_id, exc)
        return protocol.ok_response(request_id, result)

    # -- evaluation ops (job-executor thread) ---------------------------

    def _run_grid(self, request: dict) -> dict:
        """One (documents × spanners) grid through the persistent fleet."""
        paths = request["documents"]
        if not isinstance(paths, list):
            raise ProtocolError("'documents' must be a list of paths")
        specs = [protocol.decode_spanner(p) for p in request["spanners"]]
        limit = request.get("limit")
        if limit is not None and (isinstance(limit, bool) or not isinstance(limit, int)):
            raise ProtocolError(f"'limit' must be an integer or null, got {limit!r}")
        task = TaskSpec(task=request.get("task", "evaluate"), limit=limit)
        # Fail a malformed request *here*, before fan-out: a bad limit,
        # bad pattern or missing file would otherwise raise in every
        # worker, burn the shard retry budget, and end in a fleet reset
        # that throws away every warm cache — a single bad client
        # request must never cost the daemon its warmth.
        for path in paths:
            if not os.path.exists(path):
                raise FileNotFoundError(f"no such document: {path}")
        for spec in specs:
            self._validate_spec(spec)
        items = grid_items(paths, len(specs))
        plan = plan_shards(items, num_shards=self.fleet.jobs * SHARDS_PER_JOB)
        report = self.fleet.run(plan, specs, task)
        self.jobs_run += 1
        return {
            "task": task.task,
            "results": [
                protocol.encode_result(task.task, value)
                for value in report.results
            ],
            "retries": report.retries,
            "workers_crashed": report.workers_crashed,
        }

    def _check(self, request: dict) -> bool:
        """Model checking runs on a parent-side engine: it needs the raw
        span tuple (outside the shard task protocol) and no Lemma 6.5
        tables, so shipping it to the fleet would buy nothing."""
        engine = self._parent_engine()
        slp = slp_io.load_file(request["document"])
        spanner = protocol.decode_spanner(request["spanner"]).resolve()
        tup = protocol.decode_span_tuple(request["tuple"])
        return bool(engine.model_check(spanner, slp, tup))

    def _parent_engine(self):
        if self._engine is None:
            self._engine = self.config.engine_config(cross_process=True).build()
        return self._engine

    def _validate_spec(self, spec) -> None:
        """Resolve a spanner spec once in the parent (cached by content).

        Raises the real compile error (e.g. ``RegexSyntaxError``) for the
        client instead of a worker-retry traceback, and guarantees the
        fleet only ever sees resolvable specs.
        """
        from repro.parallel.worker import MAX_RESOLVED_SPANNERS, _spec_cache_key

        key = _spec_cache_key(spec)
        if key in self._validated_specs:
            return
        spec.resolve()
        if len(self._validated_specs) >= MAX_RESOLVED_SPANNERS:
            self._validated_specs.clear()
        self._validated_specs.add(key)

    # -- introspection --------------------------------------------------

    def _info(self) -> dict:
        import repro

        return {
            "protocol": protocol.PROTOCOL_VERSION,
            "version": repro.__version__,
            "pid": os.getpid(),
            "uptime": time.monotonic() - self.started_at,
            "socket": self.socket_path,
            "requests": self.requests,
            "jobs_run": self.jobs_run,
            "fleet": {
                "jobs": self.fleet.jobs,
                "alive": self.fleet.alive_workers(),
                "pids": self.fleet.worker_pids,
            },
            "config": self.config.summary(),
        }


def serve(
    config: Optional[SessionConfig],
    socket_path: str,
    *,
    install_signal_handlers: bool = True,
    announce=None,
) -> int:
    """Run a daemon until SIGINT/SIGTERM (the blocking CLI entry point).

    ``announce`` (a callable taking one line of text) is told when the
    socket is live — the CLI prints it so scripts can wait for
    readiness.  Returns 0 on a clean shutdown.
    """

    async def _main() -> None:
        service = SpannerService(config)
        await service.start(socket_path)
        if install_signal_handlers:
            import signal

            loop = asyncio.get_running_loop()
            for sig in (signal.SIGINT, signal.SIGTERM):
                loop.add_signal_handler(sig, service.request_stop)
        if announce is not None:
            announce(
                f"repro service listening on {socket_path} "
                f"(pid {os.getpid()}, jobs {service.fleet.jobs})"
            )
        await service.serve_until_stopped()

    asyncio.run(_main())
    return 0


class ServiceThread:
    """A daemon on a background thread (tests, benchmarks, embedding).

    Runs the same :class:`SpannerService` the CLI runs, inside the
    current process, and exposes its socket path.  Context manager::

        with ServiceThread(SessionConfig(jobs=2), "/tmp/x.sock") as svc:
            session = connect(svc.socket_path)
    """

    def __init__(
        self, config: Optional[SessionConfig], socket_path: str, *,
        start_timeout: float = 60.0,
    ) -> None:
        self.config = config
        self.socket_path = socket_path
        self.start_timeout = start_timeout
        self.service: Optional[SpannerService] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._failure: list = []

    def start(self) -> "ServiceThread":
        def runner() -> None:
            try:
                asyncio.run(self._main())
            except BaseException as exc:  # noqa: BLE001 - surfaced to starter
                self._failure.append(exc)
            finally:
                self._started.set()

        self._thread = threading.Thread(
            target=runner, daemon=True, name="repro-service"
        )
        self._thread.start()
        if not self._started.wait(self.start_timeout):
            raise ServiceError(
                f"service thread did not come up within {self.start_timeout}s"
            )
        if self._failure:
            raise ServiceError(
                f"service thread failed to start: {self._failure[0]!r}"
            ) from self._failure[0]
        return self

    async def _main(self) -> None:
        service = SpannerService(self.config)
        await service.start(self.socket_path)
        self.service = service
        self._loop = asyncio.get_running_loop()
        self._started.set()
        await service.serve_until_stopped()

    def stop(self, timeout: float = 60.0) -> None:
        """Stop the daemon and join the thread (idempotent)."""
        thread, loop, service = self._thread, self._loop, self.service
        if thread is None:
            return
        if thread.is_alive() and loop is not None and service is not None:
            try:
                loop.call_soon_threadsafe(service.request_stop)
            except RuntimeError:
                pass  # loop already closed (client-initiated shutdown)
        thread.join(timeout)
        if thread.is_alive():
            raise ServiceError("service thread did not stop in time")
        self._thread = None

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


__all__ = ["SHARDS_PER_JOB", "ServiceThread", "SpannerService", "serve"]
