"""The service daemon: an asyncio unix-socket front-end over the fleet.

``repro-spanner serve --socket PATH`` runs a :class:`SpannerService`:
a long-lived asyncio server that owns a
:class:`~repro.service.fleet.PersistentFleet` of engine-hydrating
workers and answers length-prefixed JSON requests
(:mod:`repro.service.protocol`) over a unix domain socket.  Because the
daemon — and its fleet, and every worker's engine caches, and the
shared preprocessing store — survives across CLI invocations and
network callers, the expensive ``O(size(S) · q²)`` Lemma 6.5
preprocessing is paid once per daemon lifetime instead of once per
process.

Request handling is multi-tenant:

* **control ops** (``ping``, ``cancel``, ``shutdown``) are answered
  directly on the event loop — ``ping`` from the scheduler's
  lock-protected snapshot, never from live fleet internals;
* **``run``** is validated and planned on a small executor, then
  admitted to the :class:`~repro.service.scheduler.FleetScheduler`,
  which interleaves its shards with every other admitted job
  (weighted-fair by priority, cancellable, quota-bounded — admission
  past the bound returns a structured ``busy`` frame instead of
  queueing);
* **``check``** runs on the executor against a parent-side engine.

Connections are *pipelined*: every request frame is served by its own
task, so one connection can have many jobs in flight, a second request
can cancel the first, and — crucially — the daemon notices a
disconnect immediately even while a job is running (jobs submitted
with ``cancel_on_disconnect`` are cancelled the moment their client
goes away).  A client that disconnects mid-job without opting in only
loses its response: the job completes, the write fails quietly, and
the daemon keeps serving.

A ``run`` request is sharded with the existing LPT planner
(digest-affinity grouping, grammar-size cost model) and executed by the
persistent fleet; results return in row-major request order,
bit-identical to the serial engine (the differential harness enforces
this end to end through a real socket).
"""

from __future__ import annotations

import asyncio
import os
import socket as socket_module
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Set

from dataclasses import replace

from repro.engine.spec import TaskSpec
from repro.obs.metrics import get_registry
from repro.obs.trace import TraceContext, get_tracer
from repro.parallel.sharding import ShardPlan, grid_items, plan_shards
from repro.service import protocol
from repro.service.fleet import PersistentFleet
from repro.service.protocol import ProtocolError, ServiceBusyError, ServiceError
from repro.service.scheduler import FleetScheduler, JobResult
from repro.session import SessionConfig
from repro.slp import io as slp_io

#: Lower bound on shards per fleet worker (same rebalancing rationale
#: as the per-call pool: >1 so a long shard can be stolen around).
SHARDS_PER_JOB = 4

#: Upper bound on items per shard for daemon jobs.  Fine-grained shards
#: are what makes multi-tenant interleaving responsive: a small query
#: admitted during a big batch waits for at most one in-flight shard
#: per worker, so shard duration — not batch duration — bounds its
#: latency (the fairness bench gate measures exactly this).
MAX_ITEMS_PER_SHARD = 2

#: Environment gate for the test-only fault-injection request fields
#: (``_fault_tokens`` / ``_shard_sleep``): the scheduler tests and the
#: differential harness drive crash recovery and fairness through a
#: real daemon with them.  Never set in production.  The fields are a
#: legacy shim over :mod:`repro.faults` (the tokens fire at the
#: ``worker.shard`` site); daemon-wide fault schedules are armed with
#: ``REPRO_FAULTS`` instead, which spawned fleet workers inherit.
TEST_FAULTS_ENV = "REPRO_SERVICE_TEST_FAULTS"


class SpannerService:
    """One daemon: a unix-socket server plus its scheduled fleet."""

    #: How long :meth:`aclose` waits for in-flight requests to finish
    #: writing their responses before cancelling every connection
    #: (shutdown must stay bounded even with clients mid-job).
    shutdown_grace = 30.0

    def __init__(self, config: Optional[SessionConfig] = None) -> None:
        self.config = config if config is not None else SessionConfig()
        if self.config.trace is not None:
            # Daemon-side tracing: server and scheduler spans get a sink
            # even for clients that carry no trace context of their own
            # (workers get theirs via EngineConfig.trace_path).
            get_tracer().configure(self.config.trace)
        jobs = max(1, self.config.jobs)
        self.fleet = PersistentFleet(
            jobs,
            self.config.engine_config(cross_process=True),
            max_retries=self.config.max_retries,
            timeout=self.config.timeout,
        )
        self.scheduler = FleetScheduler(
            self.fleet,
            max_pending_jobs=self.config.max_pending_jobs,
            max_jobs_per_client=self.config.max_jobs_per_client,
            shard_timeout=self.config.shard_timeout,
        )
        # Planning/validation/encoding only — evaluation itself is the
        # scheduler's, so this thread never serialises jobs behind each
        # other the way the old FIFO executor did.
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-service-aux"
        )
        self._engine = None  # lazy parent-side engine (check op)
        self._validated_specs: set = set()  # request validation cache
        self._server: Optional[asyncio.AbstractServer] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._connections: Set[asyncio.Task] = set()
        self._inflight_requests: Set[asyncio.Task] = set()
        self._next_client_id = 1
        self.socket_path: Optional[str] = None
        self.started_at = time.monotonic()
        self.requests = 0
        self.jobs_run = 0

    # -- lifecycle ------------------------------------------------------

    async def start(self, socket_path: str) -> "SpannerService":
        """Bind the socket (owner-only) and start the scheduled fleet."""
        self._stop_event = asyncio.Event()
        self._reclaim_stale_socket(socket_path)
        self.scheduler.start()  # opens the fleet
        try:
            self._server = await asyncio.start_unix_server(
                self._on_connection, path=socket_path
            )
            # Owner-only: the socket is the entire authentication boundary.
            os.chmod(socket_path, 0o600)
        except BaseException:
            # A failed bind (unwritable directory, over-long sun_path)
            # must not strand the just-spawned fleet in the host process.
            self.scheduler.close(timeout=10.0)
            raise
        self.socket_path = socket_path
        return self

    @staticmethod
    def _reclaim_stale_socket(socket_path: str) -> None:
        """Unlink a dead daemon's socket file; refuse a live one."""
        if not os.path.exists(socket_path):
            return
        probe = socket_module.socket(
            socket_module.AF_UNIX, socket_module.SOCK_STREAM
        )
        probe.settimeout(1.0)
        try:
            probe.connect(socket_path)
        except OSError:
            os.unlink(socket_path)  # stale: no one is listening
        else:
            raise ServiceError(
                f"another service is already listening on {socket_path}"
            )
        finally:
            probe.close()

    def request_stop(self) -> None:
        """Ask the serve loop to wind down (signal handlers, shutdown op)."""
        if self._stop_event is not None:
            self._stop_event.set()

    async def serve_until_stopped(self) -> None:
        """Block until :meth:`request_stop`, then release everything."""
        assert self._stop_event is not None, "start() first"
        await self._stop_event.wait()
        await self.aclose()

    async def aclose(self) -> None:
        """Stop accepting, drain in-flight requests, release the fleet.

        Shutdown is bounded by construction: in-flight requests get
        :attr:`shutdown_grace` seconds to finish writing, then every
        connection task is *cancelled* — on Python ≥ 3.12
        ``Server.wait_closed()`` waits for all open connection
        handlers, so an idle client holding its connection open would
        otherwise hang the daemon forever.
        """
        if self._server is not None:
            self._server.close()
            if self._inflight_requests:
                await asyncio.wait(
                    set(self._inflight_requests), timeout=self.shutdown_grace
                )
            for task in list(self._inflight_requests):
                task.cancel()
            for task in list(self._connections):
                task.cancel()
            if self._connections:
                await asyncio.gather(
                    *list(self._connections), return_exceptions=True
                )
            await self._server.wait_closed()
            self._server = None
        loop = asyncio.get_running_loop()
        # The graceful scheduler close (fail stragglers, fleet
        # sentinels + farewells) blocks; keep the loop responsive.
        await loop.run_in_executor(None, self.scheduler.close)
        self._executor.shutdown(wait=True)
        if self.socket_path is not None:
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass
            self.socket_path = None

    # -- connection handling --------------------------------------------

    async def _on_connection(self, reader, writer) -> None:
        client_id = self._next_client_id
        self._next_client_id += 1
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        write_lock = asyncio.Lock()
        inflight: Set[asyncio.Task] = set()
        try:
            while True:
                try:
                    request = await protocol.read_frame(reader)
                except ProtocolError:
                    break  # garbage on the wire: drop this client only
                if request is None:
                    break  # clean EOF
                served = asyncio.create_task(
                    self._serve_request(request, writer, write_lock, client_id)
                )
                for tracker in (inflight, self._inflight_requests):
                    tracker.add(served)
                    served.add_done_callback(tracker.discard)
        except asyncio.CancelledError:
            # The daemon is shutting down with this connection still
            # open; end the handler quietly instead of letting the
            # cancellation surface as a loop-teardown error.
            pass
        finally:
            # The reader saw EOF (or shutdown): cancel this client's
            # opted-in jobs *now* — not after they burn fleet time.
            self.scheduler.cancel(client_id=client_id, on_disconnect=True)
            if inflight:
                await asyncio.gather(*list(inflight), return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
            if task is not None:
                self._connections.discard(task)

    async def _serve_request(
        self, request: dict, writer, write_lock: asyncio.Lock, client_id: int
    ) -> None:
        """One pipelined request: dispatch, then write under the lock."""
        response = await self._dispatch(request, client_id)
        try:
            async with write_lock:
                await protocol.write_frame(writer, response)
        except ProtocolError as exc:
            # The *response* would not frame (e.g. a relation whose
            # encoding exceeds the frame cap): tell the client why
            # instead of silently dropping it.
            try:
                async with write_lock:
                    await protocol.write_frame(
                        writer,
                        protocol.error_response(request.get("id"), exc),
                    )
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass  # client vanished mid-reply: the daemon survives

    async def _dispatch(self, request: dict, client_id: int) -> dict:
        self.requests += 1
        request_id = request.get("id")
        op = request.get("op")
        loop = asyncio.get_running_loop()
        try:
            if op == "ping":
                result = self._info()
            elif op == "run":
                result = await self._run(request, client_id)
            elif op == "check":
                result = await loop.run_in_executor(
                    self._executor, self._check, request
                )
            elif op == "cancel":
                result = self._cancel(request)
            elif op == "metrics":
                result = self._metrics()
            elif op == "shutdown":
                # Respond first, stop right after the reply is written.
                loop.call_soon(self.request_stop)
                result = {"stopping": True}
            else:
                raise ProtocolError(f"unknown op {op!r}")
        except ServiceBusyError as exc:
            return protocol.busy_response(request_id, exc)
        except Exception as exc:  # repro-check: broad-except — wire barrier: every failure goes on the wire as an error frame
            return protocol.error_response(request_id, exc)
        return protocol.ok_response(request_id, result)

    # -- evaluation ops -------------------------------------------------

    async def _run(self, request: dict, client_id: int) -> dict:
        """One (documents × spanners) grid through the scheduled fleet."""
        loop = asyncio.get_running_loop()
        # The optional `trace` frame field carries the client's context;
        # the server span opened here becomes the parent of the
        # scheduler's queue span and of every fleet worker's shard span
        # (its context rides to them inside TaskSpec.trace).
        ctx = TraceContext.from_wire(request.get("trace"))
        span = get_tracer().begin("service.run", parent=ctx, client=client_id)
        try:
            plan, specs, task = await loop.run_in_executor(
                self._executor, self._plan_grid, request
            )
            task = replace(task, trace=span.context())
            priority = request.get("priority", 0)
            if isinstance(priority, bool) or not isinstance(priority, int):
                raise ProtocolError(
                    f"'priority' must be an integer, got {priority!r}"
                )
            tag = request.get("tag")
            if tag is not None and not isinstance(tag, str):
                raise ProtocolError(f"'tag' must be a string, got {tag!r}")
            deadline_ms = request.get("deadline_ms")
            if deadline_ms is not None:
                if (
                    isinstance(deadline_ms, bool)
                    or not isinstance(deadline_ms, (int, float))
                    or deadline_ms <= 0
                ):
                    raise ProtocolError(
                        f"'deadline_ms' must be a positive number, "
                        f"got {deadline_ms!r}"
                    )
            job = self.scheduler.submit(
                plan,
                specs,
                task,
                priority=priority,
                tag=tag,
                client_id=client_id,
                cancel_on_disconnect=bool(
                    request.get("cancel_on_disconnect", False)
                ),
                deadline=None if deadline_ms is None else deadline_ms / 1000.0,
            )
            result = await asyncio.wrap_future(job.future)
            self.jobs_run += 1
            return await loop.run_in_executor(
                self._executor, self._encode_grid, task, result
            )
        finally:
            span.finish()

    def _plan_grid(self, request: dict):
        """Validate and shard one run request (aux-executor thread)."""
        paths = request["documents"]
        if not isinstance(paths, list):
            raise ProtocolError("'documents' must be a list of paths")
        specs = [protocol.decode_spanner(p) for p in request["spanners"]]
        limit = request.get("limit")
        if limit is not None and (isinstance(limit, bool) or not isinstance(limit, int)):
            raise ProtocolError(f"'limit' must be an integer or null, got {limit!r}")
        task = TaskSpec(task=request.get("task", "evaluate"), limit=limit)
        # Fail a malformed request *here*, before fan-out: a bad limit,
        # bad pattern or missing file would otherwise raise in every
        # worker and burn the job's retry budget — a single bad client
        # request must never cost the fleet its time (and under the old
        # FIFO design it cost the daemon its warmth via a fleet reset).
        for path in paths:
            if not os.path.exists(path):
                raise FileNotFoundError(f"no such document: {path}")
        for spec in specs:
            self._validate_spec(spec)
        items = grid_items(paths, len(specs))
        num_shards = max(
            self.fleet.jobs * SHARDS_PER_JOB,
            -(-len(items) // MAX_ITEMS_PER_SHARD),
        )
        plan = plan_shards(items, num_shards=num_shards)
        plan = self._maybe_inject_test_faults(request, plan)
        return plan, specs, task

    @staticmethod
    def _maybe_inject_test_faults(request: dict, plan: ShardPlan) -> ShardPlan:
        """Apply the test-only ``_fault_tokens`` / ``_shard_sleep`` fields.

        Gated on :data:`TEST_FAULTS_ENV` in the daemon's environment so
        no production daemon can be made to crash or stall its own
        workers over the wire.
        """
        tokens = request.get("_fault_tokens")
        sleep = request.get("_shard_sleep")
        if not tokens and sleep is None:
            return plan
        if not os.environ.get(TEST_FAULTS_ENV):
            raise ProtocolError(
                "fault injection fields require the daemon to run with "
                f"{TEST_FAULTS_ENV}=1"
            )
        mapping = {}
        if sleep is not None:
            mapping.update(
                {shard.shard_id: f"sleep:{float(sleep)}" for shard in plan.shards}
            )
        if tokens:
            mapping.update({int(k): str(v) for k, v in tokens.items()})
        return plan.with_fault_tokens(mapping)

    def _encode_grid(self, task: TaskSpec, result: JobResult) -> dict:
        return {
            "task": task.task,
            "results": [
                protocol.encode_result(task.task, value)
                for value in result.results
            ],
            "retries": result.retries,
            "workers_crashed": result.workers_crashed,
        }

    def _cancel(self, request: dict) -> dict:
        """Cancel every job carrying the given tag (any client's)."""
        tag = request.get("tag")
        if not isinstance(tag, str) or not tag:
            raise ProtocolError(f"'tag' must be a non-empty string, got {tag!r}")
        return {"cancelled": self.scheduler.cancel(tag=tag)}

    def _check(self, request: dict) -> bool:
        """Model checking runs on a parent-side engine: it needs the raw
        span tuple (outside the shard task protocol) and no Lemma 6.5
        tables, so shipping it to the fleet would buy nothing."""
        engine = self._parent_engine()
        slp = slp_io.load_file(request["document"])
        spanner = protocol.decode_spanner(request["spanner"]).resolve()
        tup = protocol.decode_span_tuple(request["tuple"])
        return bool(engine.model_check(spanner, slp, tup))

    def _parent_engine(self):
        if self._engine is None:
            self._engine = self.config.engine_config(cross_process=True).build()
        return self._engine

    def _validate_spec(self, spec) -> None:
        """Resolve a spanner spec once in the parent (cached by content).

        Raises the real compile error (e.g. ``RegexSyntaxError``) for the
        client instead of a worker-retry traceback, and guarantees the
        fleet only ever sees resolvable specs.
        """
        from repro.parallel.worker import MAX_RESOLVED_SPANNERS, _spec_cache_key

        key = _spec_cache_key(spec)
        if key in self._validated_specs:
            return
        spec.resolve()
        if len(self._validated_specs) >= MAX_RESOLVED_SPANNERS:
            self._validated_specs.clear()
        self._validated_specs.add(key)

    def _metrics(self) -> dict:
        """The merged observability view served by the ``metrics`` op."""
        view = self.scheduler.metrics()
        view["requests"] = self.requests
        view["jobs_run"] = self.jobs_run
        view["uptime"] = time.monotonic() - self.started_at
        view["pid"] = os.getpid()
        return view

    # -- introspection --------------------------------------------------

    def _info(self) -> dict:
        import repro

        # One consistent snapshot, built by the scheduler thread under
        # its lock — never a direct read of fleet internals while the
        # scheduler mutates them (the old torn-ping race).
        snapshot = self.scheduler.snapshot()
        scheduler_info = snapshot.pop("scheduler", {})
        registry = get_registry()
        return {
            "protocol": protocol.PROTOCOL_VERSION,
            "version": repro.__version__,
            "pid": os.getpid(),
            "uptime": time.monotonic() - self.started_at,
            "socket": self.socket_path,
            "requests": self.requests,
            "jobs_run": self.jobs_run,
            "fleet": snapshot,
            "scheduler": scheduler_info,
            # A taste of the metrics subsystem rides on every ping (the
            # `metrics` op serves the full merged view): the three
            # slowest jobs so far, visible by tenant tag.
            "slow": registry.slow.snapshot()[:3],
            "config": self.config.summary(),
        }


def serve(
    config: Optional[SessionConfig],
    socket_path: str,
    *,
    install_signal_handlers: bool = True,
    announce=None,
) -> int:
    """Run a daemon until SIGINT/SIGTERM (the blocking CLI entry point).

    ``announce`` (a callable taking one line of text) is told when the
    socket is live — the CLI prints it so scripts can wait for
    readiness.  Returns 0 on a clean shutdown.
    """

    async def _main() -> None:
        service = SpannerService(config)
        await service.start(socket_path)
        if install_signal_handlers:
            import signal

            loop = asyncio.get_running_loop()
            for sig in (signal.SIGINT, signal.SIGTERM):
                loop.add_signal_handler(sig, service.request_stop)
        if announce is not None:
            announce(
                f"repro service listening on {socket_path} "
                f"(pid {os.getpid()}, jobs {service.fleet.jobs})"
            )
        await service.serve_until_stopped()

    asyncio.run(_main())
    return 0


class ServiceThread:
    """A daemon on a background thread (tests, benchmarks, embedding).

    Runs the same :class:`SpannerService` the CLI runs, inside the
    current process, and exposes its socket path.  Context manager::

        with ServiceThread(SessionConfig(jobs=2), "/tmp/x.sock") as svc:
            session = connect(svc.socket_path)
    """

    def __init__(
        self, config: Optional[SessionConfig], socket_path: str, *,
        start_timeout: float = 60.0,
    ) -> None:
        self.config = config
        self.socket_path = socket_path
        self.start_timeout = start_timeout
        self.service: Optional[SpannerService] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._failure: list = []

    def start(self) -> "ServiceThread":
        def runner() -> None:
            try:
                asyncio.run(self._main())
            except BaseException as exc:  # noqa: BLE001 - surfaced to starter
                self._failure.append(exc)
            finally:
                self._started.set()

        self._thread = threading.Thread(
            target=runner, daemon=True, name="repro-service"
        )
        self._thread.start()
        if not self._started.wait(self.start_timeout):
            raise ServiceError(
                f"service thread did not come up within {self.start_timeout}s"
            )
        if self._failure:
            raise ServiceError(
                f"service thread failed to start: {self._failure[0]!r}"
            ) from self._failure[0]
        return self

    async def _main(self) -> None:
        service = SpannerService(self.config)
        await service.start(self.socket_path)
        self.service = service
        self._loop = asyncio.get_running_loop()
        self._started.set()
        await service.serve_until_stopped()

    def stop(self, timeout: float = 60.0) -> None:
        """Stop the daemon and join the thread (idempotent)."""
        thread, loop, service = self._thread, self._loop, self.service
        if thread is None:
            return
        if thread.is_alive() and loop is not None and service is not None:
            try:
                loop.call_soon_threadsafe(service.request_stop)
            except RuntimeError:
                pass  # loop already closed (client-initiated shutdown)
        thread.join(timeout)
        if thread.is_alive():
            raise ServiceError("service thread did not stop in time")
        self._thread = None

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


__all__ = [
    "MAX_ITEMS_PER_SHARD",
    "SHARDS_PER_JOB",
    "ServiceThread",
    "SpannerService",
    "TEST_FAULTS_ENV",
    "serve",
]
