"""The daemon's persistent worker fleet: the PR 3 pool, kept alive.

A :class:`PersistentFleet` is a :class:`~repro.parallel.pool.WorkerPool`
whose workers are spawned once (:meth:`open`) and survive across
:meth:`run` calls — the whole point of the service daemon: worker
hydration (process spawn + engine build), spanner resolution and the
in-memory preprocessing caches are paid once per daemon lifetime
instead of once per CLI invocation.

Three hook overrides are the entire difference from the per-call pool
(the scheduler — pull-based dispatch, ordered collection, crash
recovery with retry/crash budgets — is inherited unchanged):

* workers run :func:`~repro.parallel.worker.service_worker_main`, which
  accepts the spanners and task *per dispatch* instead of at spawn;
* a dispatch message is ``(shard, spanner_specs, task_spec)``;
* worker arguments carry only the :class:`~repro.engine.spec.EngineConfig`.

In the daemon the fleet is driven by the multi-tenant
:class:`~repro.service.scheduler.FleetScheduler`, which interleaves
shards from many concurrent jobs and keeps failures *per job*: a
tenant whose shards exhaust their retries fails alone, its late worker
messages are attributed by globally unique shard ids and dropped, and
crashed workers are respawned individually — the fleet is never
hard-replaced underneath another tenant's in-flight job.  (The
inherited FIFO :meth:`run` — with its run-failure ``_reset_fleet``
hard replace — remains for direct, single-tenant use of a persistent
fleet outside the daemon.)
"""

from __future__ import annotations

from typing import Optional

from repro.engine.spec import EngineConfig
from repro.parallel.pool import WorkerPool
from repro.parallel.worker import service_worker_main


class PersistentFleet(WorkerPool):
    """A long-lived worker fleet serving many shard plans."""

    persistent = True

    def __init__(
        self,
        jobs: int,
        config: Optional[EngineConfig] = None,
        *,
        max_retries: int = 2,
        timeout: Optional[float] = None,
        start_method: Optional[str] = None,
    ) -> None:
        super().__init__(
            jobs,
            config,
            max_retries=max_retries,
            timeout=timeout,
            start_method=start_method,
        )

    # -- hooks ----------------------------------------------------------

    def _worker_target(self):
        return service_worker_main

    def _worker_args(self, spanners, task) -> tuple:
        return (self.config,)

    def _shard_message(self, shard, spanners, task):
        return (shard, tuple(spanners), task)

    # -- lifecycle ------------------------------------------------------

    def open(self) -> "PersistentFleet":
        """Spawn the fleet up to its configured strength (idempotent)."""
        self._ensure_fleet()
        return self


__all__ = ["PersistentFleet"]
