"""The service wire protocol: length-prefixed JSON frames over a socket.

One frame is a 4-byte big-endian length followed by that many bytes of
UTF-8 JSON.  Requests carry ``{"id": n, "op": name, ...params}``;
responses echo the id as ``{"id": n, "ok": true, "result": ...}`` or
``{"id": n, "ok": false, "error": {type, message, traceback}}``.  Both
sync (:func:`send_frame` / :func:`recv_frame`, for the blocking client)
and asyncio (:func:`read_frame` / :func:`write_frame`, for the daemon)
helpers speak the same framing, so either side can be reimplemented in
any language that can write four bytes and a JSON document.

Result values are *canonically* encoded so that a round trip through
the daemon is bit-identical to in-process evaluation (the differential
harness enforces this):

* a :class:`~repro.spanner.spans.Span`-tuple becomes a
  variable-sorted ``[[var, start, end], ...]`` list;
* an ``evaluate`` relation (a frozenset) is sorted into a canonical
  list on the wire and rebuilt as a frozenset on arrival — set equality
  is order-blind, so sorting only serves wire determinism;
* an ``enumerate`` result stays an order-preserving list (the
  enumeration order *is* part of the contract);
* ``count`` / ``nonempty`` results are plain JSON numbers / booleans.

Spanners travel as ``{"pattern", "alphabet"}`` recipes whenever the
caller has one (the CLI always does).  An already-compiled
:class:`~repro.spanner.automaton.SpannerNFA` has no JSON form, so it is
carried as a base64 pickle field inside the JSON envelope — the same
trust model as the multiprocessing pipes the parallel subsystem already
ships NFAs over, and the daemon's unix socket is created owner-only
(mode ``0600``), so only the operating user can submit frames.
"""

from __future__ import annotations

import base64
import json
import pickle
import socket as socket_module
import struct
import traceback as traceback_module
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Type

from repro.errors import ReproError
from repro.faults import fault_point
from repro.obs.metrics import BYTE_BUCKETS, get_registry
from repro.spanner.spans import Span, SpanTuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    import asyncio

    from repro.engine.spec import SpannerSpec

#: Protocol revision, checked in the handshake-free way: every response
#: to ``ping`` carries it, and requests with an incompatible ``proto``
#: field are rejected instead of misread.
PROTOCOL_VERSION = 1

_FRAME_HEADER = struct.Struct(">I")

#: Refuse absurd frames: a corrupt or hostile length prefix must not
#: make either side allocate gigabytes.
MAX_FRAME_BYTES = 256 * 1024 * 1024

#: The request kinds of the protocol: wire op name → the client method
#: that issues it.  This mapping is the protocol's single declaration
#: point — the ``protocol-completeness`` lint rule cross-checks it
#: against the server dispatch and the client surface, so adding an op
#: here without wiring both sides (or vice versa) fails the build.
REQUEST_KINDS: Dict[str, str] = {
    "ping": "ping",
    "run": "run_grid",
    "check": "check",
    "cancel": "cancel",
    "metrics": "metrics",
    "shutdown": "shutdown",
}


class ServiceError(ReproError):
    """A service request failed (transport error or remote exception).

    For remote exceptions, ``remote_type`` holds the exception class
    name raised in the daemon and the message embeds the remote
    traceback text.
    """

    def __init__(self, message: str, remote_type: Optional[str] = None) -> None:
        super().__init__(message)
        self.remote_type = remote_type


class ProtocolError(ServiceError):
    """A malformed frame (bad length, bad JSON, bad envelope)."""


class ServiceBusyError(ServiceError):
    """The daemon refused admission (quota / backpressure).

    This is the structured back-off signal: the daemon is healthy but
    at its configured concurrency bound (``max_pending_jobs`` across
    all clients, or ``max_jobs_per_client`` for this connection).  The
    request was *not* queued — retrying later is safe and expected.
    On the wire it is an error frame with ``"busy": true`` alongside
    the usual error payload.
    """


class JobCancelledError(ServiceError):
    """A submitted job was cancelled before it completed.

    Raised remotely by the scheduler when a ``cancel`` op matches the
    job's tag (or its client disconnects with ``cancel_on_disconnect``),
    and re-raised under the same type by the client.
    """


class DeadlineExceeded(ServiceError):
    """A request's ``deadline_ms`` budget ran out before it completed.

    Raised by the scheduler whether the job was still queued, between
    dispatches, or mid-shard (in-flight shards are cancelled by killing
    their workers); re-raised under the same type by the client.  The
    deadline is the *caller's* latency contract — distinct from the
    server-side ``job_timeout`` safety net, which raises
    ``ParallelExecutionError``.
    """


class ServiceUnavailableError(ServiceError):
    """No daemon answered at the socket path (connect-level failure).

    Raised only before a request frame is sent, so it is always safe to
    retry — which is exactly what :class:`ServiceClient`'s backoff and
    :class:`~repro.session.Session`'s ``on_unavailable="fallback"``
    degradation key on.
    """


# -- framing ------------------------------------------------------------------


def pack_frame(message: Dict[str, Any]) -> bytes:
    """One wire frame for ``message``: length header + compact JSON."""
    body = json.dumps(
        message, separators=(",", ":"), ensure_ascii=False
    ).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
        )
    registry = get_registry()
    registry.counter("wire.frames").inc()
    registry.histogram("wire.frame_bytes", BYTE_BUCKETS).observe(len(body))
    return _FRAME_HEADER.pack(len(body)) + body


def _decode_body(body: bytes) -> Dict[str, Any]:
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame body: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame body must be a JSON object, got {type(message).__name__}"
        )
    return message  # json object keys are always str


def _check_length(length: int) -> None:
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame header announces {length} bytes, over the "
            f"{MAX_FRAME_BYTES}-byte cap"
        )


def send_frame(sock: socket_module.socket, message: Dict[str, Any]) -> None:
    """Write one frame to a blocking socket."""
    # Wire-drop site *before* any byte leaves: a fired fault models a
    # peer that vanished between frames, never a half-written frame.
    fault_point("wire.client.send")
    sock.sendall(pack_frame(message))


def _recv_exact(sock: socket_module.socket, n: int) -> Optional[bytes]:
    """Exactly ``n`` bytes from a blocking socket; ``None`` on clean EOF."""
    chunks: List[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if chunks:
                raise ProtocolError(
                    f"connection closed mid-frame ({n - remaining} of {n} bytes)"
                )
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket_module.socket) -> Optional[Dict[str, Any]]:
    """Read one frame from a blocking socket; ``None`` on clean EOF."""
    fault_point("wire.client.recv")
    header = _recv_exact(sock, _FRAME_HEADER.size)
    if header is None:
        return None
    (length,) = _FRAME_HEADER.unpack(header)
    _check_length(length)
    body = _recv_exact(sock, length)
    if body is None:
        raise ProtocolError("connection closed between header and body")
    return _decode_body(body)


async def read_frame(reader: "asyncio.StreamReader") -> Optional[Dict[str, Any]]:
    """Read one frame from an asyncio stream; ``None`` on clean EOF."""
    import asyncio

    try:
        header = await reader.readexactly(_FRAME_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF at a frame boundary
        raise ProtocolError("connection closed mid-header") from exc
    (length,) = _FRAME_HEADER.unpack(header)
    _check_length(length)
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc
    return _decode_body(body)


async def write_frame(writer: "asyncio.StreamWriter", message: Dict[str, Any]) -> None:
    """Write one frame to an asyncio stream (and drain)."""
    fault_point("wire.server.send")
    writer.write(pack_frame(message))
    await writer.drain()


# -- envelopes ----------------------------------------------------------------


def ok_response(request_id: object, result: Any) -> Dict[str, Any]:
    return {"id": request_id, "ok": True, "result": result}


def error_response(request_id: object, exc: BaseException) -> Dict[str, Any]:
    return {
        "id": request_id,
        "ok": False,
        "error": {
            "type": type(exc).__name__,
            "message": str(exc),
            "traceback": traceback_module.format_exc(),
        },
    }


def busy_response(request_id: object, exc: BaseException) -> Dict[str, Any]:
    """An error frame flagged ``"busy": true`` (admission refused).

    Busy is a *control-flow* signal, not a failure: no traceback rides
    along, and clients are expected to branch on the flag (or the
    :class:`ServiceBusyError` type) rather than log it as an error.
    """
    return {
        "id": request_id,
        "ok": False,
        "busy": True,
        "error": {"type": "ServiceBusyError", "message": str(exc)},
    }


#: Remote exception types that re-raise as a dedicated client-side
#: class (so callers can catch backpressure / cancellation without
#: string-matching); everything else becomes a plain ServiceError.
_REMOTE_ERROR_TYPES: Dict[str, Type[ServiceError]] = {
    "ServiceBusyError": ServiceBusyError,
    "JobCancelledError": JobCancelledError,
    "DeadlineExceeded": DeadlineExceeded,
    "ProtocolError": ProtocolError,
}


def raise_remote_error(error: Dict[str, Any]) -> None:
    """Re-raise a response's error payload as a :class:`ServiceError`."""
    remote_type = error.get("type", "Exception")
    message = error.get("message", "(no message)")
    trace = (error.get("traceback") or "").rstrip()
    text = f"service request failed: {remote_type}: {message}"
    if trace:
        text += f"\n--- remote traceback ---\n{trace}"
    error_class = _REMOTE_ERROR_TYPES.get(remote_type, ServiceError)
    raise error_class(text, remote_type=remote_type)


# -- spanners -----------------------------------------------------------------


def encode_spanner(spanner: object) -> Dict[str, Optional[str]]:
    """A JSON payload for a spanner (``SpannerNFA`` or ``SpannerSpec``)."""
    from repro.engine.spec import SpannerSpec

    spec = SpannerSpec.of(spanner)
    if spec.pattern is not None:
        return {"pattern": spec.pattern, "alphabet": spec.alphabet}
    return {
        "pickle": base64.b64encode(
            pickle.dumps(spec.nfa, protocol=pickle.HIGHEST_PROTOCOL)
        ).decode("ascii")
    }


def decode_spanner(payload: Dict[str, Any]) -> "SpannerSpec":
    """The :class:`~repro.engine.spec.SpannerSpec` for a wire payload."""
    from repro.engine.spec import SpannerSpec

    if not isinstance(payload, dict):
        raise ProtocolError(f"bad spanner payload: {payload!r}")
    if "pattern" in payload:
        return SpannerSpec(
            pattern=payload["pattern"], alphabet=payload.get("alphabet")
        )
    if "pickle" in payload:
        nfa = pickle.loads(base64.b64decode(payload["pickle"]))
        return SpannerSpec(nfa=nfa)
    raise ProtocolError(f"spanner payload needs 'pattern' or 'pickle': {payload!r}")


# -- results ------------------------------------------------------------------


def encode_span_tuple(tup: SpanTuple) -> List[List[object]]:
    """``[[var, start, end], ...]``, variable-sorted (canonical)."""
    return [[var, span.start, span.end] for var, span in sorted(tup.items())]


def decode_span_tuple(payload: Any) -> SpanTuple:
    return SpanTuple(
        {var: Span(start, end) for var, start, end in payload}
    )


def encode_result(task: str, value: Any) -> Any:
    """The canonical JSON form of one task result (see module docstring)."""
    if task in ("count", "nonempty"):
        return value
    if task == "evaluate":
        return sorted(encode_span_tuple(tup) for tup in value)
    return [encode_span_tuple(tup) for tup in value]  # enumerate: keep order


def decode_result(task: str, payload: Any) -> Any:
    if task == "count":
        return int(payload)
    if task == "nonempty":
        return bool(payload)
    if task == "evaluate":
        return frozenset(decode_span_tuple(p) for p in payload)
    return [decode_span_tuple(p) for p in payload]


__all__ = [
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "REQUEST_KINDS",
    "DeadlineExceeded",
    "JobCancelledError",
    "ProtocolError",
    "ServiceBusyError",
    "ServiceError",
    "ServiceUnavailableError",
    "busy_response",
    "decode_result",
    "decode_span_tuple",
    "decode_spanner",
    "encode_result",
    "encode_span_tuple",
    "encode_spanner",
    "error_response",
    "ok_response",
    "pack_frame",
    "raise_remote_error",
    "read_frame",
    "recv_frame",
    "send_frame",
    "write_frame",
]
