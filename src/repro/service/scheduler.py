"""The daemon's multi-tenant fleet scheduler: many jobs, one fleet.

PR 5's daemon ran every request through a single-thread executor and
the fleet's FIFO :meth:`~repro.parallel.pool.WorkerPool.run` — one
corpus-sized ``batch`` starved every small ``query`` behind it.  The
:class:`FleetScheduler` replaces that with shard-level interleaving: a
dedicated scheduler thread exclusively owns the
:class:`~repro.service.fleet.PersistentFleet` and multiplexes shards
from *all* admitted jobs across it.

Scheduling discipline — weighted fair queueing over virtual time:

* every job carries a virtual time; dispatching one of its shards
  advances it by ``shard.cost / 2**priority``, so a job's share of the
  fleet is proportional to its priority weight;
* a newly admitted job joins at the scheduler's virtual clock (the
  last dispatch's start tag), so it competes immediately instead of
  queueing behind the backlog of earlier jobs — the fairness property
  the bench gate measures (small-query p50 during a big batch stays
  within a small multiple of idle latency);
* among jobs with pending shards, the lowest virtual time wins;
  admission order breaks ties.

Tenant isolation — the part that makes this safe to share:

* shards are re-tagged with globally unique ids at admission, so every
  worker message is attributable to exactly one job; late ``done`` /
  ``error`` messages from a cancelled or failed job are recognised and
  dropped instead of corrupting another tenant's bookkeeping (the old
  design's answer was to hard-replace the whole fleet, killing every
  tenant's warm caches);
* retry and crash budgets are *per job*: a tenant whose spanner
  deterministically crashes its workers fails alone, with its own
  :class:`~repro.parallel.pool.ParallelExecutionError`, while the
  scheduler respawns the crashed workers and every other job keeps
  running;
* admission is bounded (``max_pending_jobs`` fleet-wide,
  ``max_jobs_per_client`` per connection): past the bound, submission
  raises :class:`~repro.service.protocol.ServiceBusyError` — a
  structured back-off signal — instead of queueing unbounded latency;
* jobs are cancellable mid-flight (wire ``cancel`` op by tag, or
  client disconnect): pending shards are dropped immediately, the
  waiter is released with
  :class:`~repro.service.protocol.JobCancelledError`, and any in-flight
  shard finishes as a no-op on arrival.

Threading contract: the scheduler thread is the *only* thread that
touches the fleet after :meth:`start` (spawn, reap, dispatch, pipe
reads) — the same one-driver rule :meth:`WorkerPool.run` relies on.
Job bookkeeping is shared with submitter threads and is guarded by one
lock; :meth:`snapshot` serves the daemon's ``ping`` from a
lock-protected copy instead of letting the event loop read fleet
internals mid-mutation.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, replace
from multiprocessing import connection
from typing import Any, Deque, Dict, List, Optional, Sequence

from concurrent.futures import Future

from repro.engine.spec import SpannerSpec, TaskSpec
from repro.faults import fault_point
from repro.obs.metrics import get_registry, merge_snapshots
from repro.obs.trace import get_tracer
from repro.parallel.pool import ParallelExecutionError, _debug
from repro.parallel.sharding import Shard, ShardPlan

from repro.service.fleet import PersistentFleet
from repro.service.protocol import (
    DeadlineExceeded,
    JobCancelledError,
    ServiceBusyError,
    ServiceError,
)

#: Priorities outside this band are clamped: the weight is ``2**p``, and
#: a runaway exponent must not be able to freeze every other tenant.
PRIORITY_MIN = -8
PRIORITY_MAX = 8

#: Fallback cost for shards whose plan carries none: virtual time must
#: always advance, or one job could monopolise the fleet for free.
MIN_SHARD_COST = 1.0


@dataclass
class JobResult:
    """What a completed job's future resolves to."""

    results: List[object]
    shards: int
    retries: int = 0
    workers_crashed: int = 0


class Job:
    """One admitted grid evaluation: its shard queue and bookkeeping.

    Created by :meth:`FleetScheduler.submit`; waiters block on
    :attr:`future` (a :class:`concurrent.futures.Future`, bridgeable
    into asyncio with ``wrap_future``), which resolves to a
    :class:`JobResult` or raises the job's failure.
    """

    __slots__ = (
        "job_id",
        "tag",
        "client_id",
        "priority",
        "weight",
        "specs",
        "task",
        "num_items",
        "num_shards",
        "pending",
        "payloads",
        "retries",
        "retries_total",
        "crashes",
        "vtime",
        "deadline",
        "client_deadline",
        "mean_cost",
        "cancel_on_disconnect",
        "future",
        "submitted_at",
        "queue_span",
    )

    def __init__(
        self,
        job_id: int,
        specs: Sequence[SpannerSpec],
        task: TaskSpec,
        num_items: int,
        *,
        priority: int = 0,
        tag: Optional[str] = None,
        client_id: Optional[int] = None,
        cancel_on_disconnect: bool = False,
        deadline: Optional[float] = None,
        client_deadline: Optional[float] = None,
    ) -> None:
        self.job_id = job_id
        self.tag = tag
        self.client_id = client_id
        self.priority = max(PRIORITY_MIN, min(PRIORITY_MAX, int(priority)))
        self.weight = 2.0 ** self.priority
        self.specs = tuple(specs)
        self.task = task
        self.num_items = num_items
        self.num_shards = 0  # set at admission, after re-tagging
        self.pending: Deque[Shard] = deque()
        self.payloads: Dict[int, List] = {}  # global shard id -> [(index, result)]
        self.retries: Dict[int, int] = {}  # global shard id -> attempts failed
        self.retries_total = 0
        self.crashes = 0  # workers this job's shards took down
        self.vtime = 0.0
        #: ``deadline`` is the server-side safety net (``job_timeout``);
        #: ``client_deadline`` is the caller's latency contract
        #: (``deadline_ms`` on the wire) — they expire with different
        #: exception types, so the two slots stay separate.
        self.deadline = deadline
        self.client_deadline = client_deadline
        self.mean_cost = MIN_SHARD_COST  # set at admission, from the plan
        self.cancel_on_disconnect = cancel_on_disconnect
        self.future: "Future[JobResult]" = Future()
        self.submitted_at = time.monotonic()
        # Queue-time span: opened at admission when the task carries a
        # trace context, finished at this job's *first* shard dispatch —
        # so a trace separates time-waiting-for-the-fleet from time-on-it.
        self.queue_span = None
        if task.trace is not None:
            self.queue_span = get_tracer().begin(
                "scheduler.queue",
                parent=task.trace,
                job=job_id,
                tag=tag,
                priority=self.priority,
            )

    def finish_queue_span(self) -> None:
        if self.queue_span is not None:
            self.queue_span.finish()
            self.queue_span = None

    @property
    def done(self) -> bool:
        return self.future.done()


@dataclass
class SchedulerStats:
    """Monotonic counters, snapshotted into ``ping`` responses."""

    jobs_admitted: int = 0
    jobs_completed: int = 0
    jobs_failed: int = 0
    jobs_cancelled: int = 0
    jobs_rejected_busy: int = 0
    jobs_deadline_exceeded: int = 0
    shards_dispatched: int = 0
    shard_retries: int = 0
    workers_crashed: int = 0
    watchdog_kills: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


class FleetScheduler:
    """Weighted-fair, cancellable, quota-bounded multiplexer of one
    :class:`PersistentFleet` across concurrent jobs (see module doc)."""

    def __init__(
        self,
        fleet: PersistentFleet,
        *,
        max_pending_jobs: int = 32,
        max_jobs_per_client: int = 8,
        max_retries: Optional[int] = None,
        job_timeout: Optional[float] = None,
        shard_timeout: Optional[float] = None,
    ) -> None:
        self.fleet = fleet
        self.max_pending_jobs = max_pending_jobs
        self.max_jobs_per_client = max_jobs_per_client
        self.max_retries = fleet.max_retries if max_retries is None else max_retries
        self.job_timeout = fleet.timeout if job_timeout is None else job_timeout
        #: Hung-shard watchdog base: the execution allowance, in seconds,
        #: of a shard of its job's *mean* planned cost.  A costlier shard
        #: gets proportionally longer, and every failed attempt doubles
        #: the allowance so a merely-slow shard converges instead of
        #: being killed forever.  ``None`` disables the watchdog.
        self.shard_timeout = shard_timeout
        self._lock = threading.Lock()
        self._jobs: Dict[int, Job] = {}  # admitted, not yet resolved
        self._shard_owner: Dict[int, Job] = {}  # global shard id -> job
        #: Latest cumulative registry snapshot per worker ("done"/"bye"
        #: messages carry them; merged on demand by :meth:`metrics`).
        self._worker_metrics: Dict[int, Dict[str, Any]] = {}
        #: Dispatch timestamps of in-flight shards (per-shard latency,
        #: and the watchdog's notion of how long a shard has been out).
        self._dispatched_at: Dict[int, float] = {}
        #: Shards whose worker the watchdog already killed: guards
        #: against double-kills between the kill and the EOF reap.
        self._watchdog_killed: set = set()
        self._next_job_id = 1
        self._next_shard_id = 0
        self._vclock = 0.0
        self._stats = SchedulerStats()
        self._snapshot: Dict[str, Any] = {}
        self._stop = False
        self._thread: Optional[threading.Thread] = None
        # The wake pipe sits in the same connection.wait() as the worker
        # result pipes: submit/cancel poke it so the scheduler reacts
        # immediately instead of on its next poll tick.
        self._wake_rx, self._wake_tx = connection.Pipe(duplex=False)

    # -- lifecycle (caller threads) -------------------------------------

    def start(self) -> "FleetScheduler":
        """Open the fleet and start the scheduler thread (idempotent)."""
        if self._thread is not None:
            return self
        self.fleet.open()
        with self._lock:
            self._update_snapshot_locked()
        self._thread = threading.Thread(
            target=self._loop, name="repro-fleet-scheduler", daemon=True
        )
        self._thread.start()
        return self

    def close(self, timeout: float = 60.0) -> None:
        """Stop scheduling and release the fleet (idempotent).

        Outstanding jobs are failed with a shutting-down error; the
        scheduler thread then closes the fleet gracefully (sentinels,
        bounded goodbye window).  A wedged scheduler thread falls back
        to a hard fleet abort so shutdown stays bounded.
        """
        with self._lock:
            self._stop = True
        self._wake()
        thread = self._thread
        if thread is None:
            with self._lock:
                self._fail_all_jobs_locked(ServiceError("scheduler never started"))
            self.fleet.close()
            return
        thread.join(timeout=timeout)
        if thread.is_alive():  # pragma: no cover - defensive backstop
            self.fleet.abort()

    @property
    def running(self) -> bool:
        return (
            self._thread is not None and self._thread.is_alive() and not self._stop
        )

    # -- admission / cancellation (caller threads) ----------------------

    def submit(
        self,
        plan: ShardPlan,
        spanners: Sequence[SpannerSpec],
        task: TaskSpec,
        *,
        priority: int = 0,
        tag: Optional[str] = None,
        client_id: Optional[int] = None,
        cancel_on_disconnect: bool = False,
        deadline: Optional[float] = None,
    ) -> Job:
        """Admit one grid evaluation; returns its :class:`Job`.

        Raises :class:`ServiceBusyError` when admission would exceed
        ``max_pending_jobs`` or the client's ``max_jobs_per_client``
        quota — the job is *not* queued in that case.  ``deadline`` is
        the caller's latency budget in *seconds* (the wire carries
        ``deadline_ms``): past it the job fails with
        :class:`DeadlineExceeded` whether it is queued, between
        dispatches, or mid-shard.
        """
        fault_point("sched.admit")
        now = time.monotonic()
        job_deadline = (
            None if self.job_timeout is None else now + self.job_timeout
        )
        client_deadline = None if deadline is None else now + deadline
        with self._lock:
            if self._stop or self._thread is None:
                raise ServiceError("the scheduler is not accepting jobs (shutting down)")
            if len(self._jobs) >= self.max_pending_jobs:
                self._stats.jobs_rejected_busy += 1
                raise ServiceBusyError(
                    f"daemon at capacity: {len(self._jobs)} jobs admitted "
                    f"(max_pending_jobs={self.max_pending_jobs}); retry later"
                )
            if client_id is not None:
                mine = sum(
                    1 for j in self._jobs.values() if j.client_id == client_id
                )
                if mine >= self.max_jobs_per_client:
                    self._stats.jobs_rejected_busy += 1
                    raise ServiceBusyError(
                        f"client quota exhausted: {mine} jobs in flight "
                        f"(max_jobs_per_client={self.max_jobs_per_client}); "
                        "retry later"
                    )
            job = Job(
                self._next_job_id,
                spanners,
                task,
                plan.num_items,
                priority=priority,
                tag=tag,
                client_id=client_id,
                cancel_on_disconnect=cancel_on_disconnect,
                deadline=job_deadline,
                client_deadline=client_deadline,
            )
            self._next_job_id += 1
            # Re-tag shards with globally unique ids: worker messages for
            # dead jobs must stay attributable (and droppable) forever.
            for shard in plan.shards:
                sid = self._next_shard_id
                self._next_shard_id += 1
                tagged = replace(shard, shard_id=sid)
                job.pending.append(tagged)
                self._shard_owner[sid] = job
            job.num_shards = len(job.pending)
            if job.num_shards:
                job.mean_cost = max(
                    MIN_SHARD_COST, plan.total_cost / job.num_shards
                )
            job.vtime = self._vclock  # join *now*, not behind the backlog
            self._jobs[job.job_id] = job
            self._stats.jobs_admitted += 1
            _debug(
                "scheduler admit job", job.job_id, "shards", job.num_shards,
                "priority", job.priority, "tag", tag, "client", client_id,
            )
            if job.num_shards == 0:  # empty grid: resolve immediately
                self._resolve_locked(job)
                job.future.set_result(JobResult(results=[], shards=0))
                self._stats.jobs_completed += 1
        self._wake()
        return job

    def cancel(
        self,
        *,
        tag: Optional[str] = None,
        client_id: Optional[int] = None,
        on_disconnect: bool = False,
    ) -> int:
        """Cancel every matching unresolved job; returns how many.

        Matching is the conjunction of the given criteria; pass
        ``on_disconnect=True`` to additionally require the job to have
        opted into disconnect cancellation.
        """
        cancelled = 0
        with self._lock:
            for job in list(self._jobs.values()):
                if tag is not None and job.tag != tag:
                    continue
                if client_id is not None and job.client_id != client_id:
                    continue
                if on_disconnect and not job.cancel_on_disconnect:
                    continue
                self._cancel_job_locked(job)
                cancelled += 1
        if cancelled:
            self._wake()
        return cancelled

    def snapshot(self) -> Dict[str, Any]:
        """The latest scheduler-built status snapshot (for ``ping``).

        Taken under the scheduler lock, so it is internally consistent —
        never a torn read of a fleet mid-respawn.
        """
        with self._lock:
            return dict(self._snapshot)

    # -- job resolution (any thread, lock held) -------------------------

    def _resolve_locked(self, job: Job) -> None:
        """Remove a job from the active set and drop its pending shards."""
        job.finish_queue_span()
        self._jobs.pop(job.job_id, None)
        while job.pending:
            shard = job.pending.popleft()
            self._shard_owner.pop(shard.shard_id, None)
        # In-flight shard ids stay in _shard_owner: their late messages
        # must still resolve to this (done) job so they can be dropped.

    def _cancel_job_locked(self, job: Job) -> None:
        self._resolve_locked(job)
        if not job.done:
            job.future.set_exception(
                JobCancelledError(
                    f"job {job.job_id}"
                    + (f" (tag {job.tag!r})" if job.tag else "")
                    + " was cancelled"
                )
            )
            self._stats.jobs_cancelled += 1

    def _fail_job_locked(self, job: Job, exc: BaseException) -> None:
        self._resolve_locked(job)
        if not job.done:
            job.future.set_exception(exc)
            self._stats.jobs_failed += 1

    def _complete_job_locked(self, job: Job) -> None:
        self._resolve_locked(job)
        if job.done:  # pragma: no cover - cancelled in the same beat
            return
        results: List[object] = [None] * job.num_items
        for payload in job.payloads.values():
            for index, result in payload:
                results[index] = result
        job.future.set_result(
            JobResult(
                results=results,
                shards=job.num_shards,
                retries=job.retries_total,
                workers_crashed=job.crashes,
            )
        )
        self._stats.jobs_completed += 1
        # The slow-query log: completed jobs land with their tenant tag,
        # so one tenant's q² blowup dragging the fleet is visible from
        # `stats --connect` without reading a full trace.
        elapsed = time.monotonic() - job.submitted_at
        registry = get_registry()
        registry.histogram("scheduler.job_seconds").observe(elapsed)
        registry.slow.record(
            f"job:{job.task.task}",
            elapsed,
            job=job.job_id,
            tag=job.tag,
            client=job.client_id,
            shards=job.num_shards,
            items=job.num_items,
            priority=job.priority,
        )

    def _fail_all_jobs_locked(self, exc: BaseException) -> None:
        for job in list(self._jobs.values()):
            self._fail_job_locked(job, exc)

    # -- the scheduler loop (scheduler thread only) ---------------------

    def _loop(self) -> None:
        try:
            while True:
                with self._lock:
                    if self._stop:
                        break
                    # Expire *before* dispatching: a job whose deadline
                    # already passed must not get fleet time this beat
                    # (the queued / pre-dispatch expiry stages).
                    self._expire_locked()
                    self._dispatch_locked()
                    self._watchdog_locked()
                    self._update_snapshot_locked()
                self._poll(0.1)
        finally:
            with self._lock:
                self._fail_all_jobs_locked(
                    ServiceError("daemon shutting down; job abandoned")
                )
                self._update_snapshot_locked()
            self.fleet.close()

    def _wake(self) -> None:
        try:
            self._wake_tx.send(None)
        except (OSError, ValueError):  # closing down
            pass

    def _pick_job_locked(self) -> Optional[Job]:
        best: Optional[Job] = None
        for job in self._jobs.values():
            if not job.pending or job.done:
                continue
            if best is None or job.vtime < best.vtime:
                best = job  # ties: admission (dict) order wins
        return best

    def _dispatch_locked(self) -> None:
        for worker in self.fleet.idle_workers():
            job = self._pick_job_locked()
            if job is None:
                return
            shard = job.pending.popleft()
            self._vclock = max(self._vclock, job.vtime)
            job.vtime += max(shard.cost, MIN_SHARD_COST) / job.weight
            worker.assigned = shard
            _debug(
                "scheduler dispatch shard", shard.shard_id, "of job",
                job.job_id, "-> worker", worker.wid,
            )
            if not worker.send(
                self.fleet._shard_message(shard, job.specs, job.task)
            ):
                # Died between messages; the reaper attributes the crash.
                continue
            job.finish_queue_span()
            self._dispatched_at[shard.shard_id] = time.monotonic()
            self._stats.shards_dispatched += 1

    def _expire_locked(self) -> None:
        if not self._jobs:
            return
        now = time.monotonic()
        for job in list(self._jobs.values()):
            if job.client_deadline is not None and now > job.client_deadline:
                budget = job.client_deadline - job.submitted_at
                self._fail_job_locked(
                    job,
                    DeadlineExceeded(
                        f"job {job.job_id} exceeded its {budget:.3g}s deadline "
                        f"({len(job.payloads)}/{job.num_shards} shards done)"
                    ),
                )
                self._stats.jobs_deadline_exceeded += 1
                # The waiter is already released; reclaim the fleet time
                # its in-flight shards are still burning.
                self._kill_job_workers_locked(job)
            elif job.deadline is not None and now > job.deadline:
                self._fail_job_locked(
                    job,
                    ParallelExecutionError(
                        f"job {job.job_id} exceeded its "
                        f"{self.job_timeout}s timeout "
                        f"({len(job.payloads)}/{job.num_shards} shards done)"
                    ),
                )

    def _kill_job_workers_locked(self, job: Job) -> None:
        """Cancel a resolved job's in-flight shards by killing workers.

        Only called once the job's future is resolved: the results can
        never be used, so the workers running its shards are killed and
        respawned by the reaper instead of burning fleet time other
        tenants could use.  Orphaned shard ids stay in ``_shard_owner``
        until the reap drops them, exactly like any late message.
        """
        for worker in self.fleet._worker_snapshot():
            shard = worker.assigned
            if shard is None or self._shard_owner.get(shard.shard_id) is not job:
                continue
            _debug(
                "scheduler deadline kill worker", worker.wid,
                "shard", shard.shard_id, "job", job.job_id,
            )
            try:
                worker.process.kill()
            except OSError:  # pragma: no cover - already gone
                pass

    def _watchdog_locked(self) -> None:
        """Kill workers whose shard is past its execution allowance.

        The allowance scales with the shard's planned cost relative to
        its job's mean (``shard.cost`` is the plan's cost model) and
        doubles with every prior failed attempt, so a legitimately slow
        shard eventually gets through while a truly wedged worker is
        killed, respawned, and its shard retried under the job's normal
        retry budget.
        """
        if self.shard_timeout is None:
            return
        now = time.monotonic()
        for worker in self.fleet._worker_snapshot():
            shard = worker.assigned
            if shard is None or shard.shard_id in self._watchdog_killed:
                continue
            started = self._dispatched_at.get(shard.shard_id)
            if started is None:
                continue
            job = self._shard_owner.get(shard.shard_id)
            allowance = self._shard_allowance_locked(job, shard)
            if now - started <= allowance:
                continue
            self._watchdog_killed.add(shard.shard_id)
            self._stats.watchdog_kills += 1
            get_registry().counter("sched.watchdog_kills").inc()
            _debug(
                "scheduler watchdog kill worker", worker.wid, "shard",
                shard.shard_id, "overdue", round(now - started, 3),
                "allowance", round(allowance, 3),
            )
            try:
                worker.process.kill()
            except OSError:  # pragma: no cover - already gone
                pass

    def _shard_allowance_locked(self, job: Optional[Job], shard: Shard) -> float:
        assert self.shard_timeout is not None
        scale = 1.0
        attempts = 0
        if job is not None:
            scale = max(1.0, max(shard.cost, MIN_SHARD_COST) / job.mean_cost)
            attempts = job.retries.get(shard.shard_id, 0)
        return self.shard_timeout * scale * (2.0 ** attempts)

    def _poll(self, timeout: float) -> None:
        conns = self.fleet.connection_map()
        waitables: List[object] = list(conns)
        waitables.append(self._wake_rx)
        for ready in connection.wait(waitables, timeout=timeout):
            if ready is self._wake_rx:
                try:
                    while self._wake_rx.poll():
                        self._wake_rx.recv()
                except (EOFError, OSError):  # pragma: no cover
                    pass
                continue
            worker = conns[ready]
            try:
                message = worker.result_conn.recv()
            except (EOFError, OSError):
                self._reap(worker)
                continue
            self._handle(worker, message)
        # Backstop for exotic deaths that leave the pipe open.
        for worker in list(self.fleet.connection_map().values()):
            if worker.process.exitcode is not None and not worker.result_conn.poll():
                self._reap(worker)

    def _handle(self, worker, message) -> None:
        kind = message[0]
        _debug("scheduler recv", kind, "from worker", worker.wid)
        if kind == "ready":
            worker.ready = True
            return
        if kind == "bye":  # pragma: no cover - close() drains these
            return
        with self._lock:
            if kind == "done":
                _, _, shard_id, payload, metrics = message
                worker.assigned = None
                self._worker_metrics[worker.wid] = metrics  # cumulative
                self._watchdog_killed.discard(shard_id)
                self._observe_shard_latency_locked(shard_id)
                job = self._shard_owner.pop(shard_id, None)
                if job is None or job.done:
                    _debug("scheduler drop late done for shard", shard_id)
                    return
                if shard_id not in job.payloads:  # a retry may double-report
                    job.payloads[shard_id] = payload
                if len(job.payloads) == job.num_shards:
                    self._complete_job_locked(job)
            elif kind == "error":
                _, _, shard_id, trace = message
                shard, worker.assigned = worker.assigned, None
                if shard is None:
                    return  # hydration failure pre-ready; EOF reap follows
                self._dispatched_at.pop(shard.shard_id, None)
                self._watchdog_killed.discard(shard.shard_id)
                job = self._shard_owner.get(shard.shard_id)
                if job is None or job.done:
                    self._shard_owner.pop(shard.shard_id, None)
                    _debug("scheduler drop late error for shard", shard.shard_id)
                    return
                self._retry_shard_locked(job, shard, trace)

    def _observe_shard_latency_locked(self, shard_id) -> None:
        started = self._dispatched_at.pop(shard_id, None)
        if started is not None:
            get_registry().histogram("scheduler.shard_seconds").observe(
                time.monotonic() - started
            )

    def _retry_shard_locked(self, job: Job, shard: Shard, why: str) -> None:
        """Re-queue one failed shard against the job's own retry budget."""
        count = job.retries.get(shard.shard_id, 0) + 1
        job.retries[shard.shard_id] = count
        job.retries_total += 1
        self._stats.shard_retries += 1
        if count > self.max_retries:
            self._fail_job_locked(
                job,
                ParallelExecutionError(
                    f"shard {shard.shard_id} of job {job.job_id} failed "
                    f"{count} times (max_retries={self.max_retries}); "
                    f"last failure:\n{why}"
                ),
            )
            return
        job.pending.appendleft(shard)  # retry soon, at the job's own vtime

    def _reap(self, worker) -> None:
        """Remove a dead worker, charge its job, respawn a replacement."""
        with self._lock:
            self.fleet.remove_worker(worker.wid)
            self._stats.workers_crashed += 1
            _debug(
                "scheduler reap worker", worker.wid,
                "exitcode", worker.process.exitcode,
            )
            shard = worker.assigned
            if shard is not None:
                worker.assigned = None
                self._dispatched_at.pop(shard.shard_id, None)
                watchdogged = shard.shard_id in self._watchdog_killed
                self._watchdog_killed.discard(shard.shard_id)
                job = self._shard_owner.get(shard.shard_id)
                if job is not None and not job.done:
                    job.crashes += 1
                    if watchdogged:
                        why = (
                            f"worker {worker.wid} was killed by the "
                            f"hung-shard watchdog: shard {shard.shard_id} "
                            f"exceeded its execution allowance "
                            f"(shard_timeout={self.shard_timeout}s)"
                        )
                    else:
                        why = (
                            f"worker {worker.wid} died (exit code "
                            f"{worker.process.exitcode}) while running shard "
                            f"{shard.shard_id}"
                        )
                    self._retry_shard_locked(job, shard, why)
                else:
                    self._shard_owner.pop(shard.shard_id, None)
        # A persistent fleet is kept at strength unconditionally: it
        # serves every tenant, not just the one whose shard crashed.
        self.fleet.spawn_worker()

    def metrics(self) -> Dict[str, Any]:
        """The merged metrics view served by the ``metrics`` wire op.

        ``daemon`` is this process's registry (wire, scheduler, and —
        when the server evaluates in-process — engine metrics, plus the
        slow-query log); ``workers`` merges the latest cumulative
        snapshot of every fleet worker; ``combined`` folds both.
        """
        daemon = get_registry().snapshot()
        with self._lock:
            worker_snapshots = list(self._worker_metrics.values())
        workers = merge_snapshots(worker_snapshots)
        return {
            "daemon": daemon,
            "workers": workers,
            "combined": merge_snapshots([daemon, workers]),
        }

    def _update_snapshot_locked(self) -> None:
        queued = sum(len(j.pending) for j in self._jobs.values())
        # _shard_owner holds exactly the queued and in-flight shard ids
        # (completed ones are popped on arrival), so the difference is
        # what is on the workers right now — including orphaned shards
        # of cancelled jobs still draining.
        inflight = len(self._shard_owner) - queued
        scheduler: Dict[str, Any] = {
            "active_jobs": len(self._jobs),
            "queued_shards": queued,
            "inflight_shards": max(inflight, 0),
            "max_pending_jobs": self.max_pending_jobs,
            "max_jobs_per_client": self.max_jobs_per_client,
        }
        scheduler.update(self._stats.as_dict())
        # Mirror the queue state and counters into the metrics registry:
        # gauges merge by max, so the merged view reports high-water
        # marks; the counters are set (not inc'd) to stay cumulative.
        registry = get_registry()
        registry.gauge("scheduler.active_jobs").set(len(self._jobs))
        registry.gauge("scheduler.queued_shards").set(queued)
        registry.gauge("scheduler.inflight_shards").set(max(inflight, 0))
        for name, value in self._stats.as_dict().items():
            registry.counter(f"scheduler.{name}").value = value
        workers = self.fleet._worker_snapshot()
        self._snapshot = {
            "jobs": self.fleet.jobs,
            "alive": sum(1 for w in workers if w.process.exitcode is None),
            "pids": [w.process.pid for w in workers],
            "scheduler": scheduler,
        }


__all__ = [
    "FleetScheduler",
    "Job",
    "JobResult",
    "PRIORITY_MAX",
    "PRIORITY_MIN",
    "SchedulerStats",
]
