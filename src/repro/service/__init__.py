"""The service daemon: amortise preprocessing across *processes*.

The parallel layer (PR 3) amortises work across the workers of one
call; this package amortises it across *invocations*.  ``repro-spanner
serve --socket PATH`` runs a long-lived asyncio daemon
(:mod:`repro.service.server`) that owns a persistent worker fleet
(:mod:`repro.service.fleet` — the PR 3 pool with the spawn/teardown
moved out of the request path), multiplexes it across concurrent
tenants with a weighted-fair shard scheduler
(:mod:`repro.service.scheduler` — priorities, cancellation, quotas,
``busy`` backpressure), and answers length-prefixed JSON requests
(:mod:`repro.service.protocol`) over a unix socket.  Clients —
``repro-spanner query/batch/stats --connect PATH``, or any
:class:`~repro.session.Session` opened with ``repro.connect(path)`` —
get bit-identical results to the in-process engine while the daemon
keeps worker hydration, spanner resolution and the in-memory
preprocessing caches warm between them.

Typical use::

    # terminal 1 (or a systemd unit):
    #   repro-spanner serve --socket /run/repro.sock --store /var/repro

    from repro import connect

    with connect("/run/repro.sock") as session:
        counts = session.corpus(spanner, paths, task="count")
"""

from repro.service.client import ServiceClient, wait_ready
from repro.service.fleet import PersistentFleet
from repro.service.protocol import (
    DeadlineExceeded,
    JobCancelledError,
    ProtocolError,
    ServiceBusyError,
    ServiceError,
    ServiceUnavailableError,
)
from repro.service.scheduler import FleetScheduler
from repro.service.server import ServiceThread, SpannerService, serve

__all__ = [
    "DeadlineExceeded",
    "FleetScheduler",
    "JobCancelledError",
    "PersistentFleet",
    "ProtocolError",
    "ServiceBusyError",
    "ServiceClient",
    "ServiceError",
    "ServiceThread",
    "ServiceUnavailableError",
    "SpannerService",
    "serve",
    "wait_ready",
]
