"""The blocking service client: one socket, many requests.

A :class:`ServiceClient` keeps a single unix-socket connection to a
running daemon (the server handles many frames per connection) and maps
the wire ops onto typed methods.  Transport failures close the socket
and raise :class:`~repro.service.protocol.ServiceError`; a later call
reconnects, so a daemon restart does not strand a long-lived client
object.  Remote exceptions arrive as error responses and re-raise with
the daemon-side traceback embedded.

Failure semantics (see CONTRIBUTING.md, "Failure semantics"):

* **connect** failures raise
  :class:`~repro.service.protocol.ServiceUnavailableError` and are
  retried ``retries`` times with exponential backoff + jitter — no
  request frame was sent, so a retry can never duplicate work;
* **busy** frames (:class:`~repro.service.protocol.ServiceBusyError`)
  are retried only when ``busy_retries`` is set: busy means the job was
  *not* admitted, so a retry is safe, but the default is to surface
  backpressure to the caller immediately;
* a failure **mid round-trip** (send succeeded, response lost) is never
  retried — the daemon may have admitted the job — and surfaces as
  :class:`~repro.service.protocol.ServiceError` on a closed socket;
* ``connect_timeout`` bounds the dial; ``timeout`` bounds every socket
  read/write, so a dead-but-connected peer surfaces as a
  :class:`ServiceError` instead of blocking forever (``None`` blocks
  indefinitely — long-running jobs are instead bounded daemon-side by
  ``deadline_ms`` / the job timeout).

Every retry increments the ``client.retries`` metrics counter.
"""

from __future__ import annotations

import random
import time
from typing import List, Optional, Sequence

import socket as socket_module

from repro.obs.metrics import get_registry
from repro.service import protocol
from repro.service.protocol import ServiceError, ServiceUnavailableError
from repro.spanner.spans import SpanTuple


class ServiceClient:
    """A blocking client for one ``repro-spanner serve`` daemon."""

    def __init__(
        self,
        socket_path: str,
        *,
        timeout: Optional[float] = None,
        connect_timeout: float = 10.0,
        retries: int = 2,
        busy_retries: int = 0,
        backoff: float = 0.05,
        backoff_max: float = 2.0,
        jitter: float = 0.25,
    ) -> None:
        self.socket_path = socket_path
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self.retries = max(0, int(retries))
        self.busy_retries = max(0, int(busy_retries))
        self.backoff = backoff
        self.backoff_max = backoff_max
        self.jitter = jitter
        self._sock: Optional[socket_module.socket] = None
        self._next_id = 0

    # -- transport ------------------------------------------------------

    def _connection(self) -> socket_module.socket:
        if self._sock is None:
            sock = socket_module.socket(
                socket_module.AF_UNIX, socket_module.SOCK_STREAM
            )
            sock.settimeout(self.connect_timeout)
            try:
                sock.connect(self.socket_path)
            except OSError as exc:
                sock.close()
                raise ServiceUnavailableError(
                    f"cannot connect to the repro service at "
                    f"{self.socket_path!r}: {exc} — is 'repro-spanner serve' "
                    f"running?"
                ) from exc
            sock.settimeout(self.timeout)
            self._sock = sock
        return self._sock

    def _backoff_delay(self, attempt: int) -> float:
        """Exponential backoff with jitter for retry ``attempt`` (1-based)."""
        base = min(self.backoff_max, self.backoff * (2.0 ** (attempt - 1)))
        return base * (1.0 + self.jitter * random.random())

    def request(self, op: str, **params):
        """One request/response round trip; returns the result payload.

        Retries (with backoff) only the two provably-safe failures:
        connection refused before any byte was sent, and a structured
        ``busy`` refusal (the job was not admitted).  Anything after a
        request frame went out is surfaced, never resent.
        """
        attempt = 0
        connect_left = self.retries
        busy_left = self.busy_retries
        while True:
            try:
                return self._request_once(op, params)
            except ServiceUnavailableError:
                if connect_left <= 0:
                    raise
                connect_left -= 1
            except protocol.ServiceBusyError:
                if busy_left <= 0:
                    raise
                busy_left -= 1
            attempt += 1
            get_registry().counter("client.retries").inc()
            time.sleep(self._backoff_delay(attempt))

    def _request_once(self, op: str, params: dict):
        self._next_id += 1
        request_id = self._next_id
        sock = self._connection()
        try:
            protocol.send_frame(sock, {"id": request_id, "op": op, **params})
            response = protocol.recv_frame(sock)
        except (OSError, protocol.ProtocolError) as exc:
            self.close()
            if isinstance(exc, protocol.ProtocolError):
                raise
            raise ServiceError(
                f"transport failure talking to {self.socket_path!r}: {exc}"
            ) from exc
        except BaseException:
            # *Any* other exception mid round-trip (KeyboardInterrupt in
            # a CLI client, MemoryError, a signal-raised error inside
            # recv) can leave a half-written request or half-read
            # response on the wire.  Reusing that socket would misparse
            # the stale remainder as the next frame's length prefix —
            # the desync class this close() prevents; the next request
            # reconnects cleanly.
            self.close()
            raise
        if response is None:
            self.close()
            raise ServiceError(
                f"the service at {self.socket_path!r} closed the connection"
            )
        if response.get("id") != request_id:
            self.close()
            raise ServiceError(
                f"response id {response.get('id')!r} does not match request "
                f"id {request_id} (protocol desync)"
            )
        if not response.get("ok"):
            protocol.raise_remote_error(response.get("error") or {})
        return response.get("result")

    def close(self) -> None:
        """Drop the connection (a later request reconnects)."""
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- ops ------------------------------------------------------------

    def ping(self) -> dict:
        """Daemon liveness + introspection (pid, uptime, fleet, config)."""
        return self.request("ping")

    def run_grid(
        self,
        documents: Sequence[str],
        spanners: Sequence,
        *,
        task: str = "evaluate",
        limit: Optional[int] = None,
        priority: int = 0,
        tag: Optional[str] = None,
        cancel_on_disconnect: bool = False,
        deadline_ms: Optional[int] = None,
        trace: Optional[dict] = None,
        _test_params: Optional[dict] = None,
    ) -> List[object]:
        """The (documents × spanners) grid, row-major, decoded.

        ``priority`` weights this job's share of the fleet (each step
        doubles it); ``tag`` names the job so a *second* connection can
        ``cancel`` it mid-flight (this client blocks until the response,
        so it cannot cancel its own in-flight request);
        ``cancel_on_disconnect`` makes the daemon abandon the job the
        moment this client's connection drops.  ``deadline_ms`` is the
        caller's latency budget: past it the daemon fails the job with
        :class:`~repro.service.protocol.DeadlineExceeded` (re-raised
        here under the same type) and cancels its in-flight shards.  An
        over-capacity daemon
        raises :class:`~repro.service.protocol.ServiceBusyError` without
        queueing the job.  ``trace`` is a wire-encoded
        :class:`~repro.obs.trace.TraceContext` (see ``to_wire``) naming
        the client span daemon-side spans should parent to; like every
        optional field it is attached only when set, so untraced frames
        stay byte-identical to pre-tracing clients.  ``_test_params``
        merges extra request fields (the fault-injection hooks of the
        scheduler tests).
        """
        params: dict = dict(
            documents=list(documents),
            spanners=[protocol.encode_spanner(sp) for sp in spanners],
            task=task,
            limit=limit,
        )
        if priority:
            params["priority"] = int(priority)
        if tag is not None:
            params["tag"] = tag
        if cancel_on_disconnect:
            params["cancel_on_disconnect"] = True
        if deadline_ms is not None:
            params["deadline_ms"] = deadline_ms
        if trace is not None:
            params["trace"] = trace
        if _test_params:
            params.update(_test_params)
        payload = self.request("run", **params)
        return [
            protocol.decode_result(payload["task"], value)
            for value in payload["results"]
        ]

    def cancel(self, tag: str) -> int:
        """Cancel every job submitted with ``tag``; returns how many."""
        payload = self.request("cancel", tag=tag)
        return int(payload["cancelled"])

    def check(self, document: str, spanner, span_tuple: SpanTuple) -> bool:
        """``t ∈ ⟦M⟧(D)`` for a document path."""
        return bool(
            self.request(
                "check",
                document=document,
                spanner=protocol.encode_spanner(spanner),
                tuple=protocol.encode_span_tuple(span_tuple),
            )
        )

    def metrics(self) -> dict:
        """The daemon's merged metrics view (``repro.obs``).

        Three registries: ``daemon`` (the server process — scheduler
        gauges, wire frame sizes, job latencies, the slow-query log),
        ``workers`` (the fleet's snapshots, merged), and ``combined``.
        """
        return self.request("metrics")

    def shutdown(self) -> dict:
        """Ask the daemon to stop (it replies, then winds down)."""
        return self.request("shutdown")


def wait_ready(
    socket_path: str, *, timeout: float = 30.0, interval: float = 0.1
) -> dict:
    """Poll until a daemon answers ``ping`` on ``socket_path``.

    The readiness barrier for scripts that just spawned ``repro-spanner
    serve``; returns the ping payload, raises :class:`ServiceError` on
    timeout.
    """
    deadline = time.monotonic() + timeout
    last_error: Optional[BaseException] = None
    while time.monotonic() < deadline:
        # retries=0: this loop *is* the retry policy, with its own clock.
        client = ServiceClient(
            socket_path, timeout=min(timeout, 5.0), retries=0
        )
        try:
            return client.ping()
        except ServiceError as exc:
            last_error = exc
            time.sleep(interval)
        finally:
            client.close()
    raise ServiceError(
        f"no service became ready on {socket_path!r} within {timeout}s: "
        f"{last_error}"
    )


__all__ = ["ServiceClient", "wait_ready"]
