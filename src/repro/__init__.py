"""repro: regular document-spanner evaluation over SLP-compressed documents.

A from-scratch reproduction of Schmid & Schweikardt, *Spanner Evaluation
over SLP-Compressed Documents*, PODS 2021 (arXiv:2101.10890).

Quickstart — open a :class:`~repro.session.Session` and ask it things::

    from repro import connect, compile_spanner, bisection_slp

    doc = "loglogloglog..."            # a (possibly huge) document
    slp = bisection_slp(doc)           # compressed representation
    spanner = compile_spanner(r"(?P<x>a+)b", alphabet="ab")

    with connect() as session:         # in-process backend
        session.is_nonempty(spanner, slp)        # Theorem 5.1.1
        session.evaluate(spanner, slp)           # Theorem 7.1
        for tup in session.enumerate(spanner, slp):  # Theorem 8.10
            ...
        session.corpus(spanner, paths, task="count")  # batch shapes

One :class:`~repro.session.SessionConfig` carries every knob the old
surfaces re-threaded separately — preprocessing store, cache key mode,
kernel backend, worker count, padding::

    session = connect(store_dir=".prep", jobs=8, kernel="numpy")

and the same calls can be routed through a long-lived daemon
(``repro-spanner serve --socket /run/repro.sock``) whose persistent
worker fleet keeps the ``O(size(S) · q²)`` preprocessing warm *across*
processes::

    session = connect("/run/repro.sock")   # daemon backend, same results

The lower layers stay public for direct use: the single-pair
:class:`CompressedSpannerEvaluator`, the caching :class:`Engine`
(``evaluate_many`` / ``evaluate_corpus`` and friends) and the sharded
``parallel_corpus`` / ``parallel_many`` entry points — a ``Session``
composes them, it does not replace them.
"""

from repro.errors import (
    AutomatonError,
    DecompressionLimitExceeded,
    EvaluationError,
    GrammarError,
    NotInNormalForm,
    RegexSyntaxError,
    ReproError,
)
from repro.slp import (
    SLP,
    balance,
    balanced_slp,
    bisection_slp,
    lz_slp,
    power_slp,
    repair_slp,
)

__version__ = "1.0.0"

from repro.spanner import (  # noqa: E402
    Span,
    SpanTuple,
    SpannerDFA,
    SpannerNFA,
    compile_spanner,
    join_spanners,
    project_spanner,
    rename_spanner,
    union_spanners,
)
from repro.core import (  # noqa: E402
    CompressedSpannerEvaluator,
    IncrementalSpannerIndex,
    RankedAccess,
    count_results,
    ranked_access,
)
from repro.baselines import UncompressedEvaluator  # noqa: E402

# Compatibility surfaces: `Engine` and the `parallel_*` functions predate
# the Session API and keep working unchanged — they are the low-level
# core a Session routes through.  New code should start at `connect()`.
from repro.engine import Engine, evaluate_corpus, evaluate_many  # noqa: E402
from repro.parallel import parallel_corpus, parallel_many  # noqa: E402
from repro.session import Session, SessionConfig, connect  # noqa: E402
from repro.slp.edits import SlpEditor  # noqa: E402
from repro.store import PreprocessingStore  # noqa: E402

__all__ = [
    "SLP",
    "AutomatonError",
    "CompressedSpannerEvaluator",
    "DecompressionLimitExceeded",
    "Engine",
    "EvaluationError",
    "GrammarError",
    "IncrementalSpannerIndex",
    "NotInNormalForm",
    "PreprocessingStore",
    "RankedAccess",
    "RegexSyntaxError",
    "ReproError",
    "Session",
    "SessionConfig",
    "SlpEditor",
    "Span",
    "SpanTuple",
    "SpannerDFA",
    "SpannerNFA",
    "UncompressedEvaluator",
    "balance",
    "balanced_slp",
    "bisection_slp",
    "compile_spanner",
    "connect",
    "count_results",
    "evaluate_corpus",
    "evaluate_many",
    "join_spanners",
    "lz_slp",
    "parallel_corpus",
    "parallel_many",
    "power_slp",
    "project_spanner",
    "ranked_access",
    "rename_spanner",
    "repair_slp",
    "union_spanners",
]
