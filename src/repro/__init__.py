"""repro: regular document-spanner evaluation over SLP-compressed documents.

A from-scratch reproduction of Schmid & Schweikardt, *Spanner Evaluation
over SLP-Compressed Documents*, PODS 2021 (arXiv:2101.10890).

Quickstart::

    from repro import compile_spanner, bisection_slp, CompressedSpannerEvaluator

    doc = "loglogloglog..."            # a (possibly huge) document
    slp = bisection_slp(doc)           # compressed representation
    spanner = compile_spanner(r"(?P<x>a+)b", alphabet="ab")
    ev = CompressedSpannerEvaluator(spanner, slp)
    ev.is_nonempty()                   # Theorem 5.1.1
    ev.evaluate()                      # Theorem 7.1
    for tup in ev.enumerate():         # Theorem 8.10
        ...

For many queries and/or many documents, use the batch engine instead —
it caches balanced/padded SLPs, prepared automata and the Lemma 6.5
preprocessing tables across calls::

    from repro import Engine

    engine = Engine()
    engine.count_many(spanners, slp)        # document shared across queries
    engine.evaluate_corpus(spanner, slps)   # automaton shared across documents
"""

from repro.errors import (
    AutomatonError,
    DecompressionLimitExceeded,
    EvaluationError,
    GrammarError,
    NotInNormalForm,
    RegexSyntaxError,
    ReproError,
)
from repro.slp import (
    SLP,
    balance,
    balanced_slp,
    bisection_slp,
    lz_slp,
    power_slp,
    repair_slp,
)

__version__ = "1.0.0"

from repro.spanner import (  # noqa: E402
    Span,
    SpanTuple,
    SpannerDFA,
    SpannerNFA,
    compile_spanner,
    join_spanners,
    project_spanner,
    rename_spanner,
    union_spanners,
)
from repro.core import (  # noqa: E402
    CompressedSpannerEvaluator,
    IncrementalSpannerIndex,
    RankedAccess,
    count_results,
    ranked_access,
)
from repro.baselines import UncompressedEvaluator  # noqa: E402
from repro.engine import Engine, evaluate_corpus, evaluate_many  # noqa: E402
from repro.parallel import parallel_corpus, parallel_many  # noqa: E402
from repro.slp.edits import SlpEditor  # noqa: E402
from repro.store import PreprocessingStore  # noqa: E402

__all__ = [
    "SLP",
    "CompressedSpannerEvaluator",
    "Engine",
    "IncrementalSpannerIndex",
    "PreprocessingStore",
    "RankedAccess",
    "SlpEditor",
    "Span",
    "SpanTuple",
    "SpannerDFA",
    "SpannerNFA",
    "UncompressedEvaluator",
    "balance",
    "balanced_slp",
    "bisection_slp",
    "compile_spanner",
    "count_results",
    "evaluate_corpus",
    "evaluate_many",
    "join_spanners",
    "lz_slp",
    "parallel_corpus",
    "parallel_many",
    "power_slp",
    "project_spanner",
    "ranked_access",
    "rename_spanner",
    "repair_slp",
    "union_spanners",
]
