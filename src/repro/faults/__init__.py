"""``repro.faults`` — deterministic, composable fault injection.

Failure handling only stays correct if faults are first-class and
continuously exercised, so this package makes them injectable anywhere
in the stack: production code declares *sites* (:func:`fault_point`
for control flow, :func:`mangle` for byte streams) that cost nothing
until a *plan* is armed via the ``REPRO_FAULTS`` environment variable
(inherited by ``multiprocessing``-spawned fleet workers) or
:func:`set_plan` in tests.  Kinds cover the failure modes the daemon
promises to survive: worker ``crash`` and ``hang``, raised ``error``,
``enospc``, wire ``drop``, byte ``corrupt`` and ``torn`` writes —
each addressable by site pattern with probability / nth-hit /
file-counter triggers, seeded for reproducibility.  See
:mod:`repro.faults.plan` for the rule syntax and the chaos-lane
conventions in CONTRIBUTING.md ("Failure semantics").
"""

from repro.faults.plan import (
    CONTROL_KINDS,
    CRASH_EXIT_CODE,
    DATA_KINDS,
    FAULTS_ENV,
    FAULTS_SEED_ENV,
    FaultPlan,
    FaultRule,
    InjectedFault,
    KINDS,
    apply_rule,
    fault_point,
    get_plan,
    inject,
    mangle,
    parse_plan,
    parse_rule,
    reset_plan,
    set_plan,
)

__all__ = [
    "CONTROL_KINDS",
    "CRASH_EXIT_CODE",
    "DATA_KINDS",
    "FAULTS_ENV",
    "FAULTS_SEED_ENV",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "KINDS",
    "apply_rule",
    "fault_point",
    "get_plan",
    "inject",
    "mangle",
    "parse_plan",
    "parse_rule",
    "reset_plan",
    "set_plan",
]
