"""Composable, deterministic fault injection (see ``repro.faults``).

A *fault plan* is a list of rules, each binding an injection **site**
pattern (``fnmatch`` over dotted site names like ``worker.shard`` or
``store.save.bytes``) to a fault **kind** and a trigger.  Production
code declares sites with two calls that are no-ops unless a plan is
active:

* :func:`fault_point` — a control-flow site: the matched rule can
  crash the process, hang it, raise :class:`InjectedFault`, raise
  ``ENOSPC``, or drop the connection (``ConnectionResetError``);
* :func:`mangle` — a byte-stream site: the matched rule can corrupt
  one byte (``corrupt``) or truncate to a prefix (``torn``), modelling
  bit rot and torn writes.

Plans are parsed from the ``REPRO_FAULTS`` environment variable (rules
separated by ``;``)::

    REPRO_FAULTS='worker.shard:crash:nth=1,counter=/tmp/c;store.load.bytes:corrupt:p=0.5'
    REPRO_FAULTS_SEED=7

Rule syntax: ``site:kind[:key=value[,key=value...]]`` with keys

``p``
    fire with this probability per hit (seeded RNG — deterministic for
    a given ``REPRO_FAULTS_SEED`` and hit sequence);
``nth``
    fire only on the *nth* hit of this rule (1-based) — or, combined
    with ``counter``, on every hit **while** the cross-process counter
    is ≤ ``nth`` (the respawn-survival semantics crash tests need);
``times``
    stop firing after this many injections;
``arg``
    kind parameter: seconds for ``hang`` (default 30), kept prefix
    fraction for ``torn`` (default 0.5);
``counter``
    path of a file-backed hit counter shared across process respawns
    (each hit appends one byte; the file's size is the count).

The plan is process-global, loaded lazily from the environment on the
first declared site (so ``multiprocessing``-spawned workers inherit it
through their environment), and replaceable in tests via
:func:`set_plan`.  With no plan active every site is a cheap early
return, which is what lets the sites ride hot paths (``bench_service``
gates the disabled path at ≤ 3% overhead).  Every injection increments
the ``faults.injected`` counter in the process's metrics registry.
"""

from __future__ import annotations

import errno
import os
import random
import threading
import time
from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.obs.metrics import get_registry

#: Environment variables that arm the layer.
FAULTS_ENV = "REPRO_FAULTS"
FAULTS_SEED_ENV = "REPRO_FAULTS_SEED"

#: Control-flow kinds (applied at :func:`fault_point` and, for byte
#: sites, before the data kinds at :func:`mangle`).
CONTROL_KINDS = ("crash", "hang", "error", "enospc", "drop")
#: Byte-stream kinds (applied only at :func:`mangle`).
DATA_KINDS = ("corrupt", "torn")
KINDS = CONTROL_KINDS + DATA_KINDS

#: Exit code used by injected crashes — distinct from real faults so a
#: test can tell an injected death from an accidental one.
CRASH_EXIT_CODE = 17


class InjectedFault(ReproError):
    """Raised by an ``error``-kind fault rule at a matched site."""


@dataclass(frozen=True)
class FaultRule:
    """One parsed rule of a fault plan (see module doc for semantics)."""

    site: str
    kind: str
    p: float = 1.0
    nth: Optional[int] = None
    times: Optional[int] = None
    arg: Optional[float] = None
    counter: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r} (expected one of {', '.join(KINDS)})"
            )
        if not self.site:
            raise ValueError("fault rule needs a non-empty site pattern")
        if not (0.0 <= self.p <= 1.0):
            raise ValueError(f"fault probability must be in [0, 1], got {self.p}")
        if self.counter is not None and self.nth is None:
            raise ValueError("counter= requires nth= (fire while count <= nth)")

    def matches(self, site: str) -> bool:
        return fnmatchcase(site, self.site)


def parse_rule(text: str) -> FaultRule:
    """Parse one ``site:kind[:key=value,...]`` rule."""
    parts = text.strip().split(":", 2)
    if len(parts) < 2:
        raise ValueError(
            f"bad fault rule {text!r}: expected 'site:kind[:key=value,...]'"
        )
    site, kind = parts[0].strip(), parts[1].strip()
    options: Dict[str, str] = {}
    if len(parts) == 3 and parts[2].strip():
        for pair in parts[2].split(","):
            key, sep, value = pair.partition("=")
            if not sep:
                raise ValueError(
                    f"bad fault option {pair!r} in rule {text!r}: expected key=value"
                )
            options[key.strip()] = value.strip()
    known = {"p", "nth", "times", "arg", "counter"}
    unknown = set(options) - known
    if unknown:
        raise ValueError(
            f"unknown fault option(s) {sorted(unknown)} in rule {text!r}"
        )
    return FaultRule(
        site=site,
        kind=kind,
        p=float(options.get("p", 1.0)),
        nth=int(options["nth"]) if "nth" in options else None,
        times=int(options["times"]) if "times" in options else None,
        arg=float(options["arg"]) if "arg" in options else None,
        counter=options.get("counter"),
    )


def parse_plan(spec: str, *, seed: int = 0) -> "FaultPlan":
    """Parse a ``;``-separated rule list into a :class:`FaultPlan`."""
    rules = [parse_rule(part) for part in spec.split(";") if part.strip()]
    return FaultPlan(rules, seed=seed)


def _bump_file_counter(path: str) -> int:
    """Append one byte to ``path``; return the resulting count.

    The file-backed counter survives process respawns, which is what
    lets a ``crash`` rule fire on the first N attempts and then let the
    replacement worker through — the semantics the retry tests need.
    """
    with open(path, "ab") as fh:
        fh.write(b"\x00")
    return os.path.getsize(path)


class FaultPlan:
    """An armed set of :class:`FaultRule`\\ s with per-rule trigger state.

    Thread-safe: hit counts and the seeded RNG are guarded by a lock
    (sites fire from the scheduler thread, the asyncio loop, and client
    threads of the same process).
    """

    def __init__(self, rules: Sequence[FaultRule], *, seed: int = 0) -> None:
        self.rules: Tuple[FaultRule, ...] = tuple(rules)
        self.seed = seed
        self._rng = random.Random(seed)
        self._hits: Dict[int, int] = {}
        self._fired: Dict[int, int] = {}
        self._lock = threading.Lock()

    def __repr__(self) -> str:
        return f"FaultPlan(rules={len(self.rules)}, seed={self.seed})"

    # -- trigger evaluation ---------------------------------------------

    def _should_fire_locked(self, index: int, rule: FaultRule) -> bool:
        hits = self._hits.get(index, 0) + 1
        self._hits[index] = hits
        fired = self._fired.get(index, 0)
        if rule.times is not None and fired >= rule.times:
            return False
        if rule.counter is not None:
            count = _bump_file_counter(rule.counter)
            fire = rule.nth is not None and count <= rule.nth
        elif rule.nth is not None:
            fire = hits == rule.nth
        elif rule.p < 1.0:
            fire = self._rng.random() < rule.p
        else:
            fire = True
        if fire:
            self._fired[index] = fired + 1
        return fire

    def fire(self, site: str, kinds: Sequence[str]) -> Optional[FaultRule]:
        """Return the first rule for ``site`` (restricted to ``kinds``)
        whose trigger fires at this hit, updating trigger state."""
        with self._lock:
            for index, rule in enumerate(self.rules):
                if rule.kind not in kinds or not rule.matches(site):
                    continue
                if self._should_fire_locked(index, rule):
                    return rule
        return None

    def deterministic_int(self, bound: int) -> int:
        """A seeded draw in ``[0, bound)`` (byte positions for ``corrupt``)."""
        with self._lock:
            return self._rng.randrange(bound)


# -- the process-global plan ------------------------------------------------

_plan: Optional[FaultPlan] = None
_env_checked = False
_plan_lock = threading.Lock()


def get_plan() -> Optional[FaultPlan]:
    """The active plan: explicit (:func:`set_plan`) or environment-loaded."""
    global _plan, _env_checked
    if _env_checked:
        return _plan
    with _plan_lock:
        if not _env_checked:
            spec = os.environ.get(FAULTS_ENV)
            if spec:
                seed = int(os.environ.get(FAULTS_SEED_ENV, "0"))
                _plan = parse_plan(spec, seed=seed)
            _env_checked = True
    return _plan


def set_plan(plan: Optional[FaultPlan]) -> None:
    """Install ``plan`` as the process's active plan (tests; ``None``
    disarms the layer regardless of the environment)."""
    global _plan, _env_checked
    with _plan_lock:
        _plan = plan
        _env_checked = True


def reset_plan() -> None:
    """Forget any installed plan and re-read the environment lazily."""
    global _plan, _env_checked
    with _plan_lock:
        _plan = None
        _env_checked = False


# -- applying a fired rule --------------------------------------------------

def _count_injection(site: str, rule: FaultRule) -> None:
    get_registry().counter("faults.injected").inc()


def apply_rule(rule: FaultRule, site: str) -> None:
    """Execute a fired control-kind rule at ``site``."""
    _count_injection(site, rule)
    if rule.kind == "crash":
        os._exit(CRASH_EXIT_CODE)
    if rule.kind == "hang":
        time.sleep(rule.arg if rule.arg is not None else 30.0)
        return
    if rule.kind == "error":
        raise InjectedFault(f"injected fault at site {site!r}")
    if rule.kind == "enospc":
        raise OSError(
            errno.ENOSPC,
            f"{os.strerror(errno.ENOSPC)} [injected at site {site!r}]",
        )
    if rule.kind == "drop":
        raise ConnectionResetError(f"injected wire drop at site {site!r}")
    raise ValueError(
        f"rule kind {rule.kind!r} is not a control kind"
    )  # pragma: no cover - guarded by fire(kinds=...)


def inject(rule: FaultRule, site: str) -> None:
    """Evaluate one standalone rule's trigger and apply it if it fires.

    The compatibility entry point for the legacy per-shard
    ``fault_token`` strings (``parallel.worker.maybe_inject_fault``),
    which predate plans: the token is translated to a rule and run
    through the same trigger/apply machinery as planned faults.
    """
    plan = FaultPlan([rule], seed=0)
    fired = plan.fire(site, CONTROL_KINDS)
    if fired is not None:
        apply_rule(fired, site)


def fault_point(site: str) -> None:
    """Declare a control-flow injection site (no-op unless armed)."""
    plan = get_plan()
    if plan is None:
        return
    rule = plan.fire(site, CONTROL_KINDS)
    if rule is not None:
        apply_rule(rule, site)


def mangle(site: str, data: bytes) -> bytes:
    """Declare a byte-stream injection site; returns the (possibly
    corrupted or truncated) payload.  No-op unless armed."""
    plan = get_plan()
    if plan is None:
        return data
    rule = plan.fire(site, CONTROL_KINDS)
    if rule is not None:
        apply_rule(rule, site)
    rule = plan.fire(site, DATA_KINDS)
    if rule is None:
        return data
    _count_injection(site, rule)
    if not data:
        return data
    if rule.kind == "corrupt":
        position = plan.deterministic_int(len(data))
        mutated = bytearray(data)
        mutated[position] ^= 0xFF
        return bytes(mutated)
    # torn: keep a deterministic prefix, as if the write was cut short.
    fraction = rule.arg if rule.arg is not None else 0.5
    keep = max(1, min(len(data) - 1, int(len(data) * fraction)))
    return data[:keep]


__all__ = [
    "CONTROL_KINDS",
    "CRASH_EXIT_CODE",
    "DATA_KINDS",
    "FAULTS_ENV",
    "FAULTS_SEED_ENV",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "KINDS",
    "apply_rule",
    "fault_point",
    "get_plan",
    "inject",
    "mangle",
    "parse_plan",
    "parse_rule",
    "reset_plan",
    "set_plan",
]
