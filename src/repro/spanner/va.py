"""Variable-set automata (VAs) and conversion to extended/NFA form (Sec. 3.3).

The original spanner paper of Fagin et al. represents regular spanners by
*variable-set automata*: NFAs whose arcs carry either a document symbol or a
**single** marker ``⊿x`` / ``◁x``.  Consecutive markers are read one at a
time, so the same (document, span-tuple) pair has many encodings.

The paper (and this library) instead uses the *extended* form, where a
maximal block of consecutive markers is merged into one marker-**set**
symbol.  :func:`to_extended_nfa` performs the classic conversion: for every
pair of states connected by a path of distinct markers (and ε-arcs) it adds
one marker-set arc.  The conversion can blow up exponentially in ``|X|`` in
the worst case (this is unavoidable, see [9] cited in the paper); for the
pattern-derived VAs produced by :mod:`repro.spanner.regex` it is linear.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import AutomatonError
from repro.spanner.automaton import EPSILON, NFABuilder, SpannerNFA
from repro.spanner.markers import CLOSE, OPEN, Marker


class VSetAutomaton:
    """A variable-set automaton: arcs carry chars, single markers, or ε.

    States are ``0 .. num_states-1`` with start ``0``, mirroring
    :class:`~repro.spanner.automaton.SpannerNFA`.
    """

    __slots__ = ("num_states", "accepting", "_delta")

    start: int = 0

    def __init__(
        self,
        num_states: int,
        transitions: Dict[int, Dict[object, FrozenSet[int]]],
        accepting: Iterable[int],
    ) -> None:
        self.num_states = num_states
        self.accepting = frozenset(accepting)
        self._delta = {
            state: {symbol: frozenset(targets) for symbol, targets in row.items() if targets}
            for state, row in transitions.items()
        }
        for state, row in self._delta.items():
            if not 0 <= state < num_states:
                raise AutomatonError(f"state {state} out of range")
            for symbol, targets in row.items():
                for target in targets:
                    if not 0 <= target < num_states:
                        raise AutomatonError(f"state {target} out of range")

    def successors(self, state: int, symbol: object) -> FrozenSet[int]:
        return self._delta.get(state, {}).get(symbol, frozenset())

    def arcs(self) -> Iterator[Tuple[int, object, int]]:
        for state in sorted(self._delta):
            for symbol, targets in self._delta[state].items():
                for target in sorted(targets):
                    yield state, symbol, target

    @property
    def variables(self) -> FrozenSet[str]:
        out: Set[str] = set()
        for _s, symbol, _t in self.arcs():
            if isinstance(symbol, Marker):
                out.add(symbol.var)
        return frozenset(out)

    # -- direct runs (sequence semantics, used by tests) --------------------

    def _closure(self, states: Iterable[int]) -> FrozenSet[int]:
        out = set(states)
        stack = list(out)
        while stack:
            state = stack.pop()
            for target in self.successors(state, EPSILON):
                if target not in out:
                    out.add(target)
                    stack.append(target)
        return frozenset(out)

    def accepts(self, word: Iterable[object]) -> bool:
        """Run on an explicit sequence of chars and single markers."""
        current = self._closure([self.start])
        for item in word:
            nxt: Set[int] = set()
            for state in current:
                nxt.update(self.successors(state, item))
            current = self._closure(nxt)
            if not current:
                return False
        return bool(current & self.accepting)

    def is_functional(self) -> bool:
        """Whether every accepting run defines every variable exactly once.

        Explores the product with the per-variable status vector
        ``{unseen, open, closed}^X``; runs in ``O(states * 3^|X|)`` in the
        worst case, which is fine for the query-sized automata this library
        targets.
        """
        variables = sorted(self.variables)
        index = {var: k for k, var in enumerate(variables)}
        initial = (self.start, (0,) * len(variables))
        seen = {initial}
        stack = [initial]
        while stack:
            state, status = stack.pop()
            if state in self.accepting and any(s != 2 for s in status):
                return False
            for symbol, targets in self._delta.get(state, {}).items():
                if isinstance(symbol, Marker):
                    k = index[symbol.var]
                    if symbol.kind == OPEN:
                        if status[k] != 0:
                            continue  # double open: such runs are dead
                        new_status = status[:k] + (1,) + status[k + 1 :]
                    else:
                        if status[k] != 1:
                            continue
                        new_status = status[:k] + (2,) + status[k + 1 :]
                else:
                    new_status = status
                for target in targets:
                    config = (target, new_status)
                    if config not in seen:
                        seen.add(config)
                        stack.append(config)
        return True

    def __repr__(self) -> str:
        return (
            f"VSetAutomaton(states={self.num_states}, "
            f"accepting={sorted(self.accepting)}, vars={sorted(self.variables)})"
        )


def to_extended_nfa(va: VSetAutomaton) -> SpannerNFA:
    """Convert a VA into an extended spanner NFA over ``Σ ∪ P(Γ_X)``.

    For every maximal path of ε-arcs and pairwise-distinct markers from
    ``p`` to ``q`` reading marker set ``S``, the result has the single arc
    ``p --S--> q``.  Character arcs are kept, ε-arcs are eliminated, and the
    automaton is trimmed.
    """
    builder_arcs: List[Tuple[int, object, int]] = []
    for source, symbol, target in va.arcs():
        if isinstance(symbol, Marker):
            continue
        builder_arcs.append((source, symbol, target))

    # Depth-first search over marker/ε arcs, one source state at a time.
    for source in range(va.num_states):
        stack: List[Tuple[int, FrozenSet[Marker]]] = [(source, frozenset())]
        visited: Set[Tuple[int, FrozenSet[Marker]]] = {(source, frozenset())}
        while stack:
            state, collected = stack.pop()
            if collected and state != source:
                builder_arcs.append((source, collected, state))
            for symbol, targets in va._delta.get(state, {}).items():
                if symbol == EPSILON:
                    extended = collected
                elif isinstance(symbol, Marker):
                    if symbol in collected:
                        continue  # a marker may not repeat within one block
                    extended = collected | {symbol}
                else:
                    continue
                for target in targets:
                    config = (target, extended)
                    if config not in visited:
                        visited.add(config)
                        stack.append(config)
            if collected and state == source:
                builder_arcs.append((source, collected, state))

    transitions: Dict[int, Dict[object, Set[int]]] = {}
    for source, symbol, target in builder_arcs:
        transitions.setdefault(source, {}).setdefault(symbol, set()).add(target)
    # ε-arcs survive into the intermediate automaton and are eliminated below.
    for source, symbol, target in va.arcs():
        if symbol == EPSILON:
            transitions.setdefault(source, {}).setdefault(symbol, set()).add(target)
    nfa = SpannerNFA(
        va.num_states,
        {s: {sym: frozenset(t) for sym, t in row.items()} for s, row in transitions.items()},
        va.accepting,
    )
    return nfa.eliminate_epsilon().trim()
