"""Automaton/document transformations for evaluation (Sec. 6.1).

The paper's evaluation machinery requires spanners to be *non
tail-spanning*: no accepted word ends with a marker-set symbol.  This is
harmless: evaluating ``M`` on ``D`` equals evaluating the padded spanner
``M'`` (with ``L(M') = {w# : w ∈ L(M)}``) on the padded document ``D#``.
This module provides exactly that padding for automata and SLPs, plus the
marker-discipline validator used to sanity-check user-built automata.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.errors import AutomatonError, GrammarError
from repro.slp.grammar import SLP
from repro.spanner.automaton import EPSILON, SpannerDFA, SpannerNFA
from repro.spanner.markers import CLOSE, OPEN, Marker
from repro.spanner.marked_words import is_marker_item

#: Default end-of-document sentinel; must not occur in the document alphabet.
END_SYMBOL = "\x03"  # ASCII "end of text"


def pad_spanner(automaton: SpannerNFA, end_symbol: str = END_SYMBOL) -> SpannerNFA:
    """The spanner ``M'`` with ``L(M') = {w · end_symbol : w ∈ L(M)}``.

    Adds one fresh state ``f⁺`` and arcs ``f --end_symbol--> f⁺`` for every
    accepting ``f``; the only accepting state of the result is ``f⁺``.
    Preserves determinism (a :class:`SpannerDFA` stays a DFA).
    """
    if end_symbol in automaton.sigma:
        raise AutomatonError(f"end symbol {end_symbol!r} already used by the automaton")
    fresh = automaton.num_states
    transitions: Dict[int, Dict[object, FrozenSet[int]]] = {}
    for source, symbol, target in automaton.arcs():
        row = transitions.setdefault(source, {})
        row[symbol] = row.get(symbol, frozenset()) | {target}
    for f in automaton.accepting:
        row = transitions.setdefault(f, {})
        row[end_symbol] = row.get(end_symbol, frozenset()) | {fresh}
    cls = SpannerDFA if isinstance(automaton, SpannerDFA) else SpannerNFA
    return cls(automaton.num_states + 1, transitions, [fresh])


def pad_slp(slp: SLP, end_symbol: str = END_SYMBOL) -> SLP:
    """The SLP for ``D · end_symbol`` (two fresh nonterminals)."""
    if end_symbol in slp.alphabet:
        raise GrammarError(f"end symbol {end_symbol!r} already occurs in the document")
    leaf_name = ("T", end_symbol)
    start_name = "_padded_start"
    while start_name in slp.inner_rules or start_name in slp.leaf_rules:
        start_name += "_"
    inner = dict(slp.inner_rules)
    inner[start_name] = (slp.start, leaf_name)
    leaves = dict(slp.leaf_rules)
    leaves[leaf_name] = end_symbol
    return SLP(inner, leaves, start_name)


def validate_spanner(automaton: SpannerNFA, max_configs: int = 1_000_000) -> List[str]:
    """Check that canonical accepted words are subword-marked (Def. 3.1).

    Explores the product of the automaton with the per-variable discipline
    automaton (states unseen/open/closed), following only *canonical* paths
    (no two adjacent marker-set arcs).  Returns a list of human-readable
    violations; an empty list means the automaton represents a well-formed
    spanner.

    Violations detected:

    * a marker-set arc re-opens or re-closes a variable, or closes an
      unopened one, on some otherwise-accepting path;
    * an accepting state is reachable with a variable opened but not closed.
    """
    variables = sorted(automaton.variables)
    index = {var: k for k, var in enumerate(variables)}
    violations: List[str] = []
    base = automaton.eliminate_epsilon().trim()

    # config: (state, status vector, last-arc-was-marker)
    initial = (base.start, (0,) * len(variables), False)
    seen = {initial}
    stack = [initial]
    explored = 0
    while stack:
        explored += 1
        if explored > max_configs:
            violations.append(f"validation aborted after {max_configs} configurations")
            break
        state, status, after_set = stack.pop()
        if state in base.accepting:
            open_vars = [variables[k] for k, s in enumerate(status) if s == 1]
            if open_vars:
                violations.append(
                    f"accepting state {state} reachable with open variables {open_vars}"
                )
        for symbol, targets in base._delta.get(state, {}).items():
            if is_marker_item(symbol):
                if after_set:
                    continue  # non-canonical path, ignore
                new_status = list(status)
                bad = None
                by_var: Dict[str, Set[str]] = {}
                for marker in symbol:
                    by_var.setdefault(marker.var, set()).add(marker.kind)
                for var, kinds in by_var.items():
                    k = index[var]
                    if kinds == {OPEN, CLOSE}:
                        # both markers at one position: the empty span [i, i⟩
                        if new_status[k] != 0:
                            bad = f"variable {var!r} opened twice (state {state})"
                            break
                        new_status[k] = 2
                    elif kinds == {OPEN}:
                        if new_status[k] != 0:
                            bad = f"variable {var!r} opened twice (state {state})"
                            break
                        new_status[k] = 1
                    else:
                        if new_status[k] != 1:
                            bad = f"variable {var!r} closed while not open (state {state})"
                            break
                        new_status[k] = 2
                if bad is not None:
                    violations.append(bad)
                    continue
                config = (None, tuple(new_status), True)
                for target in targets:
                    config = (target, tuple(new_status), True)
                    if config not in seen:
                        seen.add(config)
                        stack.append(config)
            else:
                for target in targets:
                    config = (target, status, False)
                    if config not in seen:
                        seen.add(config)
                        stack.append(config)
    return sorted(set(violations))


def is_well_formed(automaton: SpannerNFA) -> bool:
    """Boolean form of :func:`validate_spanner`."""
    return not validate_spanner(automaton)
