"""Spans and span-tuples (Sec. 3 of the paper).

A *span* ``[i, j⟩`` of a document ``D`` with ``1 <= i <= j <= |D| + 1``
describes the substring from position ``i`` to position ``j - 1``
(positions are 1-based, as in the paper).  A *span-tuple* is a partial
mapping from a set of variables to spans; variables may be undefined
(the paper's schemaless / non-functional semantics, written ``⊥``).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, NamedTuple, Optional, Tuple


class Span(NamedTuple):
    """The span ``[start, end⟩`` (1-based, end-exclusive).

    >>> Span(1, 3).value("abcde")
    'ab'
    >>> len(Span(2, 2))        # empty span at position 2
    0
    """

    start: int
    end: int

    def value(self, document: str) -> str:
        """``D[start, end⟩`` — the substring this span selects."""
        return document[self.start - 1 : self.end - 1]

    def __len__(self) -> int:
        return self.end - self.start

    def shifted(self, offset: int) -> "Span":
        """The span moved ``offset`` positions to the right."""
        return Span(self.start + offset, self.end + offset)

    def is_valid_for(self, length: int) -> bool:
        """Whether this is a span of a document with ``length`` symbols."""
        return 1 <= self.start <= self.end <= length + 1

    def __repr__(self) -> str:
        return f"[{self.start},{self.end}⟩"


def all_spans(length: int) -> Iterator[Span]:
    """``Spans(D)`` for a document of ``length`` symbols, in lexicographic order."""
    for i in range(1, length + 2):
        for j in range(i, length + 2):
            yield Span(i, j)


class SpanTuple:
    """A partial mapping from variables to spans (an ``(X, D)``-tuple).

    Undefined variables are simply absent; :meth:`get` returns ``None`` for
    them (the paper's ``⊥``).  Instances are immutable and hashable; two
    span-tuples are equal iff they define the same variables with the same
    spans.

    >>> t = SpanTuple({"x": Span(1, 3), "y": Span(3, 5)})
    >>> t["x"]
    [1,3⟩
    >>> t.get("z") is None
    True
    """

    __slots__ = ("_spans", "_hash")

    def __init__(self, spans: Optional[Mapping[str, Optional[Span]]] = None) -> None:
        cleaned: Dict[str, Span] = {}
        if spans:
            for var, span in spans.items():
                if span is None:
                    continue
                if not isinstance(span, Span):
                    span = Span(*span)
                cleaned[var] = span
        self._spans = cleaned
        self._hash = hash(frozenset(cleaned.items()))

    # -- mapping interface ----------------------------------------------

    def __getitem__(self, var: str) -> Span:
        return self._spans[var]

    def get(self, var: str) -> Optional[Span]:
        """The span of ``var``, or ``None`` if undefined (``⊥``)."""
        return self._spans.get(var)

    def __contains__(self, var: str) -> bool:
        return var in self._spans

    def __iter__(self) -> Iterator[str]:
        return iter(self._spans)

    def __len__(self) -> int:
        return len(self._spans)

    @property
    def defined(self) -> frozenset:
        """``dom(t)`` — the set of variables this tuple defines."""
        return frozenset(self._spans)

    def items(self) -> Iterable[Tuple[str, Span]]:
        return self._spans.items()

    def as_dict(self) -> Dict[str, Span]:
        return dict(self._spans)

    # -- semantics -----------------------------------------------------------

    def extract(self, document: str) -> Dict[str, str]:
        """The extracted substrings, one per defined variable."""
        return {var: span.value(document) for var, span in self._spans.items()}

    def is_valid_for(self, length: int) -> bool:
        """Whether every span fits a document of ``length`` symbols."""
        return all(span.is_valid_for(length) for span in self._spans.values())

    def shifted(self, offset: int) -> "SpanTuple":
        return SpanTuple({v: s.shifted(offset) for v, s in self._spans.items()})

    # -- pickling --------------------------------------------------------------

    def __getstate__(self) -> Dict[str, Span]:
        # Only the spans travel.  The cached hash is salted per process
        # (string hash randomisation), so an unpickled copy must recompute
        # it locally — shipping it verbatim breaks every set/dict the
        # tuple lands in after crossing a process boundary (as the
        # repro.parallel workers do under the spawn start method).
        return self._spans

    def __setstate__(self, spans: Dict[str, Span]) -> None:
        self._spans = spans
        self._hash = hash(frozenset(spans.items()))

    # -- equality / display ---------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SpanTuple):
            return NotImplemented
        return self._spans == other._spans

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        if not self._spans:
            return "SpanTuple(∅)"
        parts = ", ".join(f"{v}={s!r}" for v, s in sorted(self._spans.items()))
        return f"SpanTuple({parts})"

    def notation(self, variables: Iterable[str]) -> str:
        """Tuple notation over an ordered variable list, with ``⊥`` for undefined.

        >>> SpanTuple({"x": Span(1, 2)}).notation(["x", "y"])
        '([1,2⟩, ⊥)'
        """
        parts = []
        for var in variables:
            span = self._spans.get(var)
            parts.append("⊥" if span is None else repr(span))
        return "(" + ", ".join(parts) + ")"


#: The span-tuple that defines no variable at all (⟦M⟧(D) may contain it).
EMPTY_TUPLE = SpanTuple()
