"""Spanner automata: NFAs/DFAs over ``Σ ∪ P(Γ_X)`` (Sec. 3.2 / 3.3).

A regular spanner is represented by a finite automaton whose alphabet mixes
document symbols (single-character strings) and marker-set symbols
(``frozenset`` of :class:`~repro.spanner.markers.Marker`).  The automaton
accepts a subword-marked language; its spanner maps a document ``D`` to
``{p(w) : w ∈ L(M), e(w) = D}``.

Deviations from the paper's notation: states are numbered ``0 .. q-1`` with
start state ``0`` (the paper uses ``1 .. q`` with start ``1``) — a pure
indexing convention.

The module provides construction (:class:`NFABuilder`), ε-elimination,
trimming, subset-construction determinisation, and direct runs on explicit
marked words (used by tests and the uncompressed baseline).
"""

from __future__ import annotations

import hashlib
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.errors import AutomatonError
from repro.spanner.markers import Marker, MarkerSetSymbol, format_marker_set
from repro.spanner.marked_words import Item, is_marker_item

#: Sentinel label for ε-transitions.
EPSILON = ("ε",)


class SpannerNFA:
    """A nondeterministic spanner automaton.

    ``transitions`` maps ``state -> {symbol -> frozenset of successor
    states}``; symbols are characters, marker-set symbols, or
    :data:`EPSILON`.
    """

    __slots__ = ("num_states", "accepting", "_delta", "_size", "_digest")

    start: int = 0

    def __init__(
        self,
        num_states: int,
        transitions: Dict[int, Dict[object, FrozenSet[int]]],
        accepting: Iterable[int],
    ) -> None:
        if num_states < 1:
            raise AutomatonError("an automaton needs at least one state")
        self.num_states = num_states
        self.accepting = frozenset(accepting)
        for state in self.accepting:
            if not 0 <= state < num_states:
                raise AutomatonError(f"accepting state {state} out of range")
        self._delta: Dict[int, Dict[object, FrozenSet[int]]] = {}
        size = 0
        for state, by_symbol in transitions.items():
            if not 0 <= state < num_states:
                raise AutomatonError(f"transition source {state} out of range")
            cleaned: Dict[object, FrozenSet[int]] = {}
            for symbol, targets in by_symbol.items():
                targets = frozenset(targets)
                if not targets:
                    continue
                for target in targets:
                    if not 0 <= target < num_states:
                        raise AutomatonError(f"transition target {target} out of range")
                cleaned[symbol] = targets
                size += len(targets)
            if cleaned:
                self._delta[state] = cleaned
        self._size = size
        self._digest: Optional[str] = None

    # -- basic accessors ---------------------------------------------------

    @property
    def size(self) -> int:
        """``|M|`` — the number of transitions (paper's size measure)."""
        return self._size

    def successors(self, state: int, symbol: object) -> FrozenSet[int]:
        """``δ(state, symbol)`` (empty frozenset if undefined)."""
        return self._delta.get(state, {}).get(symbol, frozenset())

    def has_arc(self, source: int, symbol: object, target: int) -> bool:
        """Constant-time arc membership test (Remark 3.4)."""
        return target in self.successors(source, symbol)

    def arcs(self) -> Iterator[Tuple[int, object, int]]:
        """Iterate over all arcs ``(source, symbol, target)`` (Remark 3.4)."""
        for state in sorted(self._delta):
            for symbol, targets in self._delta[state].items():
                for target in sorted(targets):
                    yield state, symbol, target

    def symbols(self) -> Set[object]:
        """All symbols appearing on arcs (excluding ε)."""
        out: Set[object] = set()
        for by_symbol in self._delta.values():
            out.update(by_symbol)
        out.discard(EPSILON)
        return out

    @property
    def sigma(self) -> FrozenSet[str]:
        """The document alphabet Σ used on arcs."""
        return frozenset(s for s in self.symbols() if not is_marker_item(s))

    @property
    def marker_symbols(self) -> FrozenSet[MarkerSetSymbol]:
        """The marker-set symbols from ``P(Γ_X)`` used on arcs."""
        return frozenset(s for s in self.symbols() if is_marker_item(s))

    @property
    def variables(self) -> FrozenSet[str]:
        """The span variables ``X`` mentioned by the automaton."""
        out: Set[str] = set()
        for symbol in self.marker_symbols:
            for marker in symbol:
                out.add(marker.var)
        return frozenset(out)

    @property
    def has_epsilon(self) -> bool:
        return any(EPSILON in by_symbol for by_symbol in self._delta.values())

    @property
    def is_deterministic(self) -> bool:
        """DFA check: no ε-arcs, at most one successor per symbol."""
        for by_symbol in self._delta.values():
            if EPSILON in by_symbol:
                return False
            for targets in by_symbol.values():
                if len(targets) > 1:
                    return False
        return True

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(states={self.num_states}, arcs={self.size}, "
            f"accepting={sorted(self.accepting)}, vars={sorted(self.variables)})"
        )

    def structural_digest(self) -> str:
        """A content hash of the automaton (hex string), cached on the object.

        States are already canonical integers (start is always ``0``), so
        hashing the sorted arc list plus the accepting set is an exact
        content key: two automata get the same digest iff they have the
        same states, arcs and accepting set.  Used by the engine's
        structural cache keys and the on-disk preprocessing store.
        """
        if self._digest is None:
            h = hashlib.blake2b(digest_size=16)
            h.update(self.num_states.to_bytes(4, "little"))
            h.update(b"A" + ",".join(map(str, sorted(self.accepting))).encode())
            arcs = []
            for source, symbol, target in self.arcs():
                if symbol == EPSILON:
                    token = b"e"
                elif isinstance(symbol, frozenset):
                    token = b"f" + format_marker_set(symbol).encode("utf-8")
                else:
                    token = b"s" + str(symbol).encode("utf-8")
                arcs.append((source, token, target))
            # arcs() follows transition-dict insertion order; sort so the
            # digest is a function of the arc *set* only.
            arcs.sort()
            for source, token, target in arcs:
                h.update(source.to_bytes(4, "little"))
                h.update(len(token).to_bytes(4, "little"))
                h.update(token)
                h.update(target.to_bytes(4, "little"))
            self._digest = h.hexdigest()
        return self._digest

    # -- runs on explicit words --------------------------------------------

    def epsilon_closure(self, states: Iterable[int]) -> FrozenSet[int]:
        out = set(states)
        stack = list(out)
        while stack:
            state = stack.pop()
            for target in self.successors(state, EPSILON):
                if target not in out:
                    out.add(target)
                    stack.append(target)
        return frozenset(out)

    def run(self, word: Iterable[Item], frontier: Optional[Iterable[int]] = None) -> FrozenSet[int]:
        """The set of states reachable from ``frontier`` by reading ``word``."""
        current = self.epsilon_closure([self.start] if frontier is None else frontier)
        for item in word:
            nxt: Set[int] = set()
            for state in current:
                nxt.update(self.successors(state, item))
            current = self.epsilon_closure(nxt)
            if not current:
                break
        return frozenset(current)

    def accepts(self, word: Iterable[Item]) -> bool:
        """Whether the (marked) word is in ``L(M)``."""
        return bool(self.run(word) & self.accepting)

    # -- transformations ---------------------------------------------------

    def eliminate_epsilon(self) -> "SpannerNFA":
        """An equivalent automaton without ε-arcs (standard closure)."""
        if not self.has_epsilon:
            return self
        closures = [self.epsilon_closure([s]) for s in range(self.num_states)]
        transitions: Dict[int, Dict[object, FrozenSet[int]]] = {}
        accepting: Set[int] = set()
        for state in range(self.num_states):
            merged: Dict[object, Set[int]] = {}
            for reached in closures[state]:
                if reached in self.accepting:
                    accepting.add(state)
                for symbol, targets in self._delta.get(reached, {}).items():
                    if symbol == EPSILON:
                        continue
                    bucket = merged.setdefault(symbol, set())
                    for target in targets:
                        bucket.update(closures[target])
            if merged:
                transitions[state] = {s: frozenset(t) for s, t in merged.items()}
        return SpannerNFA(self.num_states, transitions, accepting)

    def trim(self) -> "SpannerNFA":
        """Restrict to accessible *and* co-accessible states.

        If the trimmed automaton would be empty (empty language), a single
        non-accepting start state remains so the object stays well-formed.
        """
        automaton = self.eliminate_epsilon()
        forward = {automaton.start}
        stack = [automaton.start]
        while stack:
            state = stack.pop()
            for by_symbol in (automaton._delta.get(state, {}),):
                for targets in by_symbol.values():
                    for target in targets:
                        if target not in forward:
                            forward.add(target)
                            stack.append(target)
        reverse: Dict[int, Set[int]] = {}
        for source, _symbol, target in automaton.arcs():
            reverse.setdefault(target, set()).add(source)
        backward = set(automaton.accepting)
        stack = list(backward)
        while stack:
            state = stack.pop()
            for source in reverse.get(state, ()):
                if source not in backward:
                    backward.add(source)
                    stack.append(source)
        useful = forward & backward
        cls = type(self)
        if automaton.start not in useful:
            return cls(1, {}, [])
        keep = [automaton.start] + sorted(useful - {automaton.start})
        renumber = {old: new for new, old in enumerate(keep)}
        transitions: Dict[int, Dict[object, FrozenSet[int]]] = {}
        for source, symbol, target in automaton.arcs():
            if source in renumber and target in renumber:
                by_symbol = transitions.setdefault(renumber[source], {})
                by_symbol[symbol] = by_symbol.get(symbol, frozenset()) | {renumber[target]}
        accepting = [renumber[s] for s in automaton.accepting if s in renumber]
        return cls(len(keep), transitions, accepting)

    def determinize(self) -> "SpannerDFA":
        """Subset-construction determinisation over the used symbols.

        The result is a (partial) DFA as required by the enumeration
        algorithm (Theorem 8.10 / Lemma 8.8).
        """
        base = self.eliminate_epsilon()
        start = frozenset([base.start])
        index: Dict[FrozenSet[int], int] = {start: 0}
        worklist: List[FrozenSet[int]] = [start]
        transitions: Dict[int, Dict[object, FrozenSet[int]]] = {}
        accepting: Set[int] = set()
        while worklist:
            subset = worklist.pop()
            sid = index[subset]
            if subset & base.accepting:
                accepting.add(sid)
            merged: Dict[object, Set[int]] = {}
            for state in subset:
                for symbol, targets in base._delta.get(state, {}).items():
                    merged.setdefault(symbol, set()).update(targets)
            if merged:
                row: Dict[object, FrozenSet[int]] = {}
                for symbol, targets in merged.items():
                    key = frozenset(targets)
                    tid = index.get(key)
                    if tid is None:
                        tid = len(index)
                        index[key] = tid
                        worklist.append(key)
                    row[symbol] = frozenset([tid])
                transitions[sid] = row
        return SpannerDFA(len(index), transitions, accepting)

    def renumbered(self, mapping: Dict[int, int], num_states: int) -> "SpannerNFA":
        """A copy with states renamed through ``mapping``."""
        transitions: Dict[int, Dict[object, FrozenSet[int]]] = {}
        for source, symbol, target in self.arcs():
            row = transitions.setdefault(mapping[source], {})
            row[symbol] = row.get(symbol, frozenset()) | {mapping[target]}
        return type(self)(
            num_states,
            transitions,
            [mapping[s] for s in self.accepting],
        )


class SpannerDFA(SpannerNFA):
    """A deterministic spanner automaton (partial transition function)."""

    __slots__ = ()

    def __init__(self, num_states, transitions, accepting) -> None:
        super().__init__(num_states, transitions, accepting)
        if not self.is_deterministic:
            raise AutomatonError("SpannerDFA constructed with nondeterministic transitions")

    def step(self, state: int, symbol: object) -> Optional[int]:
        """``δ(state, symbol)`` as a single state, or ``None`` if undefined."""
        targets = self.successors(state, symbol)
        for target in targets:
            return target
        return None


class NFABuilder:
    """Convenient incremental construction of :class:`SpannerNFA`.

    States are handed out as opaque integers; :meth:`build` renumbers them
    so the designated start state becomes ``0``.
    """

    def __init__(self) -> None:
        self._count = 0
        self._arcs: List[Tuple[int, object, int]] = []
        self._accepting: Set[int] = set()
        self._start: Optional[int] = None

    def state(self) -> int:
        """Allocate a fresh state."""
        self._count += 1
        return self._count - 1

    def arc(self, source: int, symbol: object, target: int) -> None:
        """Add a transition; ``symbol`` may be :data:`EPSILON`."""
        self._arcs.append((source, symbol, target))

    def epsilon(self, source: int, target: int) -> None:
        self.arc(source, EPSILON, target)

    def set_start(self, state: int) -> None:
        self._start = state

    def accept(self, state: int) -> None:
        self._accepting.add(state)

    def build(self, deterministic: bool = False) -> SpannerNFA:
        if self._start is None:
            raise AutomatonError("no start state set")
        order = [self._start] + [s for s in range(self._count) if s != self._start]
        renumber = {old: new for new, old in enumerate(order)}
        transitions: Dict[int, Dict[object, FrozenSet[int]]] = {}
        for source, symbol, target in self._arcs:
            row = transitions.setdefault(renumber[source], {})
            row[symbol] = row.get(symbol, frozenset()) | {renumber[target]}
        cls = SpannerDFA if deterministic else SpannerNFA
        return cls(self._count, transitions, [renumber[s] for s in self._accepting])
