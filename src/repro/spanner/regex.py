"""Spanner regex compiler: patterns with variable bindings → spanner NFAs.

The concrete syntax follows Python's ``re`` where possible:

====================  =====================================================
``a``, ``\\*``         literal characters (backslash escapes any character)
``.``                 any character of the declared alphabet
``[abc]``, ``[^ab]``  character classes (ranges like ``a-z`` supported)
``e1 e2``             concatenation
``e1|e2``             alternation
``e*``, ``e+``, ``e?``  repetition
``e{m}``, ``e{m,}``, ``e{m,n}``  bounded repetition
``(e)``               grouping
``(?P<x>e)``          **variable binding**: capture the span of ``e`` in x
====================  =====================================================

A pattern compiles to a variable-set automaton (Thompson construction with
single-marker arcs) which is then converted to an extended spanner NFA over
``Σ ∪ P(Γ_X)`` via :func:`repro.spanner.va.to_extended_nfa`.

Example — the spanner of the paper's introduction, "first ``a`` together
with every later ``c``-block"::

    compile_spanner(r"[bc]*(?P<x>a).*(?P<y>c+).*", alphabet="abc")
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import RegexSyntaxError
from repro.spanner.automaton import EPSILON, SpannerNFA
from repro.spanner.markers import Marker, cl, op
from repro.spanner.va import VSetAutomaton, to_extended_nfa

#: Hard cap on expanded bounded repetitions, to keep automata query-sized.
MAX_REPEAT = 1000


# ----------------------------------------------------------------------
# AST
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Lit:
    char: str


@dataclass(frozen=True)
class AnyChar:
    pass


@dataclass(frozen=True)
class CharClass:
    chars: FrozenSet[str]
    negated: bool = False


@dataclass(frozen=True)
class Concat:
    parts: Tuple["Node", ...]


@dataclass(frozen=True)
class Alt:
    parts: Tuple["Node", ...]


@dataclass(frozen=True)
class Repeat:
    inner: "Node"
    low: int
    high: Optional[int]  # None = unbounded


@dataclass(frozen=True)
class Var:
    name: str
    inner: "Node"


Node = Union[Lit, AnyChar, CharClass, Concat, Alt, Repeat, Var]


# ----------------------------------------------------------------------
# parser (recursive descent)
# ----------------------------------------------------------------------


class _Parser:
    def __init__(self, pattern: str) -> None:
        self.pattern = pattern
        self.pos = 0

    def error(self, message: str) -> RegexSyntaxError:
        return RegexSyntaxError(f"{message} at position {self.pos} in {self.pattern!r}")

    def peek(self) -> Optional[str]:
        return self.pattern[self.pos] if self.pos < len(self.pattern) else None

    def take(self) -> str:
        ch = self.peek()
        if ch is None:
            raise self.error("unexpected end of pattern")
        self.pos += 1
        return ch

    def expect(self, ch: str) -> None:
        if self.take() != ch:
            self.pos -= 1
            raise self.error(f"expected {ch!r}")

    def parse(self) -> Node:
        node = self.alternation()
        if self.pos != len(self.pattern):
            raise self.error(f"unexpected {self.peek()!r}")
        return node

    def alternation(self) -> Node:
        parts = [self.concatenation()]
        while self.peek() == "|":
            self.take()
            parts.append(self.concatenation())
        return parts[0] if len(parts) == 1 else Alt(tuple(parts))

    def concatenation(self) -> Node:
        parts: List[Node] = []
        while self.peek() not in (None, "|", ")"):
            parts.append(self.repetition())
        if len(parts) == 1:
            return parts[0]
        return Concat(tuple(parts))  # empty tuple = ε

    def repetition(self) -> Node:
        node = self.atom()
        while True:
            ch = self.peek()
            if ch == "*":
                self.take()
                node = Repeat(node, 0, None)
            elif ch == "+":
                self.take()
                node = Repeat(node, 1, None)
            elif ch == "?":
                self.take()
                node = Repeat(node, 0, 1)
            elif ch == "{":
                node = self.bounded(node)
            else:
                return node

    def bounded(self, inner: Node) -> Node:
        self.expect("{")
        low = self.number()
        high: Optional[int] = low
        if self.peek() == ",":
            self.take()
            high = None if self.peek() == "}" else self.number()
        self.expect("}")
        if high is not None and high < low:
            raise self.error(f"bad repetition bounds {{{low},{high}}}")
        if max(low, high or 0) > MAX_REPEAT:
            raise self.error(f"repetition bound exceeds MAX_REPEAT={MAX_REPEAT}")
        return Repeat(inner, low, high)

    def number(self) -> int:
        digits = ""
        while self.peek() is not None and self.peek().isdigit():
            digits += self.take()
        if not digits:
            raise self.error("expected a number")
        return int(digits)

    def atom(self) -> Node:
        ch = self.peek()
        if ch is None:
            raise self.error("unexpected end of pattern")
        if ch == "(":
            return self.group()
        if ch == "[":
            return self.char_class()
        if ch == ".":
            self.take()
            return AnyChar()
        if ch == "\\":
            self.take()
            return Lit(_unescape(self.take()))
        if ch in "*+?{":
            raise self.error(f"nothing to repeat with {ch!r}")
        return Lit(self.take())

    def group(self) -> Node:
        self.expect("(")
        if self.pattern.startswith("?P<", self.pos):
            self.pos += 3
            name = ""
            while self.peek() not in (None, ">"):
                name += self.take()
            self.expect(">")
            if not name.isidentifier():
                raise self.error(f"bad variable name {name!r}")
            inner = self.alternation()
            self.expect(")")
            return Var(name, inner)
        inner = self.alternation()
        self.expect(")")
        return inner

    def char_class(self) -> Node:
        self.expect("[")
        negated = False
        if self.peek() == "^":
            self.take()
            negated = True
        chars: set = set()
        first = True
        while True:
            ch = self.peek()
            if ch is None:
                raise self.error("unterminated character class")
            if ch == "]" and not first:
                self.take()
                break
            first = False
            ch = self.take()
            if ch == "\\":
                ch = _unescape(self.take())
            if self.peek() == "-" and self.pos + 1 < len(self.pattern) and self.pattern[self.pos + 1] != "]":
                self.take()
                hi = self.take()
                if hi == "\\":
                    hi = _unescape(self.take())
                if ord(hi) < ord(ch):
                    raise self.error(f"bad range {ch}-{hi}")
                chars.update(chr(c) for c in range(ord(ch), ord(hi) + 1))
            else:
                chars.add(ch)
        return CharClass(frozenset(chars), negated)


def _unescape(ch: str) -> str:
    return {"n": "\n", "t": "\t", "r": "\r", "0": "\0"}.get(ch, ch)


def parse_pattern(pattern: str) -> Node:
    """Parse a spanner regex into its AST (mostly useful for testing)."""
    return _Parser(pattern).parse()


# ----------------------------------------------------------------------
# Thompson construction
# ----------------------------------------------------------------------


class _Thompson:
    def __init__(self, alphabet: Optional[FrozenSet[str]]) -> None:
        self.alphabet = alphabet
        self.count = 0
        self.arcs: List[Tuple[int, object, int]] = []

    def state(self) -> int:
        self.count += 1
        return self.count - 1

    def arc(self, source: int, symbol: object, target: int) -> None:
        self.arcs.append((source, symbol, target))

    def fragment(self, node: Node) -> Tuple[int, int]:
        """Build a sub-automaton; returns its (start, accept) states."""
        if isinstance(node, Lit):
            return self._symbol_fragment([node.char])
        if isinstance(node, AnyChar):
            if self.alphabet is None:
                raise RegexSyntaxError("'.' requires an explicit alphabet=")
            return self._symbol_fragment(sorted(self.alphabet))
        if isinstance(node, CharClass):
            if node.negated:
                if self.alphabet is None:
                    raise RegexSyntaxError("negated class requires an explicit alphabet=")
                chars = sorted(self.alphabet - node.chars)
            else:
                chars = sorted(node.chars)
            return self._symbol_fragment(chars)
        if isinstance(node, Concat):
            start = prev = self.state()
            for part in node.parts:
                ps, pa = self.fragment(part)
                self.arc(prev, EPSILON, ps)
                prev = pa
            return start, prev
        if isinstance(node, Alt):
            start, accept = self.state(), self.state()
            for part in node.parts:
                ps, pa = self.fragment(part)
                self.arc(start, EPSILON, ps)
                self.arc(pa, EPSILON, accept)
            return start, accept
        if isinstance(node, Repeat):
            return self._repeat_fragment(node)
        if isinstance(node, Var):
            inner_start, inner_accept = self.fragment(node.inner)
            start, accept = self.state(), self.state()
            self.arc(start, op(node.name), inner_start)
            self.arc(inner_accept, cl(node.name), accept)
            return start, accept
        raise AssertionError(f"unknown AST node {node!r}")

    def _symbol_fragment(self, chars: Sequence[str]) -> Tuple[int, int]:
        if not chars:
            raise RegexSyntaxError("empty character class matches nothing")
        start, accept = self.state(), self.state()
        for ch in chars:
            self.arc(start, ch, accept)
        return start, accept

    def _repeat_fragment(self, node: Repeat) -> Tuple[int, int]:
        if node.low == 0 and node.high is None:  # e*
            hub = self.state()
            ps, pa = self.fragment(node.inner)
            self.arc(hub, EPSILON, ps)
            self.arc(pa, EPSILON, hub)
            return hub, hub
        if node.high is None:  # e{m,}
            start = prev = self.state()
            for _ in range(node.low):
                ps, pa = self.fragment(node.inner)
                self.arc(prev, EPSILON, ps)
                prev = pa
            ss, sa = self._repeat_fragment(Repeat(node.inner, 0, None))
            self.arc(prev, EPSILON, ss)
            return start, sa
        # e{m,n}: m mandatory copies then (n - m) optional ones
        start = prev = self.state()
        for _ in range(node.low):
            ps, pa = self.fragment(node.inner)
            self.arc(prev, EPSILON, ps)
            prev = pa
        exits = [prev]
        for _ in range(node.high - node.low):
            ps, pa = self.fragment(node.inner)
            self.arc(prev, EPSILON, ps)
            prev = pa
            exits.append(prev)
        accept = self.state()
        for state in exits:
            self.arc(state, EPSILON, accept)
        return start, accept


def pattern_variables(node: Node) -> FrozenSet[str]:
    """All variable names bound anywhere in the AST."""
    if isinstance(node, Var):
        return pattern_variables(node.inner) | {node.name}
    if isinstance(node, (Concat, Alt)):
        out: FrozenSet[str] = frozenset()
        for part in node.parts:
            out |= pattern_variables(part)
        return out
    if isinstance(node, Repeat):
        return pattern_variables(node.inner)
    return frozenset()


def compile_va(pattern: str, alphabet: Optional[Iterable[str]] = None) -> VSetAutomaton:
    """Compile a pattern into a raw variable-set automaton (single markers)."""
    ast = parse_pattern(pattern)
    sigma = frozenset(alphabet) if alphabet is not None else None
    thompson = _Thompson(sigma)
    start, accept = thompson.fragment(ast)
    transitions: Dict[int, Dict[object, set]] = {}
    for source, symbol, target in thompson.arcs:
        transitions.setdefault(source, {}).setdefault(symbol, set()).add(target)
    # renumber so that the start state is 0
    order = [start] + [s for s in range(thompson.count) if s != start]
    renumber = {old: new for new, old in enumerate(order)}
    renamed: Dict[int, Dict[object, FrozenSet[int]]] = {}
    for source, row in transitions.items():
        renamed[renumber[source]] = {
            symbol: frozenset(renumber[t] for t in targets) for symbol, targets in row.items()
        }
    return VSetAutomaton(thompson.count, renamed, [renumber[accept]])


def compile_spanner(
    pattern: str,
    alphabet: Optional[Iterable[str]] = None,
    deterministic: bool = False,
) -> SpannerNFA:
    """Compile a spanner regex into an extended spanner NFA (or DFA).

    >>> nfa = compile_spanner(r"(?P<x>a+)b", alphabet="ab")
    >>> sorted(nfa.variables)
    ['x']

    Set ``deterministic=True`` to determinise immediately (required by the
    enumeration algorithm; the evaluator can also do this on demand).
    """
    nfa = to_extended_nfa(compile_va(pattern, alphabet))
    if deterministic:
        return nfa.determinize().trim()
    return nfa
