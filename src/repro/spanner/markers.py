"""Markers, marker-set symbols and (partial) marker sets (Sec. 3.1 / 6.1).

The paper encodes a span-tuple ``t`` as its *marker set*
``ˆt = {(⊿x, i), (◁x, j) : t(x) = [i, j⟩}`` — a set of (marker, position)
pairs.  During evaluation these appear in *partial* form ``Λ`` (markers of a
factor of the document, not necessarily forming complete spans).

Representation choices:

* a single marker ``⊿x`` / ``◁x`` is a :class:`Marker` named tuple;
* a marker-set *symbol* (one letter of the alphabet ``P(Γ_X)``) is a
  ``frozenset`` of markers;
* a (partial) marker set ``Λ`` is a **sorted tuple of (position, marker)
  pairs** — positions first, so that the combination operator ``⊗_s``
  (Definition 6.7) is a plain concatenation of tuples.  This tuple encoding
  is also the canonical order ``⪯`` used by Theorem 7.1's duplicate-free
  merging.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, NamedTuple, Optional, Tuple

from repro.errors import EvaluationError
from repro.spanner.spans import Span, SpanTuple

OPEN = "open"
CLOSE = "close"


class Marker(NamedTuple):
    """A single marker symbol: ``⊿x`` (open) or ``◁x`` (close)."""

    var: str
    kind: str  # OPEN or CLOSE

    def __repr__(self) -> str:
        return ("⊿" if self.kind == OPEN else "◁") + str(self.var)


def op(var: str) -> Marker:
    """The opening marker ``⊿var``."""
    return Marker(var, OPEN)


def cl(var: str) -> Marker:
    """The closing marker ``◁var``."""
    return Marker(var, CLOSE)


#: A letter of the alphabet P(Γ_X): a set of markers read as one symbol.
MarkerSetSymbol = FrozenSet[Marker]


def gamma(variables: Iterable[str]) -> FrozenSet[Marker]:
    """The marker alphabet ``Γ_X = {⊿x, ◁x : x ∈ X}``."""
    out = set()
    for var in variables:
        out.add(op(var))
        out.add(cl(var))
    return frozenset(out)


def format_marker_set(symbol: MarkerSetSymbol) -> str:
    """Deterministic display of a marker-set symbol, e.g. ``{⊿x,◁y}``."""
    return "{" + ",".join(repr(m) for m in sorted(symbol)) + "}"


# ----------------------------------------------------------------------
# partial marker sets Λ as sorted (position, marker) tuples
# ----------------------------------------------------------------------

#: A (partial) marker set: sorted tuple of (1-based position, marker).
Pairs = Tuple[Tuple[int, Marker], ...]

#: The empty partial marker set (the paper's ∅ element of M_A[i,j]).
EMPTY: Pairs = ()


def make_pairs(items: Iterable[Tuple[int, Marker]]) -> Pairs:
    """Canonicalise an iterable of (position, marker) pairs."""
    return tuple(sorted(items))


def shift(pairs: Pairs, offset: int) -> Pairs:
    """The ``offset``-rightshift ``rs_offset(Λ)`` of Sec. 6.1."""
    return tuple((pos + offset, marker) for pos, marker in pairs)


def combine(left: Pairs, right: Pairs, offset: int) -> Pairs:
    """``Λ ⊗_offset Λ' = Λ ∪ rs_offset(Λ')`` (Definition before Lemma 6.6).

    When ``left`` only touches positions ``<= offset`` (the non-tail-spanning
    guarantee) the result is the plain concatenation of sorted tuples, which
    is what the evaluation inner loops rely on for speed.
    """
    shifted = shift(right, offset)
    if not left or not shifted or left[-1] <= shifted[0]:
        return left + shifted
    return tuple(sorted(left + shifted))


def max_position(pairs: Pairs) -> int:
    """``max{ℓ : (σ, ℓ) ∈ Λ}`` (0 for the empty marker set)."""
    return pairs[-1][0] if pairs else 0


def is_compatible(pairs: Pairs, length: int) -> bool:
    """Compatibility with a document of ``length`` symbols (Sec. 6.1)."""
    return max_position(pairs) <= length + 1


def to_span_tuple(pairs: Pairs) -> SpanTuple:
    """Decode a complete marker set into the span-tuple it represents.

    Raises :class:`EvaluationError` if some variable is opened but not
    closed (or vice versa), opened twice, or closed before it is opened —
    i.e. if ``pairs`` is not the marker set ``ˆt`` of any span-tuple.
    """
    opens: Dict[str, int] = {}
    closes: Dict[str, int] = {}
    for pos, marker in pairs:
        target = opens if marker.kind == OPEN else closes
        if marker.var in target:
            raise EvaluationError(f"marker {marker!r} occurs twice in {pairs!r}")
        target[marker.var] = pos
    if set(opens) != set(closes):
        raise EvaluationError(f"unbalanced markers in {pairs!r}")
    spans = {}
    for var, start in opens.items():
        end = closes[var]
        if end < start:
            raise EvaluationError(f"variable {var!r} closes before it opens in {pairs!r}")
        spans[var] = Span(start, end)
    return SpanTuple(spans)


def from_span_tuple(tup: SpanTuple) -> Pairs:
    """The marker set ``ˆt`` of a span-tuple ``t``.

    >>> from repro.spanner.spans import Span, SpanTuple
    >>> from_span_tuple(SpanTuple({"x": Span(1, 3)}))
    ((1, ⊿x), (3, ◁x))
    """
    items = []
    for var, span in tup.items():
        items.append((span.start, op(var)))
        items.append((span.end, cl(var)))
    return make_pairs(items)


def group_by_position(pairs: Pairs) -> Dict[int, MarkerSetSymbol]:
    """The sets ``Λ_i = {σ : (σ, i) ∈ ˆt}`` of the model-checking construction."""
    grouped: Dict[int, set] = {}
    for pos, marker in pairs:
        grouped.setdefault(pos, set()).add(marker)
    return {pos: frozenset(markers) for pos, markers in grouped.items()}
