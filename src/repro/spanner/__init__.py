"""Document-spanner substrate: spans, markers, marked words, automata, regexes.

Public surface:

* :class:`~repro.spanner.spans.Span`, :class:`~repro.spanner.spans.SpanTuple`;
* :mod:`~repro.spanner.markers` — markers and (partial) marker sets;
* :mod:`~repro.spanner.marked_words` — the ``e``/``p``/``m`` translations;
* :class:`~repro.spanner.automaton.SpannerNFA` /
  :class:`~repro.spanner.automaton.SpannerDFA` — automata over ``Σ ∪ P(Γ_X)``;
* :func:`~repro.spanner.regex.compile_spanner` — the pattern compiler;
* :class:`~repro.spanner.va.VSetAutomaton` — classical variable-set automata;
* :mod:`~repro.spanner.transform` — ``#``-padding and validation.
"""

from repro.spanner.algebra import (
    join_relations,
    join_spanners,
    project_relation,
    project_spanner,
    rename_relation,
    rename_spanner,
    select_relation,
    union_relations,
    union_spanners,
)
from repro.spanner.automaton import EPSILON, NFABuilder, SpannerDFA, SpannerNFA
from repro.spanner.markers import Marker, cl, from_span_tuple, gamma, op, to_span_tuple
from repro.spanner.marked_words import (
    check_subword_marked,
    document_length,
    e,
    format_marked_word,
    is_non_tail_spanning,
    is_subword_marked,
    m,
    p,
)
from repro.spanner.regex import compile_spanner, compile_va, parse_pattern
from repro.spanner.spans import EMPTY_TUPLE, Span, SpanTuple, all_spans
from repro.spanner.transform import (
    END_SYMBOL,
    is_well_formed,
    pad_slp,
    pad_spanner,
    validate_spanner,
)
from repro.spanner.va import VSetAutomaton, to_extended_nfa

__all__ = [
    "EMPTY_TUPLE",
    "END_SYMBOL",
    "EPSILON",
    "Marker",
    "NFABuilder",
    "Span",
    "SpanTuple",
    "SpannerDFA",
    "SpannerNFA",
    "VSetAutomaton",
    "all_spans",
    "check_subword_marked",
    "cl",
    "compile_spanner",
    "compile_va",
    "document_length",
    "e",
    "format_marked_word",
    "from_span_tuple",
    "gamma",
    "is_non_tail_spanning",
    "is_subword_marked",
    "is_well_formed",
    "join_relations",
    "join_spanners",
    "m",
    "op",
    "p",
    "pad_slp",
    "pad_spanner",
    "parse_pattern",
    "project_relation",
    "project_spanner",
    "rename_relation",
    "rename_spanner",
    "select_relation",
    "to_extended_nfa",
    "to_span_tuple",
    "union_relations",
    "union_spanners",
    "validate_spanner",
]
