"""Spanner algebra: union, projection, natural join, renaming (Sec. 1.2).

The spanner framework of Fagin et al. extracts relations with regular
spanners and then manipulates them with relational algebra.  Regular
spanners are closed under union, projection and natural join; this module
implements those operators **on the automaton level**, so that the combined
query again runs directly on SLP-compressed documents.

Semantics (schemaless, matching the paper's non-functional tuples):

* ``union``:   ``⟦A ∪ B⟧(D)   = ⟦A⟧(D) ∪ ⟦B⟧(D)``
* ``project``: ``⟦π_Y A⟧(D)   = {t|_Y : t ∈ ⟦A⟧(D)}``
* ``join``:    ``⟦A ⋈ B⟧(D)   = {t1 ∪ t2 : tᵢ ∈ ⟦·⟧(D), t1, t2 compatible}``
  where compatible means: every *shared* variable is either defined in both
  with the same span, or undefined in both.
* ``rename``:  ``⟦ρ_f A⟧(D)   = {t ∘ f⁻¹ : t ∈ ⟦A⟧(D)}``

Selection by string equality is **not** regular (core spanners, [27] in the
paper) and is intentionally not provided here; apply it to extracted
relations with :func:`select_relation` instead.

Mirror operators on explicit relations (``*_relation``) are provided both
as reference semantics for tests and for post-extraction manipulation.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from repro.errors import AutomatonError
from repro.spanner.automaton import EPSILON, SpannerNFA
from repro.spanner.marked_words import is_marker_item
from repro.spanner.markers import Marker
from repro.spanner.spans import SpanTuple
from repro.spanner.va import VSetAutomaton, to_extended_nfa


# ----------------------------------------------------------------------
# automaton-level operators
# ----------------------------------------------------------------------


def union_spanners(first: SpannerNFA, second: SpannerNFA) -> SpannerNFA:
    """The spanner ``A ∪ B`` (disjoint union with a fresh ε-start).

    >>> from repro.spanner.regex import compile_spanner
    >>> from repro.baselines.naive import naive_evaluate
    >>> u = union_spanners(
    ...     compile_spanner(r"(?P<x>a)b", alphabet="ab"),
    ...     compile_spanner(r"a(?P<y>b)", alphabet="ab"),
    ... )
    >>> sorted(str(t) for t in naive_evaluate(u, "ab"))
    ['SpanTuple(x=[1,2⟩)', 'SpanTuple(y=[2,3⟩)']
    """
    offset_first = 1
    offset_second = 1 + first.num_states
    transitions: Dict[int, Dict[object, FrozenSet[int]]] = {
        0: {EPSILON: frozenset({offset_first, offset_second + second.start})}
    }
    for source, symbol, target in first.arcs():
        row = transitions.setdefault(source + offset_first, {})
        row[symbol] = row.get(symbol, frozenset()) | {target + offset_first}
    for source, symbol, target in second.arcs():
        row = transitions.setdefault(source + offset_second, {})
        row[symbol] = row.get(symbol, frozenset()) | {target + offset_second}
    accepting = {s + offset_first for s in first.accepting} | {
        s + offset_second for s in second.accepting
    }
    merged = SpannerNFA(
        1 + first.num_states + second.num_states, transitions, accepting
    )
    return merged.eliminate_epsilon().trim()


def nfa_to_va(nfa: SpannerNFA) -> VSetAutomaton:
    """Explode marker-*set* arcs into chains of single-marker arcs.

    The inverse of :func:`repro.spanner.va.to_extended_nfa` (up to state
    naming); used by projection to re-normalise after dropping markers.
    """
    base = nfa.eliminate_epsilon()
    transitions: Dict[int, Dict[object, Set[int]]] = {}
    next_state = base.num_states

    def add(source: int, symbol: object, target: int) -> None:
        transitions.setdefault(source, {}).setdefault(symbol, set()).add(target)

    for source, symbol, target in base.arcs():
        if not is_marker_item(symbol):
            add(source, symbol, target)
            continue
        markers = sorted(symbol)
        current = source
        for marker in markers[:-1]:
            add(current, marker, next_state)
            current = next_state
            next_state += 1
        add(current, markers[-1], target)
    return VSetAutomaton(
        next_state,
        {s: {sym: frozenset(t) for sym, t in row.items()} for s, row in transitions.items()},
        base.accepting,
    )


def project_spanner(nfa: SpannerNFA, variables: Iterable[str]) -> SpannerNFA:
    """The projection ``π_variables`` — hide all other variables' markers.

    >>> from repro.spanner.regex import compile_spanner
    >>> from repro.baselines.naive import naive_evaluate
    >>> p = project_spanner(
    ...     compile_spanner(r"(?P<x>a)(?P<y>b)", alphabet="ab"), ["x"])
    >>> sorted(str(t) for t in naive_evaluate(p, "ab"))
    ['SpanTuple(x=[1,2⟩)']
    """
    keep = frozenset(variables)
    va = nfa_to_va(nfa)
    transitions: Dict[int, Dict[object, Set[int]]] = {}
    for source, symbol, target in va.arcs():
        if isinstance(symbol, Marker) and symbol.var not in keep:
            symbol = EPSILON
        transitions.setdefault(source, {}).setdefault(symbol, set()).add(target)
    projected = VSetAutomaton(
        va.num_states,
        {s: {sym: frozenset(t) for sym, t in row.items()} for s, row in transitions.items()},
        va.accepting,
    )
    return to_extended_nfa(projected)


def rename_spanner(nfa: SpannerNFA, mapping: Mapping[str, str]) -> SpannerNFA:
    """The renaming ``ρ``: variable ``v`` becomes ``mapping[v]``.

    ``mapping`` must be injective on the automaton's variables; variables
    not mentioned keep their names.
    """
    variables = nfa.variables
    full = {v: mapping.get(v, v) for v in variables}
    if len(set(full.values())) != len(full):
        raise AutomatonError(f"renaming {mapping!r} is not injective on {sorted(variables)}")
    transitions: Dict[int, Dict[object, FrozenSet[int]]] = {}
    for source, symbol, target in nfa.arcs():
        if is_marker_item(symbol):
            symbol = frozenset(Marker(full[m.var], m.kind) for m in symbol)
        row = transitions.setdefault(source, {})
        row[symbol] = row.get(symbol, frozenset()) | {target}
    return SpannerNFA(nfa.num_states, transitions, nfa.accepting)


def join_spanners(first: SpannerNFA, second: SpannerNFA) -> SpannerNFA:
    """The natural join ``A ⋈ B`` via the synchronised product automaton.

    Both automata read the document in lockstep; at every position each may
    additionally read a marker-set symbol, and the two sets must agree on
    the markers of *shared* variables.  The product arc carries the union
    of the two sets.

    >>> from repro.spanner.regex import compile_spanner
    >>> from repro.baselines.naive import naive_evaluate
    >>> j = join_spanners(
    ...     compile_spanner(r".*(?P<x>a)(?P<y>b).*", alphabet="ab"),
    ...     compile_spanner(r".*(?P<y>b)(?P<z>a).*", alphabet="ab"),
    ... )
    >>> sorted(str(t) for t in naive_evaluate(j, "aba"))
    ['SpanTuple(x=[1,2⟩, y=[2,3⟩, z=[3,4⟩)']
    """
    a = first.eliminate_epsilon()
    b = second.eliminate_epsilon()
    shared = a.variables & b.variables
    shared_markers = frozenset(
        Marker(v, kind) for v in shared for kind in ("open", "close")
    )

    def set_moves(automaton: SpannerNFA, state: int) -> List[Tuple[FrozenSet, int]]:
        moves: List[Tuple[FrozenSet, int]] = [(frozenset(), state)]
        for symbol, targets in automaton._delta.get(state, {}).items():
            if is_marker_item(symbol):
                for target in targets:
                    moves.append((symbol, target))
        return moves

    index: Dict[Tuple[int, int], int] = {}
    transitions: Dict[int, Dict[object, Set[int]]] = {}
    accepting: Set[int] = set()

    def state_id(pair: Tuple[int, int]) -> int:
        sid = index.get(pair)
        if sid is None:
            sid = len(index)
            index[pair] = sid
            worklist.append(pair)
        return sid

    worklist: List[Tuple[int, int]] = []
    start_pair = (a.start, b.start)
    state_id(start_pair)
    chars = a.sigma & b.sigma
    while worklist:
        pair = worklist.pop()
        p, q = pair
        sid = index[pair]
        if p in a.accepting and q in b.accepting:
            accepting.add(sid)
        row = transitions.setdefault(sid, {})
        # synchronised character moves
        for char in chars:
            for p2 in a.successors(p, char):
                for q2 in b.successors(q, char):
                    row.setdefault(char, set()).add(state_id((p2, q2)))
        # synchronised marker-set moves (one optional set per side)
        for set_a, p2 in set_moves(a, p):
            for set_b, q2 in set_moves(b, q):
                if not set_a and not set_b:
                    continue
                if (set_a & shared_markers) != (set_b & shared_markers):
                    continue
                merged = set_a | set_b
                row.setdefault(merged, set()).add(state_id((p2, q2)))
        if not row:
            transitions.pop(sid, None)
    product = SpannerNFA(
        max(1, len(index)),
        {s: {sym: frozenset(t) for sym, t in row.items()} for s, row in transitions.items()},
        accepting,
    )
    return product.trim()


# ----------------------------------------------------------------------
# relation-level operators (reference semantics / post-processing)
# ----------------------------------------------------------------------


def union_relations(
    first: Iterable[SpanTuple], second: Iterable[SpanTuple]
) -> FrozenSet[SpanTuple]:
    """Set union of two extracted relations."""
    return frozenset(first) | frozenset(second)


def project_relation(
    relation: Iterable[SpanTuple], variables: Iterable[str]
) -> FrozenSet[SpanTuple]:
    """Restrict every tuple to ``variables``."""
    keep = frozenset(variables)
    return frozenset(
        SpanTuple({v: s for v, s in tup.items() if v in keep}) for tup in relation
    )


def compatible(first: SpanTuple, second: SpanTuple, shared: Iterable[str]) -> bool:
    """Join-compatibility on the shared variables (schemaless semantics)."""
    for var in shared:
        if first.get(var) != second.get(var):
            return False
    return True


def join_relations(
    first: Iterable[SpanTuple],
    second: Iterable[SpanTuple],
    shared: Optional[Iterable[str]] = None,
) -> FrozenSet[SpanTuple]:
    """Natural join of two extracted relations.

    ``shared`` defaults to the variables appearing on both sides anywhere
    in the relations.
    """
    first = list(first)
    second = list(second)
    if shared is None:
        vars_first = set().union(*(t.defined for t in first)) if first else set()
        vars_second = set().union(*(t.defined for t in second)) if second else set()
        shared = vars_first & vars_second
    shared = list(shared)
    out: Set[SpanTuple] = set()
    for t1 in first:
        for t2 in second:
            if compatible(t1, t2, shared):
                merged = t1.as_dict()
                merged.update(t2.as_dict())
                out.add(SpanTuple(merged))
    return frozenset(out)


def rename_relation(
    relation: Iterable[SpanTuple], mapping: Mapping[str, str]
) -> FrozenSet[SpanTuple]:
    """Rename variables in every tuple."""
    return frozenset(
        SpanTuple({mapping.get(v, v): s for v, s in tup.items()}) for tup in relation
    )


def select_relation(
    relation: Iterable[SpanTuple],
    predicate: Callable[[SpanTuple], bool],
) -> FrozenSet[SpanTuple]:
    """Selection by an arbitrary predicate (e.g. string-equality on a doc).

    This is the non-regular part of core spanners — it must run on the
    extracted relation, not on the automaton.
    """
    return frozenset(tup for tup in relation if predicate(tup))
