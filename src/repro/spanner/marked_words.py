"""Subword-marked words and marked words (Definitions 3.1 and Sec. 6.1).

A *marked word* is a sequence over ``Σ ∪ P(Γ_X)`` — document symbols
interleaved with marker-set symbols.  We represent it as a tuple whose items
are either single-character strings or ``frozenset`` marker-set symbols;
empty marker sets are never materialised (the paper omits them too).

The translation functions of Figure 1:

* :func:`e` — erase the markers, keeping the document;
* :func:`p` — extract the (partial) marker set;
* :func:`m` — re-assemble document + marker set into the canonical marked
  word, such that ``e(m(D, Λ)) == D`` and ``p(m(D, Λ)) == Λ``.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple, Union

from repro.errors import EvaluationError
from repro.spanner.markers import (
    CLOSE,
    OPEN,
    MarkerSetSymbol,
    Pairs,
    format_marker_set,
    group_by_position,
    make_pairs,
)

#: One item of a marked word: a document symbol or a marker-set symbol.
Item = Union[str, MarkerSetSymbol]
MarkedWord = Tuple[Item, ...]


def is_marker_item(item: Item) -> bool:
    """Whether a marked-word item is a marker-set symbol."""
    return isinstance(item, frozenset)


def e(word: Iterable[Item]) -> str:
    """The document ``e(w)``: erase all marker-set symbols.

    >>> from repro.spanner.markers import op, cl
    >>> e(("a", frozenset({op("x")}), "b", frozenset({cl("x")}), "c"))
    'abc'
    """
    return "".join(item for item in word if not is_marker_item(item))


def document_length(word: Iterable[Item]) -> int:
    """``|w|_d`` — the number of document symbols in ``w``."""
    return sum(1 for item in word if not is_marker_item(item))


def p(word: Iterable[Item]) -> Pairs:
    """The (partial) marker set ``p(w)`` of a marked word.

    Position ``i`` means "before the i-th document symbol" (1-based); a
    trailing marker set sits at position ``|e(w)| + 1``.

    >>> from repro.spanner.markers import op, cl
    >>> p(("a", frozenset({op("x")}), "b", frozenset({cl("x")})))
    ((2, ⊿x), (3, ◁x))
    """
    pairs: List[Tuple[int, object]] = []
    position = 1
    for item in word:
        if is_marker_item(item):
            for marker in item:
                pairs.append((position, marker))
        else:
            position += 1
    return make_pairs(pairs)


def m(document: str, pairs: Pairs) -> MarkedWord:
    """The canonical marked word ``m(D, Λ)`` (empty sets omitted).

    Raises :class:`EvaluationError` if ``Λ`` is not compatible with ``D``
    (a marker sits beyond position ``|D| + 1``).

    >>> from repro.spanner.markers import op, cl, make_pairs
    >>> m("ab", make_pairs([(2, op("x")), (3, cl("x"))]))
    ('a', frozenset({⊿x}), 'b', frozenset({◁x}))
    """
    length = len(document)
    grouped = group_by_position(pairs)
    if grouped and max(grouped) > length + 1:
        raise EvaluationError(
            f"marker set {pairs!r} is not compatible with a document of length {length}"
        )
    word: List[Item] = []
    for i in range(1, length + 2):
        symbol = grouped.get(i)
        if symbol:
            word.append(symbol)
        if i <= length:
            word.append(document[i - 1])
    return tuple(word)


def is_non_tail_spanning(word: Iterable[Item]) -> bool:
    """Whether the final ``P(Γ_X)`` symbol is (implicitly) empty (Sec. 6.1)."""
    last = None
    for item in word:
        last = item
    return last is None or not is_marker_item(last)


def check_subword_marked(word: Iterable[Item]) -> None:
    """Validate Definition 3.1; raises :class:`EvaluationError` on violation.

    Checks that (i) marker-set symbols never repeat a marker across the
    word, (ii) every opened variable is closed and vice versa, (iii) closes
    never precede opens, and (iv) no two marker-set symbols are adjacent
    (the canonical-form requirement of the set-based encoding).
    """
    word = tuple(word)
    previous_was_set = False
    for item in word:
        if is_marker_item(item):
            if previous_was_set:
                raise EvaluationError("two adjacent marker-set symbols (non-canonical word)")
            previous_was_set = True
        else:
            if not (isinstance(item, str) and len(item) == 1):
                raise EvaluationError(f"invalid document symbol {item!r}")
            previous_was_set = False
    pairs = p(word)
    seen = set()
    opens = {}
    closes = {}
    for pos, marker in pairs:
        if marker in seen:
            raise EvaluationError(f"marker {marker!r} occurs twice")
        seen.add(marker)
        (opens if marker.kind == OPEN else closes)[marker.var] = pos
    if set(opens) != set(closes):
        missing = set(opens) ^ set(closes)
        raise EvaluationError(f"unbalanced open/close for variables {sorted(missing)}")
    for var, start in opens.items():
        if closes[var] < start:
            raise EvaluationError(f"variable {var!r} closes before it opens")


def is_subword_marked(word: Iterable[Item]) -> bool:
    """Boolean form of :func:`check_subword_marked`."""
    try:
        check_subword_marked(word)
    except EvaluationError:
        return False
    return True


def format_marked_word(word: Iterable[Item]) -> str:
    """Human-readable rendering, e.g. ``{⊿x}ab{◁x}c``."""
    return "".join(
        format_marker_set(item) if is_marker_item(item) else item for item in word
    )
