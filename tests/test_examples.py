"""Smoke-run every example script (they must stay correct and fast)."""

import io
import pathlib
import runpy
import sys
from contextlib import redirect_stdout

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, monkeypatch):
    # shrink the heavyweight generators so CI stays fast (examples import
    # them from the repro.workloads package namespace)
    import repro.workloads as workloads
    import repro.workloads.documents as documents

    original_log, original_dna = documents.server_log, documents.dna

    def small_log(num_lines=200, **kw):
        return original_log(min(num_lines, 200), **kw)

    def small_dna(length=4000, **kw):
        return original_dna(min(length, 4000), **kw)
    monkeypatch.setattr(documents, "server_log", small_log)
    monkeypatch.setattr(documents, "dna", small_dna)
    monkeypatch.setattr(workloads, "server_log", small_log)
    monkeypatch.setattr(workloads, "dna", small_dna)
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        runpy.run_path(str(path), run_name="__main__")
    output = buffer.getvalue()
    assert output.strip(), f"{path.name} produced no output"
    assert "Traceback" not in output
