"""Tests for repro.core.incremental (spanner aggregates under edits)."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import EvaluationError
from repro.slp.construct import balanced_slp
from repro.slp.derive import text
from repro.slp.families import power_slp
from repro.spanner.regex import compile_spanner
from repro.core.evaluator import CompressedSpannerEvaluator
from repro.core.incremental import IncrementalSpannerIndex, _multiply_counts

AB = compile_spanner(r".*(?P<x>ab).*", alphabet="ab")


def reference_count(spanner, document: str) -> int:
    return CompressedSpannerEvaluator(spanner, balanced_slp(document)).count()


class TestCountMatrixKernel:
    def test_multiply_matches_naive(self):
        rng = random.Random(4)
        q = 5
        for _ in range(20):
            a = [[rng.randint(0, 3) for _ in range(q)] for _ in range(q)]
            b = [[rng.randint(0, 3) for _ in range(q)] for _ in range(q)]
            got = _multiply_counts(a, b, q)
            want = [
                [sum(a[i][k] * b[k][j] for k in range(q)) for j in range(q)]
                for i in range(q)
            ]
            assert got == want


class TestBasics:
    def test_initial_count_matches_evaluator(self):
        for doc in ("a", "ab", "abab", "bbaabb"):
            index = IncrementalSpannerIndex(AB, balanced_slp(doc))
            assert index.count() == reference_count(AB, doc), doc

    def test_insert_delete_replace(self):
        index = IncrementalSpannerIndex(AB, balanced_slp("aaaa"))
        assert index.count() == 0
        index.insert(2, "b")  # aabaa
        assert index.count() == 1
        index.append("b")  # aabaab
        assert index.count() == 2
        index.delete(2, 3)  # aaaab
        assert index.count() == 1
        index.replace(0, 5, "abab")
        assert index.count() == 2
        index.prepend("ab")
        assert index.count() == 3

    def test_length_tracks(self):
        index = IncrementalSpannerIndex(AB, balanced_slp("abc".replace("c", "a")))
        assert index.length == 3
        index.append("ab")
        assert index.length == 5

    def test_snapshot_roundtrip(self):
        index = IncrementalSpannerIndex(AB, balanced_slp("abba"))
        index.insert(2, "ab")
        assert text(index.snapshot()) == "ababba"

    def test_nonempty(self):
        index = IncrementalSpannerIndex(AB, balanced_slp("aaaa"))
        assert not index.is_nonempty()
        index.append("b")
        assert index.is_nonempty()

    def test_repr(self):
        index = IncrementalSpannerIndex(AB, balanced_slp("ab"))
        assert "doc_length=2" in repr(index)


class TestGuards:
    def test_empty_word_rejected(self):
        index = IncrementalSpannerIndex(AB, balanced_slp("ab"))
        with pytest.raises(EvaluationError):
            index.append("")

    def test_sentinel_in_word_rejected(self):
        index = IncrementalSpannerIndex(AB, balanced_slp("ab"))
        with pytest.raises(EvaluationError):
            index.append("\x03")

    def test_delete_everything_rejected(self):
        index = IncrementalSpannerIndex(AB, balanced_slp("ab"))
        with pytest.raises(EvaluationError):
            index.delete(0, 2)

    def test_bad_range(self):
        index = IncrementalSpannerIndex(AB, balanced_slp("ab"))
        with pytest.raises(IndexError):
            index.insert(5, "a")


class TestIncrementality:
    def test_memo_grows_slowly_per_edit(self):
        """Each point edit must add O(log d) cached matrices, not O(d)."""
        index = IncrementalSpannerIndex(AB, power_slp("ab", 20))
        index.count()
        baseline = index.cached_nodes
        index.replace(12345, 12346, "a")
        index.count()
        added = index.cached_nodes - baseline
        assert added <= 12 * 21  # a few root-to-leaf paths of length log d

    def test_huge_document_edits(self):
        index = IncrementalSpannerIndex(AB, power_slp("ab", 30))
        assert index.count() == 2**30
        index.replace(2**30 + 1, 2**30 + 2, "a")  # kill one 'ab'
        assert index.count() == 2**30 - 1
        index.replace(2**30 + 1, 2**30 + 2, "b")  # restore it
        assert index.count() == 2**30

    def test_multi_variable_spanner(self):
        spanner = compile_spanner(r".*(?P<x>a)(?P<y>b).*", alphabet="ab")
        index = IncrementalSpannerIndex(spanner, balanced_slp("abab"))
        assert index.count() == reference_count(spanner, "abab")
        index.insert(0, "ab")
        assert index.count() == reference_count(spanner, "ababab")


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.data())
def test_random_edit_sequences_match_reference(data):
    """Property: after any edit sequence, count == full re-evaluation."""
    pattern, alphabet = data.draw(
        st.sampled_from(
            [
                (r".*(?P<x>ab).*", "ab"),
                (r"(?P<x>a*)(?P<y>b*)", "ab"),
                (r"(a|b)*(?P<x>aa)(a|b)*", "ab"),
            ]
        )
    )
    spanner = compile_spanner(pattern, alphabet=alphabet)
    doc = data.draw(st.text(alphabet=alphabet, min_size=1, max_size=8))
    index = IncrementalSpannerIndex(spanner, balanced_slp(doc))
    for _ in range(data.draw(st.integers(min_value=1, max_value=6))):
        action = data.draw(st.sampled_from(["insert", "delete", "replace"]))
        if action == "insert":
            i = data.draw(st.integers(min_value=0, max_value=len(doc)))
            word = data.draw(st.text(alphabet=alphabet, min_size=1, max_size=4))
            index.insert(i, word)
            doc = doc[:i] + word + doc[i:]
        elif action == "delete" and len(doc) >= 2:
            i = data.draw(st.integers(min_value=0, max_value=len(doc) - 1))
            j = data.draw(st.integers(min_value=i + 1, max_value=min(len(doc), i + 3)))
            if j - i < len(doc):
                index.delete(i, j)
                doc = doc[:i] + doc[j:]
        elif action == "replace":
            i = data.draw(st.integers(min_value=0, max_value=len(doc) - 1))
            j = data.draw(st.integers(min_value=i, max_value=min(len(doc), i + 3)))
            word = data.draw(st.text(alphabet=alphabet, min_size=1, max_size=3))
            index.replace(i, j, word)
            doc = doc[:i] + word + doc[j:]
        assert index.count() == reference_count(spanner, doc), doc
        assert text(index.snapshot()) == doc
