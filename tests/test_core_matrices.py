"""Tests for repro.core.matrices (Lemma 6.5 preprocessing: M_Tx, R, I)."""

import pytest

from repro.errors import EvaluationError
from repro.slp.construct import balanced_slp
from repro.spanner.marked_words import m as make_marked
from repro.spanner.markers import to_span_tuple
from repro.spanner.regex import compile_spanner
from repro.spanner.transform import pad_slp, pad_spanner
from repro.core.matrices import BASE, BOT, EMP, ONE, Preprocessing, preprocess


def build_prep(pattern, alphabet, doc, deterministic=False):
    nfa = compile_spanner(pattern, alphabet=alphabet).eliminate_epsilon()
    if deterministic:
        nfa = nfa.determinize().trim()
    padded_nfa = pad_spanner(nfa)
    padded_slp = pad_slp(balanced_slp(doc))
    return Preprocessing(padded_slp, padded_nfa), padded_nfa, padded_slp


def brute_r_value(prep, name, i, j):
    """Recompute R_A[i,j] per Definition 6.2/6.4 by brute force over the
    (small) document factor D(A) and all partial marker placements."""
    import itertools

    from repro.slp.derive import text as slp_text
    from repro.spanner.markers import gamma

    slp, nfa = prep.slp, prep.automaton
    factor = slp_text(slp, root=name)
    variables = sorted(nfa.variables)
    markers = sorted(gamma(variables))
    found_empty = found_nonempty = False
    # all assignments of markers to positions 1..len(factor) or absent;
    # non-tail-spanning: positions <= len(factor)
    options = [None] + list(range(1, len(factor) + 1))
    for combo in itertools.product(options, repeat=len(markers)):
        pairs = tuple(
            sorted((pos, marker) for marker, pos in zip(markers, combo) if pos)
        )
        word = make_marked(factor, pairs)
        if j in nfa.run(word, frontier=[i]):
            if pairs:
                found_nonempty = True
            else:
                found_empty = True
    if found_nonempty:
        return ONE
    if found_empty:
        return EMP
    return BOT


class TestLeafTables:
    def test_plain_char_entry(self):
        prep, nfa, _ = build_prep(r"(?P<x>a)b", "ab", "ab")
        # T_b must have an ∅ entry wherever b moves the automaton
        leaf_b = prep.slp.leaf_for("b")
        entries = prep.leaf_tables[leaf_b]
        assert any(values == ((),) for values in entries.values())

    def test_marked_char_entry(self):
        prep, nfa, _ = build_prep(r"(?P<x>a)b", "ab", "ab")
        leaf_a = prep.slp.leaf_for("a")
        all_sets = [v for values in prep.leaf_tables[leaf_a].values() for v in values]
        assert any(v and v[0][0] == 1 for v in all_sets)  # markers at position 1

    def test_leaf_entry_accessor(self):
        prep, _, _ = build_prep(r"a", "a", "a")
        leaf_a = prep.slp.leaf_for("a")
        keys = list(prep.leaf_tables[leaf_a])
        assert prep.leaf_entry(leaf_a, *keys[0])
        assert prep.leaf_entry(leaf_a, 93, 94) == ()


class TestRMatrices:
    @pytest.mark.parametrize(
        "pattern,alphabet,doc",
        [
            (r"(?P<x>a+)b", "ab", "aab"),
            (r"(?P<x>a*)(?P<y>b*)", "ab", "ab"),
            (r"a(?P<x>.*)b", "ab", "abab"),
        ],
    )
    def test_r_matches_brute_force(self, pattern, alphabet, doc):
        prep, nfa, slp = build_prep(pattern, alphabet, doc)
        q = nfa.num_states
        for name in slp.reachable():
            if slp.length(name) > 3:
                continue  # brute force only on small factors
            for i in range(q):
                for j in range(q):
                    assert prep.r_value(name, i, j) == brute_r_value(prep, name, i, j), (
                        name,
                        i,
                        j,
                    )

    def test_final_states_nonempty_iff_results(self):
        prep_pos, _, _ = build_prep(r"(?P<x>a+)b", "ab", "aab")
        assert prep_pos.final_states
        prep_neg, _, _ = build_prep(r"(?P<x>a+)b", "ab", "bbb")
        assert not prep_neg.final_states


class TestIMatrices:
    def test_i_consistent_with_r(self):
        prep, nfa, slp = build_prep(r"(?P<x>a*)b", "ab", "aab")
        q = nfa.num_states
        for name in slp.reachable():
            if slp.is_leaf(name):
                continue
            left, right = slp.children(name)
            for i in range(q):
                for j in range(q):
                    expected = {
                        k
                        for k in range(q)
                        if prep.r_value(left, i, k) != BOT
                        and prep.r_value(right, k, j) != BOT
                    }
                    assert set(prep.intermediate_states(name, i, j)) == expected

    def test_r_bot_iff_i_empty(self):
        prep, nfa, slp = build_prep(r"(?P<x>ab)", "ab", "abab")
        q = nfa.num_states
        for name in slp.reachable():
            if slp.is_leaf(name):
                continue
            for i in range(q):
                for j in range(q):
                    assert (prep.r_value(name, i, j) == BOT) == (
                        not prep.intermediate_states(name, i, j)
                    )


class TestIBar:
    def test_base_for_leaves(self):
        prep, _, slp = build_prep(r"a+", "a", "aa")
        leaf = slp.leaf_for("a")
        assert prep.i_bar(leaf, 0, 0) == [BASE]

    def test_base_for_emp_entries(self):
        prep, nfa, slp = build_prep(r"a+", "a", "aaaa")
        # variable-free spanner: every non-BOT entry is EMP -> [BASE]
        for name in slp.reachable():
            if slp.is_leaf(name):
                continue
            for i in range(nfa.num_states):
                for j in range(nfa.num_states):
                    if prep.r_value(name, i, j) == EMP:
                        assert prep.i_bar(name, i, j) == [BASE]


class TestBitPlanes:
    def test_rows_consistent_with_r_value(self):
        prep, nfa, slp = build_prep(r"(?P<x>a+)b", "ab", "aab")
        q = nfa.num_states
        for name in slp.reachable():
            for i in range(q):
                notbot = prep.notbot_row(name, i)
                one = prep.one_row(name, i)
                assert one & ~notbot == 0  # ONE implies not-BOT
                for j in range(q):
                    value = prep.r_value(name, i, j)
                    assert ((notbot >> j) & 1) == (value != BOT)
                    assert ((one >> j) & 1) == (value == ONE)

    def test_intermediate_mask_matches_states(self):
        prep, nfa, slp = build_prep(r"(?P<x>a*)b", "ab", "aab")
        q = nfa.num_states
        for name in slp.reachable():
            if slp.is_leaf(name):
                continue
            for i in range(q):
                for j in range(q):
                    mask = prep.intermediate_mask(name, i, j)
                    states = prep.intermediate_states(name, i, j)
                    assert mask == sum(1 << k for k in states)

    def test_final_states_sorted(self):
        prep, _, _ = build_prep(r".*(?P<x>ab?).*", "ab", "abab")
        assert prep.final_states == sorted(prep.final_states)


class TestValidation:
    def test_epsilon_automaton_rejected(self):
        from repro.spanner.automaton import EPSILON, SpannerNFA

        nfa = SpannerNFA(2, {0: {EPSILON: frozenset({1})}}, [1])
        with pytest.raises(EvaluationError):
            preprocess(pad_slp(balanced_slp("a")), nfa)
