"""Run every doctest in the library (documentation examples must be true)."""

import doctest
import importlib
import pkgutil

import pytest

import repro


def _all_modules():
    modules = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        modules.append(info.name)
    return sorted(modules)


@pytest.mark.parametrize("module_name", _all_modules())
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failure(s) in {module_name}"
