"""Run every doctest in the library (documentation examples must be true)."""

import doctest
import importlib
import pkgutil

import pytest

import repro


def _all_modules():
    modules = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        modules.append(info.name)
    return sorted(modules)


@pytest.mark.parametrize("module_name", _all_modules())
def test_module_doctests(module_name):
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        # Only the optional numpy backend may be unimportable (the
        # no-numpy CI lane); any other import failure is a real bug and
        # must fail loudly, not skip.
        if getattr(exc, "name", None) == "numpy" or module_name.endswith(
            ".numpy_kernel"
        ):
            pytest.skip(f"optional dependency missing for {module_name}: {exc}")
        raise
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failure(s) in {module_name}"
