"""Unit + property tests for repro.slp.avl (AVL grammars)."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GrammarError
from repro.slp.avl import (
    AvlBuilder,
    avl_from_slp,
    avl_symbols,
    avl_text,
    avl_to_slp,
    check_avl,
    count_dag_nodes,
)
from repro.slp.derive import text
from repro.slp.families import caterpillar_slp, example_4_2


class TestBuilderBasics:
    def test_leaf(self):
        b = AvlBuilder()
        node = b.leaf("a")
        assert node.is_leaf and node.height == 1 and node.length == 1
        assert avl_text(node) == "a"

    def test_leaf_hash_consing(self):
        b = AvlBuilder()
        assert b.leaf("a") is b.leaf("a")
        assert b.leaf("a") is not b.leaf("b")

    def test_pair_hash_consing(self):
        b = AvlBuilder()
        x, y = b.leaf("a"), b.leaf("b")
        assert b.pair(x, y) is b.pair(x, y)
        assert b.pair(x, y) is not b.pair(y, x)

    def test_from_symbols(self):
        b = AvlBuilder()
        node = b.from_symbols("abcde")
        assert avl_text(node) == "abcde"
        check_avl(node)

    def test_from_symbols_empty_rejected(self):
        with pytest.raises(GrammarError):
            AvlBuilder().from_symbols("")

    def test_periodic_sharing(self):
        # (ab)^64 shares subtrees: node count must be logarithmic
        b = AvlBuilder()
        node = b.from_symbols("ab" * 64)
        assert count_dag_nodes(node) <= 2 + 7  # 2 leaves + log2(64)+1 pairs

    def test_join_empty_sides(self):
        b = AvlBuilder()
        n = b.leaf("a")
        assert b.join(None, n) is n
        assert b.join(n, None) is n
        with pytest.raises(GrammarError):
            b.join(None, None)

    def test_concat_all(self):
        b = AvlBuilder()
        node = b.concat_all([b.leaf("a"), b.leaf("b"), b.leaf("c")])
        assert avl_text(node) == "abc"
        with pytest.raises(GrammarError):
            b.concat_all([])


class TestJoin:
    def test_join_preserves_text(self):
        b = AvlBuilder()
        left = b.from_symbols("aaaa")
        right = b.from_symbols("b")
        assert avl_text(b.join(left, right)) == "aaaab"

    def test_join_skewed_heights(self):
        b = AvlBuilder()
        big = b.from_symbols("a" * 257)
        small = b.leaf("b")
        joined = b.join(big, small)
        check_avl(joined)
        assert avl_text(joined) == "a" * 257 + "b"
        joined2 = b.join(small, big)
        check_avl(joined2)
        assert avl_text(joined2) == "b" + "a" * 257

    def test_join_height_growth_bounded(self):
        b = AvlBuilder()
        left = b.from_symbols("a" * 64)
        right = b.from_symbols("b" * 3)
        joined = b.join(left, right)
        assert joined.height <= max(left.height, right.height) + 1

    @settings(max_examples=80, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=40), min_size=1, max_size=12))
    def test_join_chain_stays_balanced(self, sizes):
        """Property: any sequence of joins keeps the AVL invariant."""
        b = AvlBuilder()
        acc = None
        expected = ""
        for k, size in enumerate(sizes):
            chunk = chr(ord("a") + k % 3) * size
            node = b.from_symbols(chunk)
            acc = node if acc is None else b.join(acc, node)
            expected += chunk
        check_avl(acc)
        assert avl_text(acc) == expected
        assert acc.height <= 1.4405 * math.log2(acc.length + 2) + 2


class TestExtract:
    def test_extract_full_range_is_same_node(self):
        b = AvlBuilder()
        node = b.from_symbols("abcdef")
        assert b.extract(node, 0, 6) is node

    def test_extract_matches_slicing(self):
        b = AvlBuilder()
        word = "abracadabra"
        node = b.from_symbols(word)
        for i in range(len(word)):
            for j in range(i + 1, len(word) + 1):
                sub = b.extract(node, i, j)
                assert avl_text(sub) == word[i:j]
                check_avl(sub)

    def test_extract_bad_range(self):
        b = AvlBuilder()
        node = b.from_symbols("abc")
        with pytest.raises(IndexError):
            b.extract(node, 2, 2)
        with pytest.raises(IndexError):
            b.extract(node, 0, 4)

    def test_extract_adds_few_nodes(self):
        """Extraction creates only O(log^2 d) new nodes (reuses the rest)."""
        b = AvlBuilder()
        node = b.from_symbols("ab" * 512)
        before = b.num_nodes
        b.extract(node, 13, 999)
        added = b.num_nodes - before
        assert added <= 4 * node.height**2


class TestSlpConversion:
    def test_avl_to_slp_roundtrip(self):
        b = AvlBuilder()
        node = b.from_symbols("hello world")
        slp = avl_to_slp(node)
        assert text(slp) == "hello world"

    def test_avl_to_slp_single_leaf(self):
        slp = avl_to_slp(AvlBuilder().leaf("x"))
        assert text(slp) == "x"

    def test_avl_from_slp_preserves_text(self):
        slp = example_4_2()
        node = avl_from_slp(slp)
        assert avl_text(node) == text(slp)
        check_avl(node)

    def test_avl_from_slp_deep_grammar(self):
        deep = caterpillar_slp(2000)
        node = avl_from_slp(deep)
        check_avl(node)
        assert node.length == deep.length()
        assert node.height <= 1.4405 * math.log2(node.length + 2) + 2

    def test_avl_symbols_streaming(self):
        b = AvlBuilder()
        node = b.from_symbols("xyz")
        assert list(avl_symbols(node)) == ["x", "y", "z"]
