"""Persistence tests: PreprocessingStore round-trips, staleness, corruption."""

from __future__ import annotations

import os
import random
import struct

import pytest

from repro.core.counting import CountingTables
from repro.core.matrices import Preprocessing
from repro.engine import Engine
from repro.slp.construct import balanced_slp
from repro.slp.families import caterpillar_slp, fibonacci_slp, power_slp
from repro.spanner.regex import compile_spanner
from repro.spanner.transform import pad_slp, pad_spanner
from repro.store import PreprocessingStore
from repro.store import prepstore


def build_pair(doc="abbaab", pattern=r".*(?P<x>a+)b.*", deterministic=True):
    """(source slp, padded slp, padded automaton, preprocessing)."""
    source = balanced_slp(doc)
    spanner = compile_spanner(pattern, alphabet="ab")
    base = spanner.eliminate_epsilon()
    if deterministic and not base.is_deterministic:
        base = base.determinize().trim()
    padded_slp = pad_slp(source)
    padded_nfa = pad_spanner(base)
    return source, padded_slp, padded_nfa, Preprocessing(padded_slp, padded_nfa)


def assert_tables_bit_for_bit(prep, restored):
    """Same r_value / intermediate_mask on every (nonterminal, i, j)."""
    q = prep.q
    assert restored.q == q
    assert restored.final_states == prep.final_states
    assert set(restored.order) == set(prep.order)
    for name in prep.order:
        for i in range(q):
            assert restored.notbot_row(name, i) == prep.notbot_row(name, i)
            assert restored.one_row(name, i) == prep.one_row(name, i)
            for j in range(q):
                assert restored.r_value(name, i, j) == prep.r_value(name, i, j)
                if not prep.slp.is_leaf(name):
                    assert restored.intermediate_mask(
                        name, i, j
                    ) == prep.intermediate_mask(name, i, j)
        if prep.slp.is_leaf(name):
            assert restored.leaf_tables[name] == prep.leaf_tables[name]


class TestRoundTrip:
    def test_tables_roundtrip_bit_for_bit(self, tmp_path):
        store = PreprocessingStore(str(tmp_path))
        source, padded_slp, padded_nfa, prep = build_pair()
        key = (source.structural_digest(), padded_nfa.structural_digest())
        store.save(*key, prep)
        restored, counts = store.load(*key, padded_slp, padded_nfa)
        assert counts is None
        assert_tables_bit_for_bit(prep, restored)

    def test_counts_roundtrip_exactly(self, tmp_path):
        store = PreprocessingStore(str(tmp_path))
        source, padded_slp, padded_nfa, prep = build_pair(doc="ab" * 40)
        tables = CountingTables(prep)
        key = (source.structural_digest(), padded_nfa.structural_digest())
        store.save(*key, prep, tables.counts)
        restored, counts = store.load(*key, padded_slp, padded_nfa)
        # counts are stored positionally over the notbot cells, which is
        # exactly the key set CountingTables produces
        assert counts == tables.counts
        loaded = CountingTables.from_counts(restored, counts)
        assert loaded.total() == tables.total()
        for name, i, j in tables.counts:
            assert loaded.count(name, i, j) == tables.count(name, i, j)

    def test_huge_counts_survive(self, tmp_path):
        # power_slp("ab", 40): ~10^12 results — counts are arbitrary ints
        store = PreprocessingStore(str(tmp_path))
        source = power_slp("ab", 40)
        spanner = compile_spanner(r"(a|b)*(?P<x>ab)(a|b)*", alphabet="ab")
        base = spanner.eliminate_epsilon().determinize().trim()
        padded_slp, padded_nfa = pad_slp(source), pad_spanner(base)
        prep = Preprocessing(padded_slp, padded_nfa)
        tables = CountingTables(prep)
        assert tables.total() == 2**40
        key = (source.structural_digest(), padded_nfa.structural_digest())
        store.save(*key, prep, tables.counts)
        _, counts = store.load(*key, padded_slp, padded_nfa)
        assert CountingTables.from_counts(prep, counts).total() == 2**40

    def test_attaches_to_renamed_but_equal_grammar(self, tmp_path):
        # The whole point of structural keys: a structurally equal padded
        # grammar with completely different nonterminal names gets the
        # same tables back.
        store = PreprocessingStore(str(tmp_path))
        source, padded_slp, padded_nfa, prep = build_pair(doc="abab")
        key = (source.structural_digest(), padded_nfa.structural_digest())
        store.save(*key, prep)
        from repro.slp.grammar import SLP

        renamed = SLP(
            inner_rules={
                ("R", n): tuple(("R", c) for c in pair)
                for n, pair in padded_slp.inner_rules.items()
            },
            leaf_rules={("R", n): s for n, s in padded_slp.leaf_rules.items()},
            start=("R", padded_slp.start),
        )
        assert renamed.structural_digest() == padded_slp.structural_digest()
        restored, _ = store.load(*key, renamed, padded_nfa)
        assert restored is not None
        assert restored.slp is renamed  # attached to the live object
        # index-based attachment maps tables onto the *renamed* nodes
        # (compare via the accessor: plane containers are kernel-native)
        lookup = dict(zip(padded_slp.canonical_order(), renamed.canonical_order()))
        for name in prep.order:
            twin = lookup[name]
            for i in range(prep.q):
                assert restored.notbot_row(twin, i) == prep.notbot_row(name, i)


class TestRejection:
    def _saved(self, tmp_path):
        store = PreprocessingStore(str(tmp_path))
        source, padded_slp, padded_nfa, prep = build_pair()
        key = (source.structural_digest(), padded_nfa.structural_digest())
        store.save(*key, prep)
        (entry,) = [
            os.path.join(str(tmp_path), n)
            for n in os.listdir(str(tmp_path))
            if n.endswith(".prep")
        ]
        return store, key, padded_slp, padded_nfa, entry

    def test_rejects_stale_format_version(self, tmp_path):
        store, key, padded_slp, padded_nfa, entry = self._saved(tmp_path)
        with open(entry, "r+b") as fh:
            data = bytearray(fh.read())
            # bump the version field and re-seal the CRC so *only* the
            # version is stale (not a corruption artefact)
            struct.pack_into("<H", data, 6, prepstore.STORE_FORMAT_VERSION + 1)
            import zlib

            struct.pack_into("<I", data, len(data) - 4, zlib.crc32(data[:-4]))
            fh.seek(0)
            fh.write(data)
        assert store.load(*key, padded_slp, padded_nfa) is None
        assert store.stats.rejects == 1

    def test_wrong_grammar_is_a_clean_miss(self, tmp_path):
        # A different padded grammar keys to a different file entirely, so
        # this is a plain miss (and configs can coexist), not a reject.
        store, key, _, padded_nfa, _ = self._saved(tmp_path)
        other = pad_slp(balanced_slp("bbbb"))
        assert store.load(*key, other, padded_nfa) is None
        assert store.stats.misses == 1
        assert store.stats.rejects == 0

    @pytest.mark.parametrize("seed", range(10))
    def test_corrupted_file_rebuilds_instead_of_crashing(self, tmp_path, seed):
        store, key, padded_slp, padded_nfa, entry = self._saved(tmp_path)
        rng = random.Random(seed)
        with open(entry, "r+b") as fh:
            data = bytearray(fh.read())
            if seed % 3 == 0:
                data = data[: rng.randrange(1, len(data))]  # truncate
            else:
                for _ in range(rng.randint(1, 5)):
                    data[rng.randrange(len(data))] ^= 1 << rng.randrange(8)
            fh.seek(0)
            fh.truncate()
            fh.write(data)
        result = store.load(*key, padded_slp, padded_nfa)
        if result is not None:
            # flips cancelled out: the tables must still be exact
            assert_tables_bit_for_bit(
                Preprocessing(padded_slp, padded_nfa), result[0]
            )
        else:
            assert store.stats.rejects == 1

    def test_engine_survives_corrupted_store_file(self, tmp_path):
        # End-to-end: a corrupted entry means rebuild, never a crash or a
        # wrong answer.
        spanner = compile_spanner(r".*(?P<x>ab).*", alphabet="ab")
        store = PreprocessingStore(str(tmp_path))
        assert Engine(store=store).count(spanner, balanced_slp("abab")) == 2
        for name in os.listdir(str(tmp_path)):
            if name.endswith(".prep"):
                path = os.path.join(str(tmp_path), name)
                with open(path, "r+b") as fh:
                    data = fh.read()
                    fh.seek(0)
                    fh.truncate()
                    fh.write(data[: len(data) // 2])
        fresh = PreprocessingStore(str(tmp_path))
        assert Engine(store=fresh).count(spanner, balanced_slp("abab")) == 2
        assert fresh.stats.rejects >= 1
        assert fresh.stats.writes >= 1  # rebuilt entries were re-persisted

    def test_missing_directory_is_created(self, tmp_path):
        nested = str(tmp_path / "a" / "b" / "store")
        store = PreprocessingStore(nested)
        assert os.path.isdir(nested)
        assert len(store) == 0

    def test_clear_removes_entries(self, tmp_path):
        store, key, padded_slp, padded_nfa, _ = self._saved(tmp_path)
        assert len(store) == 1
        store.clear()
        assert len(store) == 0
        assert store.load(*key, padded_slp, padded_nfa) is None


class TestEngineIntegration:
    def test_nfa_and_dfa_entries_are_distinct_keys(self, tmp_path):
        store = PreprocessingStore(str(tmp_path))
        spanner = compile_spanner(r".*(?P<x>ab).*", alphabet="ab")  # NFA != DFA
        engine = Engine(store=store)
        slp = balanced_slp("abab")
        engine.evaluate(spanner, slp)  # NFA tables
        engine.count(spanner, slp)  # DFA tables (+ counts rewrite)
        assert len(store) == 2

    def test_restart_restores_counting_without_rebuild(self, tmp_path):
        spanner = compile_spanner(r".*(?P<x>a+)b.*", alphabet="ab")
        engine = Engine(store=PreprocessingStore(str(tmp_path)))
        assert engine.count(spanner, fibonacci_slp(10)) > 0

        restarted = Engine(store=PreprocessingStore(str(tmp_path)))
        assert restarted.count(spanner, fibonacci_slp(10)) == engine.count(
            spanner, fibonacci_slp(10)
        )
        assert restarted.cache_stats()["counting"].misses == 0
        assert restarted.store.stats.hits >= 1

    def test_differently_configured_engines_coexist_in_one_store(self, tmp_path):
        # Regression: balance=True and balance=False pad the same source
        # differently; their entries must not clobber each other.
        spanner = compile_spanner(r".*(?P<x>ab).*", alphabet="ab")
        store = PreprocessingStore(str(tmp_path))
        Engine(store=store, balance=True).count(spanner, caterpillar_slp(40))
        Engine(
            store=PreprocessingStore(str(tmp_path)), balance=False
        ).count(spanner, caterpillar_slp(40))
        # both configs warm-start now, with no rejects from clobbering
        for balance in (True, False):
            fresh = PreprocessingStore(str(tmp_path))
            Engine(store=fresh, balance=balance).count(spanner, caterpillar_slp(40))
            assert fresh.stats.hits >= 1, f"balance={balance}"
            assert fresh.stats.rejects == 0, f"balance={balance}"

    def test_cold_count_writes_store_exactly_once(self, tmp_path):
        # Regression: the prep build used to persist a counts-less payload
        # that the counting build immediately rewrote in full.
        store = PreprocessingStore(str(tmp_path))
        spanner = compile_spanner(r".*(?P<x>ab).*", alphabet="ab")
        assert Engine(store=store).count(spanner, balanced_slp("abab")) == 2
        assert store.stats.writes == 1

    def test_store_orthogonal_to_identity_keys(self, tmp_path):
        # Identity keys + store: two equal SLP *objects* are two in-memory
        # entries but share one on-disk entry.
        store = PreprocessingStore(str(tmp_path))
        spanner = compile_spanner(r".*(?P<x>ab).*", alphabet="ab")
        engine = Engine(store=store)
        assert engine.count(spanner, balanced_slp("abab")) == 2
        assert engine.count(spanner, balanced_slp("abab")) == 2
        assert engine.cache_stats()["preprocessings"].size == 2
        assert store.stats.hits == 1  # second object restored from disk


class TestSelfHealing:
    """PR 9: corrupt entries are quarantined and rebuilt, saves are
    atomic, and a full disk degrades to a warn-once no-op."""

    def _saved(self, tmp_path):
        return TestRejection._saved(self, tmp_path)

    @pytest.fixture(autouse=True)
    def disarm_faults(self):
        from repro.faults import set_plan

        yield
        set_plan(None)

    def _quarantine_files(self, tmp_path):
        return [
            n for n in os.listdir(str(tmp_path)) if n.endswith(".quarantined")
        ]

    @pytest.mark.parametrize("damage", ["header", "body", "truncate"])
    def test_corrupt_entry_is_quarantined_and_rebuilt(self, tmp_path, damage):
        store, key, padded_slp, padded_nfa, entry = self._saved(tmp_path)
        with open(entry, "r+b") as fh:
            data = bytearray(fh.read())
            if damage == "header":
                data[0] ^= 0xFF  # break the magic
            elif damage == "body":
                data[len(data) // 2] ^= 0xFF  # CRC mismatch
            else:
                data = data[: len(data) // 3]
            fh.seek(0)
            fh.truncate()
            fh.write(data)
        assert store.load(*key, padded_slp, padded_nfa) is None
        # the bad bytes moved aside: the entry path is vacant, the
        # quarantine file holds the evidence, and the stats say so
        assert not os.path.exists(entry)
        assert self._quarantine_files(tmp_path) == [
            os.path.basename(entry) + ".quarantined"
        ]
        assert store.stats.quarantined == 1
        assert store.stats.rejects == 1
        assert len(store) == 0  # quarantine files are not entries
        assert store.scan_headers() == []
        # rebuild: a fresh save lands on the vacant path and round-trips
        prep = Preprocessing(padded_slp, padded_nfa)
        store.save(*key, prep)
        restored, _ = store.load(*key, padded_slp, padded_nfa)
        assert_tables_bit_for_bit(prep, restored)

    def test_clear_also_removes_quarantine_files(self, tmp_path):
        store, key, padded_slp, padded_nfa, entry = self._saved(tmp_path)
        with open(entry, "r+b") as fh:
            fh.write(b"\xff")
        store.load(*key, padded_slp, padded_nfa)
        assert self._quarantine_files(tmp_path)
        store.clear()
        assert self._quarantine_files(tmp_path) == []

    def test_enospc_save_is_a_warn_once_noop(self, tmp_path):
        import warnings as warnings_module

        from repro.faults import FaultPlan, FaultRule, set_plan
        from repro.obs.metrics import get_registry

        store = PreprocessingStore(str(tmp_path))
        source, padded_slp, padded_nfa, prep = build_pair()
        key = (source.structural_digest(), padded_nfa.structural_digest())
        set_plan(FaultPlan([FaultRule(site="store.save", kind="enospc")]))
        errors_before = get_registry().counter("store.save_errors").value
        with pytest.warns(RuntimeWarning, match="out of disk space"):
            store.save(*key, prep)
        # the second failure is silent: one warning per store instance
        with warnings_module.catch_warnings(record=True) as caught:
            warnings_module.simplefilter("always")
            store.save(*key, prep)
        assert caught == []
        assert store.stats.writes == 0
        assert len(store) == 0
        assert get_registry().counter("store.save_errors").value == errors_before + 2
        # evaluation continues: once space is back, saves work again
        set_plan(None)
        store.save(*key, prep)
        assert store.load(*key, padded_slp, padded_nfa) is not None

    def test_torn_write_is_caught_at_load_and_rebuilt(self, tmp_path):
        from repro.faults import FaultPlan, FaultRule, set_plan

        store = PreprocessingStore(str(tmp_path))
        source, padded_slp, padded_nfa, prep = build_pair()
        key = (source.structural_digest(), padded_nfa.structural_digest())
        set_plan(
            FaultPlan(
                [FaultRule(site="store.save.bytes", kind="torn", nth=1)]
            )
        )
        store.save(*key, prep)  # commits a truncated payload
        set_plan(None)
        assert store.load(*key, padded_slp, padded_nfa) is None
        assert store.stats.quarantined == 1
        store.save(*key, prep)
        restored, _ = store.load(*key, padded_slp, padded_nfa)
        assert_tables_bit_for_bit(prep, restored)

    def test_writer_killed_mid_save_leaves_no_partial_entry(self, tmp_path):
        """Satellite: atomic writes, proven by killing a real writer.

        A child process saves an entry with a ``crash`` fault armed at
        the ``store.save.commit`` site — after the payload bytes are on
        disk, before the rename.  The directory must show *no* ``.prep``
        entry afterwards: a reader can never observe a partial payload.
        """
        import subprocess
        import sys

        from repro.faults import CRASH_EXIT_CODE

        script = (
            "import sys\n"
            "from repro.slp.construct import balanced_slp\n"
            "from repro.spanner.regex import compile_spanner\n"
            "from repro.spanner.transform import pad_slp, pad_spanner\n"
            "from repro.core.matrices import Preprocessing\n"
            "from repro.store import PreprocessingStore\n"
            "source = balanced_slp('abbaab')\n"
            "base = compile_spanner(r'.*(?P<x>a+)b.*', alphabet='ab')"
            ".eliminate_epsilon().determinize().trim()\n"
            "padded_slp, padded_nfa = pad_slp(source), pad_spanner(base)\n"
            "store = PreprocessingStore(sys.argv[1])\n"
            "store.save(source.structural_digest(), "
            "padded_nfa.structural_digest(), "
            "Preprocessing(padded_slp, padded_nfa))\n"
            "sys.exit(3)  # unreachable: the commit fault crashes first\n"
        )
        env = dict(os.environ)
        env["REPRO_FAULTS"] = "store.save.commit:crash"
        src_dir = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.abspath(src_dir), env.get("PYTHONPATH", "")]
        )
        proc = subprocess.run(
            [sys.executable, "-c", script, str(tmp_path)],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == CRASH_EXIT_CODE, proc.stderr
        store = PreprocessingStore(str(tmp_path))
        assert len(store) == 0  # no entry, partial or otherwise
        assert store.scan_headers() == []
        # the survivor rebuilds and persists on the same path unharmed
        source, padded_slp, padded_nfa, prep = build_pair()
        key = (source.structural_digest(), padded_nfa.structural_digest())
        store.save(*key, prep)
        restored, _ = store.load(*key, padded_slp, padded_nfa)
        assert_tables_bit_for_bit(prep, restored)
