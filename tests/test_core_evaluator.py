"""Tests for repro.core.evaluator (the facade)."""

import random

import pytest

from repro.slp.construct import balanced_slp
from repro.slp.families import caterpillar_slp, power_slp
from repro.spanner.regex import compile_spanner
from repro.spanner.spans import Span, SpanTuple
from repro.baselines.naive import naive_evaluate
from repro.core.evaluator import CompressedSpannerEvaluator

from tests.conftest import WELLFORMED_PATTERNS, random_doc


def make(pattern, alphabet, doc, **kwargs):
    return CompressedSpannerEvaluator(
        compile_spanner(pattern, alphabet=alphabet), balanced_slp(doc), **kwargs
    )


class TestTasks:
    def test_all_four_tasks_consistent(self):
        ev = make(r".*(?P<x>a+)b.*", "ab", "aabab")
        relation = ev.evaluate()
        assert ev.is_nonempty() == bool(relation)
        assert set(ev.enumerate()) == relation
        assert ev.count() == len(relation)
        for tup in relation:
            assert ev.model_check(tup)
        assert not ev.model_check(SpanTuple({"x": Span(1, 2)}))

    @pytest.mark.parametrize("pattern,alphabet", WELLFORMED_PATTERNS[:8])
    def test_against_reference(self, pattern, alphabet, compiled_patterns):
        nfa = compiled_patterns[pattern]
        rng = random.Random(hash(pattern) % 10**6)
        doc = random_doc(rng, alphabet, 8)
        ev = CompressedSpannerEvaluator(nfa, balanced_slp(doc))
        assert ev.evaluate() == naive_evaluate(nfa, doc)

    def test_empty_relation(self):
        ev = make(r"(?P<x>ab)", "ab", "ba")
        assert not ev.is_nonempty()
        assert ev.evaluate() == frozenset()
        assert ev.count() == 0


class TestBalancePolicy:
    def test_auto_balances_deep_grammars(self):
        nfa = compile_spanner(r".*(?P<x>ab).*", alphabet="ab")
        deep = caterpillar_slp(1200)
        ev = CompressedSpannerEvaluator(nfa, deep)  # balance=True default
        assert ev.slp.depth() < 60
        assert ev.slp.length() == deep.length()

    def test_balance_opt_out(self):
        nfa = compile_spanner(r".*(?P<x>ab).*", alphabet="ab")
        deep = caterpillar_slp(600)
        ev = CompressedSpannerEvaluator(nfa, deep, balance=False)
        assert ev.slp is deep
        assert ev.is_nonempty()

    def test_balanced_input_untouched(self):
        nfa = compile_spanner(r"a*", alphabet="a")
        slp = power_slp("a", 10)
        ev = CompressedSpannerEvaluator(nfa, slp)
        assert ev.slp is slp


class TestCaching:
    def test_preprocessings_are_cached(self):
        ev = make(r"(?P<x>a+)b", "ab", "aab")
        assert ev.preprocessing(deterministic=True) is ev.preprocessing(deterministic=True)
        assert ev.preprocessing(deterministic=False) is ev.preprocessing(deterministic=False)

    def test_padded_structures_cached(self):
        ev = make(r"(?P<x>a)b", "ab", "ab")
        assert ev.padded_slp is ev.padded_slp
        assert ev.padded_dfa is ev.padded_dfa

    def test_repr(self):
        ev = make(r"(?P<x>a)b", "ab", "ab")
        assert "doc_length=2" in repr(ev)


class TestHugeDocuments:
    def test_two_power_thirty(self):
        nfa = compile_spanner(r"(a|b)*(?P<x>ba)(a|b)*", alphabet="ab")
        ev = CompressedSpannerEvaluator(nfa, power_slp("ab", 30))
        assert ev.is_nonempty()
        assert ev.model_check(SpanTuple({"x": Span(2, 4)}))
        assert not ev.model_check(SpanTuple({"x": Span(1, 3)}))
        import itertools

        sample = list(itertools.islice(ev.enumerate(), 5))
        assert len(sample) == 5
