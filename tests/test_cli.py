"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.slp.construct import balanced_slp
from repro.slp import io as slp_io


@pytest.fixture()
def corpus(tmp_path):
    path = tmp_path / "corpus.txt"
    path.write_text("abccabccabccaab", encoding="utf-8")
    return path


@pytest.fixture()
def grammar(tmp_path):
    path = tmp_path / "doc.slp.json"
    slp_io.save_file(balanced_slp("abccabccabccaab"), str(path))
    return path


class TestCompress:
    def test_creates_grammar_file(self, corpus, tmp_path, capsys):
        out = tmp_path / "out.slp.json"
        assert main(["compress", str(corpus), "-o", str(out)]) == 0
        data = json.loads(out.read_text())
        assert data["format"] == "repro-slp"
        assert "ratio" in capsys.readouterr().out

    def test_default_output_name(self, corpus, capsys):
        assert main(["compress", str(corpus), "--method", "bisection"]) == 0
        assert corpus.with_name(corpus.name + ".slp.json").exists()

    def test_empty_input_rejected(self, tmp_path, capsys):
        empty = tmp_path / "empty.txt"
        empty.write_text("")
        assert main(["compress", str(empty)]) == 1

    def test_missing_file(self, tmp_path):
        assert main(["compress", str(tmp_path / "nope.txt")]) == 1


class TestConvert:
    def test_json_to_binary_and_back(self, grammar, tmp_path, capsys):
        binary = tmp_path / "doc.slpb"
        assert main(["convert", str(grammar), "-o", str(binary)]) == 0
        assert binary.read_bytes().startswith(slp_io.BINARY_MAGIC)
        back = tmp_path / "back.slp.json"
        assert main(["convert", str(binary), "-o", str(back)]) == 0
        assert json.loads(back.read_text()) == json.loads(grammar.read_text())
        out = capsys.readouterr().out
        assert "digest" in out and "binary" in out and "json" in out

    def test_default_output_toggles_format(self, grammar, capsys):
        assert main(["convert", str(grammar)]) == 0
        assert grammar.with_name("doc.slpb").exists()

    def test_binary_grammar_usable_by_query(self, grammar, tmp_path, capsys):
        binary = tmp_path / "doc.slpb"
        assert main(["convert", str(grammar), "-o", str(binary)]) == 0
        capsys.readouterr()
        assert main(["query", str(binary), r".*(?P<x>ab).*", "--task", "count"]) == 0
        assert capsys.readouterr().out.strip() == "4"

    def test_corrupt_binary_reports_error(self, grammar, tmp_path, capsys):
        binary = tmp_path / "doc.slpb"
        assert main(["convert", str(grammar), "-o", str(binary)]) == 0
        data = bytearray(binary.read_bytes())
        data[-1] ^= 0xFF
        binary.write_bytes(bytes(data))
        assert main(["stats", str(binary)]) == 1
        assert "error:" in capsys.readouterr().err


class TestStats:
    def test_prints_measures(self, grammar, capsys):
        assert main(["stats", str(grammar)]) == 0
        out = capsys.readouterr().out
        assert "length" in out and "depth" in out

    def test_prints_structural_digest(self, grammar, capsys):
        assert main(["stats", str(grammar)]) == 0
        out = capsys.readouterr().out
        slp = slp_io.load_file(str(grammar))
        assert f"structural_digest  {slp.structural_digest()}" in out

    def test_store_correlation(self, grammar, tmp_path, capsys):
        store_dir = str(tmp_path / "prep-store")
        # inspection never creates the store: a mistyped path must error,
        # not report a plausible "0 of 0" against a conjured directory
        assert main(["stats", str(grammar), "--store", store_dir]) == 1
        assert "does not exist" in capsys.readouterr().err
        import os

        assert not os.path.exists(store_dir)
        # a query through the same store creates exactly one entry for
        # this grammar, and stats correlates it via the padded digest
        assert main(["query", str(grammar), r".*(?P<x>c).*", "--task", "count",
                     "--store", store_dir]) == 0
        capsys.readouterr()
        assert main(["stats", str(grammar), "--store", store_dir,
                     "--structural-keys"]) == 0
        out = capsys.readouterr().out
        assert "store_entries      1 of 1" in out
        assert ".prep" in out and "q=" in out


class TestDecompress:
    def test_roundtrip(self, grammar, tmp_path, capsys):
        out = tmp_path / "restored.txt"
        assert main(["decompress", str(grammar), "-o", str(out)]) == 0
        assert out.read_text() == "abccabccabccaab"

    def test_to_stdout(self, grammar, capsys):
        assert main(["decompress", str(grammar)]) == 0
        assert "abccabccabccaab" in capsys.readouterr().out

    def test_limit_enforced(self, grammar, capsys):
        assert main(["decompress", str(grammar), "--limit", "3"]) == 1


class TestQuery:
    def test_enumerate(self, grammar, capsys):
        assert main(["query", str(grammar), r".*(?P<x>a)(?P<y>bcc).*"]) == 0
        out = capsys.readouterr().out
        assert "x=[1,2⟩" in out

    def test_enumerate_with_text(self, grammar, capsys):
        assert (
            main(["query", str(grammar), r".*(?P<x>bcc).*", "--show-text"]) == 0
        )
        assert "bcc" in capsys.readouterr().out

    def test_limit_reports_remaining(self, grammar, capsys):
        assert main(["query", str(grammar), r".*(?P<x>c).*", "--limit", "2"]) == 0
        out = capsys.readouterr().out
        assert "more" in out

    def test_count(self, grammar, capsys):
        assert main(["query", str(grammar), r".*(?P<x>c).*", "--task", "count"]) == 0
        assert capsys.readouterr().out.strip() == "6"

    def test_nonempty(self, grammar, capsys):
        assert main(["query", str(grammar), r".*(?P<x>ab).*", "--task", "nonempty"]) == 0
        assert "nonempty" in capsys.readouterr().out
        assert main(["query", str(grammar), r"(?P<x>zz)", "--alphabet", "abcz",
                     "--task", "nonempty"]) == 0
        assert "empty" in capsys.readouterr().out

    def test_store_warm_start(self, grammar, tmp_path, capsys):
        store_dir = str(tmp_path / "prep-store")
        argv = ["query", str(grammar), r".*(?P<x>c).*", "--task", "count",
                "--store", store_dir, "--structural-keys"]
        assert main(argv) == 0
        assert capsys.readouterr().out.strip() == "6"
        import os

        assert any(n.endswith(".prep") for n in os.listdir(store_dir))
        assert main(argv) == 0  # fresh "process": restores, same answer
        assert capsys.readouterr().out.strip() == "6"

    def test_store_does_not_change_results(self, grammar, tmp_path, capsys):
        pattern = r".*(?P<x>a)(?P<y>bcc).*"
        assert main(["query", str(grammar), pattern]) == 0
        plain = capsys.readouterr().out
        assert main(["query", str(grammar), pattern,
                     "--store", str(tmp_path / "s")]) == 0
        assert capsys.readouterr().out == plain

    def test_check_positive(self, grammar, capsys):
        code = main([
            "query", str(grammar), r".*(?P<x>bcc).*",
            "--task", "check", "--span", "x=2,5",
        ])
        assert code == 0
        assert "IN" in capsys.readouterr().out

    def test_check_negative_exit_code(self, grammar, capsys):
        code = main([
            "query", str(grammar), r".*(?P<x>bcc).*",
            "--task", "check", "--span", "x=1,4",
        ])
        assert code == 2

    def test_check_requires_span(self, grammar, capsys):
        assert main(["query", str(grammar), r".*(?P<x>a).*", "--task", "check"]) == 1

    def test_bad_span_syntax(self, grammar, capsys):
        code = main([
            "query", str(grammar), r".*(?P<x>a).*",
            "--task", "check", "--span", "x:1-2",
        ])
        assert code == 1

    def test_rank(self, grammar, capsys):
        assert main(["query", str(grammar), r".*(?P<x>c).*", "--rank", "3"]) == 0
        assert "#3:" in capsys.readouterr().out

    def test_no_results(self, grammar, capsys):
        assert main(["query", str(grammar), r"(?P<x>caa)x*", "--alphabet", "abcx"]) == 0
        assert "(no results)" in capsys.readouterr().out


@pytest.fixture()
def second_grammar(tmp_path):
    path = tmp_path / "doc2.slp.json"
    slp_io.save_file(balanced_slp("ababab"), str(path))
    return path


class TestBatch:
    def test_count_grid(self, grammar, second_grammar, capsys):
        code = main([
            "batch", str(grammar), str(second_grammar),
            "-p", r".*(?P<x>ab).*", "-p", r".*(?P<x>c+).*",
        ])
        assert code == 0
        out = capsys.readouterr().out
        # row-major grid: 2 grammars x 2 patterns = 4 result lines
        assert len([l for l in out.splitlines() if " -> " in l]) == 4
        assert f"{second_grammar} :: .*(?P<x>c+).* -> 0" in out

    def test_enumerate_with_limit(self, grammar, capsys):
        code = main([
            "batch", str(grammar), "-p", r".*(?P<x>c).*",
            "--task", "enumerate", "--limit", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("SpanTuple") == 2

    def test_nonempty(self, grammar, second_grammar, capsys):
        code = main([
            "batch", str(grammar), str(second_grammar),
            "-p", r".*(?P<x>cc).*", "--task", "nonempty",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert f"{grammar} :: .*(?P<x>cc).* -> nonempty" in out
        assert f"{second_grammar} :: .*(?P<x>cc).* -> empty" in out

    def test_cache_stats_printed(self, grammar, capsys):
        code = main([
            "batch", str(grammar), "-p", r".*(?P<x>ab).*", "--cache-stats",
        ])
        assert code == 0
        assert "# cache preprocessings [identity]:" in capsys.readouterr().out

    def test_store_and_structural_keys(self, grammar, tmp_path, capsys):
        store_dir = str(tmp_path / "prep-store")
        argv = [
            "batch", str(grammar), "-p", r".*(?P<x>ab).*",
            "--store", store_dir, "--structural-keys", "--cache-stats",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "# cache preprocessings [structural]:" in first
        assert "writes" in first
        assert main(argv) == 0  # second process: warm start from the store
        second = capsys.readouterr().out
        assert "1 hits, 0 misses" in [
            l for l in second.splitlines() if l.startswith("# store")
        ][0]

    def test_jobs_matches_serial_output(self, grammar, second_grammar, capsys):
        argv_tail = [
            str(grammar), str(second_grammar),
            "-p", r".*(?P<x>ab).*", "-p", r"(?P<y>c+)", "--task", "count",
        ]
        assert main(["batch"] + argv_tail) == 0
        serial_out = capsys.readouterr().out
        assert main(["batch"] + argv_tail + ["--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial_out

    def test_jobs_with_store_prints_fleet_stats(self, grammar, tmp_path, capsys):
        store_dir = str(tmp_path / "prep-store")
        code = main([
            "batch", str(grammar), "-p", r".*(?P<x>ab).*", "--task", "count",
            "--jobs", "2", "--store", store_dir, "--cache-stats",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "# cache preprocessings [structural]:" in out
        assert "# store" in out

    def test_jobs_rejects_nonpositive(self, grammar, capsys):
        assert main(["batch", str(grammar), "-p", "a", "--jobs", "0"]) == 1
        assert "--jobs" in capsys.readouterr().err

    def test_shared_alphabet_spans_all_grammars(self, tmp_path, capsys):
        # 'c' occurs only in the first document; without a shared alphabet
        # the query over the second grammar could not even compile.
        first = tmp_path / "with_c.slp.json"
        slp_io.save_file(balanced_slp("accb"), str(first))
        second = tmp_path / "no_c.slp.json"
        slp_io.save_file(balanced_slp("abab"), str(second))
        code = main(["batch", str(first), str(second), "-p", r".*(?P<x>c+).*"])
        assert code == 0
        lines = [l for l in capsys.readouterr().out.splitlines() if " -> " in l]
        assert lines[0].endswith("-> 3") and lines[1].endswith("-> 0")

    def test_forward_rule_reference_rejected(self, tmp_path, grammar, capsys):
        # Malformed io path: rule 0 references node 3, defined only later.
        bad = tmp_path / "forward.slp.json"
        bad.write_text(json.dumps({
            "format": "repro-slp", "version": 1,
            "terminals": ["a", "b"],
            "rules": [[0, 3], [0, 1]],
            "start": 3,
        }))
        code = main(["batch", str(grammar), str(bad), "-p", r".*(?P<x>a).*"])
        assert code == 1
        assert "forward" in capsys.readouterr().err

    def test_bad_start_id_rejected(self, tmp_path, capsys):
        bad = tmp_path / "badstart.slp.json"
        bad.write_text(json.dumps({
            "format": "repro-slp", "version": 1,
            "terminals": ["a", "b"],
            "rules": [[0, 1]],
            "start": 99,
        }))
        code = main(["batch", str(bad), "-p", r".*(?P<x>a).*"])
        assert code == 1
        assert "start id" in capsys.readouterr().err

    def test_missing_grammar_file(self, tmp_path, capsys):
        code = main(["batch", str(tmp_path / "nope.slp.json"), "-p", r"(?P<x>a)"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_non_json_grammar_rejected(self, tmp_path, capsys):
        bad = tmp_path / "garbage.slp.json"
        bad.write_text("not json at all")
        code = main(["batch", str(bad), "-p", r"(?P<x>a)"])
        assert code == 1
        assert "not valid JSON" in capsys.readouterr().err

    def test_non_object_json_grammar_rejected(self, tmp_path, capsys):
        bad = tmp_path / "scalar.slp.json"
        bad.write_text("42")
        code = main(["batch", str(bad), "-p", r"(?P<x>a)"])
        assert code == 1
        assert "expected an object" in capsys.readouterr().err


class TestServeAndConnect:
    """The service surface of the CLI: serve, and --connect routing."""

    @pytest.fixture
    def daemon(self, service_socket, tmp_path):
        from repro.service.server import ServiceThread
        from repro.session import SessionConfig

        config = SessionConfig(jobs=1, store_dir=str(tmp_path / "prep"))
        with ServiceThread(config, service_socket) as svc:
            yield svc

    def test_serve_requires_socket(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve"])
        assert "--socket" in capsys.readouterr().err

    def test_serve_rejects_bad_jobs(self, service_socket, capsys):
        assert main(["serve", "--socket", service_socket, "--jobs", "0"]) == 1
        assert "--jobs" in capsys.readouterr().err

    def test_batch_connect_prints_what_serial_prints(self, grammar, daemon, capsys):
        argv = [str(grammar), "-p", r".*(?P<x>ab).*", "--task", "count"]
        assert main(["batch"] + argv) == 0
        serial_out = capsys.readouterr().out
        assert main(["batch"] + argv + ["--connect", daemon.socket_path]) == 0
        assert capsys.readouterr().out == serial_out

    def test_batch_connect_cache_stats_reports_the_service(
        self, grammar, daemon, capsys
    ):
        assert main([
            "batch", str(grammar), "-p", r".*(?P<x>ab).*", "--task", "count",
            "--connect", daemon.socket_path, "--cache-stats",
        ]) == 0
        out = capsys.readouterr().out
        assert "# service" in out and "workers" in out

    def test_query_connect_matches_serial(self, grammar, daemon, capsys):
        for argv in (
            [str(grammar), r".*(?P<x>ab).*", "--task", "count"],
            [str(grammar), r".*(?P<x>ab).*", "--task", "nonempty"],
            [str(grammar), r".*(?P<x>ab).*", "--task", "enumerate", "--limit", "2"],
            [str(grammar), r".*(?P<x>ab).*", "--task", "check", "--span", "x=1,3"],
        ):
            serial_code = main(["query"] + argv)
            serial_out = capsys.readouterr().out
            connect_code = main(
                ["query"] + argv + ["--connect", daemon.socket_path]
            )
            assert connect_code == serial_code
            assert capsys.readouterr().out == serial_out, argv

    def test_query_connect_matches_serial_at_limit_zero(
        self, grammar, daemon, capsys
    ):
        # the serial loop checks its limit after printing, so --limit 0
        # still shows one tuple; --connect must print the same thing
        argv = [str(grammar), r".*(?P<x>ab).*", "--task", "enumerate",
                "--limit", "0"]
        assert main(["query"] + argv) == 0
        serial_out = capsys.readouterr().out
        assert main(["query"] + argv + ["--connect", daemon.socket_path]) == 0
        assert capsys.readouterr().out == serial_out

    def test_batch_connect_notes_ignored_jobs(self, grammar, daemon, capsys):
        assert main([
            "batch", str(grammar), "-p", r".*(?P<x>ab).*", "--task", "count",
            "--jobs", "8", "--connect", daemon.socket_path,
        ]) == 0
        assert "--jobs is ignored" in capsys.readouterr().err

    def test_query_connect_rejects_rank(self, grammar, daemon, capsys):
        code = main([
            "query", str(grammar), r".*(?P<x>ab).*", "--rank", "0",
            "--connect", daemon.socket_path,
        ])
        assert code == 1
        assert "--rank" in capsys.readouterr().err

    def test_stats_connect_reports_daemon(self, daemon, capsys):
        assert main(["stats", "--connect", daemon.socket_path]) == 0
        out = capsys.readouterr().out
        assert "service_pid" in out and "fleet_workers" in out

    def test_stats_connect_plus_grammar_reports_both(
        self, grammar, daemon, capsys
    ):
        assert main(
            ["stats", str(grammar), "--connect", daemon.socket_path]
        ) == 0
        out = capsys.readouterr().out
        assert "service_pid" in out and "structural_digest" in out

    def test_stats_without_grammar_or_connect_errors(self, capsys):
        assert main(["stats"]) == 1
        assert "grammar" in capsys.readouterr().err

    def test_connect_without_daemon_is_an_error_not_a_hang(
        self, grammar, service_socket, capsys
    ):
        code = main([
            "query", str(grammar), r".*(?P<x>ab).*", "--task", "count",
            "--connect", service_socket,
        ])
        assert code == 1
        assert "serve" in capsys.readouterr().err
