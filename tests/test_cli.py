"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.slp.construct import balanced_slp
from repro.slp import io as slp_io


@pytest.fixture()
def corpus(tmp_path):
    path = tmp_path / "corpus.txt"
    path.write_text("abccabccabccaab", encoding="utf-8")
    return path


@pytest.fixture()
def grammar(tmp_path):
    path = tmp_path / "doc.slp.json"
    slp_io.save_file(balanced_slp("abccabccabccaab"), str(path))
    return path


class TestCompress:
    def test_creates_grammar_file(self, corpus, tmp_path, capsys):
        out = tmp_path / "out.slp.json"
        assert main(["compress", str(corpus), "-o", str(out)]) == 0
        data = json.loads(out.read_text())
        assert data["format"] == "repro-slp"
        assert "ratio" in capsys.readouterr().out

    def test_default_output_name(self, corpus, capsys):
        assert main(["compress", str(corpus), "--method", "bisection"]) == 0
        assert corpus.with_name(corpus.name + ".slp.json").exists()

    def test_empty_input_rejected(self, tmp_path, capsys):
        empty = tmp_path / "empty.txt"
        empty.write_text("")
        assert main(["compress", str(empty)]) == 1

    def test_missing_file(self, tmp_path):
        assert main(["compress", str(tmp_path / "nope.txt")]) == 1


class TestStats:
    def test_prints_measures(self, grammar, capsys):
        assert main(["stats", str(grammar)]) == 0
        out = capsys.readouterr().out
        assert "length" in out and "depth" in out


class TestDecompress:
    def test_roundtrip(self, grammar, tmp_path, capsys):
        out = tmp_path / "restored.txt"
        assert main(["decompress", str(grammar), "-o", str(out)]) == 0
        assert out.read_text() == "abccabccabccaab"

    def test_to_stdout(self, grammar, capsys):
        assert main(["decompress", str(grammar)]) == 0
        assert "abccabccabccaab" in capsys.readouterr().out

    def test_limit_enforced(self, grammar, capsys):
        assert main(["decompress", str(grammar), "--limit", "3"]) == 1


class TestQuery:
    def test_enumerate(self, grammar, capsys):
        assert main(["query", str(grammar), r".*(?P<x>a)(?P<y>bcc).*"]) == 0
        out = capsys.readouterr().out
        assert "x=[1,2⟩" in out

    def test_enumerate_with_text(self, grammar, capsys):
        assert (
            main(["query", str(grammar), r".*(?P<x>bcc).*", "--show-text"]) == 0
        )
        assert "bcc" in capsys.readouterr().out

    def test_limit_reports_remaining(self, grammar, capsys):
        assert main(["query", str(grammar), r".*(?P<x>c).*", "--limit", "2"]) == 0
        out = capsys.readouterr().out
        assert "more" in out

    def test_count(self, grammar, capsys):
        assert main(["query", str(grammar), r".*(?P<x>c).*", "--task", "count"]) == 0
        assert capsys.readouterr().out.strip() == "6"

    def test_nonempty(self, grammar, capsys):
        assert main(["query", str(grammar), r".*(?P<x>ab).*", "--task", "nonempty"]) == 0
        assert "nonempty" in capsys.readouterr().out
        assert main(["query", str(grammar), r"(?P<x>zz)", "--alphabet", "abcz",
                     "--task", "nonempty"]) == 0
        assert "empty" in capsys.readouterr().out

    def test_check_positive(self, grammar, capsys):
        code = main([
            "query", str(grammar), r".*(?P<x>bcc).*",
            "--task", "check", "--span", "x=2,5",
        ])
        assert code == 0
        assert "IN" in capsys.readouterr().out

    def test_check_negative_exit_code(self, grammar, capsys):
        code = main([
            "query", str(grammar), r".*(?P<x>bcc).*",
            "--task", "check", "--span", "x=1,4",
        ])
        assert code == 2

    def test_check_requires_span(self, grammar, capsys):
        assert main(["query", str(grammar), r".*(?P<x>a).*", "--task", "check"]) == 1

    def test_bad_span_syntax(self, grammar, capsys):
        code = main([
            "query", str(grammar), r".*(?P<x>a).*",
            "--task", "check", "--span", "x:1-2",
        ])
        assert code == 1

    def test_rank(self, grammar, capsys):
        assert main(["query", str(grammar), r".*(?P<x>c).*", "--rank", "3"]) == 0
        assert "#3:" in capsys.readouterr().out

    def test_no_results(self, grammar, capsys):
        assert main(["query", str(grammar), r"(?P<x>caa)x*", "--alphabet", "abcx"]) == 0
        assert "(no results)" in capsys.readouterr().out
