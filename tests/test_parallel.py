"""Tests for repro.parallel: sharding, the worker pool, and the APIs.

Process-boundary correctness is the point of this subsystem, so the
tests here run real ``multiprocessing`` workers (kept tiny so the suite
stays fast); the cross-check against the serial engine on randomized
workloads lives in ``tests/test_differential.py``.
"""

import multiprocessing
import os
import tempfile

import pytest

from repro.engine import Engine, EngineConfig, SpannerSpec, TaskSpec, evaluate_corpus
from repro.engine.batch import run_batch
from repro.parallel import (
    ParallelExecutionError,
    WorkItem,
    WorkerPool,
    corpus_items,
    grammar_cost,
    parallel_batch,
    parallel_corpus,
    parallel_many,
    plan_shards,
    spill_corpus,
)
from repro.parallel.sharding import DUPLICATE_COST_FACTOR
from repro.slp import io as slp_io
from repro.slp.construct import balanced_slp
from repro.slp.repair import repair_slp
from repro.spanner.regex import compile_spanner
from repro.store import PreprocessingStore, prime_store
from repro.workloads import write_corpus

TIMEOUT = 120.0  # generous per-run cap: a hang should fail, not wedge CI


def ab_spanner(pattern=r".*(?P<x>a+)b.*"):
    return compile_spanner(pattern, alphabet="ab")


@pytest.fixture
def small_corpus(tmp_path):
    """Six .slpb files, three distinct contents (duplication 2)."""
    return write_corpus(
        str(tmp_path / "corpus"), 6, duplication=2, doc_length=120, seed=7
    )


# -- sharding -----------------------------------------------------------------


class TestSharding:
    def test_grammar_cost_reads_slpb_header(self, tmp_path):
        slp = repair_slp("abab" * 50)
        path = str(tmp_path / "g.slpb")
        slp_io.save_binary(slp, path)
        assert grammar_cost(path) == len(slp.canonical_order())

    def test_grammar_cost_json_falls_back_to_bytes(self, tmp_path):
        path = str(tmp_path / "g.slp.json")
        slp_io.save_file(repair_slp("abab" * 50), path)
        assert grammar_cost(path) >= 1

    def test_grammar_cost_unreadable_is_one(self, tmp_path):
        assert grammar_cost(str(tmp_path / "missing.slpb")) == 1

    def test_plan_covers_every_item_exactly_once(self, small_corpus):
        items = corpus_items(small_corpus)
        plan = plan_shards(items, 4)
        indices = sorted(i.index for s in plan.shards for i in s.items)
        assert indices == list(range(len(small_corpus)))
        assert plan.num_items == len(small_corpus)

    def test_digest_affinity_groups_duplicates(self, small_corpus):
        items = corpus_items(small_corpus)
        plan = plan_shards(items, 6)
        shard_of = {}
        for shard in plan.shards:
            for item in shard.items:
                shard_of[item.index] = shard.shard_id
        by_digest = {}
        for item in items:
            by_digest.setdefault(item.digest, []).append(item.index)
        for digest, indices in by_digest.items():
            assert len({shard_of[i] for i in indices}) == 1, digest

    def test_duplicates_are_discounted(self, small_corpus):
        items = corpus_items(small_corpus)
        plan = plan_shards(items, 3)
        # 3 digest groups of 2: each shard carries one group whose second
        # item is discounted.
        for shard in plan.shards:
            costs = sorted(item.cost for item in shard.items)
            assert costs[0] == pytest.approx(costs[-1] * DUPLICATE_COST_FACTOR)

    def test_lpt_balances_without_affinity(self):
        items = [
            WorkItem(index=k, path=f"p{k}", cost=c)
            for k, c in enumerate([10, 9, 8, 2, 2, 2, 1, 1, 1])
        ]
        plan = plan_shards(items, 3, digest_affinity=False)
        assert len(plan.shards) == 3
        assert plan.imbalance <= 1.1

    def test_single_shard_plan(self, small_corpus):
        plan = plan_shards(corpus_items(small_corpus), 1)
        assert len(plan.shards) == 1
        assert plan.imbalance == 1.0

    def test_spill_corpus_round_trips(self, tmp_path):
        slps = [balanced_slp(t) for t in ("abab", "babab")]
        paths = spill_corpus(slps, str(tmp_path / "spill"))
        assert [slp_io.load_file(p).structural_digest() for p in paths] == [
            s.structural_digest() for s in slps
        ]


# -- engine-side specs --------------------------------------------------------


class TestSpecs:
    def test_task_spec_validates_task(self):
        with pytest.raises(ValueError, match="unknown batch task"):
            TaskSpec(task="frobnicate")

    def test_spanner_spec_needs_exactly_one_source(self):
        with pytest.raises(ValueError):
            SpannerSpec()
        with pytest.raises(ValueError):
            SpannerSpec(pattern="a", nfa=ab_spanner())
        with pytest.raises(ValueError):
            SpannerSpec(pattern="a")  # no alphabet

    def test_spanner_spec_pattern_resolves(self):
        spec = SpannerSpec(pattern=r"(?P<x>a+)b", alphabet="ab")
        assert (
            spec.resolve().structural_digest()
            == ab_spanner(r"(?P<x>a+)b").structural_digest()
        )

    def test_engine_config_builds_store_backed_engine(self, tmp_path):
        config = EngineConfig(store_dir=str(tmp_path / "s"), structural_keys=True)
        engine = config.build()
        assert engine.structural_keys and engine.store is not None

    def test_warm_from_store_restores_without_building(self, tmp_path):
        spanner, slp = ab_spanner(), balanced_slp("aababab")
        store_dir = str(tmp_path / "store")
        builder = Engine(store=PreprocessingStore(store_dir), structural_keys=True)
        builder.count(spanner, slp)  # builds + persists tables and counts

        fresh = Engine(store=PreprocessingStore(store_dir), structural_keys=True)
        assert fresh.warm_from_store(spanner, slp, deterministic=True)
        assert fresh.store.stats.hits == 1
        # counting came back with the restore: no counting-table build
        assert fresh.count(spanner, slp) == builder.count(spanner, slp)
        assert fresh.cache_stats()["counting"].misses == 0

    def test_warm_from_store_false_on_miss_and_storeless(self, tmp_path):
        spanner, slp = ab_spanner(), balanced_slp("aababab")
        assert not Engine().warm_from_store(spanner, slp)
        empty = Engine(store=PreprocessingStore(str(tmp_path / "empty")))
        assert not empty.warm_from_store(spanner, slp)
        assert len(empty.store) == 0  # probing must not write


# -- the worker pool ----------------------------------------------------------


class TestPool:
    def test_results_come_back_in_input_order(self, small_corpus):
        spanner = ab_spanner()
        serial = evaluate_corpus(
            spanner, [slp_io.load_file(p) for p in small_corpus]
        )
        parallel = parallel_corpus(
            spanner, small_corpus, jobs=2, timeout=TIMEOUT
        )
        assert parallel == serial  # same values AND same order

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            WorkerPool(0)

    def test_report_aggregates_fleet_stats(self, small_corpus, tmp_path):
        report = parallel_corpus(
            ab_spanner(),
            small_corpus,
            task="count",
            jobs=2,
            store=str(tmp_path / "store"),
            timeout=TIMEOUT,
            report=True,
        )
        assert report.jobs == 2
        assert len(report.worker_cache_stats) == 2
        merged = report.cache_stats
        assert merged["preprocessings"].misses >= 1
        # store is shared: the fleet's writes + parent priming cover all
        # three distinct digests
        assert report.store_stats is not None
        assert len(PreprocessingStore(str(tmp_path / "store"))) == 3

    def test_crashed_worker_shard_is_requeued(self, small_corpus, tmp_path):
        spanner = ab_spanner()
        serial = evaluate_corpus(
            spanner, [slp_io.load_file(p) for p in small_corpus]
        )
        token = f"{tmp_path / 'crash-once'}:1"
        report = parallel_corpus(
            spanner,
            small_corpus,
            jobs=2,
            timeout=TIMEOUT,
            report=True,
            _fault_tokens={0: token},
        )
        assert report.workers_crashed == 1
        assert report.retries == 1
        assert report.results == serial

    def test_single_worker_crash_recovers_via_respawn(self, tmp_path):
        # All docs share one digest -> one shard -> one worker: recovery
        # cannot rely on a "surviving" worker, a replacement is spawned.
        spanner = ab_spanner()
        docs = [balanced_slp("abab") for _ in range(3)]
        serial = evaluate_corpus(spanner, docs)
        token = f"{tmp_path / 'lone-crash'}:1"
        report = parallel_corpus(
            spanner,
            docs,
            jobs=1,
            timeout=TIMEOUT,
            report=True,
            _fault_tokens={0: token},
        )
        assert report.jobs == 1
        assert report.workers_crashed == 1 and report.retries == 1
        assert report.results == serial

    def test_retry_cap_raises(self, small_corpus, tmp_path):
        token = f"{tmp_path / 'crash-forever'}:99"
        with pytest.raises(ParallelExecutionError, match="failed"):
            parallel_corpus(
                ab_spanner(),
                small_corpus,
                jobs=2,
                max_retries=1,
                timeout=TIMEOUT,
                _fault_tokens={0: token},
            )

    def test_in_worker_exception_is_retried_not_fatal(self, small_corpus, tmp_path):
        # A missing file raises inside the worker (no crash): the shard is
        # retried and the run eventually aborts with the traceback, because
        # the failure is deterministic.
        bad = str(tmp_path / "gone.slpb")
        paths = list(small_corpus) + [bad]
        with pytest.raises(ParallelExecutionError, match="gone.slpb"):
            parallel_corpus(
                ab_spanner(), paths, jobs=2, max_retries=1, timeout=TIMEOUT
            )

    def test_spawn_start_method_matches_serial(self, small_corpus, monkeypatch):
        # spawn is the start method on macOS and the likely future
        # default everywhere: results must cross the boundary intact
        # (this is the lane that caught SpanTuple's stale pickled hash).
        monkeypatch.setenv("REPRO_PARALLEL_START_METHOD", "spawn")
        spanner = ab_spanner()
        serial = evaluate_corpus(
            spanner, [slp_io.load_file(p) for p in small_corpus]
        )
        assert (
            parallel_corpus(spanner, small_corpus, jobs=2, timeout=TIMEOUT)
            == serial
        )

    def test_jobs_capped_by_shards(self):
        spanner = ab_spanner()
        docs = [balanced_slp("aab")]
        report = parallel_corpus(
            spanner, docs, jobs=8, timeout=TIMEOUT, report=True
        )
        assert report.jobs == 1  # one shard: no point paying for 8 workers
        assert report.results == evaluate_corpus(spanner, docs)


def _leftover_workers():
    """Live ``repro-parallel-*`` children of this process."""
    return [
        p
        for p in multiprocessing.active_children()
        if p.name.startswith("repro-parallel") and p.is_alive()
    ]


class TestShutdown:
    """Abnormal-exit cleanup: no orphan workers, no leaked spill files."""

    def test_context_manager_closes_the_fleet(self, small_corpus):
        from repro.engine.spec import EngineConfig, SpannerSpec, TaskSpec
        from repro.parallel.sharding import corpus_items, plan_shards

        spanner_spec = SpannerSpec(pattern=r".*(?P<x>a+)b.*", alphabet="ab")
        plan = plan_shards(corpus_items(small_corpus), 4)
        with WorkerPool(2, EngineConfig(), timeout=TIMEOUT) as pool:
            report = pool.run(plan, [spanner_spec], TaskSpec(task="count"))
        assert all(isinstance(r, int) for r in report.results)
        assert not _leftover_workers()

    def test_context_manager_aborts_on_error(self, small_corpus):
        from repro.engine.spec import EngineConfig

        with pytest.raises(RuntimeError, match="sentinel"):
            with WorkerPool(2, EngineConfig(), timeout=TIMEOUT):
                raise RuntimeError("sentinel")  # client code blew up
        assert not _leftover_workers()

    def test_keyboard_interrupt_terminates_workers_and_removes_spills(
        self, monkeypatch
    ):
        """The Ctrl-C regression guard: an interrupt mid-run must leave
        neither worker processes nor spill temp directories behind.

        The interrupt is injected into the scheduler's multiplex point
        (``connection.wait``) after the fleet is up and dispatching —
        the worst moment: workers alive, shards in flight, in-memory
        documents spilled to disk.
        """
        from repro.parallel import api as parallel_api
        from repro.parallel import pool as pool_module

        spill_dirs = []
        real_tempdir = tempfile.TemporaryDirectory

        def recording_tempdir(*args, **kwargs):
            tmp = real_tempdir(*args, **kwargs)
            spill_dirs.append(tmp.name)
            return tmp

        monkeypatch.setattr(
            parallel_api.tempfile, "TemporaryDirectory", recording_tempdir
        )

        real_wait = pool_module.connection.wait
        calls = {"n": 0}

        def interrupting_wait(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 2:  # exactly once, after the first dispatch
                # (process.join reuses connection.wait internally, so a
                # sticky interrupt would re-fire *inside* the cleanup —
                # a real Ctrl-C is a single signal)
                raise KeyboardInterrupt
            return real_wait(*args, **kwargs)

        monkeypatch.setattr(pool_module.connection, "wait", interrupting_wait)

        docs = [balanced_slp("ab" * 30) for _ in range(6)]  # in-memory: spilled
        with pytest.raises(KeyboardInterrupt):
            parallel_corpus(ab_spanner(), docs, jobs=2, timeout=TIMEOUT)

        assert calls["n"] >= 2, "the run never reached the scheduler loop"
        assert not _leftover_workers(), "interrupted run leaked workers"
        assert spill_dirs, "the in-memory corpus was never spilled"
        for directory in spill_dirs:
            assert not os.path.exists(directory), f"leaked spill dir {directory}"

    def test_failed_run_leaves_no_workers(self, small_corpus, tmp_path):
        token = f"{tmp_path / 'always-crash'}:99"
        with pytest.raises(ParallelExecutionError):
            parallel_corpus(
                ab_spanner(),
                small_corpus,
                jobs=2,
                max_retries=0,
                timeout=TIMEOUT,
                _fault_tokens={0: token},
            )
        assert not _leftover_workers()


# -- the API entry points -----------------------------------------------------


class TestApi:
    def test_parallel_corpus_accepts_mixed_docs(self, small_corpus):
        spanner = ab_spanner()
        mixed = [small_corpus[0], balanced_slp("ababab"), small_corpus[1]]
        expected = evaluate_corpus(
            spanner,
            [
                slp_io.load_file(small_corpus[0]),
                balanced_slp("ababab"),
                slp_io.load_file(small_corpus[1]),
            ],
        )
        assert parallel_corpus(spanner, mixed, jobs=2, timeout=TIMEOUT) == expected

    @pytest.mark.parametrize("task", ["evaluate", "enumerate", "count", "nonempty"])
    def test_all_tasks_match_serial(self, small_corpus, task):
        spanner = ab_spanner()
        slps = [slp_io.load_file(p) for p in small_corpus]
        serial = [
            item.result
            for item in run_batch([spanner], slps, task=task, limit=None)
        ]
        parallel = parallel_corpus(
            spanner, small_corpus, task=task, jobs=2, timeout=TIMEOUT
        )
        assert parallel == serial

    def test_enumerate_limit_is_honoured(self, small_corpus):
        results = parallel_corpus(
            ab_spanner(),
            small_corpus,
            task="enumerate",
            limit=2,
            jobs=2,
            timeout=TIMEOUT,
        )
        assert all(len(r) <= 2 for r in results)

    def test_parallel_many_matches_serial(self):
        from repro.engine import evaluate_many

        spanners = [
            ab_spanner(),
            ab_spanner(r"(?P<x>b+)a"),
            ab_spanner(r".*(?P<x>ab)(?P<y>b*).*"),
        ]
        doc = balanced_slp("aabbababab")
        assert parallel_many(
            spanners, doc, jobs=2, timeout=TIMEOUT
        ) == evaluate_many(spanners, doc)

    def test_parallel_batch_matches_run_batch_row_major(self, small_corpus):
        spanners = [ab_spanner(), ab_spanner(r"(?P<x>b+)")]
        slps = [slp_io.load_file(p) for p in small_corpus[:3]]
        serial = run_batch(spanners, slps, task="count")
        parallel = parallel_batch(
            spanners, small_corpus[:3], task="count", jobs=2, timeout=TIMEOUT
        )
        assert [
            (i.document_index, i.spanner_index, i.result) for i in parallel
        ] == [(i.document_index, i.spanner_index, i.result) for i in serial]

    def test_bad_task_fails_fast_in_parent(self, small_corpus):
        with pytest.raises(ValueError, match="unknown batch task"):
            parallel_corpus(ab_spanner(), small_corpus, task="bogus", jobs=2)

    def test_bad_prime_mode_fails_fast(self, small_corpus, tmp_path):
        # a typo must not silently escalate to prime-everything
        with pytest.raises(ValueError, match="prime must be"):
            parallel_corpus(
                ab_spanner(),
                small_corpus,
                jobs=2,
                store=str(tmp_path / "s"),
                prime="duplicate",
            )

    def test_empty_corpus(self):
        assert parallel_corpus(ab_spanner(), [], jobs=2, timeout=TIMEOUT) == []


# -- store priming ------------------------------------------------------------


class TestPriming:
    def test_prime_builds_once_per_duplicated_digest(self, small_corpus, tmp_path):
        store = PreprocessingStore(str(tmp_path / "store"))
        built = prime_store(store, [(ab_spanner(), small_corpus)], task="count")
        assert built == 3  # three distinct digests, each duplicated
        assert len(store) == 3

    def test_prime_skips_singletons_by_default(self, tmp_path):
        paths = write_corpus(
            str(tmp_path / "c"), 3, duplication=1, doc_length=80, seed=1
        )
        store = PreprocessingStore(str(tmp_path / "store"))
        assert prime_store(store, [(ab_spanner(), paths)]) == 0
        assert (
            prime_store(store, [(ab_spanner(), paths)], only_duplicated=False) == 3
        )

    def test_prime_is_idempotent(self, small_corpus, tmp_path):
        store = PreprocessingStore(str(tmp_path / "store"))
        pairs = [(ab_spanner(), small_corpus)]
        assert prime_store(store, pairs) == 3
        assert prime_store(store, pairs) == 0  # second pass: all warm

    def test_primed_store_serves_the_fleet(self, small_corpus, tmp_path):
        store_dir = str(tmp_path / "store")
        prime_store(store_dir, [(ab_spanner(), small_corpus)], task="count")
        report = parallel_corpus(
            ab_spanner(),
            small_corpus,
            task="count",
            jobs=2,
            store=store_dir,
            prime=False,  # already primed above
            timeout=TIMEOUT,
            report=True,
        )
        stats = report.store_stats
        assert stats is not None and stats.hits >= 3 and stats.writes == 0
