"""Tests for repro.spanner.transform (padding + well-formedness validation)."""

import pytest

from repro.errors import AutomatonError, GrammarError
from repro.slp.construct import balanced_slp
from repro.slp.derive import text
from repro.spanner.automaton import SpannerDFA
from repro.spanner.regex import compile_spanner
from repro.spanner.transform import (
    END_SYMBOL,
    is_well_formed,
    pad_slp,
    pad_spanner,
    validate_spanner,
)


class TestPadSpanner:
    def test_language_is_w_hash(self):
        nfa = compile_spanner("ab", alphabet="ab")
        padded = pad_spanner(nfa, "#")
        assert padded.accepts(("a", "b", "#"))
        assert not padded.accepts(("a", "b"))
        assert not padded.accepts(("a", "#"))

    def test_single_accepting_state(self):
        nfa = compile_spanner("a|ab", alphabet="ab")
        padded = pad_spanner(nfa, "#")
        assert len(padded.accepting) == 1

    def test_preserves_determinism(self):
        dfa = compile_spanner("ab", alphabet="ab", deterministic=True)
        padded = pad_spanner(dfa, "#")
        assert isinstance(padded, SpannerDFA)
        assert padded.is_deterministic

    def test_clash_with_alphabet_rejected(self):
        nfa = compile_spanner("ab", alphabet="ab")
        with pytest.raises(AutomatonError):
            pad_spanner(nfa, "a")

    def test_default_end_symbol(self):
        nfa = compile_spanner("a", alphabet="a")
        padded = pad_spanner(nfa)
        assert padded.accepts(("a", END_SYMBOL))


class TestPadSlp:
    def test_appends_symbol(self):
        slp = balanced_slp("abc")
        assert text(pad_slp(slp, "#")) == "abc#"

    def test_default_symbol(self):
        slp = balanced_slp("ab")
        padded = pad_slp(slp)
        assert text(padded) == "ab" + END_SYMBOL
        assert padded.length() == 3

    def test_clash_rejected(self):
        slp = balanced_slp("ab#")
        with pytest.raises(GrammarError):
            pad_slp(slp, "#")

    def test_adds_exactly_two_nonterminals(self):
        slp = balanced_slp("abcd")
        padded = pad_slp(slp, "#")
        assert padded.num_nonterminals == slp.num_nonterminals + 2


class TestValidation:
    def test_well_formed_patterns(self):
        for pattern, alphabet in [
            (r"(?P<x>a+)b", "ab"),
            (r"(?P<x>a*)(?P<y>b*)", "ab"),
            (r"(?P<x>(?P<y>a)b)c", "abc"),
            (r"(?P<x>a)|b", "ab"),
        ]:
            nfa = compile_spanner(pattern, alphabet=alphabet)
            assert is_well_formed(nfa), (pattern, validate_spanner(nfa))

    def test_star_capture_flagged(self):
        nfa = compile_spanner(r"((?P<x>aa)|b)*", alphabet="ab")
        violations = validate_spanner(nfa)
        assert any("opened twice" in v for v in violations)

    def test_hand_built_unclosed_variable_flagged(self):
        from repro.spanner.automaton import NFABuilder
        from repro.spanner.markers import op

        b = NFABuilder()
        s0, s1, s2 = (b.state() for _ in range(3))
        b.set_start(s0)
        b.arc(s0, frozenset({op("x")}), s1)
        b.arc(s1, "a", s2)
        b.accept(s2)
        violations = validate_spanner(b.build())
        assert any("open variables" in v for v in violations)

    def test_hand_built_close_without_open_flagged(self):
        from repro.spanner.automaton import NFABuilder
        from repro.spanner.markers import cl

        b = NFABuilder()
        s0, s1, s2 = (b.state() for _ in range(3))
        b.set_start(s0)
        b.arc(s0, frozenset({cl("x")}), s1)
        b.arc(s1, "a", s2)
        b.accept(s2)
        violations = validate_spanner(b.build())
        assert any("closed while not open" in v for v in violations)

    def test_empty_span_sets_are_fine(self):
        nfa = compile_spanner(r"a(?P<x>)b", alphabet="ab")
        assert is_well_formed(nfa)
