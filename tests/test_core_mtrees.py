"""Tests for repro.core.mtrees and enumerate_trees, incl. Example 8.2 / Fig. 4."""

import pytest

from repro.slp.construct import balanced_slp
from repro.slp.families import example_4_2
from repro.spanner.markers import cl, op
from repro.spanner.regex import compile_spanner
from repro.spanner.spans import Span, SpanTuple
from repro.spanner.transform import pad_slp, pad_spanner
from repro.workloads.queries import figure2_spanner
from repro.core.enumerate_trees import enum_all, enum_root_trees
from repro.core.matrices import BASE, ONE, Preprocessing
from repro.core.mtrees import (
    MTreeLeaf,
    MTreeNode,
    render_tree,
    terminal_leaves,
    tree_size,
    tree_yield,
)


def make_prep(pattern, alphabet, doc, deterministic=True):
    nfa = compile_spanner(pattern, alphabet=alphabet).eliminate_epsilon()
    if deterministic and not nfa.is_deterministic:
        nfa = nfa.determinize().trim()
    return Preprocessing(pad_slp(balanced_slp(doc)), pad_spanner(nfa))


class TestTreeStructures:
    def test_leaf_labels(self):
        leaf = MTreeLeaf("A", 1, 2, False)
        assert "℮" in leaf.label
        term = MTreeLeaf(("T", "a"), 1, 2, True)
        assert ",1⟩" in term.label

    def test_node_label_and_repr(self):
        node = MTreeNode("A", 0, 1, 2, MTreeLeaf("B", 0, 1, False), MTreeLeaf("C", 1, 2, False), 5)
        assert "A⟨0▹1▹2⟩" in node.label
        assert "B" in repr(node)

    def test_tree_size(self):
        node = MTreeNode("A", 0, 1, 2, MTreeLeaf("B", 0, 1, False), MTreeLeaf("C", 1, 2, False), 5)
        assert tree_size(node) == 3
        assert tree_size(MTreeLeaf("B", 0, 1, False)) == 1

    def test_terminal_leaves_order_and_shift(self):
        inner = MTreeNode(
            "A",
            0,
            1,
            2,
            MTreeLeaf(("T", "a"), 0, 1, True),
            MTreeLeaf(("T", "b"), 1, 2, True),
            3,
        )
        leaves = terminal_leaves(inner)
        assert [(l.nonterminal, s) for l, s in leaves] == [(("T", "a"), 0), (("T", "b"), 3)]

    def test_render_tree_contains_labels(self):
        node = MTreeNode("A", 0, 1, 2, MTreeLeaf("B", 0, 1, False), MTreeLeaf("C", 1, 2, True), 4)
        rendered = render_tree(node)
        assert "A⟨0▹1▹2⟩" in rendered and "℮" in rendered


class TestEnumAllMechanics:
    def test_base_case_empty_leaf(self):
        prep = make_prep(r"a+", "a", "aa")
        leaf = prep.slp.leaf_for("a")
        # find a non-BOT entry
        entries = list(prep.leaf_tables[leaf])
        i, j = entries[0]
        trees = list(enum_all(prep, leaf, i, BASE, j))
        assert len(trees) == 1
        assert isinstance(trees[0], MTreeLeaf)

    def test_trees_have_bounded_size(self):
        """Lemma 8.4: |T| <= 4|X| * depth(A); terminal leaves <= 2|X|."""
        prep = make_prep(r"(?P<x>a*)(?P<y>b*)", "ab", "aabb")
        num_vars = 2
        depth = prep.slp.depth()
        for j in prep.final_states:
            for tree in enum_root_trees(prep, j):
                assert tree_size(tree) <= 4 * num_vars * depth + 2
                assert len(terminal_leaves(tree)) <= 2 * num_vars + 1

    def test_yields_of_distinct_trees_are_disjoint(self):
        """Lemma 8.8 (DFA case)."""
        prep = make_prep(r".*(?P<x>ab).*", "ab", "abab")
        seen = set()
        for j in prep.final_states:
            for tree in enum_root_trees(prep, j):
                for pairs in tree_yield(tree, prep):
                    assert pairs not in seen, pairs
                    seen.add(pairs)
        assert seen


class TestExample82:
    """Example 8.2 / Figure 4: the (M,S0)-tree machinery on the paper's
    running SLP (Example 4.2, D = aabccaabaa) and Figure 2 DFA."""

    @pytest.fixture(scope="class")
    def prep(self):
        return Preprocessing(
            pad_slp(example_4_2()), pad_spanner(figure2_spanner())
        )

    def test_full_result(self, prep):
        """Spans of the c-block starting at position 4, marked with x or y.

        ([5,6⟩ is *not* in the relation: a span starting at 5 would need a
        ``c`` inside the ``{a,b}*`` prefix of the Figure 2 automaton.)
        """
        from repro.core.enumeration import enumerate_marker_sets
        from repro.spanner.markers import to_span_tuple

        result = {to_span_tuple(p) for p in enumerate_marker_sets(prep)}
        expected = set()
        for var in ("x", "y"):
            for span in (Span(4, 5), Span(4, 6)):
                expected.add(SpanTuple({var: span}))
        assert result == expected

    def test_figure4_tuple_is_produced(self, prep):
        """The specific yield of Figure 4: {(⊿y,4), (◁y,6)} = t(y)=[4,6⟩."""
        from repro.core.enumeration import enumerate_marker_sets

        target = ((4, op("y")), (6, cl("y")))
        assert target in set(enumerate_marker_sets(prep))

    def test_tree_matches_figure4_shape(self, prep):
        """Figure 4's tree appears (below the padding root, states 0-based):
        S0⟨0▹k▹5⟩ with children A⟨0▹0▹k⟩ / B⟨k▹5▹5⟩, A's left child the
        empty-leaf C⟨0▹0,℮⟩, and arc shift |D(A)| = 5 to B."""
        for j in prep.final_states:
            for padded_tree in enum_root_trees(prep, j):
                if not isinstance(padded_tree, MTreeNode):
                    continue
                tree = padded_tree.left  # unwrap the #-padding level
                if not isinstance(tree, MTreeNode) or tree.nonterminal != "S0":
                    continue
                left, right = tree.left, tree.right
                if not (isinstance(left, MTreeNode) and isinstance(right, MTreeNode)):
                    continue
                if left.nonterminal == "A" and right.nonterminal == "B":
                    if (
                        isinstance(left.left, MTreeLeaf)
                        and left.left.nonterminal == "C"
                        and not left.left.is_terminal
                    ):
                        assert tree.shift == 5  # |D(A)|
                        return
        pytest.fail("no Figure-4-shaped tree found")
