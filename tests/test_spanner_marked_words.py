"""Tests for repro.spanner.marked_words (e / p / m of Figure 1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EvaluationError
from repro.spanner.marked_words import (
    check_subword_marked,
    document_length,
    e,
    format_marked_word,
    is_non_tail_spanning,
    is_subword_marked,
    m,
    p,
)
from repro.spanner.markers import cl, from_span_tuple, make_pairs, op
from repro.spanner.spans import Span, SpanTuple


def example_3_2_word():
    """w = {⊿x}ab{⊿y,⊿z,◁x}bc{◁z}ab{◁y}ac from Example 3.2."""
    return (
        frozenset({op("x")}),
        "a",
        "b",
        frozenset({op("y"), op("z"), cl("x")}),
        "b",
        "c",
        frozenset({cl("z")}),
        "a",
        "b",
        frozenset({cl("y")}),
        "a",
        "c",
    )


class TestExample32:
    def test_e(self):
        assert e(example_3_2_word()) == "abbcabac"

    def test_p(self):
        expected = make_pairs(
            [(1, op("x")), (3, cl("x")), (3, op("y")), (7, cl("y")), (3, op("z")), (5, cl("z"))]
        )
        assert p(example_3_2_word()) == expected

    def test_span_tuple_is_1_3__3_7__3_5(self):
        from repro.spanner.markers import to_span_tuple

        t = to_span_tuple(p(example_3_2_word()))
        assert t == SpanTuple({"x": Span(1, 3), "y": Span(3, 7), "z": Span(3, 5)})

    def test_m_reconstructs(self):
        w = example_3_2_word()
        assert m(e(w), p(w)) == w

    def test_second_example_of_3_2(self):
        """m(D, t) for D = aaabcbb, t = ([6,8⟩, ⊥, [3,8⟩) over (x, y, z)."""
        doc = "aaabcbb"
        t = SpanTuple({"x": Span(6, 8), "z": Span(3, 8)})
        word = m(doc, from_span_tuple(t))
        assert word == (
            "a",
            "a",
            frozenset({op("z")}),
            "a",
            "b",
            "c",
            frozenset({op("x")}),
            "b",
            "b",
            frozenset({cl("x"), cl("z")}),
        )


class TestFunctions:
    def test_e_plain_word(self):
        assert e(("a", "b")) == "ab"

    def test_document_length(self):
        assert document_length(example_3_2_word()) == 8
        assert document_length(()) == 0

    def test_p_of_plain_word(self):
        assert p(("a", "b")) == ()

    def test_m_empty_markers(self):
        assert m("abc", ()) == ("a", "b", "c")

    def test_m_trailing_marker(self):
        word = m("ab", make_pairs([(3, cl("x")), (1, op("x"))]))
        assert word == (frozenset({op("x")}), "a", "b", frozenset({cl("x")}))

    def test_m_incompatible_rejected(self):
        with pytest.raises(EvaluationError):
            m("ab", make_pairs([(4, op("x"))]))

    def test_m_empty_document(self):
        assert m("", make_pairs([(1, op("x")), (1, cl("x"))])) == (
            frozenset({op("x"), cl("x")}),
        )


class TestValidation:
    def test_example_is_valid(self):
        check_subword_marked(example_3_2_word())

    def test_non_tail_spanning(self):
        assert is_non_tail_spanning(example_3_2_word())
        assert not is_non_tail_spanning(("a", frozenset({op("x"), cl("x")})))
        assert is_non_tail_spanning(())

    def test_duplicate_marker_rejected(self):
        word = ("a", frozenset({op("x")}), "b", frozenset({op("x")}), "c",
                frozenset({cl("x")}), "d")
        assert not is_subword_marked(word)

    def test_unbalanced_rejected(self):
        assert not is_subword_marked((frozenset({op("x")}), "a"))

    def test_close_before_open_rejected(self):
        word = (frozenset({cl("x")}), "a", frozenset({op("x")}), "b")
        assert not is_subword_marked(word)

    def test_adjacent_sets_rejected(self):
        word = (frozenset({op("x")}), frozenset({cl("x")}), "a")
        assert not is_subword_marked(word)

    def test_bad_document_symbol_rejected(self):
        assert not is_subword_marked(("ab",))

    def test_empty_span_in_one_set_valid(self):
        word = ("a", frozenset({op("x"), cl("x")}), "b")
        assert is_subword_marked(word)


class TestFormatting:
    def test_format(self):
        word = (frozenset({op("x")}), "a", "b")
        assert format_marked_word(word) == "{⊿x}ab"


@settings(max_examples=80, deadline=None)
@given(
    st.text(alphabet="abc", min_size=0, max_size=10),
    st.data(),
)
def test_e_p_m_roundtrip(doc, data):
    """Property (Figure 1): m(e(w), p(w)) = w for canonical marked words,
    built here from random valid span-tuples."""
    variables = ["x", "y"]
    spans = {}
    for var in variables:
        if data.draw(st.booleans()):
            i = data.draw(st.integers(min_value=1, max_value=len(doc) + 1))
            j = data.draw(st.integers(min_value=i, max_value=len(doc) + 1))
            spans[var] = Span(i, j)
    tup = SpanTuple(spans)
    word = m(doc, from_span_tuple(tup))
    assert e(word) == doc
    assert p(word) == from_span_tuple(tup)
    assert m(e(word), p(word)) == word
    check_subword_marked(word)
