"""Tests for repro.core.enumeration (Theorem 8.10)."""

import itertools
import random

import pytest

from repro.errors import EvaluationError
from repro.slp.balance import balance
from repro.slp.construct import balanced_slp
from repro.slp.families import caterpillar_slp, power_slp
from repro.spanner.regex import compile_spanner
from repro.spanner.spans import Span, SpanTuple
from repro.spanner.transform import pad_slp, pad_spanner
from repro.baselines.naive import naive_evaluate
from repro.core.computation import compute
from repro.core.enumeration import enumerate_marker_sets, enumerate_spanner
from repro.core.matrices import Preprocessing

from tests.conftest import WELLFORMED_PATTERNS, random_doc


class TestCorrectness:
    @pytest.mark.parametrize("pattern,alphabet", WELLFORMED_PATTERNS)
    def test_matches_naive_reference(self, pattern, alphabet, compiled_patterns):
        nfa = compiled_patterns[pattern]
        rng = random.Random(hash(pattern) & 0xABCDE)
        for _ in range(4):
            doc = random_doc(rng, alphabet, 7)
            got = list(enumerate_spanner(balanced_slp(doc), nfa))
            assert len(got) == len(set(got)), f"duplicates for {doc!r}"
            assert set(got) == naive_evaluate(nfa, doc), doc

    def test_agrees_with_computation(self, compiled_patterns):
        rng = random.Random(99)
        for pattern, alphabet in WELLFORMED_PATTERNS[:6]:
            nfa = compiled_patterns[pattern]
            doc = random_doc(rng, alphabet, 10)
            slp = balanced_slp(doc)
            assert set(enumerate_spanner(slp, nfa)) == compute(slp, nfa)

    def test_empty_relation_yields_nothing(self):
        nfa = compile_spanner(r"(?P<x>aa)", alphabet="ab")
        assert list(enumerate_spanner(balanced_slp("ab"), nfa)) == []

    def test_empty_tuple_enumerated(self):
        nfa = compile_spanner(r"b+|(?P<x>a)", alphabet="ab")
        assert list(enumerate_spanner(balanced_slp("bbb"), nfa)) == [SpanTuple()]


class TestDuplicateFreedom:
    def test_nfa_without_determinization_requires_dedup(self):
        nfa = compile_spanner(r".*(?P<x>ab).*", alphabet="ab").eliminate_epsilon()
        prep = Preprocessing(pad_slp(balanced_slp("abab")), pad_spanner(nfa))
        with pytest.raises(EvaluationError):
            list(enumerate_marker_sets(prep))

    def test_nfa_with_dedup_matches_dfa(self):
        nfa = compile_spanner(r".*(?P<x>ab).*", alphabet="ab")
        slp = balanced_slp("ababab")
        via_dedup = set(
            enumerate_spanner(slp, nfa, determinize=False, deduplicate=True)
        )
        via_dfa = set(enumerate_spanner(slp, nfa, determinize=True))
        assert via_dedup == via_dfa

    def test_dfa_stream_has_no_duplicates(self):
        nfa = compile_spanner(r"(a|b)*(?P<x>ab)(a|b)*", alphabet="ab")
        slp = power_slp("ab", 5)
        got = list(enumerate_spanner(slp, nfa))
        assert len(got) == len(set(got)) == 32


class TestScale:
    def test_streaming_early_exit_is_cheap(self):
        """Pull only 10 of ~2^20 results from a huge compressed document."""
        nfa = compile_spanner(r"(a|b)*(?P<x>ab)(a|b)*", alphabet="ab")
        slp = power_slp("ab", 20)
        stream = enumerate_spanner(slp, nfa)
        first = list(itertools.islice(stream, 10))
        assert len(first) == len(set(first)) == 10
        for tup in first:
            start = tup["x"].start
            assert start % 2 == 1  # 'ab' occurrences sit at odd positions

    def test_full_enumeration_count_on_medium_doc(self):
        nfa = compile_spanner(r"(a|b)*(?P<x>ab)(a|b)*", alphabet="ab")
        slp = power_slp("ab", 10)  # 1024 'ab' blocks
        assert sum(1 for _ in enumerate_spanner(slp, nfa)) == 1024

    def test_deep_unbalanced_grammar(self):
        """Enumeration works on caterpillars (delay degrades, results don't)."""
        deep = caterpillar_slp(800)
        nfa = compile_spanner(r".*(?P<x>ab).*", alphabet="ab")
        from repro.slp.derive import text

        expected = compute(balanced_slp(text(deep)), nfa)
        assert set(enumerate_spanner(deep, nfa)) == expected

    def test_balanced_equals_unbalanced_results(self):
        deep = caterpillar_slp(300)
        flat = balance(deep)
        nfa = compile_spanner(r".*(?P<x>ba)(?P<y>ab?).*", alphabet="ab")
        assert set(enumerate_spanner(deep, nfa)) == set(enumerate_spanner(flat, nfa))
