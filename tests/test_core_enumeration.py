"""Tests for repro.core.enumeration (Theorem 8.10)."""

import itertools
import random

import pytest

from repro.errors import EvaluationError
from repro.slp.balance import balance
from repro.slp.construct import balanced_slp
from repro.slp.families import caterpillar_slp, power_slp
from repro.spanner.regex import compile_spanner
from repro.spanner.spans import Span, SpanTuple
from repro.spanner.transform import pad_slp, pad_spanner
from repro.baselines.naive import naive_evaluate
from repro.core.computation import compute
from repro.core.enumeration import enumerate_marker_sets, enumerate_spanner
from repro.core.matrices import Preprocessing

from tests.conftest import WELLFORMED_PATTERNS, random_doc


class TestCorrectness:
    @pytest.mark.parametrize("pattern,alphabet", WELLFORMED_PATTERNS)
    def test_matches_naive_reference(self, pattern, alphabet, compiled_patterns):
        nfa = compiled_patterns[pattern]
        rng = random.Random(hash(pattern) & 0xABCDE)
        for _ in range(4):
            doc = random_doc(rng, alphabet, 7)
            got = list(enumerate_spanner(balanced_slp(doc), nfa))
            assert len(got) == len(set(got)), f"duplicates for {doc!r}"
            assert set(got) == naive_evaluate(nfa, doc), doc

    def test_agrees_with_computation(self, compiled_patterns):
        rng = random.Random(99)
        for pattern, alphabet in WELLFORMED_PATTERNS[:6]:
            nfa = compiled_patterns[pattern]
            doc = random_doc(rng, alphabet, 10)
            slp = balanced_slp(doc)
            assert set(enumerate_spanner(slp, nfa)) == compute(slp, nfa)

    def test_empty_relation_yields_nothing(self):
        nfa = compile_spanner(r"(?P<x>aa)", alphabet="ab")
        assert list(enumerate_spanner(balanced_slp("ab"), nfa)) == []

    def test_empty_tuple_enumerated(self):
        nfa = compile_spanner(r"b+|(?P<x>a)", alphabet="ab")
        assert list(enumerate_spanner(balanced_slp("bbb"), nfa)) == [SpanTuple()]


class TestDuplicateFreedom:
    def test_nfa_without_determinization_requires_dedup(self):
        nfa = compile_spanner(r".*(?P<x>ab).*", alphabet="ab").eliminate_epsilon()
        prep = Preprocessing(pad_slp(balanced_slp("abab")), pad_spanner(nfa))
        with pytest.raises(EvaluationError):
            list(enumerate_marker_sets(prep))

    def test_nfa_with_dedup_matches_dfa(self):
        nfa = compile_spanner(r".*(?P<x>ab).*", alphabet="ab")
        slp = balanced_slp("ababab")
        via_dedup = set(
            enumerate_spanner(slp, nfa, determinize=False, deduplicate=True)
        )
        via_dfa = set(enumerate_spanner(slp, nfa, determinize=True))
        assert via_dedup == via_dfa

    def test_dfa_stream_has_no_duplicates(self):
        nfa = compile_spanner(r"(a|b)*(?P<x>ab)(a|b)*", alphabet="ab")
        slp = power_slp("ab", 5)
        got = list(enumerate_spanner(slp, nfa))
        assert len(got) == len(set(got)) == 32


class TestRecursionLimit:
    # Regression: enumeration used to raise sys.setrecursionlimit
    # permanently; it must be restored once the stream ends.  A caterpillar
    # of depth ~2000 needs a limit of 5·depth + 200 > the 10_000 baseline.

    def test_limit_restored_after_exhaustion(self):
        import sys

        outer = sys.getrecursionlimit()
        try:
            sys.setrecursionlimit(10_000)
            nfa = compile_spanner(r".*(?P<x>ab).*", alphabet="ab")
            results = list(enumerate_spanner(caterpillar_slp(2000), nfa))
            assert results
            assert sys.getrecursionlimit() == 10_000
        finally:
            sys.setrecursionlimit(outer)

    def test_limit_restored_after_close(self):
        import sys

        outer = sys.getrecursionlimit()
        try:
            sys.setrecursionlimit(10_000)
            nfa = compile_spanner(r".*(?P<x>ab).*", alphabet="ab")
            stream = enumerate_spanner(caterpillar_slp(2000), nfa)
            next(stream)
            assert sys.getrecursionlimit() > 10_000  # raised while streaming
            stream.close()
            assert sys.getrecursionlimit() == 10_000
        finally:
            sys.setrecursionlimit(outer)

    def test_closing_one_stream_keeps_limit_for_the_other(self):
        # Regression: the raised limit is reference-counted — closing one
        # stream must not drop it under a second still-open stream.
        import sys

        outer = sys.getrecursionlimit()
        try:
            sys.setrecursionlimit(1500)
            nfa = compile_spanner(r".*(?P<x>ab).*", alphabet="ab")
            deep = caterpillar_slp(2000)
            stream_a = enumerate_spanner(deep, nfa)
            stream_b = enumerate_spanner(deep, nfa)
            next(stream_a)
            next(stream_b)
            stream_a.close()
            assert sys.getrecursionlimit() > 1500  # B still needs it
            rest = list(stream_b)  # must not hit RecursionError
            assert rest
            assert sys.getrecursionlimit() == 1500  # last stream restores
        finally:
            sys.setrecursionlimit(outer)


class TestScale:
    def test_streaming_early_exit_is_cheap(self):
        """Pull only 10 of ~2^20 results from a huge compressed document."""
        nfa = compile_spanner(r"(a|b)*(?P<x>ab)(a|b)*", alphabet="ab")
        slp = power_slp("ab", 20)
        stream = enumerate_spanner(slp, nfa)
        first = list(itertools.islice(stream, 10))
        assert len(first) == len(set(first)) == 10
        for tup in first:
            start = tup["x"].start
            assert start % 2 == 1  # 'ab' occurrences sit at odd positions

    def test_full_enumeration_count_on_medium_doc(self):
        nfa = compile_spanner(r"(a|b)*(?P<x>ab)(a|b)*", alphabet="ab")
        slp = power_slp("ab", 10)  # 1024 'ab' blocks
        assert sum(1 for _ in enumerate_spanner(slp, nfa)) == 1024

    def test_deep_unbalanced_grammar(self):
        """Enumeration works on caterpillars (delay degrades, results don't)."""
        deep = caterpillar_slp(800)
        nfa = compile_spanner(r".*(?P<x>ab).*", alphabet="ab")
        from repro.slp.derive import text

        expected = compute(balanced_slp(text(deep)), nfa)
        assert set(enumerate_spanner(deep, nfa)) == expected

    def test_balanced_equals_unbalanced_results(self):
        deep = caterpillar_slp(300)
        flat = balance(deep)
        nfa = compile_spanner(r".*(?P<x>ba)(?P<y>ab?).*", alphabet="ab")
        assert set(enumerate_spanner(deep, nfa)) == set(enumerate_spanner(flat, nfa))


class TestRecursionLimitThreads:
    def test_concurrent_streams_across_threads(self):
        # The raised limit is shared process state; interleaved open/close
        # from several threads must never drop it under a live stream.
        import sys
        import threading

        outer = sys.getrecursionlimit()
        errors = []

        def worker():
            try:
                nfa = compile_spanner(r".*(?P<x>ab).*", alphabet="ab")
                for _ in range(3):
                    results = list(enumerate_spanner(caterpillar_slp(1200), nfa))
                    assert results
            except BaseException as exc:  # noqa: BLE001 - collected for the assert
                errors.append(exc)

        try:
            sys.setrecursionlimit(2000)  # below the 5·depth+200 requirement
            threads = [threading.Thread(target=worker) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors, errors
            assert sys.getrecursionlimit() == 2000
        finally:
            sys.setrecursionlimit(outer)


class TestRecursionLimitDeepConsumer:
    def test_exhaustion_under_deep_consumer_recursion(self):
        # Regression: if the consumer exhausts the stream while itself
        # recursing deeper than the baseline limit, CPython refuses the
        # restore; enumeration must not crash (the limit stays raised).
        import sys

        outer = sys.getrecursionlimit()
        try:
            sys.setrecursionlimit(1000)
            nfa = compile_spanner(r".*(?P<x>ab).*", alphabet="ab")
            stream = enumerate_spanner(caterpillar_slp(500), nfa)
            first = next(stream)  # limit raised past the consumer's depth

            def consume(depth):
                if depth:
                    return consume(depth - 1)
                return list(stream)

            rest = consume(1500)  # exhausts deeper than the 1000 baseline
            assert [first] + rest
            assert sys.getrecursionlimit() >= 1000  # raised or restored, no crash
        finally:
            sys.setrecursionlimit(outer)

    def test_deferred_restore_retried_by_next_stream(self):
        # Regression: a refused restore must not contaminate the baseline —
        # the next enumeration retries the lowering back to the original.
        import sys

        outer = sys.getrecursionlimit()
        try:
            sys.setrecursionlimit(1000)
            nfa = compile_spanner(r".*(?P<x>ab).*", alphabet="ab")
            stream = enumerate_spanner(caterpillar_slp(500), nfa)
            next(stream)

            def consume(depth):
                if depth:
                    return consume(depth - 1)
                return list(stream)

            consume(1500)  # restore refused, limit left raised
            assert sys.getrecursionlimit() > 1000
            # A later shallow enumeration must bring the limit back down.
            list(enumerate_spanner(balanced_slp("abab"), nfa))
            assert sys.getrecursionlimit() == 1000
        finally:
            sys.setrecursionlimit(outer)
