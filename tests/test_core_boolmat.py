"""Tests for repro.core.boolmat (bitmask boolean matrices)."""

import random

from repro.core.boolmat import (
    entry,
    from_edges,
    identity,
    iter_bits,
    mask_of,
    multiply,
    row_reaches,
    zero,
)


def dense(matrix, q):
    return [[entry(matrix, i, j) for j in range(q)] for i in range(q)]


def brute_multiply(a, b, q):
    return [
        [any(a[i][k] and b[k][j] for k in range(q)) for j in range(q)]
        for i in range(q)
    ]


class TestBasics:
    def test_zero(self):
        assert dense(zero(3), 3) == [[False] * 3] * 3

    def test_identity(self):
        m = identity(3)
        assert all(entry(m, i, j) == (i == j) for i in range(3) for j in range(3))

    def test_from_edges(self):
        m = from_edges(3, [(0, 1), (1, 2)])
        assert entry(m, 0, 1) and entry(m, 1, 2)
        assert not entry(m, 0, 2)

    def test_mask_of(self):
        assert mask_of([0, 2]) == 0b101
        assert mask_of([]) == 0

    def test_iter_bits(self):
        assert list(iter_bits(0b1011)) == [0, 1, 3]
        assert list(iter_bits(0)) == []

    def test_row_reaches(self):
        m = from_edges(3, [(0, 2)])
        assert row_reaches(m, 0, mask_of([2]))
        assert not row_reaches(m, 0, mask_of([1]))


class TestMultiply:
    def test_identity_neutral(self):
        q = 5
        rng = random.Random(1)
        m = from_edges(q, [(rng.randrange(q), rng.randrange(q)) for _ in range(10)])
        assert multiply(m, identity(q)) == m
        assert multiply(identity(q), m) == m

    def test_matches_brute_force(self):
        q = 6
        rng = random.Random(7)
        for _ in range(30):
            a = from_edges(q, [(rng.randrange(q), rng.randrange(q)) for _ in range(12)])
            b = from_edges(q, [(rng.randrange(q), rng.randrange(q)) for _ in range(12)])
            got = dense(multiply(a, b), q)
            assert got == brute_multiply(dense(a, q), dense(b, q), q)

    def test_associativity(self):
        q = 5
        rng = random.Random(3)
        mats = [
            from_edges(q, [(rng.randrange(q), rng.randrange(q)) for _ in range(8)])
            for _ in range(3)
        ]
        a, b, c = mats
        assert multiply(multiply(a, b), c) == multiply(a, multiply(b, c))
