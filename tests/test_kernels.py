"""Kernel subsystem tests: registry, selection, and cross-kernel identity.

The contract under test is that kernel backends are *bit-identical*: on
randomised (grammar family × spanner × padding) trials the ``python`` and
``numpy`` kernels must produce equal ``export_planes()`` output, equal
:class:`~repro.core.counting.CountingTables` (totals and per-cell), and
equal ``enumerate_marker_sets`` streams — including planes restored from
a preprocessing store that was *written by the other kernel* (the
``.prep`` format is kernel-independent).  The numpy-only tests skip
cleanly where numpy is absent; the registry/fallback tests run
everywhere.
"""

from __future__ import annotations

import itertools
import pickle

import pytest

from repro.core.counting import CountingTables
from repro.core.enumeration import enumerate_marker_sets
from repro.core.kernels import (
    KERNEL_CHOICES,
    PYTHON_KERNEL,
    available_kernels,
    default_kernel_name,
    numpy_available,
    resolve_kernel,
)
from repro.core.matrices import Preprocessing
from repro.engine import Engine
from repro.engine.spec import EngineConfig
from repro.errors import EvaluationError
from repro.slp.construct import balanced_slp, bisection_slp
from repro.slp.families import fibonacci_slp, power_slp, thue_morse_slp
from repro.slp.lz import lz_slp
from repro.slp.repair import repair_slp
from repro.spanner.regex import compile_spanner
from repro.spanner.transform import pad_slp, pad_spanner
from repro.store import PreprocessingStore

from test_differential import random_pairs

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy backend unavailable on this host"
)

BUILDERS = [balanced_slp, repair_slp, bisection_slp, lz_slp]

#: The padding axis: every trial alternates the end sentinel, so the
#: kernels must agree on differently-padded forms of the same document.
END_SYMBOLS = ["#", "$"]


# -- registry / selection ------------------------------------------------------


def test_resolve_python_kernel_everywhere():
    assert resolve_kernel("python") is PYTHON_KERNEL
    assert resolve_kernel(PYTHON_KERNEL) is PYTHON_KERNEL
    assert "python" in available_kernels()
    assert "auto" in KERNEL_CHOICES


def test_resolve_unknown_kernel_raises():
    with pytest.raises(EvaluationError, match="unknown kernel"):
        resolve_kernel("fortran")


def test_auto_detection_matches_availability():
    kernel = resolve_kernel(None)
    assert kernel.name == default_kernel_name()
    assert resolve_kernel("auto") is kernel
    if numpy_available():
        assert kernel.name == "numpy"
        assert available_kernels() == ("python", "numpy")
    else:
        assert kernel is PYTHON_KERNEL


@needs_numpy
def test_explicit_numpy_resolves_and_is_cached():
    assert resolve_kernel("numpy") is resolve_kernel("numpy")
    assert resolve_kernel("numpy").name == "numpy"


def test_engine_records_kernel():
    engine = Engine(kernel="python")
    assert engine.kernel is PYTHON_KERNEL
    assert "kernel=python" in repr(engine)


def test_engine_config_carries_kernel_name_through_pickle():
    config = EngineConfig(kernel="python")
    rebuilt = pickle.loads(pickle.dumps(config)).build()
    assert rebuilt.kernel.name == "python"
    # the default config stays auto: workers re-resolve per environment
    assert EngineConfig().kernel is None


# -- cross-kernel identity (the satellite property test) -----------------------


def _dfa_pair(spanner, slp, end_symbol):
    base = spanner.eliminate_epsilon()
    if not base.is_deterministic:
        base = base.determinize().trim()
    return pad_slp(slp, end_symbol), pad_spanner(base, end_symbol)


def _nfa_pair(spanner, slp, end_symbol):
    return (
        pad_slp(slp, end_symbol),
        pad_spanner(spanner.eliminate_epsilon(), end_symbol),
    )


def assert_kernels_bit_identical(padded_slp, padded_automaton, counting=True):
    """Planes, counts and enumeration equal between the two backends."""
    python_prep = Preprocessing(padded_slp, padded_automaton, kernel="python")
    numpy_prep = Preprocessing(padded_slp, padded_automaton, kernel="numpy")
    assert python_prep.final_states == numpy_prep.final_states
    assert python_prep.export_planes() == numpy_prep.export_planes()
    dedup = not padded_automaton.is_deterministic
    streams = zip(
        itertools.islice(enumerate_marker_sets(python_prep, deduplicate=dedup), 200),
        itertools.islice(enumerate_marker_sets(numpy_prep, deduplicate=dedup), 200),
    )
    for python_item, numpy_item in streams:
        assert python_item == numpy_item
    if counting:
        python_tables = CountingTables(python_prep)
        numpy_tables = CountingTables(numpy_prep)
        assert python_tables.total() == numpy_tables.total()
        assert python_tables.counts == numpy_tables.counts
    return python_prep


@needs_numpy
@pytest.mark.parametrize("seed", range(4))
def test_cross_kernel_randomized_trials(seed):
    """Randomised (grammar family × spanner × padding) bit-identity."""
    for index, (pattern, spanner, doc, _alphabet) in enumerate(random_pairs(seed)):
        builder = BUILDERS[(seed + index) % len(BUILDERS)]
        end_symbol = END_SYMBOLS[index % len(END_SYMBOLS)]
        slp = builder(doc)
        assert_kernels_bit_identical(*_dfa_pair(spanner, slp, end_symbol))
        # the evaluation path uses the (possibly nondeterministic) NFA
        # planes; counting is DFA-only, so compare planes + streams only
        assert_kernels_bit_identical(
            *_nfa_pair(spanner, slp, end_symbol), counting=False
        )


@needs_numpy
def test_cross_kernel_directly_constructed_families():
    """The exponential-regime families (huge documents, small grammars)."""
    spanner = compile_spanner(r"(a|b)*(?P<x>ab)(a|b)*", alphabet="ab")
    for slp in (power_slp("ab", 30), thue_morse_slp(8)):
        assert_kernels_bit_identical(*_dfa_pair(spanner, slp, "#"))
    fib_spanner = compile_spanner(r".*(?P<x>ab).*", alphabet="ab")
    assert_kernels_bit_identical(*_dfa_pair(fib_spanner, fibonacci_slp(18), "#"))


@needs_numpy
def test_cross_kernel_wide_automaton_q_over_64():
    """q > 64 exercises the multi-word rows (no native ndarray planes)."""
    spanner = compile_spanner(r".*(?P<x>a{65}).*", alphabet="ab")
    padded_slp, padded_dfa = _dfa_pair(spanner, power_slp("a", 8), "#")
    assert padded_dfa.num_states > 64
    prep = assert_kernels_bit_identical(padded_slp, padded_dfa)
    assert CountingTables(prep).total() == 256 - 65 + 1


@needs_numpy
@pytest.mark.parametrize("writer,reader", [("python", "numpy"), ("numpy", "python")])
def test_store_written_by_one_kernel_restores_under_the_other(
    writer, reader, tmp_path
):
    """The .prep format is kernel-independent: cross-restore bit-identically."""
    pattern, spanner, doc, _alphabet = random_pairs(991)[0]
    slp = repair_slp(doc)
    padded_slp, padded_dfa = _dfa_pair(spanner, slp, "#")
    built = Preprocessing(padded_slp, padded_dfa, kernel=writer)
    tables = CountingTables(built)

    store = PreprocessingStore(str(tmp_path))
    slp_digest = slp.structural_digest()
    auto_digest = padded_dfa.structural_digest()
    store.save(slp_digest, auto_digest, built, tables.counts)

    restored = store.load(
        slp_digest, auto_digest, padded_slp, padded_dfa, kernel=reader
    )
    assert restored is not None
    restored_prep, restored_counts = restored
    assert restored_prep.kernel.name == reader
    assert restored_prep.export_planes() == built.export_planes()
    assert restored_counts == tables.counts
    restored_tables = CountingTables.from_counts(restored_prep, restored_counts)
    assert restored_tables.total() == tables.total()
    assert list(enumerate_marker_sets(restored_prep)) == list(
        enumerate_marker_sets(built)
    )


@needs_numpy
def test_engines_with_different_kernels_share_one_store(tmp_path):
    """A python-kernel engine's store entries warm a numpy-kernel engine."""
    pattern, spanner, doc, _alphabet = random_pairs(117)[1]
    store_dir = str(tmp_path)

    writer_engine = Engine(
        store=PreprocessingStore(store_dir), structural_keys=True, kernel="python"
    )
    expected = writer_engine.evaluate(spanner, balanced_slp(doc))
    expected_count = writer_engine.count(spanner, balanced_slp(doc))

    reader_store = PreprocessingStore(store_dir)
    reader_engine = Engine(
        store=reader_store, structural_keys=True, kernel="numpy"
    )
    assert reader_engine.evaluate(spanner, balanced_slp(doc)) == expected
    assert reader_engine.count(spanner, balanced_slp(doc)) == expected_count
    assert reader_store.stats.hits >= 1
    assert reader_engine.cache_stats()["counting"].misses == 0


# -- CLI -----------------------------------------------------------------------


@pytest.mark.parametrize("kernel", ["auto", "python"])
def test_cli_kernel_flag_and_profile(kernel, tmp_path, capsys):
    from repro.cli import main
    from repro.slp import io as slp_io

    path = str(tmp_path / "doc.slp.json")
    slp_io.save_file(balanced_slp("ababab"), path)
    assert main(["query", path, r".*(?P<x>ab).*", "--task", "count",
                 "--kernel", kernel]) == 0
    assert capsys.readouterr().out.strip() == "3"

    assert main(["stats", path, "--profile", "--kernel", kernel]) == 0
    out = capsys.readouterr().out
    assert "kernel" in out and "prep_build" in out and "store_restore" in out
    expected_name = default_kernel_name() if kernel == "auto" else kernel
    assert expected_name in out
