"""Tests for the multi-tenant fleet scheduler (service layer).

Everything here runs a real daemon (:class:`ServiceThread`) with real
worker processes and drives it over the wire: fairness, priorities,
cancellation, admission control and crash isolation are all properties
of the *whole* stack, not of the scheduler object in isolation.

Timing is made deterministic with the test-only fault hooks
(``_shard_sleep`` / ``_fault_tokens``, gated on the
``REPRO_SERVICE_TEST_FAULTS`` environment variable): a "slow" job is a
job whose shards sleep a known number of seconds, not a job over a
large corpus, so assertions compare against known work totals instead
of machine speed.
"""

from __future__ import annotations

import contextlib
import os
import socket as socket_module
import threading
import time

import pytest

from repro.engine import Engine
from repro.engine.spec import SpannerSpec
from repro.service import protocol
from repro.service.client import ServiceClient
from repro.service.protocol import ServiceBusyError, ServiceError
from repro.service.server import TEST_FAULTS_ENV, ServiceThread
from repro.session import SessionConfig
from repro.slp import io as slp_io
from repro.slp.construct import balanced_slp

TIMEOUT = 120.0

SPANNER = SpannerSpec(pattern=r".*(?P<x>a+)b.*", alphabet="ab")


def write_docs(tmp_path, count, *, stem="doc"):
    """``count`` documents with pairwise-distinct texts.

    Distinct content matters: the shard planner groups items by grammar
    digest, so repeating one path ``count`` times would collapse the
    whole batch into a single shard and there would be nothing to
    interleave.
    """
    paths = []
    for k in range(count):
        text = "aabab" * 4 + "ab" * (k + 1)
        path = str(tmp_path / f"{stem}{k}.slpb")
        slp_io.save_binary(balanced_slp(text), path)
        paths.append(path)
    return paths


def serial_counts(paths):
    engine = Engine()
    spanner = SPANNER.resolve()
    return [
        engine.count(spanner, slp_io.load_binary(path)) for path in paths
    ]


@contextlib.contextmanager
def running_daemon(socket_path, tmp_path, **overrides):
    overrides.setdefault("jobs", 2)
    overrides.setdefault("store_dir", str(tmp_path / "prep"))
    with ServiceThread(SessionConfig(**overrides), socket_path) as svc:
        yield svc


class JobThread(threading.Thread):
    """Run one ``run_grid`` call on its own connection, capture the outcome."""

    def __init__(self, socket_path, paths, **kwargs):
        super().__init__(daemon=True)
        self.socket_path = socket_path
        self.paths = paths
        self.kwargs = kwargs
        self.result = None
        self.error = None
        self.elapsed = None
        self.finished_at = None

    def run(self):
        started = time.monotonic()
        try:
            with ServiceClient(self.socket_path, timeout=TIMEOUT) as client:
                self.result = client.run_grid(
                    self.paths, [SPANNER], task="count", **self.kwargs
                )
        except BaseException as exc:  # noqa: B036 - captured for the test body
            self.error = exc
        finally:
            self.finished_at = time.monotonic()
            self.elapsed = self.finished_at - started


@pytest.fixture(autouse=True)
def _enable_fault_hooks(monkeypatch):
    monkeypatch.setenv(TEST_FAULTS_ENV, "1")


# -- fairness and priorities --------------------------------------------------


class TestFairness:
    def test_small_job_overtakes_a_running_batch(self, service_socket, tmp_path):
        """A small query submitted mid-batch must not wait for the batch.

        The batch is 8 shards x 0.5 s of injected sleep on 2 workers
        (>= 2 s of wall clock); under the old FIFO fleet the small job
        would queue behind all of it.  Weighted-fair interleaving must
        get the small job a worker after at most ~one shard's delay.
        """
        big_paths = write_docs(tmp_path, 8, stem="big")
        small_paths = write_docs(tmp_path, 1, stem="small")
        with running_daemon(service_socket, tmp_path, jobs=2) as svc:
            big = JobThread(
                svc.socket_path, big_paths,
                _test_params={"_shard_sleep": 0.5},
            )
            big.start()
            time.sleep(0.4)  # let the batch occupy the fleet
            small = JobThread(svc.socket_path, small_paths)
            small.start()
            small.join(TIMEOUT)
            big.join(TIMEOUT)
        assert big.error is None, big.error
        assert small.error is None, small.error
        assert small.result == serial_counts(small_paths)
        assert big.result == serial_counts(big_paths)
        # the small job finished strictly inside the batch's runtime ...
        assert small.finished_at < big.finished_at
        # ... and quickly: a worker freed after at most one 0.5 s shard.
        assert small.elapsed < 1.5, f"small job took {small.elapsed:.2f}s"

    def test_high_priority_job_is_served_first(self, service_socket, tmp_path):
        """With one worker, a later high-priority job overtakes a low one.

        A blocker shard pins the only worker while both jobs queue; the
        weighted-fair clock then advances the priority-6 job 64x slower
        per shard, so all its shards dispatch before the low job's
        second shard.
        """
        blocker_paths = write_docs(tmp_path, 1, stem="blk")
        low_paths = write_docs(tmp_path, 4, stem="low")
        high_paths = write_docs(tmp_path, 4, stem="high")
        with running_daemon(service_socket, tmp_path, jobs=1) as svc:
            blocker = JobThread(
                svc.socket_path, blocker_paths,
                _test_params={"_shard_sleep": 1.0},
            )
            blocker.start()
            time.sleep(0.3)  # blocker is on the worker; the rest queues
            low = JobThread(
                svc.socket_path, low_paths,
                priority=0, _test_params={"_shard_sleep": 0.2},
            )
            low.start()
            time.sleep(0.1)
            high = JobThread(
                svc.socket_path, high_paths,
                priority=6, _test_params={"_shard_sleep": 0.2},
            )
            high.start()
            for t in (blocker, low, high):
                t.join(TIMEOUT)
        for t in (blocker, low, high):
            assert t.error is None, t.error
        assert high.result == serial_counts(high_paths)
        assert low.result == serial_counts(low_paths)
        assert high.finished_at < low.finished_at, (
            "priority 6 job should complete before the earlier priority 0 job"
        )

    def test_priority_is_validated_on_the_wire(self, service_socket, tmp_path):
        paths = write_docs(tmp_path, 1)
        with running_daemon(service_socket, tmp_path, jobs=1) as svc:
            with ServiceClient(svc.socket_path, timeout=TIMEOUT) as client:
                with pytest.raises(ServiceError, match="priority"):
                    client.request(
                        "run",
                        documents=paths,
                        spanners=[protocol.encode_spanner(SPANNER)],
                        task="count",
                        priority="high",
                    )


# -- cancellation -------------------------------------------------------------


class TestCancellation:
    def test_wire_cancel_releases_the_waiter(self, service_socket, tmp_path):
        paths = write_docs(tmp_path, 4)
        with running_daemon(service_socket, tmp_path, jobs=2) as svc:
            victim = JobThread(
                svc.socket_path, paths,
                tag="victim", _test_params={"_shard_sleep": 8.0},
            )
            victim.start()
            time.sleep(0.5)  # shards are asleep on the workers
            with ServiceClient(svc.socket_path, timeout=TIMEOUT) as client:
                t0 = time.monotonic()
                assert client.cancel("victim") == 1
                victim.join(TIMEOUT)
                released = time.monotonic() - t0
                # the waiter must not ride out the 8 s shard sleeps
                assert released < 4.0, f"waiter released after {released:.1f}s"
                assert isinstance(victim.error, ServiceError)
                assert victim.error.remote_type == "JobCancelledError"
                # cancelled means gone: a second cancel matches nothing
                assert client.cancel("victim") == 0
                # and the daemon keeps serving new work promptly (the
                # cancelled job's sleeping shards drain in background)
                quick = write_docs(tmp_path, 1, stem="after")
                assert client.run_grid(
                    quick, [SPANNER], task="count"
                ) == serial_counts(quick)

    def test_cancel_requires_a_tag(self, service_socket, tmp_path):
        with running_daemon(service_socket, tmp_path, jobs=1) as svc:
            with ServiceClient(svc.socket_path, timeout=TIMEOUT) as client:
                with pytest.raises(ServiceError, match="tag"):
                    client.request("cancel", tag="")
                assert client.cancel("no-such-tag") == 0

    def test_disconnect_cancels_an_abandoned_job(self, service_socket, tmp_path):
        """``cancel_on_disconnect`` reclaims the fleet from dead clients."""
        paths = write_docs(tmp_path, 4)
        with running_daemon(service_socket, tmp_path, jobs=2) as svc:
            sock = socket_module.socket(socket_module.AF_UNIX)
            sock.settimeout(TIMEOUT)
            sock.connect(svc.socket_path)
            protocol.send_frame(sock, {
                "id": 1,
                "op": "run",
                "documents": paths,
                "spanners": [protocol.encode_spanner(SPANNER)],
                "task": "count",
                "cancel_on_disconnect": True,
                "_shard_sleep": 8.0,
            })
            time.sleep(0.5)  # job admitted, shards asleep
            sock.close()  # client dies without waiting for the result
            with ServiceClient(svc.socket_path, timeout=TIMEOUT) as client:
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline:
                    info = client.ping()
                    if info["scheduler"]["jobs_cancelled"] >= 1:
                        break
                    time.sleep(0.1)
                assert info["scheduler"]["jobs_cancelled"] >= 1, info


# -- admission control ---------------------------------------------------------


class TestBackpressure:
    def test_global_admission_bound_returns_busy(self, service_socket, tmp_path):
        with running_daemon(
            service_socket, tmp_path, jobs=1, max_pending_jobs=2
        ) as svc:
            slow = [
                JobThread(
                    svc.socket_path, write_docs(tmp_path, 1, stem=f"s{k}"),
                    tag=f"slow{k}", _test_params={"_shard_sleep": 8.0},
                )
                for k in range(2)
            ]
            for t in slow:
                t.start()
            time.sleep(0.5)  # both admitted: daemon at max_pending_jobs
            paths = write_docs(tmp_path, 1, stem="extra")
            with ServiceClient(svc.socket_path, timeout=TIMEOUT) as client:
                with pytest.raises(ServiceBusyError, match="capacity"):
                    client.run_grid(paths, [SPANNER], task="count")
                # busy is load shedding, not failure: freeing capacity
                # makes the same request succeed
                assert client.cancel("slow0") + client.cancel("slow1") == 2
                for t in slow:
                    t.join(TIMEOUT)
                assert client.run_grid(
                    paths, [SPANNER], task="count"
                ) == serial_counts(paths)

    def test_busy_travels_as_a_structured_frame(self, service_socket, tmp_path):
        """The wire shape is load-bearing: ``ok=false`` plus ``busy=true``."""
        with running_daemon(
            service_socket, tmp_path, jobs=1, max_pending_jobs=1
        ) as svc:
            hog = JobThread(
                svc.socket_path, write_docs(tmp_path, 1, stem="hog"),
                tag="hog", _test_params={"_shard_sleep": 8.0},
            )
            hog.start()
            time.sleep(0.5)
            sock = socket_module.socket(socket_module.AF_UNIX)
            sock.settimeout(TIMEOUT)
            try:
                sock.connect(svc.socket_path)
                protocol.send_frame(sock, {
                    "id": 9,
                    "op": "run",
                    "documents": write_docs(tmp_path, 1, stem="shed"),
                    "spanners": [protocol.encode_spanner(SPANNER)],
                    "task": "count",
                })
                response = protocol.recv_frame(sock)
            finally:
                sock.close()
            assert response["id"] == 9
            assert response["ok"] is False
            assert response["busy"] is True
            assert response["error"]["type"] == "ServiceBusyError"
            with ServiceClient(svc.socket_path, timeout=TIMEOUT) as client:
                assert client.cancel("hog") == 1
            hog.join(TIMEOUT)

    def test_per_client_quota_is_per_connection(self, service_socket, tmp_path):
        """One greedy connection hits its quota; other clients still run."""
        with running_daemon(
            service_socket, tmp_path, jobs=2, max_jobs_per_client=1
        ) as svc:
            spanners = [protocol.encode_spanner(SPANNER)]
            greedy = socket_module.socket(socket_module.AF_UNIX)
            greedy.settimeout(TIMEOUT)
            try:
                greedy.connect(svc.socket_path)
                # two pipelined run frames on one connection: the server
                # handles frames concurrently, so both reach admission
                # while the first is still running
                for request_id, stem in ((1, "one"), (2, "two")):
                    protocol.send_frame(greedy, {
                        "id": request_id,
                        "op": "run",
                        "documents": write_docs(tmp_path, 1, stem=stem),
                        "spanners": spanners,
                        "task": "count",
                        "_shard_sleep": 2.0,
                    })
                # a *different* client is under its own quota and must
                # not be starved by the greedy one
                other = JobThread(
                    svc.socket_path, write_docs(tmp_path, 1, stem="oth")
                )
                other.start()
                other.join(TIMEOUT)
                assert other.error is None, other.error
                responses = {}
                for _ in range(2):
                    frame = protocol.recv_frame(greedy)
                    responses[frame["id"]] = frame
            finally:
                greedy.close()
            outcomes = sorted(
                bool(frame.get("busy")) for frame in responses.values()
            )
            assert outcomes == [False, True], responses
            busy = next(f for f in responses.values() if f.get("busy"))
            assert busy["error"]["type"] == "ServiceBusyError"
            assert "client" in busy["error"]["message"]


# -- crash isolation ----------------------------------------------------------


class TestCrashIsolation:
    def test_retryable_crash_still_yields_correct_results(
        self, service_socket, tmp_path
    ):
        paths = write_docs(tmp_path, 4)
        crash = str(tmp_path / "crash-once")
        with running_daemon(service_socket, tmp_path, jobs=2) as svc:
            with ServiceClient(svc.socket_path, timeout=TIMEOUT) as client:
                got = client.run_grid(
                    paths, [SPANNER], task="count",
                    _test_params={"_fault_tokens": {0: f"{crash}:1"}},
                )
                assert got == serial_counts(paths)
                info = client.ping()
                assert info["scheduler"]["workers_crashed"] >= 1
                assert info["scheduler"]["shard_retries"] >= 1
                # the crashed worker was respawned: full strength
                assert info["fleet"]["alive"] == info["fleet"]["jobs"] == 2

    def test_one_tenants_crashes_do_not_fail_another(
        self, service_socket, tmp_path
    ):
        """The PR 5 fleet reset nuked *every* tenant on one job's crash
        budget; the scheduler must fail only the crashing job."""
        crash = str(tmp_path / "crash-forever")
        doomed_paths = write_docs(tmp_path, 2, stem="doom")
        healthy_paths = write_docs(tmp_path, 4, stem="ok")
        with running_daemon(service_socket, tmp_path, jobs=2) as svc:
            healthy = JobThread(
                svc.socket_path, healthy_paths,
                _test_params={"_shard_sleep": 0.3},
            )
            healthy.start()
            doomed = JobThread(
                svc.socket_path, doomed_paths,
                # crash every attempt: blows the per-job retry budget
                _test_params={"_fault_tokens": {0: f"{crash}:99"}},
            )
            doomed.start()
            doomed.join(TIMEOUT)
            healthy.join(TIMEOUT)
            assert isinstance(doomed.error, ServiceError)
            assert doomed.error.remote_type == "ParallelExecutionError"
            assert "max_retries" in str(doomed.error)
            # the co-tenant never noticed
            assert healthy.error is None, healthy.error
            assert healthy.result == serial_counts(healthy_paths)
            with ServiceClient(svc.socket_path, timeout=TIMEOUT) as client:
                info = client.ping()
                assert info["fleet"]["alive"] == info["fleet"]["jobs"] == 2
                assert info["scheduler"]["jobs_failed"] == 1
                assert info["scheduler"]["jobs_completed"] >= 1


# -- the safety gate on the fault hooks ---------------------------------------


class TestFaultGate:
    def test_fault_fields_require_the_env_gate(
        self, service_socket, tmp_path, monkeypatch
    ):
        monkeypatch.delenv(TEST_FAULTS_ENV)
        paths = write_docs(tmp_path, 1)
        with running_daemon(service_socket, tmp_path, jobs=1) as svc:
            with ServiceClient(svc.socket_path, timeout=TIMEOUT) as client:
                with pytest.raises(ServiceError, match=TEST_FAULTS_ENV):
                    client.run_grid(
                        paths, [SPANNER], task="count",
                        _test_params={"_shard_sleep": 0.1},
                    )
                # plain requests are unaffected by the missing gate
                assert client.run_grid(
                    paths, [SPANNER], task="count"
                ) == serial_counts(paths)


# -- scheduler introspection ---------------------------------------------------


class TestIntrospection:
    def test_ping_reports_scheduler_counters(self, service_socket, tmp_path):
        paths = write_docs(tmp_path, 2)
        with running_daemon(service_socket, tmp_path, jobs=2) as svc:
            with ServiceClient(svc.socket_path, timeout=TIMEOUT) as client:
                client.run_grid(paths, [SPANNER], task="count")
                sched = client.ping()["scheduler"]
        assert sched["jobs_admitted"] == 1
        assert sched["jobs_completed"] == 1
        assert sched["active_jobs"] == 0
        assert sched["queued_shards"] == 0
        assert sched["inflight_shards"] == 0
        assert sched["shards_dispatched"] >= 1
        assert sched["max_pending_jobs"] == 32
        assert sched["max_jobs_per_client"] == 8

    def test_unused_fields_are_not_sent(
        self, service_socket, tmp_path, monkeypatch
    ):
        """Default-valued priority/tag stay off the wire (back-compat)."""
        captured = {}
        original = ServiceClient.request

        def spy(self, op, **params):
            if op == "run":
                captured.update(params)
            return original(self, op, **params)

        monkeypatch.setattr(ServiceClient, "request", spy)
        paths = write_docs(tmp_path, 1)
        with running_daemon(service_socket, tmp_path, jobs=1) as svc:
            with ServiceClient(svc.socket_path, timeout=TIMEOUT) as client:
                client.run_grid(paths, [SPANNER], task="count")
        assert "priority" not in captured
        assert "tag" not in captured
        assert "cancel_on_disconnect" not in captured
