"""Tests for repro.spanner.markers (markers, partial marker sets)."""

import pytest

from repro.errors import EvaluationError
from repro.spanner.markers import (
    EMPTY,
    cl,
    combine,
    from_span_tuple,
    format_marker_set,
    gamma,
    group_by_position,
    is_compatible,
    make_pairs,
    max_position,
    op,
    shift,
    to_span_tuple,
)
from repro.spanner.spans import Span, SpanTuple


class TestMarkers:
    def test_repr(self):
        assert repr(op("x")) == "⊿x"
        assert repr(cl("x")) == "◁x"

    def test_identity(self):
        assert op("x") == op("x")
        assert op("x") != cl("x")
        assert op("x") != op("y")

    def test_gamma(self):
        g = gamma(["x", "y"])
        assert len(g) == 4
        assert op("x") in g and cl("y") in g

    def test_format_marker_set(self):
        assert format_marker_set(frozenset({op("x")})) == "{⊿x}"
        # deterministic ordering
        s = format_marker_set(frozenset({cl("y"), op("x")}))
        assert s == "{⊿x,◁y}"


class TestPairs:
    def test_make_pairs_sorts(self):
        pairs = make_pairs([(3, cl("x")), (1, op("x"))])
        assert pairs == ((1, op("x")), (3, cl("x")))

    def test_shift(self):
        pairs = make_pairs([(1, op("x")), (2, cl("x"))])
        assert shift(pairs, 5) == ((6, op("x")), (7, cl("x")))
        assert shift(EMPTY, 5) == ()

    def test_combine_is_concatenation_when_sorted(self):
        left = make_pairs([(1, op("x"))])
        right = make_pairs([(1, cl("x"))])
        assert combine(left, right, 3) == ((1, op("x")), (4, cl("x")))

    def test_combine_example_6_1(self):
        """Example 6.1 of the paper (positions/markers as given there)."""
        lam1 = make_pairs([(2, op("y")), (4, op("z")), (4, op("x")), (6, cl("z"))])
        lam2 = make_pairs([(2, cl("x")), (4, cl("y"))])
        combined = combine(lam1, lam2, 6)  # |D1| = 6
        expected = make_pairs(
            [(2, op("y")), (4, op("z")), (4, op("x")), (6, cl("z")), (8, cl("x")), (10, cl("y"))]
        )
        assert combined == expected

    def test_combine_handles_unsorted_overlap(self):
        left = make_pairs([(5, op("x"))])
        right = make_pairs([(1, op("y"))])
        # offset 2 shifts right part to 3 < 5: must re-sort
        assert combine(left, right, 2) == ((3, op("y")), (5, op("x")))

    def test_max_position(self):
        assert max_position(EMPTY) == 0
        assert max_position(make_pairs([(4, op("x")), (9, cl("x"))])) == 9

    def test_is_compatible(self):
        pairs = make_pairs([(5, op("x"))])
        assert is_compatible(pairs, 4)  # position <= d+1
        assert not is_compatible(pairs, 3)


class TestSpanTupleConversion:
    def test_roundtrip(self):
        t = SpanTuple({"x": Span(1, 3), "y": Span(2, 2)})
        assert to_span_tuple(from_span_tuple(t)) == t

    def test_from_span_tuple_marker_set(self):
        t = SpanTuple({"x": Span(1, 3)})
        assert from_span_tuple(t) == ((1, op("x")), (3, cl("x")))

    def test_empty_tuple(self):
        assert from_span_tuple(SpanTuple()) == ()
        assert to_span_tuple(()) == SpanTuple()

    def test_empty_span_same_position(self):
        t = SpanTuple({"x": Span(4, 4)})
        pairs = from_span_tuple(t)
        # canonical order sorts by (position, marker); "close" < "open"
        assert pairs == ((4, cl("x")), (4, op("x")))
        assert to_span_tuple(pairs) == t

    def test_unbalanced_rejected(self):
        with pytest.raises(EvaluationError):
            to_span_tuple(make_pairs([(1, op("x"))]))

    def test_double_open_rejected(self):
        with pytest.raises(EvaluationError):
            to_span_tuple(make_pairs([(1, op("x")), (2, op("x")), (3, cl("x"))]))

    def test_close_before_open_rejected(self):
        with pytest.raises(EvaluationError):
            to_span_tuple(make_pairs([(3, op("x")), (1, cl("x"))]))


class TestGrouping:
    def test_group_by_position(self):
        pairs = make_pairs([(1, op("x")), (3, cl("x")), (3, op("y")), (7, cl("y"))])
        grouped = group_by_position(pairs)
        assert grouped == {
            1: frozenset({op("x")}),
            3: frozenset({cl("x"), op("y")}),
            7: frozenset({cl("y")}),
        }

    def test_group_empty(self):
        assert group_by_position(EMPTY) == {}
