"""Tests for repro.slp.io (serialisation)."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GrammarError
from repro.slp.construct import balanced_slp, bisection_slp
from repro.slp.derive import text
from repro.slp.families import example_4_2, power_slp
from repro.slp.io import (
    dump,
    dumps,
    load,
    load_file,
    loads,
    save_file,
    slp_from_dict,
    slp_to_dict,
)


class TestRoundTrip:
    def test_simple(self):
        slp = balanced_slp("abracadabra")
        assert text(loads(dumps(slp))) == "abracadabra"

    def test_example_grammar_structure_preserved(self):
        slp = example_4_2()
        restored = loads(dumps(slp))
        assert restored.same_structure(slp.trim())

    def test_single_leaf(self):
        slp = balanced_slp("x")
        assert text(loads(dumps(slp))) == "x"

    def test_huge_document_grammar(self):
        slp = power_slp("ab", 40)
        restored = loads(dumps(slp))
        assert restored.length() == 2**41
        assert restored.size == slp.trim().size

    def test_file_roundtrip(self, tmp_path):
        slp = bisection_slp("to be or not to be")
        path = tmp_path / "doc.slp.json"
        save_file(slp, str(path))
        assert text(load_file(str(path))) == "to be or not to be"

    def test_stream_roundtrip(self, tmp_path):
        slp = balanced_slp("stream me")
        path = tmp_path / "s.json"
        with open(path, "w") as fh:
            dump(slp, fh)
        with open(path) as fh:
            assert text(load(fh)) == "stream me"

    def test_unreachable_rules_dropped(self):
        from repro.slp.grammar import SLP

        slp = SLP(
            {"S": ("Ta", "Tb"), "junk": ("Ta", "Ta")},
            {"Ta": "a", "Tb": "b"},
            "S",
        )
        data = slp_to_dict(slp)
        assert len(data["rules"]) == 1


class TestValidation:
    def test_wrong_format_rejected(self):
        with pytest.raises(GrammarError):
            slp_from_dict({"format": "other", "version": 1})

    def test_wrong_version_rejected(self):
        with pytest.raises(GrammarError):
            slp_from_dict({"format": "repro-slp", "version": 99})

    def test_forward_reference_rejected(self):
        data = {
            "format": "repro-slp",
            "version": 1,
            "terminals": ["a"],
            "rules": [[0, 2], [0, 0]],  # rule 0 references node 2 (itself+1)
            "start": 1,
        }
        with pytest.raises(GrammarError):
            slp_from_dict(data)

    def test_non_binary_rule_rejected(self):
        data = {
            "format": "repro-slp",
            "version": 1,
            "terminals": ["a"],
            "rules": [[0, 0, 0]],
            "start": 1,
        }
        with pytest.raises(GrammarError):
            slp_from_dict(data)

    def test_bad_start_rejected(self):
        data = {
            "format": "repro-slp",
            "version": 1,
            "terminals": ["a"],
            "rules": [],
            "start": 5,
        }
        with pytest.raises(GrammarError):
            slp_from_dict(data)

    def test_duplicate_terminals_rejected(self):
        data = {
            "format": "repro-slp",
            "version": 1,
            "terminals": ["a", "a"],
            "rules": [[0, 1]],
            "start": 2,
        }
        with pytest.raises(GrammarError):
            slp_from_dict(data)

    def test_marker_terminals_rejected(self):
        from repro.core.model_checking import splice_markers
        from repro.spanner.markers import make_pairs, op

        slp = balanced_slp("ab")
        spliced = splice_markers(slp, make_pairs([(1, op("x"))]))
        with pytest.raises(GrammarError):
            dumps(spliced)

    def test_output_is_valid_json(self):
        payload = dumps(balanced_slp("abc"), indent=2)
        parsed = json.loads(payload)
        assert parsed["format"] == "repro-slp"


@settings(max_examples=60, deadline=None)
@given(st.text(alphabet="abcd", min_size=1, max_size=60))
def test_roundtrip_property(doc):
    for build in (balanced_slp, bisection_slp):
        assert text(loads(dumps(build(doc)))) == doc
