"""Tests for repro.slp.families (the paper's examples + bench families)."""

import pytest

from repro.errors import GrammarError
from repro.slp.derive import text
from repro.slp.families import (
    caterpillar_slp,
    example_4_1,
    example_4_2,
    fibonacci_slp,
    power_slp,
    random_slp,
    repeated_slp,
    thue_morse_slp,
)


class TestPower:
    def test_values(self):
        assert text(power_slp("ab", 0)) == "ab"
        assert text(power_slp("ab", 3)) == "ab" * 8
        assert text(power_slp("a", 4)) == "a" * 16

    def test_exponential_compression(self):
        slp = power_slp("a", 40)
        assert slp.length() == 2**40
        assert slp.size < 150

    def test_negative_rejected(self):
        with pytest.raises(GrammarError):
            power_slp("a", -1)


class TestRepeated:
    def test_values(self):
        assert text(repeated_slp("abc", 1)) == "abc"
        assert text(repeated_slp("abc", 5)) == "abc" * 5
        assert text(repeated_slp("x", 7)) == "x" * 7

    def test_log_size(self):
        slp = repeated_slp("ab", 10**6)
        assert slp.length() == 2 * 10**6
        assert slp.size < 200

    def test_zero_rejected(self):
        with pytest.raises(GrammarError):
            repeated_slp("a", 0)

    def test_all_counts_up_to_40(self):
        for k in range(1, 41):
            assert text(repeated_slp("ab", k)) == "ab" * k


class TestFibonacci:
    def test_small_values(self):
        assert text(fibonacci_slp(1)) == "b"
        assert text(fibonacci_slp(2)) == "a"
        assert text(fibonacci_slp(3)) == "ab"
        assert text(fibonacci_slp(4)) == "aba"
        assert text(fibonacci_slp(5)) == "abaab"
        assert text(fibonacci_slp(6)) == "abaababa"

    def test_recurrence(self):
        assert text(fibonacci_slp(10)) == text(fibonacci_slp(9)) + text(fibonacci_slp(8))

    def test_length_is_fibonacci(self):
        fib = [0, 1, 1]
        while len(fib) < 26:
            fib.append(fib[-1] + fib[-2])
        assert fibonacci_slp(25).length() == fib[25]

    def test_invalid(self):
        with pytest.raises(GrammarError):
            fibonacci_slp(0)


class TestThueMorse:
    def test_small_values(self):
        assert text(thue_morse_slp(0)) == "a"
        assert text(thue_morse_slp(1)) == "ab"
        assert text(thue_morse_slp(2)) == "abba"
        assert text(thue_morse_slp(3)) == "abbabaab"

    def test_cube_free(self):
        # the Thue-Morse word famously contains no factor www
        word = text(thue_morse_slp(10))
        for length in range(1, 12):
            for start in range(len(word) - 3 * length + 1):
                w1 = word[start : start + length]
                w2 = word[start + length : start + 2 * length]
                w3 = word[start + 2 * length : start + 3 * length]
                assert not (w1 == w2 == w3), f"cube {w1!r} at {start}"

    def test_invalid(self):
        with pytest.raises(GrammarError):
            thue_morse_slp(-1)


class TestCaterpillar:
    def test_depth_linear(self):
        slp = caterpillar_slp(200)
        assert slp.depth() >= 200
        assert slp.length() == 202

    def test_document_content(self):
        doc = text(caterpillar_slp(10, pattern="ab"))
        assert len(doc) == 12
        assert set(doc) <= {"a", "b"}

    def test_single_char_pattern(self):
        assert text(caterpillar_slp(5, pattern="a")) == "a" * 7

    def test_invalid(self):
        with pytest.raises(GrammarError):
            caterpillar_slp(0)


class TestPaperExamples:
    def test_example_4_1_document(self):
        assert text(example_4_1()) == "baababaabbabaababaabbaabb"
        assert example_4_1().length() == 25

    def test_example_4_2_document(self):
        slp = example_4_2()
        assert text(slp) == "aabccaabaa"

    def test_example_4_2_structure(self):
        """The exact derivation structure of Figure 3."""
        slp = example_4_2()
        assert text(slp, root="E") == "aa"
        assert text(slp, root="C") == "aab"
        assert text(slp, root="D") == "cc"
        assert text(slp, root="A") == "aabcc"
        assert text(slp, root="B") == "aabaa"

    def test_example_4_2_is_normal_form(self):
        slp = example_4_2()
        assert slp.num_leaves == 3
        for name in slp.inner_rules:
            assert len(slp.children(name)) == 2


class TestRandom:
    def test_deterministic_given_seed(self):
        a = random_slp(20, seed=7)
        b = random_slp(20, seed=7)
        assert a.same_structure(b)

    def test_different_seeds_differ(self):
        a = random_slp(30, seed=1)
        b = random_slp(30, seed=2)
        assert not a.same_structure(b)

    def test_max_length_respected(self):
        for seed in range(20):
            slp = random_slp(50, seed=seed, max_length=1000)
            assert slp.length() <= 1000

    def test_invalid_args(self):
        with pytest.raises(GrammarError):
            random_slp(0)
        with pytest.raises(GrammarError):
            random_slp(5, alphabet="")
