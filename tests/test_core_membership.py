"""Tests for repro.core.membership (Lemma 4.5: compressed membership)."""

import random
import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EvaluationError
from repro.slp.construct import balanced_slp, bisection_slp
from repro.slp.families import fibonacci_slp, power_slp, thue_morse_slp
from repro.spanner.regex import compile_spanner
from repro.core.membership import slp_in_language, transition_matrices

PATTERNS = [
    ("a*", "ab"),
    ("(ab)*", "ab"),
    ("a(a|b)*b", "ab"),
    ("(a|b)*aba(a|b)*", "ab"),
    ("((a|b)(a|b))*", "ab"),
    ("a{3}b*", "ab"),
]


class TestAgainstPythonRe:
    @pytest.mark.parametrize("pattern,alphabet", PATTERNS)
    def test_small_documents(self, pattern, alphabet):
        nfa = compile_spanner(pattern, alphabet=alphabet).eliminate_epsilon()
        gold = re.compile(pattern)
        rng = random.Random(11)
        for _ in range(40):
            doc = "".join(rng.choice(alphabet) for _ in range(rng.randint(1, 12)))
            assert slp_in_language(balanced_slp(doc), nfa) == bool(gold.fullmatch(doc)), doc


class TestCompressedScale:
    def test_even_length_on_power_word(self):
        nfa = compile_spanner("((a|b)(a|b))*", alphabet="ab").eliminate_epsilon()
        assert slp_in_language(power_slp("ab", 30), nfa)  # length 2^31: even
        assert not slp_in_language(balanced_slp("aba"), nfa)

    def test_unary_counting_mod_3(self):
        nfa = compile_spanner("(aaa)*", alphabet="a").eliminate_epsilon()
        # 2^k mod 3 == 1 iff k even
        assert not slp_in_language(power_slp("a", 11), nfa)
        assert not slp_in_language(power_slp("a", 21), nfa)
        slp_3_2k = power_slp("aaa", 20)  # 3 * 2^20 symbols: divisible by 3
        assert slp_in_language(slp_3_2k, nfa)

    def test_fibonacci_never_contains_bb(self):
        nfa = compile_spanner("(a|b)*bb(a|b)*", alphabet="ab").eliminate_epsilon()
        assert not slp_in_language(fibonacci_slp(28), nfa)

    def test_thue_morse_is_cube_free(self):
        nfa = compile_spanner(
            "(a|b)*(aaa|bbb)(a|b)*", alphabet="ab"
        ).eliminate_epsilon()
        assert not slp_in_language(thue_morse_slp(16), nfa)

    def test_thue_morse_contains_abba(self):
        nfa = compile_spanner("(a|b)*abba(a|b)*", alphabet="ab").eliminate_epsilon()
        assert slp_in_language(thue_morse_slp(16), nfa)


class TestMechanics:
    def test_epsilon_rejected(self):
        nfa = compile_spanner("a*", alphabet="a")  # already ε-free, so force one
        from repro.spanner.automaton import EPSILON, SpannerNFA

        with_eps = SpannerNFA(2, {0: {EPSILON: frozenset({1})}}, [1])
        with pytest.raises(EvaluationError):
            slp_in_language(balanced_slp("a"), with_eps)

    def test_transition_matrices_cover_reachable(self):
        slp = power_slp("ab", 4)
        nfa = compile_spanner("(ab)*", alphabet="ab").eliminate_epsilon()
        mats = transition_matrices(slp, nfa)
        assert slp.start in mats
        assert all(name in mats for name in slp.reachable())

    def test_symbol_missing_from_automaton(self):
        # document uses 'c' which the automaton has no arc for: reject
        nfa = compile_spanner("(a|b)*", alphabet="ab").eliminate_epsilon()
        assert not slp_in_language(balanced_slp("abc"), nfa)


@settings(max_examples=60, deadline=None)
@given(st.text(alphabet="ab", min_size=1, max_size=40), st.sampled_from(PATTERNS))
def test_membership_matches_re(doc, pattern_alphabet):
    pattern, alphabet = pattern_alphabet
    nfa = compile_spanner(pattern, alphabet=alphabet).eliminate_epsilon()
    assert slp_in_language(bisection_slp(doc), nfa) == bool(re.fullmatch(pattern, doc))
