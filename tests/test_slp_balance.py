"""Tests for repro.slp.balance (the Theorem 4.3 substitute)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.slp.balance import balance, depth_bound, ensure_balanced, is_balanced
from repro.slp.derive import text
from repro.slp.families import (
    caterpillar_slp,
    example_4_2,
    fibonacci_slp,
    power_slp,
    random_slp,
)


class TestBalance:
    def test_preserves_document(self):
        deep = caterpillar_slp(500)
        flat = balance(deep)
        assert text(flat) == text(deep)

    def test_reaches_logarithmic_depth(self):
        deep = caterpillar_slp(3000)
        flat = balance(deep)
        assert deep.depth() >= 3000
        assert flat.depth() <= depth_bound(flat.length())

    def test_size_blowup_at_most_log_factor(self):
        """DESIGN.md §3: our substitute costs O(s log d), not O(s)."""
        deep = caterpillar_slp(4096)
        flat = balance(deep)
        log_d = math.log2(deep.length())
        assert flat.size <= 4 * deep.size * log_d

    def test_already_balanced_grammar_stays_small(self):
        slp = power_slp("ab", 12)
        flat = balance(slp)
        assert flat.length() == slp.length()
        assert flat.depth() <= depth_bound(flat.length())
        assert flat.size <= 6 * slp.size * max(1, math.log2(slp.length()))

    def test_single_leaf(self):
        from repro.slp.grammar import SLP

        slp = SLP({}, {"T": "a"}, "T")
        assert text(balance(slp)) == "a"


class TestPredicates:
    def test_depth_bound_monotone(self):
        assert depth_bound(1) <= depth_bound(100) <= depth_bound(10**9)

    def test_depth_bound_rejects_bad_length(self):
        with pytest.raises(ValueError):
            depth_bound(0)

    def test_is_balanced_on_families(self):
        assert is_balanced(power_slp("ab", 16))
        assert is_balanced(example_4_2())
        assert not is_balanced(caterpillar_slp(2000))

    def test_fibonacci_is_balanced(self):
        # depth n for length Fib(n) ~ phi^n: within the c*log(d) bound
        slp = fibonacci_slp(25)
        assert slp.depth() <= 1.4405 * math.log2(slp.length() + 2) + 3

    def test_ensure_balanced_identity_for_balanced(self):
        slp = power_slp("ab", 10)
        assert ensure_balanced(slp) is slp

    def test_ensure_balanced_rebuilds_unbalanced(self):
        deep = caterpillar_slp(1000)
        flat = ensure_balanced(deep)
        assert flat is not deep
        assert is_balanced(flat)


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=1, max_value=60), st.integers(min_value=0, max_value=10**6))
def test_balance_random_grammars(num_inner, seed):
    """Property: balancing any random SLP preserves text and bounds depth."""
    slp = random_slp(num_inner, alphabet="abc", seed=seed, max_length=5000)
    flat = balance(slp)
    assert flat.length() == slp.length()
    assert text(flat, max_length=10**4) == text(slp, max_length=10**4)
    assert flat.depth() <= depth_bound(flat.length())
